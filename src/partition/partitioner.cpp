#include "partition/partitioner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "graph/traversal.hpp"

namespace duet {
namespace {

bool is_compute(const Node& n) { return !n.is_input() && !n.is_constant(); }

// Disjoint-set over arbitrary ids.
class UnionFind {
 public:
  void add(NodeId x) { parent_.emplace(x, x); }
  NodeId find(NodeId x) {
    NodeId root = x;
    while (parent_.at(root) != root) root = parent_.at(root);
    while (parent_.at(x) != root) {
      const NodeId next = parent_.at(x);
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  void unite(NodeId a, NodeId b) { parent_[find(a)] = find(b); }

 private:
  std::map<NodeId, NodeId> parent_;
};

// A maximal run of consecutive topo-order compute nodes, classified as
// junction-run (every node is a cut node) or region (none is).
struct Run {
  bool junction = false;
  std::vector<NodeId> nodes;
};

std::vector<Run> classify_runs(const Graph& g, const std::vector<NodeId>& order,
                               const std::vector<bool>& live) {
  // Virtual source: stands for the parent graph inputs. It stays live until
  // every node that reads a raw input has executed, which prevents a branch
  // that has not started yet (fed directly by inputs) from letting an
  // already-finished sibling branch masquerade as a sequential chain.
  constexpr NodeId kSource = -2;

  // remaining[p] = #compute consumers of p not yet processed. Graph outputs
  // additionally count a virtual *sink* consumer that never retires: a node
  // whose value escapes to the user keeps its producer branch "open", so a
  // sibling branch that happens to come later in topological order is still
  // recognized as parallel (multi-output models like MT-DNN need this).
  std::vector<int> remaining(g.num_nodes(), 0);
  int remaining_source = 0;
  std::vector<bool> reads_input(g.num_nodes(), false);
  const std::set<NodeId> output_set(g.outputs().begin(), g.outputs().end());
  for (NodeId id : order) {
    if (output_set.count(id)) remaining[static_cast<size_t>(id)] += 1;
    for (NodeId c : g.consumers(id)) {
      if (is_compute(g.node(c)) && live[static_cast<size_t>(c)]) {
        remaining[static_cast<size_t>(id)] += 1;
      }
    }
    for (NodeId in : g.node(id).inputs) {
      if (g.node(in).is_input() && !reads_input[static_cast<size_t>(id)]) {
        reads_input[static_cast<size_t>(id)] = true;
        ++remaining_source;
      }
    }
  }

  std::set<NodeId> open;  // producers (incl. source) with pending consumers
  if (remaining_source > 0) open.insert(kSource);
  std::vector<bool> is_cut(g.num_nodes(), false);
  for (NodeId id : order) {
    for (NodeId in : g.node(id).inputs) {
      if (!is_compute(g.node(in))) continue;
      if (--remaining[static_cast<size_t>(in)] == 0) open.erase(in);
    }
    if (reads_input[static_cast<size_t>(id)]) {
      if (--remaining_source == 0) open.erase(kSource);
    }
    if (remaining[static_cast<size_t>(id)] > 0) open.insert(id);
    // Cut iff all open values funnel through this node alone.
    is_cut[static_cast<size_t>(id)] =
        open.empty() || (open.size() == 1 && *open.begin() == id);
  }

  std::vector<Run> runs;
  for (NodeId id : order) {
    const bool j = is_cut[static_cast<size_t>(id)];
    if (runs.empty() || runs.back().junction != j) {
      runs.push_back(Run{j, {}});
    }
    runs.back().nodes.push_back(id);
  }
  return runs;
}

// Splits a region into its independent branches (connected components over
// intra-region edges).
std::vector<std::vector<NodeId>> region_components(const Graph& g,
                                                   const std::vector<NodeId>& region) {
  std::set<NodeId> member(region.begin(), region.end());
  UnionFind uf;
  for (NodeId id : region) uf.add(id);
  for (NodeId id : region) {
    for (NodeId in : g.node(id).inputs) {
      if (member.count(in)) uf.unite(id, in);
    }
  }
  std::map<NodeId, std::vector<NodeId>> groups;
  for (NodeId id : region) groups[uf.find(id)].push_back(id);
  std::vector<std::vector<NodeId>> out;
  out.reserve(groups.size());
  for (auto& [root, nodes] : groups) {
    std::sort(nodes.begin(), nodes.end());  // keep topological order
    out.push_back(std::move(nodes));
  }
  // Deterministic branch order: by first node id.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

Partition partition_fine(const Graph& g, const std::vector<NodeId>& order) {
  Partition part;
  const std::vector<int> levels = node_levels(g);
  std::map<int, std::vector<NodeId>> by_level;
  for (NodeId id : order) by_level[levels[static_cast<size_t>(id)]].push_back(id);
  for (const auto& [level, nodes] : by_level) {
    Phase phase;
    phase.index = static_cast<int>(part.phases.size());
    phase.type = nodes.size() > 1 ? PhaseType::kMultiPath : PhaseType::kSequential;
    for (NodeId id : nodes) {
      Subgraph sub = extract_subgraph(
          g, {id}, strprintf("p%d.n%d", phase.index, id));
      sub.id = static_cast<int>(part.subgraphs.size());
      sub.phase = phase.index;
      sub.phase_type = phase.type;
      phase.subgraphs.push_back(sub.id);
      part.subgraphs.push_back(std::move(sub));
    }
    part.phases.push_back(std::move(phase));
  }
  return part;
}

}  // namespace

const Subgraph& Partition::subgraph(int id) const {
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < subgraphs.size());
  return subgraphs[static_cast<size_t>(id)];
}

void Partition::build_owner_index(size_t parent_size) const {
  if (!node_owner_.empty()) return;
  node_owner_.assign(parent_size, -1);
  for (const Subgraph& sub : subgraphs) {
    for (NodeId id : sub.parent_nodes) {
      node_owner_[static_cast<size_t>(id)] = sub.id;
    }
  }
}

int Partition::producer_subgraph(NodeId n) const {
  DUET_CHECK(!node_owner_.empty())
      << "call validate() (which builds the index) before producer_subgraph";
  DUET_CHECK(n >= 0 && static_cast<size_t>(n) < node_owner_.size());
  return node_owner_[static_cast<size_t>(n)];
}

std::string Partition::to_string(const Graph& parent) const {
  std::ostringstream os;
  os << "partition of \"" << parent.name() << "\": " << phases.size() << " phases, "
     << subgraphs.size() << " subgraphs\n";
  for (const Phase& phase : phases) {
    os << "  phase " << phase.index << " [" << phase_type_name(phase.type) << "]\n";
    for (int sid : phase.subgraphs) {
      const Subgraph& sub = subgraph(sid);
      os << "    #" << sid << " " << sub.label << ": " << sub.parent_nodes.size()
         << " nodes (" << sub.summary(parent) << ")\n";
    }
  }
  return os.str();
}

void Partition::validate(const Graph& parent) const {
  build_owner_index(parent.num_nodes());

  // Every *live* compute node belongs to exactly one subgraph (dead code is
  // deliberately left out of the partition).
  const std::vector<bool> live = live_nodes(parent);
  size_t covered = 0;
  for (const Node& n : parent.nodes()) {
    if (is_compute(n) && live[static_cast<size_t>(n.id)]) {
      DUET_CHECK(node_owner_[static_cast<size_t>(n.id)] >= 0)
          << "node " << n.name << " not covered by any subgraph";
      ++covered;
    }
  }
  size_t total = 0;
  for (const Subgraph& sub : subgraphs) total += sub.parent_nodes.size();
  DUET_CHECK_EQ(covered, total) << "subgraphs overlap";

  // Phase ordering: a subgraph's external compute dependencies must come
  // from strictly earlier phases.
  for (const Subgraph& sub : subgraphs) {
    for (const Subgraph::BoundaryInput& b : sub.boundary_inputs) {
      const Node& p = parent.node(b.parent_producer);
      if (!is_compute(p)) continue;  // parent graph input: always available
      const int producer = node_owner_[static_cast<size_t>(b.parent_producer)];
      DUET_CHECK_GE(producer, 0);
      DUET_CHECK_LT(subgraph(producer).phase, sub.phase)
          << "subgraph " << sub.label << " depends on phase-peer or later "
          << subgraph(producer).label;
    }
  }

  // Phases alternate in type only when adjacent phases both exist; the
  // stronger paper property (strict alternation) holds for coarse partitions:
  for (size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].type == PhaseType::kSequential &&
        phases[i - 1].type == PhaseType::kSequential) {
      // Only possible for fine granularity (singleton levels); tolerated.
    }
  }
}

Partition partition_phased(const Graph& graph, const PartitionOptions& options) {
  graph.validate();
  // Only live nodes are scheduled: a dead branch has no boundary outputs, so
  // it cannot be a subgraph (a DL compiler would have DCE'd it anyway).
  const std::vector<bool> live = live_nodes(graph);
  std::vector<NodeId> order;
  for (NodeId id : topo_order(graph)) {
    if (is_compute(graph.node(id)) && live[static_cast<size_t>(id)]) {
      order.push_back(id);
    }
  }
  DUET_CHECK(!order.empty()) << "graph has no live compute nodes";

  if (options.granularity == PartitionOptions::Granularity::kFine) {
    Partition part = partition_fine(graph, order);
    part.validate(graph);
    return part;
  }

  const std::vector<Run> runs = classify_runs(graph, order, live);

  Partition part;
  std::vector<NodeId> seq_accum;

  const bool nested =
      options.granularity == PartitionOptions::Granularity::kNested;
  const size_t max_chunk =
      nested ? std::max<size_t>(1, options.nested_max_nodes)
             : std::numeric_limits<size_t>::max();

  const auto emit_sequential_chunk = [&](std::vector<NodeId> chunk) {
    Phase phase;
    phase.index = static_cast<int>(part.phases.size());
    phase.type = PhaseType::kSequential;
    Subgraph sub = extract_subgraph(graph, chunk,
                                    strprintf("phase%d.seq", phase.index));
    sub.id = static_cast<int>(part.subgraphs.size());
    sub.phase = phase.index;
    sub.phase_type = phase.type;
    phase.subgraphs.push_back(sub.id);
    part.subgraphs.push_back(std::move(sub));
    part.phases.push_back(std::move(phase));
  };

  const auto flush_sequential = [&] {
    if (seq_accum.empty()) return;
    // Nested granularity: split long chains into consecutive chunks, each a
    // sequential phase of its own (footnote-1 multi-level partitioning).
    for (size_t begin = 0; begin < seq_accum.size(); begin += max_chunk) {
      const size_t end = std::min(begin + max_chunk, seq_accum.size());
      emit_sequential_chunk(std::vector<NodeId>(seq_accum.begin() + begin,
                                                seq_accum.begin() + end));
    }
    seq_accum.clear();
  };

  for (const Run& run : runs) {
    if (run.junction) {
      seq_accum.insert(seq_accum.end(), run.nodes.begin(), run.nodes.end());
      continue;
    }
    std::vector<std::vector<NodeId>> branches = region_components(graph, run.nodes);
    if (branches.size() <= 1) {
      // Single-branch region: no parallelism to expose, keep it sequential.
      seq_accum.insert(seq_accum.end(), run.nodes.begin(), run.nodes.end());
      continue;
    }
    flush_sequential();
    Phase phase;
    phase.index = static_cast<int>(part.phases.size());
    phase.type = PhaseType::kMultiPath;
    for (size_t b = 0; b < branches.size(); ++b) {
      Subgraph sub = extract_subgraph(
          graph, branches[b],
          strprintf("phase%d.branch%zu", phase.index, b));
      sub.id = static_cast<int>(part.subgraphs.size());
      sub.phase = phase.index;
      sub.phase_type = phase.type;
      phase.subgraphs.push_back(sub.id);
      part.subgraphs.push_back(std::move(sub));
    }
    part.phases.push_back(std::move(phase));
  }
  flush_sequential();

  part.validate(graph);
  return part;
}

}  // namespace duet
