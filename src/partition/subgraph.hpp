#pragma once

// Subgraph extraction (paper §IV-A). A Subgraph is a contiguous piece of the
// parent DAG, materialized as a standalone Graph whose external dependencies
// become placeholder inputs — "replicated placeholders that all point to the
// same input stream" in the paper's words. The standalone graph is what the
// compiler-aware profiler compiles and measures end-to-end.

#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace duet {

enum class PhaseType : uint8_t { kSequential, kMultiPath };
const char* phase_type_name(PhaseType t);

struct Subgraph {
  int id = -1;
  int phase = -1;
  PhaseType phase_type = PhaseType::kSequential;
  std::string label;

  // Node ids in the PARENT graph, topologically ordered (compute nodes only;
  // the constants they use are pulled in at extraction).
  std::vector<NodeId> parent_nodes;

  // Standalone graph: placeholders + replicated constants + the nodes.
  Graph graph;

  // External value consumed: the parent producer (a compute node or a parent
  // kInput) and the placeholder that stands for it inside `graph`.
  struct BoundaryInput {
    NodeId parent_producer = kInvalidNode;
    NodeId placeholder = kInvalidNode;
  };
  std::vector<BoundaryInput> boundary_inputs;

  // Values that escape: parent node ids (== the outputs of `graph`, in the
  // same order, through `node_map`).
  std::vector<NodeId> boundary_outputs;

  // parent node id -> node id in `graph` (compute nodes only).
  std::map<NodeId, NodeId> node_map;

  // Payload sizes crossing the boundary.
  uint64_t input_bytes(const Graph& parent) const;
  uint64_t output_bytes(const Graph& parent) const;

  std::string summary(const Graph& parent) const;
};

// Extracts `nodes` (must be topologically sorted parent compute nodes) into
// a standalone Subgraph. `is_member` must answer membership for any parent
// node id. Outputs are the member nodes consumed outside the set or marked
// as parent outputs.
Subgraph extract_subgraph(const Graph& parent, const std::vector<NodeId>& nodes,
                          const std::string& label);

}  // namespace duet
