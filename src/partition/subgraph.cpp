#include "partition/subgraph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace duet {

const char* phase_type_name(PhaseType t) {
  return t == PhaseType::kSequential ? "sequential" : "multi-path";
}

uint64_t Subgraph::input_bytes(const Graph& parent) const {
  uint64_t total = 0;
  for (const BoundaryInput& b : boundary_inputs) {
    total += node_output_bytes(parent.node(b.parent_producer));
  }
  return total;
}

uint64_t Subgraph::output_bytes(const Graph& parent) const {
  uint64_t total = 0;
  for (NodeId out : boundary_outputs) {
    total += node_output_bytes(parent.node(out));
  }
  return total;
}

std::string Subgraph::summary(const Graph& parent) const {
  // Histogram of op kinds, most frequent first — a readable fingerprint like
  // "lstm x1, dense x2".
  std::map<std::string, int> histogram;
  for (NodeId member : parent_nodes) {
    histogram[op_name(parent.node(member).op)] += 1;
  }
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [name, count] : histogram) ranked.emplace_back(count, name);
  std::sort(ranked.rbegin(), ranked.rend());
  std::ostringstream os;
  for (size_t i = 0; i < ranked.size() && i < 3; ++i) {
    if (i) os << ", ";
    os << ranked[i].second << " x" << ranked[i].first;
  }
  if (ranked.size() > 3) os << ", ...";
  return os.str();
}

Subgraph extract_subgraph(const Graph& parent, const std::vector<NodeId>& nodes,
                          const std::string& label) {
  Subgraph sub;
  sub.label = label;
  sub.parent_nodes = nodes;

  std::set<NodeId> member(nodes.begin(), nodes.end());
  for (NodeId id : nodes) {
    const Node& n = parent.node(id);
    DUET_CHECK(!n.is_input() && !n.is_constant())
        << "subgraph members must be compute nodes, got " << n.name;
  }

  sub.graph.set_name(parent.name() + "." + label);
  std::map<NodeId, NodeId> remap;  // parent id -> sub id (incl. terminals)

  const auto placeholder_for = [&](NodeId parent_producer) -> NodeId {
    auto it = remap.find(parent_producer);
    if (it != remap.end()) return it->second;
    const Node& p = parent.node(parent_producer);
    const NodeId ph =
        sub.graph.add_input(p.out_shape, "ph." + p.name, p.out_dtype);
    remap[parent_producer] = ph;
    sub.boundary_inputs.push_back({parent_producer, ph});
    return ph;
  };

  for (NodeId id : nodes) {
    const Node& n = parent.node(id);
    std::vector<NodeId> inputs;
    inputs.reserve(n.inputs.size());
    for (NodeId in : n.inputs) {
      const Node& p = parent.node(in);
      if (member.count(in)) {
        auto it = remap.find(in);
        DUET_CHECK(it != remap.end())
            << "member input " << in << " not yet copied; nodes must be topo-sorted";
        inputs.push_back(it->second);
      } else if (p.is_constant()) {
        auto it = remap.find(in);
        if (it == remap.end()) {
          const NodeId c = sub.graph.add_constant(p.value, p.name);
          remap[in] = c;
          inputs.push_back(c);
        } else {
          inputs.push_back(it->second);
        }
      } else {
        // Parent input or external compute node: replicated placeholder.
        inputs.push_back(placeholder_for(in));
      }
    }
    const NodeId copied = sub.graph.add_node(n.op, std::move(inputs), n.attrs, n.name);
    remap[id] = copied;
    sub.node_map[id] = copied;
  }

  // Outputs: members consumed outside the set, or marked parent outputs.
  std::set<NodeId> parent_outputs(parent.outputs().begin(), parent.outputs().end());
  for (NodeId id : nodes) {
    bool escapes = parent_outputs.count(id) > 0;
    if (!escapes) {
      for (NodeId c : parent.consumers(id)) {
        if (!member.count(c)) {
          escapes = true;
          break;
        }
      }
    }
    if (escapes) {
      sub.boundary_outputs.push_back(id);
      sub.graph.mark_output(sub.node_map.at(id));
    }
  }
  DUET_CHECK(!sub.boundary_outputs.empty())
      << "subgraph " << label << " produces nothing";
  sub.graph.validate();
  return sub;
}

}  // namespace duet
