#pragma once

// Coarse-grained multi-phase graph partitioning (paper §IV-A, Fig. 7).
//
// The DAG is decomposed into an alternating sequence of phases:
//   * sequential phase — one subgraph holding a chain of nodes every
//     execution must pass through (between "cut nodes"), and
//   * multi-path phase — several independent branch subgraphs that may run
//     concurrently on different devices.
//
// Cut nodes are found with a sweep over the topological order: a node v is a
// cut iff, once v has executed, every still-pending node's external
// dependencies are satisfied by v alone (all live values funnel through v).
// Consecutive cut nodes and single-branch regions merge into one sequential
// subgraph, which keeps granularity high — the property that lets the DL
// compiler keep fusing inside each subgraph (paper §III-B).

#include <string>
#include <vector>

#include "partition/subgraph.hpp"

namespace duet {

struct Phase {
  int index = 0;
  PhaseType type = PhaseType::kSequential;
  std::vector<int> subgraphs;  // ids into Partition::subgraphs
};

struct Partition {
  std::vector<Subgraph> subgraphs;
  std::vector<Phase> phases;

  const Subgraph& subgraph(int id) const;
  // Subgraph (id) producing parent node `n`, or -1 for parent inputs.
  int producer_subgraph(NodeId n) const;

  std::string to_string(const Graph& parent) const;
  // Dependency check: true when every boundary input of `sub` is produced by
  // an earlier phase (the phased-schedule invariant).
  void validate(const Graph& parent) const;

 private:
  mutable std::vector<int> node_owner_;  // lazily built parent-node -> subgraph
  void build_owner_index(size_t parent_size) const;
};

struct PartitionOptions {
  // kCoarse: the paper's scheme. kFine: one subgraph per compute node — the
  // ablation showing why coarse granularity matters. kNested: the paper's
  // footnote-1 future work — coarse phases, but sequential phases larger
  // than `nested_max_nodes` are split into consecutive chunks, giving the
  // scheduler device-switch points inside long chains (e.g. a transformer
  // encoder) at the cost of extra boundary traffic.
  enum class Granularity { kCoarse, kFine, kNested } granularity =
      Granularity::kCoarse;
  // Chunk size bound for kNested (compute nodes per sequential chunk).
  size_t nested_max_nodes = 12;
};

Partition partition_phased(const Graph& graph, const PartitionOptions& options = {});

}  // namespace duet
