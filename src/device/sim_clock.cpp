#include "device/sim_clock.hpp"

#include "common/error.hpp"

namespace duet {

void SimClock::advance(double dt) {
  DUET_CHECK_GE(dt, 0.0) << "clock cannot run backwards";
  now_ += dt;
}

void SimClock::advance_to(double t) {
  if (t > now_) now_ = t;
}

}  // namespace duet
