#include "device/interconnect.hpp"

namespace duet {

Interconnect::Interconnect(TransferParams params, double noise_sigma,
                           uint64_t noise_seed)
    : params_(params), noise_sigma_(noise_sigma), rng_(noise_seed) {}

void Interconnect::set_spikes(double probability, double min_seconds,
                              double max_seconds) {
  spike_probability_ = probability;
  spike_min_s_ = min_seconds;
  spike_max_s_ = max_seconds;
}

double Interconnect::transfer_time(uint64_t bytes, bool with_noise) {
  total_bytes_ += bytes;
  total_transfers_ += 1;
  double t = transfer_time_seconds(bytes, params_);
  if (with_noise) {
    t *= rng_.lognormal_factor(noise_sigma_);
    if (spike_probability_ > 0.0 && rng_.coin(spike_probability_)) {
      t += rng_.uniform(spike_min_s_, spike_max_s_);
    }
  }
  return t;
}

Tensor Interconnect::transfer(const Tensor& t, bool with_noise, double* seconds) {
  const double dt = transfer_time(t.byte_size(), with_noise);
  if (seconds != nullptr) *seconds = dt;
  return t.clone();
}

void Interconnect::reseed(uint64_t seed) { rng_ = Rng(seed); }

}  // namespace duet
