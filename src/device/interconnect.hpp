#pragma once

// CPU<->GPU interconnect model (PCIe 3.0 in the paper's testbed). Transfer
// time is latency + size/bandwidth — the linear shape measured by the
// paper's Fig. 5 microbenchmark — with optional log-normal noise, which the
// paper identifies as the main source of extra tail latency (Fig. 12).
// Payloads are actually memcpy'd so a transfer has real data semantics.

#include <cstdint>

#include "common/rng.hpp"
#include "compiler/cost_model.hpp"
#include "tensor/tensor.hpp"

namespace duet {

class Interconnect {
 public:
  Interconnect(TransferParams params, double noise_sigma, uint64_t noise_seed);

  // Rare contention spikes (DMA queueing, IOMMU, OS jitter): each noisy
  // transfer additionally pays `spike_seconds` with probability
  // `spike_probability`. This is what erodes DUET's P99.9 advantage in the
  // paper's Fig. 12 — heterogeneous execution crosses the link far more
  // often than a single-device baseline.
  void set_spikes(double probability, double min_seconds, double max_seconds);

  const TransferParams& params() const { return params_; }

  // Modeled duration of moving `bytes` across the link.
  double transfer_time(uint64_t bytes, bool with_noise);

  // "Moves" a tensor across the link: deep-copies the payload (a real PCIe
  // DMA lands in fresh device memory) and returns the modeled duration via
  // *seconds.
  Tensor transfer(const Tensor& t, bool with_noise, double* seconds);

  // Cumulative statistics.
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_transfers() const { return total_transfers_; }

  void reseed(uint64_t seed);

 private:
  TransferParams params_;
  double noise_sigma_;
  Rng rng_;
  uint64_t total_bytes_ = 0;
  uint64_t total_transfers_ = 0;
  double spike_probability_ = 0.0;
  double spike_min_s_ = 0.0;
  double spike_max_s_ = 0.0;
};

}  // namespace duet
