#pragma once

// Device abstraction: something that can execute a CompiledSubgraph. Both
// concrete devices execute kernels *numerically* with the reference CPU
// implementations (so any placement yields bit-identical results), while
// *time* is charged from the calibrated cost model — the substitution for
// the paper's physical testbed (DESIGN.md §1). Per-run log-normal noise
// models the run-to-run variation behind the paper's tail-latency study.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "compiler/lowering.hpp"
#include "device/interconnect.hpp"

namespace duet {

class Device {
 public:
  Device(DeviceCostParams params, double noise_sigma, uint64_t noise_seed);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceKind kind() const { return params_.kind; }
  const std::string& name() const { return params_.name; }
  const DeviceCostParams& params() const { return params_; }
  double noise_sigma() const { return noise_sigma_; }

  struct RunResult {
    std::vector<Tensor> outputs;
    double modeled_time_s = 0.0;
  };

  // Runs the subgraph numerically and charges modeled time. `with_noise`
  // draws one log-normal factor per kernel from this device's RNG.
  RunResult execute(const CompiledSubgraph& sub,
                    const std::map<NodeId, Tensor>& feeds, bool with_noise);

  // Modeled time only (no numeric execution) — used by measure_latency in
  // the scheduler's correction loop, where thousands of placements are
  // evaluated.
  double modeled_time(const CompiledSubgraph& sub, bool with_noise);

  // Deterministic reset of the noise stream (tests / repeated experiments).
  void reseed(uint64_t seed);

 protected:
  DeviceCostParams params_;
  double noise_sigma_;
  Rng rng_;
};

// The paper's Xeon Gold 6152 CPU (22 cores).
class CpuDevice : public Device {
 public:
  explicit CpuDevice(uint64_t noise_seed = 1);
  CpuDevice(DeviceCostParams params, double noise_sigma, uint64_t noise_seed)
      : Device(std::move(params), noise_sigma, noise_seed) {}
};

// The paper's NVIDIA Titan V (simulated; kernels run on the host, time comes
// from the calibrated model).
class GpuDevice : public Device {
 public:
  explicit GpuDevice(uint64_t noise_seed = 2);
  GpuDevice(DeviceCostParams params, double noise_sigma, uint64_t noise_seed)
      : Device(std::move(params), noise_sigma, noise_seed) {}
};

// A coupled CPU-GPU pair plus interconnect — the architecture DUET targets.
struct DevicePair {
  std::unique_ptr<CpuDevice> cpu;
  std::unique_ptr<GpuDevice> gpu;
  std::unique_ptr<Interconnect> link;

  Device& device(DeviceKind kind) const;
};

// Builds the calibrated default testbed (Xeon + Titan V + PCIe 3.0).
DevicePair make_default_device_pair(uint64_t seed = 42);

}  // namespace duet
