#pragma once

// Virtual clock for the discrete-event executor. Each device (and the link)
// owns one; the simulated executor advances them as subgraphs and transfers
// are scheduled, which yields deterministic, host-independent latencies.

namespace duet {

class SimClock {
 public:
  double now() const { return now_; }

  // Moves time forward by `dt` seconds (must be non-negative).
  void advance(double dt);

  // Moves time to `t` if `t` is later; otherwise a no-op (a device that is
  // already past `t` is simply busy).
  void advance_to(double t);

  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace duet
