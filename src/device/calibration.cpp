#include "device/calibration.hpp"

namespace duet {

DeviceCostParams xeon_gold_6152() {
  DeviceCostParams p;
  p.kind = DeviceKind::kCpu;
  p.name = "xeon-gold-6152";
  p.peak_gflops = 1400.0;
  p.mem_bw_gbps = 80.0;
  p.launch_overhead_s = 0.2e-6;     // a function call, essentially
  p.framework_dispatch_s = 15e-6;   // interpreter + op dispatch per operator
  p.framework_eff = 0.55;           // unfused, generic kernels
  p.layout_bonus = 1.15;            // NCHWc vectorization
  p.batch_gain = 0.02;              // cores are busy already at batch 1
  p.max_batch_gain = 1.5;

  // Dense GEMV/GEMM at inference sizes: mostly memory-bound, decent SIMD.
  p.dense = {/*eff=*/0.25, /*ref_flops=*/1e6, /*clamp_lo=*/1.0, /*clamp_hi=*/1.0};
  // TVM CPU conv at batch 1 reaches ~240 GFLOP/s on this part (ResNet-18 at
  // 224x224 is 3.6 GFLOP and costs ~15 ms in the paper's Table II).
  p.conv = {0.15, 1e6, 1.0, 1.0};
  // Small sequential gate GEMMs: ~44 GFLOP/s at hidden=256, improving a bit
  // with wider gates (DeepCPU-style behaviour).
  p.rnn = {0.031, 0.35e6, 0.5, 2.0};
  p.attention = {0.15, 1e6, 1.0, 1.0};
  p.elementwise = {0.02, 1e6, 1.0, 1.0};
  p.fallback = p.elementwise;
  return p;
}

DeviceCostParams titan_v() {
  DeviceCostParams p;
  p.kind = DeviceKind::kGpu;
  p.name = "titan-v";
  p.peak_gflops = 14000.0;
  p.mem_bw_gbps = 650.0;
  p.launch_overhead_s = 5e-6;       // cudaLaunchKernel + driver
  p.framework_dispatch_s = 30e-6;   // framework op dispatch + stream sync
  p.framework_eff = 0.6;
  p.layout_bonus = 1.2;             // tensor-core-friendly tiling
  p.batch_gain = 0.25;              // occupancy grows quickly with batch
  p.max_batch_gain = 8.0;

  // Batch-1 GEMV leaves most SMs idle.
  p.dense = {0.05, 2e6, 0.5, 4.0};
  // Large convolutions fill the device even at batch 1 (~5 TFLOP/s with the
  // layout bonus; ResNet-18's 3.6 GFLOP costs ~0.9 ms in Table II).
  p.conv = {0.30, 1e6, 1.0, 1.0};
  // Per-timestep kernels are tiny: utilization collapses, launch overhead
  // dominates — the paper's motivating observation (Fig. 4).
  p.rnn = {0.0015, 0.35e6, 0.25, 8.0};
  p.attention = {0.08, 1e6, 1.0, 1.0};
  p.elementwise = {0.01, 1e6, 1.0, 1.0};
  p.fallback = p.elementwise;
  return p;
}

TransferParams pcie3_x16() {
  TransferParams t;
  t.latency_s = 10e-6;
  t.bandwidth_gbps = 12.0;
  return t;
}

double cpu_noise_sigma() { return 0.03; }
double gpu_noise_sigma() { return 0.05; }
double link_noise_sigma() { return 0.10; }

double link_spike_probability() { return 0.004; }
double link_spike_min_seconds() { return 0.5e-3; }
double link_spike_max_seconds() { return 3.0e-3; }

double executor_dispatch_overhead() { return 150e-6; }

}  // namespace duet
