#pragma once

// Calibration constants for the simulated testbed. Every number that shapes
// an experiment lives here, in one place, so the Table II sanity test
// (tests/test_calibration.cpp) can pin the model to the paper's measured
// subgraph costs:
//
//   Wide-and-Deep (batch 1): RNN  2.4 ms CPU /  6.4 ms GPU
//                            CNN 14.9 ms CPU /  0.9 ms GPU
//
// The derivation (see DESIGN.md §1): CPU is a 22-core Xeon Gold 6152
// (~1.4 TFLOP/s fp32 peak with AVX-512), GPU a Titan V (~14 TFLOP/s fp32),
// PCIe 3.0 x16 (~12 GB/s effective). Effective per-op-class utilization is
// fitted so sequential small-kernel RNNs are launch-overhead-bound on the
// GPU while convolutions are an order of magnitude faster there.

#include "compiler/cost_model.hpp"

namespace duet {

// CPU: Intel Xeon Gold 6152, TVM LLVM backend.
DeviceCostParams xeon_gold_6152();
// GPU: NVIDIA Titan V, TVM CUDA backend.
DeviceCostParams titan_v();
// PCIe 3.0 x16 host<->device link.
TransferParams pcie3_x16();

// Run-to-run latency variation (log-normal sigma). The link is the noisiest
// component, which is what makes DUET's P99.9 gains smaller than its P50
// gains in the paper's Fig. 12.
double cpu_noise_sigma();
double gpu_noise_sigma();
double link_noise_sigma();

// PCIe contention spikes: probability per transfer and the extra delay's
// uniform range. See Interconnect::set_spikes.
double link_spike_probability();
double link_spike_min_seconds();
double link_spike_max_seconds();

// Per-subgraph cost of the heterogeneous executor itself: popping the
// shared-memory synchronization queue, waking the device worker, and
// triggering dependents (paper §IV-D runs two child processes). Charged by
// the latency evaluator and the simulated executor for every subgraph
// dispatch; the single-device baselines (plain operators-in-sequence
// runtimes) do not pay it.
double executor_dispatch_overhead();

}  // namespace duet
