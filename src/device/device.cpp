#include "device/device.hpp"

#include "common/error.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"

namespace duet {

Device::Device(DeviceCostParams params, double noise_sigma, uint64_t noise_seed)
    : params_(std::move(params)), noise_sigma_(noise_sigma), rng_(noise_seed) {}

Device::RunResult Device::execute(const CompiledSubgraph& sub,
                                  const std::map<NodeId, Tensor>& feeds,
                                  bool with_noise) {
  DUET_CHECK(sub.device() == kind())
      << "subgraph compiled for " << device_kind_name(sub.device())
      << " executed on " << device_kind_name(kind());
  RunResult r;
  r.outputs = sub.run(feeds);
  r.modeled_time_s = modeled_time(sub, with_noise);
  return r;
}

double Device::modeled_time(const CompiledSubgraph& sub, bool with_noise) {
  double total = 0.0;
  for (const CompiledKernel& k : sub.kernels()) {
    double t = k.est_time_s;
    if (with_noise) t *= rng_.lognormal_factor(noise_sigma_);
    total += t;
  }
  return total;
}

void Device::reseed(uint64_t seed) { rng_ = Rng(seed); }

CpuDevice::CpuDevice(uint64_t noise_seed)
    : Device(xeon_gold_6152(), cpu_noise_sigma(), noise_seed) {}

GpuDevice::GpuDevice(uint64_t noise_seed)
    : Device(titan_v(), gpu_noise_sigma(), noise_seed) {}

Device& DevicePair::device(DeviceKind kind) const {
  if (kind == DeviceKind::kCpu) return *cpu;
  return *gpu;
}

DevicePair make_default_device_pair(uint64_t seed) {
  DevicePair pair;
  pair.cpu = std::make_unique<CpuDevice>(seed * 3 + 1);
  pair.gpu = std::make_unique<GpuDevice>(seed * 3 + 2);
  pair.link = std::make_unique<Interconnect>(pcie3_x16(), link_noise_sigma(),
                                             seed * 3 + 3);
  pair.link->set_spikes(link_spike_probability(), link_spike_min_seconds(),
                        link_spike_max_seconds());
  return pair;
}

}  // namespace duet
