#pragma once

// The CPU kernel library: reference implementations of every tensor operator
// the model zoo uses. These execute for real (so heterogeneous runs are
// numerically checkable against single-device runs); the device layer charges
// *modeled* time for them, since this host is not the paper's testbed.
//
// Conventions:
//   * float32, row-major, NCHW for images, [batch, seq, feature] for
//     sequences.
//   * Kernels return freshly allocated tensors; they never alias inputs.
//   * Shape errors throw duet::Error via DUET_CHECK.

#include <vector>

#include "tensor/tensor.hpp"

namespace duet::kernels {

// --- elementwise ------------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor relu(const Tensor& x);
Tensor sigmoid(const Tensor& x);
Tensor tanh_op(const Tensor& x);
Tensor gelu(const Tensor& x);
Tensor add_scalar(const Tensor& x, float s);
Tensor mul_scalar(const Tensor& x, float s);
// Adds a [features] bias across the last dimension of x.
Tensor bias_add(const Tensor& x, const Tensor& bias);

// --- matmul / linear ---------------------------------------------------------
// C[M,N] = A[M,K] * B[K,N]; cache-blocked with k-inner accumulation.
Tensor matmul(const Tensor& a, const Tensor& b);
// Batched: A[B,M,K] * B2[K,N] -> [B,M,N] (shared weight), or
// A[B,M,K] * B2[B,K,N] -> [B,M,N].
Tensor batch_matmul(const Tensor& a, const Tensor& b);
// y = x * W + b where x:[batch, in], W:[in, out], b:[out] (b may be null).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);

// --- convolution / pooling ---------------------------------------------------
// x: [N, C, H, W], w: [O, C, kh, kw], bias: [O] or undefined.
// Dispatches between the direct loop nest (small reduction windows) and the
// im2col+GEMM lowering (large ones) — the same two strategies real backends
// pick between.
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, int stride,
              int padding);
// The individual strategies, exposed for testing/benchmarks.
Tensor conv2d_direct(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int padding);
Tensor conv2d_im2col(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int padding);
Tensor max_pool2d(const Tensor& x, int kernel, int stride, int padding);
Tensor avg_pool2d(const Tensor& x, int kernel, int stride, int padding);
// [N, C, H, W] -> [N, C]
Tensor global_avg_pool(const Tensor& x);
// Inference-mode batch norm folded to scale/shift: y = x * scale[c] + shift[c].
Tensor batch_norm(const Tensor& x, const Tensor& scale, const Tensor& shift);

// --- recurrent ----------------------------------------------------------------
// One LSTM step. x:[batch, input], h/c:[batch, hidden].
// w_ih:[input, 4*hidden], w_hh:[hidden, 4*hidden], bias:[4*hidden].
// Gate order: input, forget, cell(g), output.
struct LstmState {
  Tensor h;
  Tensor c;
};
LstmState lstm_cell(const Tensor& x, const LstmState& state, const Tensor& w_ih,
                    const Tensor& w_hh, const Tensor& bias);
// Full sequence: x:[batch, seq, input] -> outputs [batch, seq, hidden]; the
// final hidden state is written to *final if non-null.
Tensor lstm(const Tensor& x, const Tensor& w_ih, const Tensor& w_hh,
            const Tensor& bias, LstmState* final = nullptr);
// GRU step / sequence; w_ih:[input, 3*hidden], w_hh:[hidden, 3*hidden],
// gate order: reset, update, new.
Tensor gru_cell(const Tensor& x, const Tensor& h, const Tensor& w_ih,
                const Tensor& w_hh, const Tensor& bias);
Tensor gru(const Tensor& x, const Tensor& w_ih, const Tensor& w_hh,
           const Tensor& bias);
// indices:[batch, seq] int32 -> [batch, seq, dim] rows of table:[vocab, dim].
Tensor embedding(const Tensor& indices, const Tensor& table);

// --- reductions / normalization -----------------------------------------------
Tensor softmax_lastdim(const Tensor& x);
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);
// Reduces over `axis`, keeping other dims.
Tensor reduce_sum(const Tensor& x, int axis);
Tensor reduce_mean(const Tensor& x, int axis);
Tensor reduce_max(const Tensor& x, int axis);
// argmax over last dim -> int32 tensor with last dim removed.
Tensor argmax_lastdim(const Tensor& x);

// --- shape / data movement ------------------------------------------------------
Tensor concat(const std::vector<Tensor>& parts, int axis);
std::vector<Tensor> split(const Tensor& x, int axis, int pieces);
Tensor transpose2d(const Tensor& x);
// Permutes [B, S, H*D] -> heads view is internal to attention; this is a
// general last-two-dims transpose for rank >= 2.
Tensor transpose_last2(const Tensor& x);
Tensor flatten(const Tensor& x);  // [N, ...] -> [N, rest]
Tensor slice_rows(const Tensor& x, int64_t begin, int64_t end);  // axis 0

// --- attention -------------------------------------------------------------------
// Multi-head self attention over x:[batch, seq, model] with fused qkv weight
// wqkv:[model, 3*model], output projection wo:[model, model].
Tensor multi_head_attention(const Tensor& x, const Tensor& wqkv,
                            const Tensor& wo, int num_heads);

}  // namespace duet::kernels
