#pragma once

// Dense row-major tensor with shared ownership of its buffer. Copying a
// Tensor is a cheap alias (shared_ptr bump); `clone()` deep-copies. This is
// the value type that flows along graph edges and through the heterogeneous
// executor's synchronization queues.

#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/dtype.hpp"
#include "tensor/shape.hpp"

namespace duet {

class Tensor {
 public:
  // Empty (null) tensor; `defined()` is false.
  Tensor() = default;

  // Allocates an uninitialized buffer of shape/dtype.
  explicit Tensor(Shape shape, DType dtype = DType::kFloat32);

  // Aliases `byte_size(shape, dtype)` bytes of an existing buffer at
  // `offset` — how the executors back boundary tensors with a slot of a
  // per-device arena (runtime/memory_plan.hpp). Shares ownership: the view
  // keeps the arena alive.
  static Tensor view(std::shared_ptr<std::vector<uint8_t>> buffer,
                     size_t offset, Shape shape, DType dtype);

  bool defined() const { return buffer_ != nullptr; }
  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t numel() const { return shape_.numel(); }
  size_t byte_size() const { return static_cast<size_t>(numel()) * dtype_size(dtype_); }

  template <typename T>
  T* data() {
    check_access<T>();
    return reinterpret_cast<T*>(buffer_->data() + offset_);
  }

  template <typename T>
  const T* data() const {
    check_access<T>();
    return reinterpret_cast<const T*>(buffer_->data() + offset_);
  }

  void* raw_data() { return buffer_ ? buffer_->data() + offset_ : nullptr; }
  const void* raw_data() const {
    return buffer_ ? buffer_->data() + offset_ : nullptr;
  }

  // Deep copy.
  Tensor clone() const;

  // Aliases the same buffer under a different shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  // Concatenates along dim 0 — the request-coalescing primitive: B batch-1
  // feed tensors stack into one batch-B tensor. All parts must share dtype
  // and trailing dims; rank-0 parts are rejected. Row-major layout makes
  // this a straight buffer concatenation, so stacked rows are bytewise the
  // originals (the serving batching gate memcmps on this).
  static Tensor concat0(const std::vector<Tensor>& parts);

  // Copies rows [lo, lo+count) along dim 0 into a fresh tensor — the
  // inverse of concat0, splitting a batched output back per request.
  Tensor slice0(int64_t lo, int64_t count) const;

  // --- factories -----------------------------------------------------------
  static Tensor zeros(Shape shape, DType dtype = DType::kFloat32);
  static Tensor full(Shape shape, float value);
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor arange(int64_t n);  // float32 [0, 1, ..., n-1]
  static Tensor from_vector(Shape shape, const std::vector<float>& values);

  // Max |a - b| over all elements; both must be float32 with equal shapes.
  static float max_abs_diff(const Tensor& a, const Tensor& b);
  // True when all elements are within `atol + rtol * |b|`.
  static bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-4f,
                       float atol = 1e-5f);

 private:
  template <typename T>
  void check_access() const {
    DUET_CHECK(defined()) << "access to undefined tensor";
    DUET_CHECK(dtype_of<T>() == dtype_)
        << "dtype mismatch: tensor is " << dtype_name(dtype_);
  }

  Shape shape_;
  DType dtype_ = DType::kFloat32;
  std::shared_ptr<std::vector<uint8_t>> buffer_;
  size_t offset_ = 0;  // byte offset into buffer_ (nonzero only for views)
};

}  // namespace duet
