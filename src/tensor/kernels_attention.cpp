#include <cmath>
#include <cstring>

#include "tensor/kernels.hpp"

namespace duet::kernels {
namespace {

// Gathers head `h` from fused [batch, seq, heads*dim] into [seq, dim] for a
// single batch element.
void gather_head(const float* src, int64_t seq, int64_t heads, int64_t dim,
                 int64_t h, float* dst) {
  for (int64_t s = 0; s < seq; ++s) {
    std::memcpy(dst + s * dim, src + s * heads * dim + h * dim,
                sizeof(float) * static_cast<size_t>(dim));
  }
}

}  // namespace

Tensor multi_head_attention(const Tensor& x, const Tensor& wqkv, const Tensor& wo,
                            int num_heads) {
  DUET_CHECK_EQ(x.shape().rank(), 3u) << "attention input must be [batch, seq, model]";
  const int64_t batch = x.shape().dim(0);
  const int64_t seq = x.shape().dim(1);
  const int64_t model = x.shape().dim(2);
  DUET_CHECK_EQ(wqkv.shape().dim(0), model);
  DUET_CHECK_EQ(wqkv.shape().dim(1), 3 * model);
  DUET_CHECK_EQ(model % num_heads, 0) << "model dim must divide heads";
  const int64_t dim = model / num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dim));

  // Fused QKV projection on the flattened [batch*seq, model] view.
  Tensor qkv = matmul(x.reshaped(Shape{batch * seq, model}), wqkv);
  const float* pqkv = qkv.data<float>();

  Tensor ctx(Shape{batch, seq, model});
  float* pctx = ctx.data<float>();

  std::vector<float> q(static_cast<size_t>(seq * dim));
  std::vector<float> k(static_cast<size_t>(seq * dim));
  std::vector<float> v(static_cast<size_t>(seq * dim));
  std::vector<float> scores(static_cast<size_t>(seq * seq));

  for (int64_t b = 0; b < batch; ++b) {
    const float* base = pqkv + b * seq * 3 * model;
    for (int64_t h = 0; h < num_heads; ++h) {
      // The fused projection lays out [q(model) | k(model) | v(model)] per
      // token; each head's slice is at offset h*dim within its section.
      for (int64_t s = 0; s < seq; ++s) {
        const float* tok = base + s * 3 * model;
        std::memcpy(q.data() + s * dim, tok + h * dim,
                    sizeof(float) * static_cast<size_t>(dim));
        std::memcpy(k.data() + s * dim, tok + model + h * dim,
                    sizeof(float) * static_cast<size_t>(dim));
        std::memcpy(v.data() + s * dim, tok + 2 * model + h * dim,
                    sizeof(float) * static_cast<size_t>(dim));
      }
      (void)gather_head;  // gather_head retained for tests of layout helpers

      // scores = softmax(Q K^T * scale) row-wise.
      for (int64_t i = 0; i < seq; ++i) {
        float mx = -1e30f;
        for (int64_t j = 0; j < seq; ++j) {
          float dot = 0.0f;
          for (int64_t d = 0; d < dim; ++d) dot += q[i * dim + d] * k[j * dim + d];
          dot *= scale;
          scores[i * seq + j] = dot;
          if (dot > mx) mx = dot;
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < seq; ++j) {
          scores[i * seq + j] = std::exp(scores[i * seq + j] - mx);
          sum += scores[i * seq + j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = 0; j < seq; ++j) scores[i * seq + j] *= inv;
      }

      // ctx_head = scores * V, scattered back into the fused layout.
      for (int64_t i = 0; i < seq; ++i) {
        float* dst = pctx + (b * seq + i) * model + h * dim;
        for (int64_t d = 0; d < dim; ++d) dst[d] = 0.0f;
        for (int64_t j = 0; j < seq; ++j) {
          const float w = scores[i * seq + j];
          const float* vr = v.data() + j * dim;
          for (int64_t d = 0; d < dim; ++d) dst[d] += w * vr[d];
        }
      }
    }
  }

  // Output projection.
  Tensor out = matmul(ctx.reshaped(Shape{batch * seq, model}), wo);
  return out.reshaped(Shape{batch, seq, model});
}

}  // namespace duet::kernels
