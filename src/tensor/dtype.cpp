#include "tensor/dtype.hpp"

#include "common/error.hpp"

namespace duet {

size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return 4;
    case DType::kInt32:
      return 4;
    case DType::kInt64:
      return 8;
    case DType::kUInt8:
      return 1;
  }
  DUET_THROW("unknown dtype");
}

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kInt32:
      return "int32";
    case DType::kInt64:
      return "int64";
    case DType::kUInt8:
      return "uint8";
  }
  return "?";
}

}  // namespace duet
