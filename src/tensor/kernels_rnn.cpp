#include <cmath>
#include <cstring>

#include "tensor/kernels.hpp"

namespace duet::kernels {
namespace {

float sigmoid_f(float v) { return 1.0f / (1.0f + std::exp(-v)); }

// Extracts timestep `t` of x:[batch, seq, input] as [batch, input].
Tensor timestep(const Tensor& x, int64_t t) {
  const int64_t batch = x.shape().dim(0);
  const int64_t seq = x.shape().dim(1);
  const int64_t input = x.shape().dim(2);
  DUET_CHECK_LT(t, seq);
  Tensor out(Shape{batch, input});
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t b = 0; b < batch; ++b) {
    std::memcpy(po + b * input, px + (b * seq + t) * input,
                sizeof(float) * static_cast<size_t>(input));
  }
  return out;
}

}  // namespace

LstmState lstm_cell(const Tensor& x, const LstmState& state, const Tensor& w_ih,
                    const Tensor& w_hh, const Tensor& bias) {
  const int64_t batch = x.shape().dim(0);
  const int64_t hidden = state.h.shape().dim(1);
  DUET_CHECK_EQ(w_ih.shape().dim(1), 4 * hidden) << "w_ih gate width";
  DUET_CHECK_EQ(w_hh.shape().dim(0), hidden);
  DUET_CHECK_EQ(w_hh.shape().dim(1), 4 * hidden);

  // gates = x*W_ih + h*W_hh + b : [batch, 4*hidden]
  Tensor gates = add(matmul(x, w_ih), matmul(state.h, w_hh));
  if (bias.defined()) gates = bias_add(gates, bias);

  LstmState next{Tensor(Shape{batch, hidden}), Tensor(Shape{batch, hidden})};
  const float* pg = gates.data<float>();
  const float* pc = state.c.data<float>();
  float* ph = next.h.data<float>();
  float* pcn = next.c.data<float>();
  for (int64_t b = 0; b < batch; ++b) {
    const float* g = pg + b * 4 * hidden;
    for (int64_t j = 0; j < hidden; ++j) {
      const float i_g = sigmoid_f(g[j]);
      const float f_g = sigmoid_f(g[hidden + j]);
      const float g_g = std::tanh(g[2 * hidden + j]);
      const float o_g = sigmoid_f(g[3 * hidden + j]);
      const float c_new = f_g * pc[b * hidden + j] + i_g * g_g;
      pcn[b * hidden + j] = c_new;
      ph[b * hidden + j] = o_g * std::tanh(c_new);
    }
  }
  return next;
}

Tensor lstm(const Tensor& x, const Tensor& w_ih, const Tensor& w_hh,
            const Tensor& bias, LstmState* final) {
  DUET_CHECK_EQ(x.shape().rank(), 3u) << "lstm input must be [batch, seq, input]";
  const int64_t batch = x.shape().dim(0);
  const int64_t seq = x.shape().dim(1);
  const int64_t hidden = w_hh.shape().dim(0);

  LstmState state{Tensor::zeros(Shape{batch, hidden}),
                  Tensor::zeros(Shape{batch, hidden})};
  Tensor out(Shape{batch, seq, hidden});
  float* po = out.data<float>();
  for (int64_t t = 0; t < seq; ++t) {
    state = lstm_cell(timestep(x, t), state, w_ih, w_hh, bias);
    const float* ph = state.h.data<float>();
    for (int64_t b = 0; b < batch; ++b) {
      std::memcpy(po + (b * seq + t) * hidden, ph + b * hidden,
                  sizeof(float) * static_cast<size_t>(hidden));
    }
  }
  if (final != nullptr) *final = state;
  return out;
}

Tensor gru_cell(const Tensor& x, const Tensor& h, const Tensor& w_ih,
                const Tensor& w_hh, const Tensor& bias) {
  const int64_t batch = x.shape().dim(0);
  const int64_t hidden = h.shape().dim(1);
  DUET_CHECK_EQ(w_ih.shape().dim(1), 3 * hidden);
  DUET_CHECK_EQ(w_hh.shape().dim(1), 3 * hidden);

  Tensor gi = matmul(x, w_ih);  // [batch, 3*hidden]
  Tensor gh = matmul(h, w_hh);
  if (bias.defined()) gi = bias_add(gi, bias);

  Tensor out(Shape{batch, hidden});
  const float* pgi = gi.data<float>();
  const float* pgh = gh.data<float>();
  const float* ph = h.data<float>();
  float* po = out.data<float>();
  for (int64_t b = 0; b < batch; ++b) {
    const float* gi_b = pgi + b * 3 * hidden;
    const float* gh_b = pgh + b * 3 * hidden;
    for (int64_t j = 0; j < hidden; ++j) {
      const float r = sigmoid_f(gi_b[j] + gh_b[j]);
      const float z = sigmoid_f(gi_b[hidden + j] + gh_b[hidden + j]);
      const float n = std::tanh(gi_b[2 * hidden + j] + r * gh_b[2 * hidden + j]);
      po[b * hidden + j] = (1.0f - z) * n + z * ph[b * hidden + j];
    }
  }
  return out;
}

Tensor gru(const Tensor& x, const Tensor& w_ih, const Tensor& w_hh,
           const Tensor& bias) {
  DUET_CHECK_EQ(x.shape().rank(), 3u);
  const int64_t batch = x.shape().dim(0);
  const int64_t seq = x.shape().dim(1);
  const int64_t hidden = w_hh.shape().dim(0);
  Tensor h = Tensor::zeros(Shape{batch, hidden});
  Tensor out(Shape{batch, seq, hidden});
  float* po = out.data<float>();
  for (int64_t t = 0; t < seq; ++t) {
    h = gru_cell(timestep(x, t), h, w_ih, w_hh, bias);
    const float* ph = h.data<float>();
    for (int64_t b = 0; b < batch; ++b) {
      std::memcpy(po + (b * seq + t) * hidden, ph + b * hidden,
                  sizeof(float) * static_cast<size_t>(hidden));
    }
  }
  return out;
}

Tensor embedding(const Tensor& indices, const Tensor& table) {
  DUET_CHECK_EQ(indices.shape().rank(), 2u) << "indices must be [batch, seq]";
  DUET_CHECK_EQ(table.shape().rank(), 2u);
  DUET_CHECK(indices.dtype() == DType::kInt32) << "indices must be int32";
  const int64_t batch = indices.shape().dim(0);
  const int64_t seq = indices.shape().dim(1);
  const int64_t vocab = table.shape().dim(0);
  const int64_t dim = table.shape().dim(1);
  Tensor out(Shape{batch, seq, dim});
  const int32_t* pi = indices.data<int32_t>();
  const float* pt = table.data<float>();
  float* po = out.data<float>();
  for (int64_t i = 0; i < batch * seq; ++i) {
    const int64_t row = pi[i];
    DUET_CHECK(row >= 0 && row < vocab) << "embedding index out of range: " << row;
    std::memcpy(po + i * dim, pt + row * dim, sizeof(float) * static_cast<size_t>(dim));
  }
  return out;
}

}  // namespace duet::kernels
