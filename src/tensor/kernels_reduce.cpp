#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.hpp"

namespace duet::kernels {
namespace {

// Decomposes a shape around `axis` into (outer, axis_len, inner) so a
// reduction can walk src[o * axis_len * inner + a * inner + i].
struct AxisView {
  int64_t outer = 1;
  int64_t len = 1;
  int64_t inner = 1;
};

AxisView axis_view(const Shape& shape, int axis) {
  DUET_CHECK(axis >= 0 && static_cast<size_t>(axis) < shape.rank())
      << "reduce axis " << axis << " out of range for " << shape.to_string();
  AxisView v;
  for (size_t i = 0; i < shape.rank(); ++i) {
    if (static_cast<int>(i) < axis) {
      v.outer *= shape.dim(i);
    } else if (static_cast<int>(i) == axis) {
      v.len = shape.dim(i);
    } else {
      v.inner *= shape.dim(i);
    }
  }
  return v;
}

Shape drop_axis(const Shape& shape, int axis) {
  std::vector<int64_t> dims;
  for (size_t i = 0; i < shape.rank(); ++i) {
    if (static_cast<int>(i) != axis) dims.push_back(shape.dim(i));
  }
  if (dims.empty()) dims.push_back(1);
  return Shape(std::move(dims));
}

template <typename Init, typename Fold, typename Finish>
Tensor reduce_impl(const Tensor& x, int axis, Init init, Fold fold, Finish fin) {
  const AxisView v = axis_view(x.shape(), axis);
  Tensor out(drop_axis(x.shape(), axis));
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t o = 0; o < v.outer; ++o) {
    for (int64_t i = 0; i < v.inner; ++i) {
      float acc = init();
      for (int64_t a = 0; a < v.len; ++a) {
        acc = fold(acc, px[(o * v.len + a) * v.inner + i]);
      }
      po[o * v.inner + i] = fin(acc, v.len);
    }
  }
  return out;
}

}  // namespace

Tensor softmax_lastdim(const Tensor& x) {
  DUET_CHECK_GE(x.shape().rank(), 1u);
  const int64_t features = x.shape().dim(x.shape().rank() - 1);
  const int64_t rows = x.numel() / features;
  Tensor out(x.shape());
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = px + r * features;
    float* dst = po + r * features;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t i = 0; i < features; ++i) mx = std::max(mx, src[i]);
    float sum = 0.0f;
    for (int64_t i = 0; i < features; ++i) {
      dst[i] = std::exp(src[i] - mx);
      sum += dst[i];
    }
    const float inv = 1.0f / sum;
    for (int64_t i = 0; i < features; ++i) dst[i] *= inv;
  }
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  const int64_t features = x.shape().dim(x.shape().rank() - 1);
  DUET_CHECK_EQ(gamma.shape().dim(0), features);
  DUET_CHECK_EQ(beta.shape().dim(0), features);
  const int64_t rows = x.numel() / features;
  Tensor out(x.shape());
  const float* px = x.data<float>();
  const float* pg = gamma.data<float>();
  const float* pb = beta.data<float>();
  float* po = out.data<float>();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = px + r * features;
    float* dst = po + r * features;
    float mean = 0.0f;
    for (int64_t i = 0; i < features; ++i) mean += src[i];
    mean /= static_cast<float>(features);
    float var = 0.0f;
    for (int64_t i = 0; i < features; ++i) {
      const float d = src[i] - mean;
      var += d * d;
    }
    var /= static_cast<float>(features);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (int64_t i = 0; i < features; ++i) {
      dst[i] = (src[i] - mean) * inv * pg[i] + pb[i];
    }
  }
  return out;
}

Tensor reduce_sum(const Tensor& x, int axis) {
  return reduce_impl(
      x, axis, [] { return 0.0f; }, [](float a, float v) { return a + v; },
      [](float a, int64_t) { return a; });
}

Tensor reduce_mean(const Tensor& x, int axis) {
  return reduce_impl(
      x, axis, [] { return 0.0f; }, [](float a, float v) { return a + v; },
      [](float a, int64_t n) { return a / static_cast<float>(n); });
}

Tensor reduce_max(const Tensor& x, int axis) {
  return reduce_impl(
      x, axis, [] { return -std::numeric_limits<float>::infinity(); },
      [](float a, float v) { return std::max(a, v); },
      [](float a, int64_t) { return a; });
}

Tensor argmax_lastdim(const Tensor& x) {
  const int64_t features = x.shape().dim(x.shape().rank() - 1);
  const int64_t rows = x.numel() / features;
  Shape out_shape = drop_axis(x.shape(), static_cast<int>(x.shape().rank()) - 1);
  Tensor out(out_shape, DType::kInt32);
  const float* px = x.data<float>();
  int32_t* po = out.data<int32_t>();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = px + r * features;
    int64_t best = 0;
    for (int64_t i = 1; i < features; ++i) {
      if (src[i] > src[best]) best = i;
    }
    po[r] = static_cast<int32_t>(best);
  }
  return out;
}

}  // namespace duet::kernels
