#include "tensor/shape.hpp"

#include <sstream>

#include "common/error.hpp"

namespace duet {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) DUET_CHECK_GE(d, 0) << "negative dimension";
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) DUET_CHECK_GE(d, 0) << "negative dimension";
}

int64_t Shape::dim(size_t i) const {
  DUET_CHECK_LT(i, dims_.size()) << "shape dim out of range";
  return dims_[i];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    // Dims are non-negative by construction, so the only failure mode is
    // positive overflow — and a wrapped element count would silently
    // under-size every buffer computed from it downstream.
    DUET_CHECK(!__builtin_mul_overflow(n, d, &n))
        << "numel overflows int64 for shape " << to_string();
  }
  return n;
}

Shape Shape::with_dim(size_t i, int64_t value) const {
  DUET_CHECK_LT(i, dims_.size());
  std::vector<int64_t> d = dims_;
  d[i] = value;
  return Shape(std::move(d));
}

Shape Shape::append(int64_t value) const {
  std::vector<int64_t> d = dims_;
  d.push_back(value);
  return Shape(std::move(d));
}

Shape Shape::prepend(int64_t value) const {
  std::vector<int64_t> d;
  d.reserve(dims_.size() + 1);
  d.push_back(value);
  d.insert(d.end(), dims_.begin(), dims_.end());
  return Shape(std::move(d));
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace duet
