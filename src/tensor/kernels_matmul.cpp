#include <algorithm>
#include <cstring>

#include "common/threadpool.hpp"
#include "tensor/kernels.hpp"

namespace duet::kernels {
namespace {

// Blocked GEMM: C[M,N] += A[M,K] * B[K,N]. i-k-j loop order keeps the B row
// streaming through cache and lets the compiler vectorize the j loop.
// Blocking over K and N bounds the working set to L1/L2-friendly tiles.
// A gemm below this many multiply-accumulates keeps its row loop serial;
// batch_matmul instead parallelizes across batch elements.
constexpr int64_t kParallelFlopThreshold = 64LL << 10;

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  constexpr int64_t kBlockK = 256;
  constexpr int64_t kBlockN = 512;
  std::memset(c, 0, sizeof(float) * static_cast<size_t>(m * n));
  const auto row_job = [&](size_t i_sz) {
    const int64_t i = static_cast<int64_t>(i_sz);
    float* crow = c + i * n;
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, k);
      for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
        const int64_t n1 = std::min(n0 + kBlockN, n);
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = a[i * k + kk];
          const float* brow = b + kk * n;
          for (int64_t j = n0; j < n1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  };
  // Rows are independent; parallelize when the matrix is worth it.
  if (m * k * n >= kParallelFlopThreshold) {
    global_thread_pool().parallel_for(static_cast<size_t>(m), row_job);
  } else {
    for (int64_t i = 0; i < m; ++i) row_job(static_cast<size_t>(i));
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  DUET_CHECK_EQ(a.shape().rank(), 2u) << "matmul lhs must be rank 2";
  DUET_CHECK_EQ(b.shape().rank(), 2u) << "matmul rhs must be rank 2";
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  DUET_CHECK_EQ(b.shape().dim(0), k) << "matmul inner dim mismatch";
  const int64_t n = b.shape().dim(1);
  Tensor out(Shape{m, n});
  gemm(a.data<float>(), b.data<float>(), out.data<float>(), m, k, n);
  return out;
}

Tensor batch_matmul(const Tensor& a, const Tensor& b) {
  DUET_CHECK_EQ(a.shape().rank(), 3u) << "batch_matmul lhs must be rank 3";
  const int64_t batch = a.shape().dim(0);
  const int64_t m = a.shape().dim(1);
  const int64_t k = a.shape().dim(2);
  int64_t n = 0;
  bool shared_rhs = false;
  if (b.shape().rank() == 2) {
    DUET_CHECK_EQ(b.shape().dim(0), k);
    n = b.shape().dim(1);
    shared_rhs = true;
  } else {
    DUET_CHECK_EQ(b.shape().rank(), 3u);
    DUET_CHECK_EQ(b.shape().dim(0), batch);
    DUET_CHECK_EQ(b.shape().dim(1), k);
    n = b.shape().dim(2);
  }
  Tensor out(Shape{batch, m, n});
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  const auto batch_job = [&](size_t bi_sz) {
    const int64_t bi = static_cast<int64_t>(bi_sz);
    const float* bptr = shared_rhs ? pb : pb + bi * k * n;
    gemm(pa + bi * m * k, bptr, po + bi * m * n, m, k, n);
  };
  // The RNN-shaped case: many small per-step GEMMs, each below gemm's own
  // row-parallelism threshold. The batch slices are disjoint, so fan the
  // outer loop out instead (grain 2: even a handful of batches is worth a
  // dispatch when the whole op clears the flop threshold). When a per-batch
  // gemm is large enough to parallelize its rows itself, the outer loop
  // stays serial — nesting would just shred the row chunks.
  const bool inner_parallel = m * k * n >= kParallelFlopThreshold;
  if (!inner_parallel && batch > 1 && batch * m * k * n >= kParallelFlopThreshold) {
    global_thread_pool().parallel_for(static_cast<size_t>(batch), batch_job, 2);
  } else {
    for (int64_t bi = 0; bi < batch; ++bi) batch_job(static_cast<size_t>(bi));
  }
  return out;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  Tensor y = matmul(x, w);
  if (b.defined()) y = bias_add(y, b);
  return y;
}

}  // namespace duet::kernels
