#include <cmath>

#include "tensor/kernels.hpp"

namespace duet::kernels {
namespace {

// Shared skeleton for binary elementwise kernels with identical shapes.
template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F&& f) {
  DUET_CHECK(a.shape() == b.shape())
      << "elementwise shape mismatch: " << a.shape().to_string() << " vs "
      << b.shape().to_string();
  Tensor out(a.shape());
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float* po = out.data<float>();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& x, F&& f) {
  Tensor out(x.shape());
  const float* px = x.data<float>();
  float* po = out.data<float>();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(px[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor relu(const Tensor& x) {
  return unary_op(x, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor sigmoid(const Tensor& x) {
  return unary_op(x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor tanh_op(const Tensor& x) {
  return unary_op(x, [](float v) { return std::tanh(v); });
}

Tensor gelu(const Tensor& x) {
  // tanh approximation (as used by BERT-family models).
  return unary_op(x, [](float v) {
    const float c = 0.7978845608f;  // sqrt(2/pi)
    return 0.5f * v * (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
  });
}

Tensor add_scalar(const Tensor& x, float s) {
  return unary_op(x, [s](float v) { return v + s; });
}

Tensor mul_scalar(const Tensor& x, float s) {
  return unary_op(x, [s](float v) { return v * s; });
}

Tensor bias_add(const Tensor& x, const Tensor& bias) {
  DUET_CHECK_GE(x.shape().rank(), 1u);
  DUET_CHECK_EQ(bias.shape().rank(), 1u);
  const int64_t features = x.shape().dim(x.shape().rank() - 1);
  DUET_CHECK_EQ(bias.shape().dim(0), features) << "bias width mismatch";
  Tensor out(x.shape());
  const float* px = x.data<float>();
  const float* pb = bias.data<float>();
  float* po = out.data<float>();
  const int64_t rows = x.numel() / features;
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = px + r * features;
    float* dst = po + r * features;
    for (int64_t c = 0; c < features; ++c) dst[c] = src[c] + pb[c];
  }
  return out;
}

}  // namespace duet::kernels
