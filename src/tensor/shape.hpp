#pragma once

// Dense row-major tensor shape. Ranks in DNN graphs are tiny (<= 5), so the
// dims live in an inline-friendly std::vector<int64_t>; copying Shapes is
// cheap enough for IR use.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace duet {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  size_t rank() const { return dims_.size(); }
  int64_t dim(size_t i) const;
  int64_t operator[](size_t i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all dims (1 for a scalar / rank-0 shape).
  int64_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // Returns a copy with dimension `i` replaced.
  Shape with_dim(size_t i, int64_t value) const;
  // Appends / prepends a dimension.
  Shape append(int64_t value) const;
  Shape prepend(int64_t value) const;

  // "[2, 3, 4]"
  std::string to_string() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace duet
