#pragma once

// Element types supported by the tensor substrate. DNN inference in this
// reproduction is float32 end-to-end; int32/int64 exist for embedding /
// lookup indices, mirroring what the paper's workloads need.

#include <cstddef>
#include <cstdint>
#include <string>

namespace duet {

enum class DType : uint8_t { kFloat32, kInt32, kInt64, kUInt8 };

size_t dtype_size(DType dtype);
const char* dtype_name(DType dtype);

template <typename T>
constexpr DType dtype_of();

template <>
constexpr DType dtype_of<float>() {
  return DType::kFloat32;
}
template <>
constexpr DType dtype_of<int32_t>() {
  return DType::kInt32;
}
template <>
constexpr DType dtype_of<int64_t>() {
  return DType::kInt64;
}
template <>
constexpr DType dtype_of<uint8_t>() {
  return DType::kUInt8;
}

}  // namespace duet
