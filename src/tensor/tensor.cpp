#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace duet {

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)),
      dtype_(dtype),
      buffer_(std::make_shared<std::vector<uint8_t>>(
          static_cast<size_t>(shape_.numel()) * dtype_size(dtype))) {}

Tensor Tensor::view(std::shared_ptr<std::vector<uint8_t>> buffer,
                    size_t offset, Shape shape, DType dtype) {
  DUET_CHECK(buffer != nullptr) << "view of a null buffer";
  Tensor out;
  out.shape_ = std::move(shape);
  out.dtype_ = dtype;
  DUET_CHECK(offset + out.byte_size() <= buffer->size())
      << "view of " << out.byte_size() << " bytes at offset " << offset
      << " exceeds buffer of " << buffer->size();
  out.buffer_ = std::move(buffer);
  out.offset_ = offset;
  return out;
}

Tensor Tensor::clone() const {
  DUET_CHECK(defined());
  Tensor out(shape_, dtype_);
  if (byte_size() > 0) std::memcpy(out.buffer_->data(), raw_data(), byte_size());
  return out;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DUET_CHECK(defined());
  DUET_CHECK_EQ(new_shape.numel(), shape_.numel()) << "reshape numel mismatch";
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.dtype_ = dtype_;
  out.buffer_ = buffer_;
  out.offset_ = offset_;
  return out;
}

Tensor Tensor::concat0(const std::vector<Tensor>& parts) {
  DUET_CHECK(!parts.empty()) << "concat0 of zero tensors";
  const Tensor& first = parts.front();
  DUET_CHECK(first.defined());
  DUET_CHECK_GE(first.shape().rank(), 1u) << "concat0 needs rank >= 1";

  int64_t rows = 0;
  for (const Tensor& t : parts) {
    DUET_CHECK(t.defined());
    DUET_CHECK(t.dtype() == first.dtype()) << "concat0 dtype mismatch";
    DUET_CHECK_EQ(t.shape().rank(), first.shape().rank())
        << "concat0 rank mismatch";
    for (size_t d = 1; d < first.shape().rank(); ++d) {
      DUET_CHECK_EQ(t.shape()[d], first.shape()[d])
          << "concat0 trailing-dim mismatch at dim " << d;
    }
    rows += t.shape()[0];
  }

  Tensor out(first.shape().with_dim(0, rows), first.dtype());
  uint8_t* dst = static_cast<uint8_t*>(out.raw_data());
  for (const Tensor& t : parts) {
    if (t.byte_size() > 0) {
      std::memcpy(dst, t.raw_data(), t.byte_size());
      dst += t.byte_size();
    }
  }
  return out;
}

Tensor Tensor::slice0(int64_t lo, int64_t count) const {
  DUET_CHECK(defined());
  DUET_CHECK_GE(shape_.rank(), 1u) << "slice0 needs rank >= 1";
  DUET_CHECK_GE(lo, 0);
  DUET_CHECK_GE(count, 0);
  DUET_CHECK_LE(lo + count, shape_[0]) << "slice0 out of range";

  Tensor out(shape_.with_dim(0, count), dtype_);
  const size_t row_bytes =
      shape_[0] > 0 ? byte_size() / static_cast<size_t>(shape_[0]) : 0;
  if (out.byte_size() > 0) {
    std::memcpy(out.raw_data(),
                static_cast<const uint8_t*>(raw_data()) +
                    static_cast<size_t>(lo) * row_bytes,
                out.byte_size());
  }
  return out;
}

Tensor Tensor::zeros(Shape shape, DType dtype) {
  Tensor t(std::move(shape), dtype);
  if (t.byte_size() > 0) std::memset(t.raw_data(), 0, t.byte_size());
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape), DType::kFloat32);
  float* p = t.data<float>();
  std::fill(p, p + t.numel(), value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape), DType::kFloat32);
  float* p = t.data<float>();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t(Shape{n}, DType::kFloat32);
  float* p = t.data<float>();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  DUET_CHECK_EQ(shape.numel(), static_cast<int64_t>(values.size()));
  Tensor t(std::move(shape), DType::kFloat32);
  if (!values.empty()) {
    std::memcpy(t.raw_data(), values.data(), values.size() * sizeof(float));
  }
  return t;
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  DUET_CHECK(a.defined() && b.defined());
  DUET_CHECK(a.shape() == b.shape())
      << a.shape().to_string() << " vs " << b.shape().to_string();
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

bool Tensor::allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.defined() || !b.defined()) return false;
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data<float>();
  const float* pb = b.data<float>();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace duet
