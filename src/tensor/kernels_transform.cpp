#include <cstring>

#include "tensor/kernels.hpp"

namespace duet::kernels {

Tensor concat(const std::vector<Tensor>& parts, int axis) {
  DUET_CHECK(!parts.empty()) << "concat of zero tensors";
  const Shape& first = parts[0].shape();
  DUET_CHECK(axis >= 0 && static_cast<size_t>(axis) < first.rank())
      << "concat axis out of range";

  int64_t axis_total = 0;
  for (const Tensor& t : parts) {
    DUET_CHECK_EQ(t.shape().rank(), first.rank());
    for (size_t i = 0; i < first.rank(); ++i) {
      if (static_cast<int>(i) == axis) continue;
      DUET_CHECK_EQ(t.shape().dim(i), first.dim(i)) << "concat non-axis dim mismatch";
    }
    axis_total += t.shape().dim(static_cast<size_t>(axis));
  }

  Shape out_shape = first.with_dim(static_cast<size_t>(axis), axis_total);
  Tensor out(out_shape);

  // Walk [outer][axis][inner]: copy each part's contiguous (axis*inner) chunk
  // per outer index.
  int64_t outer = 1;
  int64_t inner = 1;
  for (size_t i = 0; i < first.rank(); ++i) {
    if (static_cast<int>(i) < axis) outer *= first.dim(i);
    if (static_cast<int>(i) > axis) inner *= first.dim(i);
  }

  float* po = out.data<float>();
  const int64_t out_stride = axis_total * inner;
  int64_t axis_offset = 0;
  for (const Tensor& t : parts) {
    const int64_t part_axis = t.shape().dim(static_cast<size_t>(axis));
    const int64_t chunk = part_axis * inner;
    const float* pt = t.data<float>();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + o * out_stride + axis_offset * inner, pt + o * chunk,
                  sizeof(float) * static_cast<size_t>(chunk));
    }
    axis_offset += part_axis;
  }
  return out;
}

std::vector<Tensor> split(const Tensor& x, int axis, int pieces) {
  DUET_CHECK_GT(pieces, 0);
  const int64_t axis_len = x.shape().dim(static_cast<size_t>(axis));
  DUET_CHECK_EQ(axis_len % pieces, 0) << "split must divide axis evenly";
  const int64_t piece_len = axis_len / pieces;

  int64_t outer = 1;
  int64_t inner = 1;
  for (size_t i = 0; i < x.shape().rank(); ++i) {
    if (static_cast<int>(i) < axis) outer *= x.shape().dim(i);
    if (static_cast<int>(i) > axis) inner *= x.shape().dim(i);
  }

  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(pieces));
  const float* px = x.data<float>();
  const int64_t in_stride = axis_len * inner;
  for (int p = 0; p < pieces; ++p) {
    Tensor part(x.shape().with_dim(static_cast<size_t>(axis), piece_len));
    float* pp = part.data<float>();
    const int64_t chunk = piece_len * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(pp + o * chunk, px + o * in_stride + p * chunk,
                  sizeof(float) * static_cast<size_t>(chunk));
    }
    out.push_back(std::move(part));
  }
  return out;
}

Tensor transpose2d(const Tensor& x) {
  DUET_CHECK_EQ(x.shape().rank(), 2u);
  const int64_t m = x.shape().dim(0);
  const int64_t n = x.shape().dim(1);
  Tensor out(Shape{n, m});
  const float* px = x.data<float>();
  float* po = out.data<float>();
  // Simple tiled transpose to avoid fully strided writes.
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    for (int64_t j0 = 0; j0 < n; j0 += kTile) {
      const int64_t i1 = std::min(i0 + kTile, m);
      const int64_t j1 = std::min(j0 + kTile, n);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) {
          po[j * m + i] = px[i * n + j];
        }
      }
    }
  }
  return out;
}

Tensor transpose_last2(const Tensor& x) {
  DUET_CHECK_GE(x.shape().rank(), 2u);
  const size_t r = x.shape().rank();
  const int64_t m = x.shape().dim(r - 2);
  const int64_t n = x.shape().dim(r - 1);
  int64_t outer = x.numel() / (m * n);
  Shape out_shape = x.shape().with_dim(r - 2, n).with_dim(r - 1, m);
  Tensor out(out_shape);
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = px + o * m * n;
    float* dst = po + o * m * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) dst[j * m + i] = src[i * n + j];
    }
  }
  return out;
}

Tensor flatten(const Tensor& x) {
  DUET_CHECK_GE(x.shape().rank(), 1u);
  const int64_t batch = x.shape().dim(0);
  const int64_t rest = x.numel() / batch;
  return x.reshaped(Shape{batch, rest});
}

Tensor slice_rows(const Tensor& x, int64_t begin, int64_t end) {
  DUET_CHECK_GE(x.shape().rank(), 1u);
  const int64_t rows = x.shape().dim(0);
  DUET_CHECK(begin >= 0 && begin < end && end <= rows)
      << "slice [" << begin << ", " << end << ") of " << rows << " rows";
  const int64_t inner = x.numel() / rows;
  Tensor out(x.shape().with_dim(0, end - begin));
  std::memcpy(out.data<float>(), x.data<float>() + begin * inner,
              sizeof(float) * static_cast<size_t>((end - begin) * inner));
  return out;
}

}  // namespace duet::kernels
