#include <algorithm>
#include <limits>

#include "common/threadpool.hpp"
#include "tensor/kernels.hpp"

namespace duet::kernels {
namespace {

int64_t conv_out_dim(int64_t in, int64_t kernel, int64_t stride, int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, int stride,
              int padding) {
  // Heuristic mirror of real backends: once the per-output reduction
  // (C * kh * kw) is long enough, the GEMM formulation's cache blocking wins
  // over the direct loop nest despite the im2col materialization.
  const int64_t reduction = w.shape().numel() / w.shape().dim(0);
  if (reduction >= 64) return conv2d_im2col(x, w, bias, stride, padding);
  return conv2d_direct(x, w, bias, stride, padding);
}

Tensor conv2d_direct(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int padding) {
  DUET_CHECK_EQ(x.shape().rank(), 4u) << "conv2d input must be NCHW";
  DUET_CHECK_EQ(w.shape().rank(), 4u) << "conv2d weight must be OIHW";
  DUET_CHECK_GE(stride, 1);
  DUET_CHECK_GE(padding, 0);
  const int64_t n = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t wd = x.shape().dim(3);
  const int64_t oc = w.shape().dim(0);
  DUET_CHECK_EQ(w.shape().dim(1), c) << "conv2d channel mismatch";
  const int64_t kh = w.shape().dim(2);
  const int64_t kw = w.shape().dim(3);
  const int64_t oh = conv_out_dim(h, kh, stride, padding);
  const int64_t ow = conv_out_dim(wd, kw, stride, padding);
  DUET_CHECK_GT(oh, 0);
  DUET_CHECK_GT(ow, 0);
  if (bias.defined()) DUET_CHECK_EQ(bias.shape().dim(0), oc);

  Tensor out(Shape{n, oc, oh, ow});
  const float* px = x.data<float>();
  const float* pw = w.data<float>();
  const float* pb = bias.defined() ? bias.data<float>() : nullptr;
  float* po = out.data<float>();

  // Direct convolution, parallelized over (image, output channel) pairs;
  // the hot inner loops stay contiguous over kw and ow.
  const auto job = [&](size_t idx) {
    const int64_t ni = static_cast<int64_t>(idx) / oc;
    const int64_t o = static_cast<int64_t>(idx) % oc;
    const float* img = px + ni * c * h * wd;
    const float* ker = pw + o * c * kh * kw;
    float* dst = po + (ni * oc + o) * oh * ow;
    const float b0 = pb ? pb[o] : 0.0f;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t xo = 0; xo < ow; ++xo) {
        float acc = b0;
        const int64_t iy0 = y * stride - padding;
        const int64_t ix0 = xo * stride - padding;
        for (int64_t ci = 0; ci < c; ++ci) {
          const float* plane = img + ci * h * wd;
          const float* kplane = ker + ci * kh * kw;
          for (int64_t ky = 0; ky < kh; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const float* row = plane + iy * wd;
            const float* krow = kplane + ky * kw;
            for (int64_t kx = 0; kx < kw; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= wd) continue;
              acc += row[ix] * krow[kx];
            }
          }
        }
        dst[y * ow + xo] = acc;
      }
    }
  };
  global_thread_pool().parallel_for(static_cast<size_t>(n * oc), job);
  return out;
}

Tensor conv2d_im2col(const Tensor& x, const Tensor& w, const Tensor& bias,
                     int stride, int padding) {
  DUET_CHECK_EQ(x.shape().rank(), 4u) << "conv2d input must be NCHW";
  DUET_CHECK_EQ(w.shape().rank(), 4u) << "conv2d weight must be OIHW";
  const int64_t n = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t wd = x.shape().dim(3);
  const int64_t oc = w.shape().dim(0);
  DUET_CHECK_EQ(w.shape().dim(1), c) << "conv2d channel mismatch";
  const int64_t kh = w.shape().dim(2);
  const int64_t kw = w.shape().dim(3);
  const int64_t oh = conv_out_dim(h, kh, stride, padding);
  const int64_t ow = conv_out_dim(wd, kw, stride, padding);
  DUET_CHECK(oh > 0 && ow > 0) << "conv2d output collapsed";
  if (bias.defined()) DUET_CHECK_EQ(bias.shape().dim(0), oc);

  const int64_t patch = c * kh * kw;  // reduction length
  Tensor out(Shape{n, oc, oh, ow});
  const float* pw = w.data<float>();
  const float* pb = bias.defined() ? bias.data<float>() : nullptr;

  // Per image: scatter input windows into the [oh*ow, patch] patch matrix,
  // multiply against the [patch, oc] weight view, transpose into NCHW.
  Tensor patches(Shape{oh * ow, patch});
  // Weight reshaped to [patch, oc] once (transposed view of [oc, patch]).
  Tensor wt(Shape{patch, oc});
  {
    float* pwt = wt.data<float>();
    for (int64_t o = 0; o < oc; ++o) {
      for (int64_t p = 0; p < patch; ++p) pwt[p * oc + o] = pw[o * patch + p];
    }
  }

  for (int64_t ni = 0; ni < n; ++ni) {
    const float* img = x.data<float>() + ni * c * h * wd;
    float* pp = patches.data<float>();
    const auto fill_row = [&](size_t row_sz) {
      const int64_t row = static_cast<int64_t>(row_sz);
      const int64_t y = row / ow;
      const int64_t xo = row % ow;
      float* dst = pp + row * patch;
      const int64_t iy0 = y * stride - padding;
      const int64_t ix0 = xo * stride - padding;
      int64_t idx = 0;
      for (int64_t ci = 0; ci < c; ++ci) {
        const float* plane = img + ci * h * wd;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = iy0 + ky;
          for (int64_t kx = 0; kx < kw; ++kx, ++idx) {
            const int64_t ix = ix0 + kx;
            dst[idx] = (iy < 0 || iy >= h || ix < 0 || ix >= wd)
                           ? 0.0f
                           : plane[iy * wd + ix];
          }
        }
      }
    };
    global_thread_pool().parallel_for(static_cast<size_t>(oh * ow), fill_row);

    // [oh*ow, patch] x [patch, oc] = [oh*ow, oc]
    const Tensor gemm_out = matmul(patches, wt);
    const float* pg = gemm_out.data<float>();
    float* po = out.data<float>() + ni * oc * oh * ow;
    for (int64_t o = 0; o < oc; ++o) {
      const float b0 = pb ? pb[o] : 0.0f;
      float* dst = po + o * oh * ow;
      for (int64_t i = 0; i < oh * ow; ++i) dst[i] = pg[i * oc + o] + b0;
    }
  }
  return out;
}

Tensor max_pool2d(const Tensor& x, int kernel, int stride, int padding) {
  DUET_CHECK_EQ(x.shape().rank(), 4u);
  const int64_t n = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t w = x.shape().dim(3);
  const int64_t oh = conv_out_dim(h, kernel, stride, padding);
  const int64_t ow = conv_out_dim(w, kernel, stride, padding);
  Tensor out(Shape{n, c, oh, ow});
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t plane = 0; plane < n * c; ++plane) {
    const float* src = px + plane * h * w;
    float* dst = po + plane * oh * ow;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t xo = 0; xo < ow; ++xo) {
        float best = -std::numeric_limits<float>::infinity();
        for (int64_t ky = 0; ky < kernel; ++ky) {
          const int64_t iy = y * stride - padding + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < kernel; ++kx) {
            const int64_t ix = xo * stride - padding + kx;
            if (ix < 0 || ix >= w) continue;
            best = std::max(best, src[iy * w + ix]);
          }
        }
        dst[y * ow + xo] = best;
      }
    }
  }
  return out;
}

Tensor avg_pool2d(const Tensor& x, int kernel, int stride, int padding) {
  DUET_CHECK_EQ(x.shape().rank(), 4u);
  const int64_t n = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t w = x.shape().dim(3);
  const int64_t oh = conv_out_dim(h, kernel, stride, padding);
  const int64_t ow = conv_out_dim(w, kernel, stride, padding);
  Tensor out(Shape{n, c, oh, ow});
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t plane = 0; plane < n * c; ++plane) {
    const float* src = px + plane * h * w;
    float* dst = po + plane * oh * ow;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t xo = 0; xo < ow; ++xo) {
        float acc = 0.0f;
        int64_t cnt = 0;
        for (int64_t ky = 0; ky < kernel; ++ky) {
          const int64_t iy = y * stride - padding + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < kernel; ++kx) {
            const int64_t ix = xo * stride - padding + kx;
            if (ix < 0 || ix >= w) continue;
            acc += src[iy * w + ix];
            ++cnt;
          }
        }
        dst[y * ow + xo] = cnt > 0 ? acc / static_cast<float>(cnt) : 0.0f;
      }
    }
  }
  return out;
}

Tensor global_avg_pool(const Tensor& x) {
  DUET_CHECK_EQ(x.shape().rank(), 4u);
  const int64_t n = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  Tensor out(Shape{n, c});
  const float* px = x.data<float>();
  float* po = out.data<float>();
  for (int64_t plane = 0; plane < n * c; ++plane) {
    const float* src = px + plane * hw;
    float acc = 0.0f;
    for (int64_t i = 0; i < hw; ++i) acc += src[i];
    po[plane] = acc / static_cast<float>(hw);
  }
  return out;
}

Tensor batch_norm(const Tensor& x, const Tensor& scale, const Tensor& shift) {
  DUET_CHECK_EQ(x.shape().rank(), 4u);
  const int64_t n = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  DUET_CHECK_EQ(scale.shape().dim(0), c);
  DUET_CHECK_EQ(shift.shape().dim(0), c);
  Tensor out(x.shape());
  const float* px = x.data<float>();
  const float* ps = scale.data<float>();
  const float* pf = shift.data<float>();
  float* po = out.data<float>();
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float s = ps[ci];
      const float f = pf[ci];
      const float* src = px + (ni * c + ci) * hw;
      float* dst = po + (ni * c + ci) * hw;
      for (int64_t i = 0; i < hw; ++i) dst[i] = src[i] * s + f;
    }
  }
  return out;
}

}  // namespace duet::kernels
