#include "duet/engine.hpp"

#include <sstream>

#include "analysis/lint/lint.hpp"
#include "analysis/plan_validator.hpp"
#include "analysis/race_checker.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "device/interconnect.hpp"
#include "duet/baseline.hpp"
#include "profile/profile_cache.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {

std::string DuetReport::to_string(const Graph& model,
                                  const Partition& partition) const {
  std::ostringstream os;
  os << "DUET report for \"" << model.name() << "\"\n";
  os << partition.to_string(model);
  os << "  schedule (" << schedule.placement.to_string() << ")\n";
  os << "  est hetero   " << human_time(est_hetero_s) << "\n";
  os << "  est TVM-CPU  " << human_time(est_single_cpu_s) << "\n";
  os << "  est TVM-GPU  " << human_time(est_single_gpu_s) << "\n";
  if (fell_back) {
    os << "  -> fell back to single-device execution on "
       << device_kind_name(fallback_device) << "\n";
  } else {
    os << "  -> heterogeneous execution selected\n";
  }
  return os.str();
}

DuetEngine::DuetEngine(Graph model, DuetOptions options)
    : model_(std::move(model)),
      options_(std::move(options)),
      devices_(make_default_device_pair(options_.seed)) {
  model_.validate();

  // Compiler-awareness requires the profiler to measure exactly the code
  // the plan will run: one compile configuration end to end.
  options_.profile.compile = options_.compile;

  // Engine-level pipeline spans: one per DUET step, nesting the finer spans
  // emitted inside the partitioner/profiler/scheduler/plan themselves.
  const bool telemetry_on = telemetry::enabled();
  telemetry::ScopedSpan pipeline_span(
      telemetry_on ? "duet-pipeline" : std::string(), "engine", model_.name());

  // (1) Coarse-grained phased partitioning.
  {
    telemetry::ScopedSpan span(telemetry_on ? "partition" : std::string(),
                               "engine", model_.name());
    partition_ = partition_phased(model_, options_.partition);
  }
  if (verification_enabled()) {
    verify_partition(model_, partition_)
        .throw_if_failed("partitioner produced an invalid partition of \"" +
                         model_.name() + "\"");
  }

  // (2) Compiler-aware profiling of every subgraph on both devices, served
  // through the content-addressed ProfileCache (optionally disk-backed).
  {
    telemetry::ScopedSpan span(telemetry_on ? "profile" : std::string(),
                               "engine", model_.name());
    if (!options_.profile_cache_dir.empty()) {
      ProfileCache::instance().open_disk(
          options_.profile_cache_dir + "/profile_cache.v1.txt",
          calibration_fingerprint(devices_));
    }
    Profiler profiler(devices_);
    report_.profiles =
        profiler.profile_partition(partition_, model_, options_.profile);
    if (!options_.profile_cache_dir.empty()) {
      ProfileCache::instance().flush();
    }
  }
  // Profiling consumes a data-dependent number of device noise draws — zero
  // when the ProfileCache is warm. Re-derive the devices (same calibration,
  // fresh seed-determined rng streams) so execution noise is identical
  // whether profiling ran or was served from the cache. The xor keeps the
  // execution stream distinct from the one profiling just sampled.
  devices_ = make_default_device_pair(options_.seed ^ 0x5EEDFACEull);

  // (3) Subgraph scheduling.
  LatencyEvaluator evaluator(partition_, model_, report_.profiles,
                             devices_.link->params());
  Rng sched_rng(options_.seed + 1000);
  SchedulingContext ctx;
  ctx.partition = &partition_;
  ctx.profiles = &report_.profiles;
  ctx.evaluator = &evaluator;
  ctx.rng = &sched_rng;
  {
    telemetry::ScopedSpan span(telemetry_on ? "schedule" : std::string(),
                               "engine", model_.name());
    std::unique_ptr<Scheduler> scheduler = make_scheduler(options_.scheduler);
    report_.schedule = scheduler->schedule(ctx);
  }
  report_.est_hetero_s = report_.schedule.est_latency_s;

  // (4) Fallback decision against the single-device baselines.
  {
    telemetry::ScopedSpan span(telemetry_on ? "baseline-estimate" : std::string(),
                               "engine", model_.name());
    Baseline cpu(model_, BaselineKind::kTvmCpu, devices_);
    Baseline gpu(model_, BaselineKind::kTvmGpu, devices_);
    report_.est_single_cpu_s = cpu.latency(false);
    report_.est_single_gpu_s = gpu.latency(false);
  }
  const double best_single =
      std::min(report_.est_single_cpu_s, report_.est_single_gpu_s);
  report_.fallback_device = report_.est_single_cpu_s <= report_.est_single_gpu_s
                                ? DeviceKind::kCpu
                                : DeviceKind::kGpu;
  if (options_.enable_fallback &&
      report_.est_hetero_s >= best_single * (1.0 - options_.fallback_margin)) {
    report_.fell_back = true;
    telemetry::counter("engine.fallbacks").add(1);
    report_.schedule.placement =
        Placement(partition_.subgraphs.size(), report_.fallback_device);
    report_.schedule.est_latency_s = best_single;
    // Fallback executes the unpartitioned single-device code, exactly like
    // the TVM baseline it is falling back to.
    fallback_ = std::make_unique<Baseline>(
        model_,
        report_.fallback_device == DeviceKind::kCpu ? BaselineKind::kTvmCpu
                                                    : BaselineKind::kTvmGpu,
        devices_);
  }

  // (5) Build the execution plan for the chosen placement. Checked mode
  // statically validates the scheduler's placement and the built plan (feeds,
  // deps, transfer schedule, step order) before anything executes.
  if (verification_enabled()) {
    verify_placement(report_.schedule.placement, partition_)
        .throw_if_failed("scheduler \"" + options_.scheduler +
                         "\" produced an invalid placement");
  }
  plan_ = ExecutionPlan::build(model_, partition_, report_.schedule.placement,
                               devices_, options_.compile);
  if (verification_enabled()) {
    verify_plan(plan_).throw_if_failed("execution plan for \"" + model_.name() +
                                       "\" is invalid");
    verify_races(plan_).throw_if_failed(
        "execution plan for \"" + model_.name() +
        "\" has conflicting accesses not ordered by happens-before");
    // Error-severity lint (boundary types, sync elision, ...); warnings do
    // not throw — `duet_cli lint` surfaces them.
    lint::LintSuite::standard().run(plan_).throw_if_failed(
        "execution plan for \"" + model_.name() + "\" fails lint");
  }
  executor_ = std::make_unique<SimExecutor>(devices_);

  DUET_LOG_INFO << "DUET ready: " << partition_.subgraphs.size() << " subgraphs, "
                << (report_.fell_back ? "single-device fallback"
                                      : "heterogeneous schedule")
                << ", est " << human_time(report_.schedule.est_latency_s);
}

ExecutionResult DuetEngine::infer(const std::map<NodeId, Tensor>& feeds,
                                  bool with_noise) {
  if (fallback_ != nullptr) {
    Baseline::Result br = fallback_->infer(feeds, with_noise);
    ExecutionResult r;
    r.outputs = std::move(br.outputs);
    r.latency_s = br.latency_s;
    r.timeline.add({TimelineEvent::Kind::kExec, 0, report_.fallback_device,
                    "fallback:" + model_.name(), 0.0, br.latency_s});
    return r;
  }
  return executor_->run(plan_, feeds, with_noise);
}

double DuetEngine::latency(bool with_noise) {
  if (fallback_ != nullptr) return fallback_->latency(with_noise);
  return executor_->run_latency_only(plan_, with_noise);
}

ExecutionResult DuetEngine::infer_threaded(const std::map<NodeId, Tensor>& feeds) {
  ThreadedExecutor threaded(devices_);
  return threaded.run(plan_, feeds);
}

ExecutionPlan DuetEngine::build_plan_for(const Placement& placement) const {
  if (verification_enabled()) {
    verify_placement(placement, partition_)
        .throw_if_failed("recalibrated placement for \"" + model_.name() +
                         "\" is invalid");
  }
  ExecutionPlan plan = ExecutionPlan::build(model_, partition_, placement,
                                            devices_, options_.compile);
  if (verification_enabled()) {
    verify_plan(plan).throw_if_failed("recalibrated plan for \"" +
                                      model_.name() + "\" is invalid");
    verify_races(plan).throw_if_failed(
        "recalibrated plan for \"" + model_.name() +
        "\" has conflicting accesses not ordered by happens-before");
    lint::LintSuite::standard().run(plan).throw_if_failed(
        "recalibrated plan for \"" + model_.name() + "\" fails lint");
  }
  return plan;
}

}  // namespace duet
