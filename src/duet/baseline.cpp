#include "duet/baseline.hpp"

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace duet {

const char* baseline_name(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kTvmCpu:
      return "TVM-CPU";
    case BaselineKind::kTvmGpu:
      return "TVM-GPU";
    case BaselineKind::kFrameworkCpu:
      return "Framework-CPU";
    case BaselineKind::kFrameworkGpu:
      return "Framework-GPU";
  }
  return "?";
}

DeviceKind baseline_device(BaselineKind kind) {
  return (kind == BaselineKind::kTvmCpu || kind == BaselineKind::kFrameworkCpu)
             ? DeviceKind::kCpu
             : DeviceKind::kGpu;
}

Baseline::Baseline(const Graph& model, BaselineKind kind, DevicePair& devices)
    : kind_(kind), devices_(devices) {
  const DeviceKind dev = baseline_device(kind);
  const bool framework = kind == BaselineKind::kFrameworkCpu ||
                         kind == BaselineKind::kFrameworkGpu;
  const CompileOptions options = framework ? CompileOptions::framework()
                                           : CompileOptions::compiler_defaults();
  compiled_ = compile_for_device(model, dev, options, devices.device(dev).params());
  // Pass pipelines preserve input order; build the parent->compiled feed map.
  parent_inputs_ = model.input_ids();
  compiled_inputs_ = compiled_.graph().input_ids();
  DUET_CHECK_EQ(parent_inputs_.size(), compiled_inputs_.size());
  for (NodeId id : model.input_ids()) {
    input_bytes_ += node_output_bytes(model.node(id));
  }
  for (NodeId id : model.outputs()) {
    output_bytes_ += node_output_bytes(model.node(id));
  }
}

double Baseline::transfer_overhead(bool with_noise) {
  if (baseline_device(kind_) == DeviceKind::kCpu) return 0.0;
  return devices_.link->transfer_time(input_bytes_, with_noise) +
         devices_.link->transfer_time(output_bytes_, with_noise);
}

double Baseline::latency(bool with_noise) {
  Device& dev = devices_.device(baseline_device(kind_));
  return dev.modeled_time(compiled_, with_noise) + transfer_overhead(with_noise);
}

Baseline::Result Baseline::infer(const std::map<NodeId, Tensor>& feeds,
                                 bool with_noise) {
  // Remap parent input ids to the compiled graph's (positional) input ids.
  std::map<NodeId, Tensor> remapped;
  for (size_t i = 0; i < parent_inputs_.size(); ++i) {
    auto it = feeds.find(parent_inputs_[i]);
    DUET_CHECK(it != feeds.end()) << "missing feed for input " << parent_inputs_[i];
    remapped[compiled_inputs_[i]] = it->second;
  }
  Device& dev = devices_.device(baseline_device(kind_));
  Device::RunResult rr = dev.execute(compiled_, remapped, with_noise);
  Result r;
  r.outputs = std::move(rr.outputs);
  r.latency_s = rr.modeled_time_s + transfer_overhead(with_noise);
  return r;
}

}  // namespace duet
