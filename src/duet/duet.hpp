#pragma once

// Umbrella header: everything a downstream user needs.
//
//   #include "duet/duet.hpp"
//
//   duet::DuetEngine engine(duet::models::build_wide_deep());
//   auto out = engine.infer(feeds);
//
// Layered API (include individually for faster builds):
//   graph/builder.hpp     — construct models programmatically
//   relay/relay.hpp       — textual IR front-end (+ serialize.hpp)
//   models/model_zoo.hpp  — the paper's workloads
//   duet/engine.hpp       — partition + profile + schedule + execute
//   duet/baseline.hpp     — TVM-/framework-style single-device baselines
//   sched/scheduler.hpp   — scheduling algorithms, standalone
//   runtime/executor.hpp  — executors, standalone
//   runtime/pipeline.hpp  — throughput-mode pipelined runner

#include "duet/baseline.hpp"
#include "duet/engine.hpp"
#include "duet/report.hpp"
#include "graph/builder.hpp"
#include "models/model_zoo.hpp"
#include "relay/relay.hpp"
#include "relay/serialize.hpp"
#include "runtime/pipeline.hpp"
