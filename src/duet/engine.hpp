#pragma once

// DuetEngine — the public entry point of the library (paper Fig. 6): given a
// model graph, it (1) partitions it into coarse-grained phased subgraphs,
// (2) profiles each subgraph's compiler-optimized code on both devices,
// (3) runs the greedy-correction scheduler, and (4) instantiates the
// heterogeneous executor for the chosen placement. If the best heterogeneous
// schedule is not meaningfully better than the best single device, DUET
// falls back to single-device execution (paper §I and §VI-E).
//
// Typical use:
//   Graph model = models::build_wide_deep();
//   DuetEngine engine(std::move(model));
//   auto feeds = models::make_random_feeds(engine.model(), rng);
//   ExecutionResult out = engine.infer(feeds);

#include <memory>

#include "duet/baseline.hpp"
#include "profile/profiler.hpp"
#include "runtime/executor.hpp"
#include "sched/scheduler.hpp"

namespace duet {

struct DuetOptions {
  std::string scheduler = "greedy-correction";
  PartitionOptions partition;
  ProfileOptions profile;
  CompileOptions compile = CompileOptions::compiler_defaults();
  // Heterogeneous execution must beat the best single device by this factor
  // or DUET falls back (guards against paying PCIe traffic for nothing).
  double fallback_margin = 0.02;
  bool enable_fallback = true;
  uint64_t seed = 42;
  // When non-empty, profiling statistics persist to
  // <dir>/profile_cache.v1.txt, keyed by the calibration fingerprint of the
  // device pair: a warm file makes repeated runs skip profiling entirely,
  // and recalibration invalidates it. Empty keeps the cache in-memory only.
  std::string profile_cache_dir;
};

struct DuetReport {
  std::vector<SubgraphProfile> profiles;
  ScheduleResult schedule;
  double est_hetero_s = 0.0;      // scheduler's estimate
  double est_single_cpu_s = 0.0;  // whole-model op-in-sequence on CPU
  double est_single_gpu_s = 0.0;  // ... on GPU (incl. PCIe in/out)
  bool fell_back = false;
  DeviceKind fallback_device = DeviceKind::kGpu;

  std::string to_string(const Graph& model, const Partition& partition) const;
};

class DuetEngine {
 public:
  explicit DuetEngine(Graph model, DuetOptions options = {});

  const Graph& model() const { return model_; }
  const DuetOptions& options() const { return options_; }
  const Partition& partition() const { return partition_; }
  const DuetReport& report() const { return report_; }
  const ExecutionPlan& plan() const { return plan_; }
  DevicePair& devices() { return devices_; }

  // One inference: numeric outputs + modeled latency + timeline.
  ExecutionResult infer(const std::map<NodeId, Tensor>& feeds,
                        bool with_noise = false);

  // Modeled latency only (fast path for the 5000-run experiments).
  double latency(bool with_noise = false);

  // Same plan, real threads, wall-clock latency (correctness validation).
  ExecutionResult infer_threaded(const std::map<NodeId, Tensor>& feeds);

  // Builds (and, in checked mode, verifies) a plan for an alternative
  // placement of the same partition — how the serving runtime materializes
  // an online-recalibrated placement before atomically swapping it in.
  ExecutionPlan build_plan_for(const Placement& placement) const;

 private:
  Graph model_;
  DuetOptions options_;
  DevicePair devices_;
  Partition partition_;
  DuetReport report_;
  ExecutionPlan plan_;
  std::unique_ptr<SimExecutor> executor_;
  // When the fallback triggers, DUET runs the unpartitioned single-device
  // executable (TVM's own runtime), not the queue-based plan.
  std::unique_ptr<Baseline> fallback_;
};

}  // namespace duet
