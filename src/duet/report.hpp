#pragma once

// Reporting helpers shared by the benchmark harnesses: fixed-width table
// rendering and the paper-style per-subgraph cost/placement breakdown
// (Table II).

#include <string>
#include <vector>

#include "duet/engine.hpp"

namespace duet {

// Simple fixed-width text table. Columns auto-size to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Table II: subgraph | content | CPU cost | GPU cost | placement.
std::string render_subgraph_breakdown(const DuetEngine& engine);

// "x1.93" style speedup formatting.
std::string speedup_str(double baseline_s, double improved_s);

}  // namespace duet
