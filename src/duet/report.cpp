#include "duet/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/string_util.hpp"

namespace duet {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<size_t> width(header_.size(), 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (size_t i = 0; i < width.size(); ++i) {
    os << std::string(width[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string render_subgraph_breakdown(const DuetEngine& engine) {
  const Partition& part = engine.partition();
  const DuetReport& report = engine.report();

  TextTable table({"subgraph", "content", "phase", "CPU cost", "GPU cost",
                   "placed on"});
  for (const Subgraph& sub : part.subgraphs) {
    const SubgraphProfile& prof = report.profiles[static_cast<size_t>(sub.id)];
    table.add_row({
        strprintf("#%d %s", sub.id, sub.label.c_str()),
        sub.summary(engine.model()),
        strprintf("%d (%s)", sub.phase, phase_type_name(sub.phase_type)),
        human_time(prof.time_on(DeviceKind::kCpu)),
        human_time(prof.time_on(DeviceKind::kGpu)),
        device_kind_name(report.schedule.placement.of(sub.id)),
    });
  }
  return table.render();
}

std::string speedup_str(double baseline_s, double improved_s) {
  if (improved_s <= 0.0) return "x?";
  return strprintf("x%.2f", baseline_s / improved_s);
}

}  // namespace duet
