#pragma once

// Single-device baselines of the paper's evaluation:
//   * kTvmCpu / kTvmGpu           — compiler-optimized operators-in-sequence
//     on one device (the paper's TVM-CPU / TVM-GPU bars), and
//   * kFrameworkCpu / kFrameworkGpu — unfused graph with per-operator
//     dispatch overhead (the PyTorch / TensorFlow bars).
// GPU baselines pay PCIe for model inputs and outputs.

#include <map>
#include <string>

#include "device/device.hpp"
#include "device/interconnect.hpp"

namespace duet {

enum class BaselineKind { kTvmCpu, kTvmGpu, kFrameworkCpu, kFrameworkGpu };
const char* baseline_name(BaselineKind kind);
DeviceKind baseline_device(BaselineKind kind);

class Baseline {
 public:
  Baseline(const Graph& model, BaselineKind kind, DevicePair& devices);

  BaselineKind kind() const { return kind_; }
  const CompiledSubgraph& compiled() const { return compiled_; }

  // Modeled end-to-end latency (kernels in sequence + transfers on GPU).
  double latency(bool with_noise = false);

  // Numeric execution + modeled latency.
  struct Result {
    std::vector<Tensor> outputs;
    double latency_s = 0.0;
  };
  Result infer(const std::map<NodeId, Tensor>& feeds, bool with_noise = false);

 private:
  double transfer_overhead(bool with_noise);

  BaselineKind kind_;
  DevicePair& devices_;
  CompiledSubgraph compiled_;
  std::vector<NodeId> parent_inputs_;
  std::vector<NodeId> compiled_inputs_;
  uint64_t input_bytes_ = 0;
  uint64_t output_bytes_ = 0;
};

}  // namespace duet
