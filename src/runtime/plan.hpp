#pragma once

// ExecutionPlan: the fully resolved artifact the executors run — partition +
// placement + per-subgraph compiled code for the assigned device + the feed
// routing between subgraph boundaries. Building the plan resolves the
// placeholder ids of each (optimized) compiled graph back to parent node
// ids, so executors move tensors purely by parent-node key.
//
// The plan also encodes its communication statically: one TransferStep per
// cross-device boundary edge and a dependency-respecting step order. The
// executors still pay transfers dynamically (the sim charges them when a
// dependent fires), but the static schedule is what the plan validator
// (analysis/plan_validator.hpp) checks — exactly one transfer per
// cross-device edge, none for same-device edges, no use-before-def.

#include <map>
#include <optional>
#include <vector>

#include "device/device.hpp"
#include "partition/partitioner.hpp"
#include "runtime/memory_plan.hpp"
#include "sched/placement.hpp"

namespace duet {

struct PlannedSubgraph {
  int id = -1;
  DeviceKind device = DeviceKind::kCpu;
  CompiledSubgraph compiled;

  struct Feed {
    NodeId parent_producer = kInvalidNode;  // node in the parent graph
    NodeId input_node = kInvalidNode;       // kInput in compiled.graph()
  };
  std::vector<Feed> feeds;

  // Parent node ids this subgraph materializes, aligned 1:1 with
  // compiled.graph().outputs().
  std::vector<NodeId> produces;

  // Producer subgraph ids this one waits for (deduplicated).
  std::vector<int> dep_subgraphs;
};

// One boundary value crossing the device link: produced by subgraph `src` on
// one device, consumed by subgraph `dst` on the other.
struct TransferStep {
  int src_subgraph = -1;
  int dst_subgraph = -1;
  NodeId parent_node = kInvalidNode;  // the value being moved
  uint64_t bytes = 0;
};

class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  const Graph& parent() const { return parent_; }
  const Partition& partition() const { return partition_; }
  const Placement& placement() const { return placement_; }
  const std::vector<PlannedSubgraph>& subgraphs() const { return subgraphs_; }
  const PlannedSubgraph& subgraph(int id) const;

  // Consumers of each subgraph (inverse of dep_subgraphs).
  const std::vector<std::vector<int>>& consumers() const { return consumers_; }

  // Static transfer schedule: exactly one entry per cross-device boundary
  // edge (deduplicated by (src, dst, parent node)).
  const std::vector<TransferStep>& transfers() const { return transfers_; }

  // A dependency-respecting launch order of subgraph ids (Kahn topological
  // order, smallest id first among ready subgraphs).
  const std::vector<int>& step_order() const { return step_order_; }

  // Per-device memory footprint of the plan: resident weights plus the
  // boundary tensors the executor holds between subgraphs. Deployment
  // engineers size device memory with this (weights are replicated onto the
  // device that runs each subgraph; model load time is offline, as in the
  // paper).
  struct MemoryReport {
    uint64_t weight_bytes[kNumDeviceKinds] = {0, 0};
    uint64_t boundary_bytes[kNumDeviceKinds] = {0, 0};
    uint64_t total(DeviceKind kind) const {
      return weight_bytes[static_cast<int>(kind)] +
             boundary_bytes[static_cast<int>(kind)];
    }
  };
  MemoryReport memory_report() const;

  // Liveness-packed arena layout for the boundary values (one arena per
  // device; analysis/memory_planner.hpp). build() attaches it; executors run
  // boundary tensors out of the arenas whenever it is present. Null only for
  // a default-constructed plan or after clear_memory_plan().
  const MemoryPlan* memory_plan() const {
    return memory_plan_.has_value() ? &*memory_plan_ : nullptr;
  }
  // Test hooks: corruption tests re-plan from corrupted components, and the
  // executor tests exercise the arena-free fallback path.
  void set_memory_plan(MemoryPlan plan) { memory_plan_ = std::move(plan); }
  void clear_memory_plan() { memory_plan_.reset(); }

  // Builds a plan by compiling every subgraph for its placed device.
  static ExecutionPlan build(const Graph& parent, Partition partition,
                             Placement placement, const DevicePair& devices,
                             const CompileOptions& options);

 private:
  Graph parent_;
  Partition partition_;
  Placement placement_;
  std::vector<PlannedSubgraph> subgraphs_;
  std::vector<std::vector<int>> consumers_;
  std::vector<TransferStep> transfers_;
  std::vector<int> step_order_;
  std::optional<MemoryPlan> memory_plan_;
};

}  // namespace duet
