#pragma once

// ExecutionPlan: the fully resolved artifact the executors run — partition +
// placement + per-subgraph compiled code for the assigned device + the feed
// routing between subgraph boundaries. Building the plan resolves the
// placeholder ids of each (optimized) compiled graph back to parent node
// ids, so executors move tensors purely by parent-node key.

#include <map>
#include <vector>

#include "device/device.hpp"
#include "partition/partitioner.hpp"
#include "sched/placement.hpp"

namespace duet {

struct PlannedSubgraph {
  int id = -1;
  DeviceKind device = DeviceKind::kCpu;
  CompiledSubgraph compiled;

  struct Feed {
    NodeId parent_producer = kInvalidNode;  // node in the parent graph
    NodeId input_node = kInvalidNode;       // kInput in compiled.graph()
  };
  std::vector<Feed> feeds;

  // Parent node ids this subgraph materializes, aligned 1:1 with
  // compiled.graph().outputs().
  std::vector<NodeId> produces;

  // Producer subgraph ids this one waits for (deduplicated).
  std::vector<int> dep_subgraphs;
};

class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  const Graph& parent() const { return parent_; }
  const Partition& partition() const { return partition_; }
  const Placement& placement() const { return placement_; }
  const std::vector<PlannedSubgraph>& subgraphs() const { return subgraphs_; }
  const PlannedSubgraph& subgraph(int id) const;

  // Consumers of each subgraph (inverse of dep_subgraphs).
  const std::vector<std::vector<int>>& consumers() const { return consumers_; }

  // Per-device memory footprint of the plan: resident weights plus the
  // boundary tensors the executor holds between subgraphs. Deployment
  // engineers size device memory with this (weights are replicated onto the
  // device that runs each subgraph; model load time is offline, as in the
  // paper).
  struct MemoryReport {
    uint64_t weight_bytes[kNumDeviceKinds] = {0, 0};
    uint64_t boundary_bytes[kNumDeviceKinds] = {0, 0};
    uint64_t total(DeviceKind kind) const {
      return weight_bytes[static_cast<int>(kind)] +
             boundary_bytes[static_cast<int>(kind)];
    }
  };
  MemoryReport memory_report() const;

  // Builds a plan by compiling every subgraph for its placed device.
  static ExecutionPlan build(const Graph& parent, Partition partition,
                             Placement placement, const DevicePair& devices,
                             const CompileOptions& options);

 private:
  Graph parent_;
  Partition partition_;
  Placement placement_;
  std::vector<PlannedSubgraph> subgraphs_;
  std::vector<std::vector<int>> consumers_;
};

}  // namespace duet
