#pragma once

// Execution timeline capture: which subgraph ran on which device when, and
// which transfers crossed the link. Renders the ASCII equivalent of the
// paper's Fig. 4 execution timelines and exports CSV for plotting.

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/cost_model.hpp"

namespace duet {

struct TimelineEvent {
  enum class Kind { kExec, kTransfer } kind = Kind::kExec;
  int subgraph = -1;
  DeviceKind device = DeviceKind::kCpu;  // executing device; transfers: dest
  std::string label;
  double start = 0.0;
  double end = 0.0;
  // Serving request that caused the event (telemetry::current_trace_id() at
  // record time); 0 outside a request context. Lets drift reports and
  // post-mortem dumps join timeline events back to individual requests.
  uint64_t trace_id = 0;

  double duration() const { return end - start; }
};

class Timeline {
 public:
  void add(TimelineEvent event);
  void clear() { events_.clear(); }

  const std::vector<TimelineEvent>& events() const { return events_; }
  double makespan() const;

  // Per-device busy time (utilization numerator).
  double busy_time(DeviceKind kind) const;

  // ASCII Gantt chart, `width` characters wide.
  std::string render_ascii(int width = 80) const;
  // "kind,device,subgraph,label,start,end" rows.
  std::string to_csv() const;
  // Chrome trace-event JSON (load in chrome://tracing or Perfetto): one
  // complete ("X") event per span, devices as pids, the link as its own pid.
  std::string to_chrome_trace() const;

 private:
  std::vector<TimelineEvent> events_;
};

}  // namespace duet
