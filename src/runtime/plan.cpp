#include "runtime/plan.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/memory_planner.hpp"
#include "common/error.hpp"
#include "graph/shape_inference.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {

ExecutionPlan::MemoryReport ExecutionPlan::memory_report() const {
  MemoryReport report;
  for (const PlannedSubgraph& ps : subgraphs_) {
    const int d = static_cast<int>(ps.device);
    report.weight_bytes[d] += ps.compiled.graph().param_bytes();
    // Boundary tensors this subgraph materializes live on its device until
    // consumed (or copied across the link).
    for (NodeId out : ps.produces) {
      report.boundary_bytes[d] += node_output_bytes(parent_.node(out));
    }
    // Its placeholder inputs are staged on the same device before launch.
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      report.boundary_bytes[d] += node_output_bytes(parent_.node(f.parent_producer));
    }
  }
  return report;
}

const PlannedSubgraph& ExecutionPlan::subgraph(int id) const {
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < subgraphs_.size());
  return subgraphs_[static_cast<size_t>(id)];
}

ExecutionPlan ExecutionPlan::build(const Graph& parent, Partition partition,
                                   Placement placement, const DevicePair& devices,
                                   const CompileOptions& options) {
  DUET_CHECK_EQ(placement.size(), partition.subgraphs.size());
  telemetry::ScopedSpan span("plan-build", "plan", parent.name());
  ExecutionPlan plan;
  plan.parent_ = parent;
  plan.partition_ = std::move(partition);
  plan.placement_ = std::move(placement);

  for (const Subgraph& sub : plan.partition_.subgraphs) {
    PlannedSubgraph ps;
    ps.id = sub.id;
    ps.device = plan.placement_.of(sub.id);
    const Device& dev = devices.device(ps.device);
    // compile_for_device is content-addressed: when the profiler already
    // compiled this subgraph for this device, this is a CompileCache hit and
    // the plan reuses that artifact instead of recompiling.
    ps.compiled =
        compile_for_device(sub.graph, ps.device, options, dev.params());

    // All optimization passes copy kInput nodes in id order, so the compiled
    // graph's inputs align positionally with the subgraph's boundary inputs.
    const std::vector<NodeId> compiled_inputs = ps.compiled.graph().input_ids();
    DUET_CHECK_EQ(compiled_inputs.size(), sub.boundary_inputs.size())
        << "compilation changed the input signature of " << sub.label;
    for (size_t i = 0; i < compiled_inputs.size(); ++i) {
      const Node& src = sub.graph.node(sub.boundary_inputs[i].placeholder);
      const Node& dst = ps.compiled.graph().node(compiled_inputs[i]);
      DUET_CHECK(src.name == dst.name)
          << "input order changed during compilation: " << src.name << " vs "
          << dst.name;
      ps.feeds.push_back({sub.boundary_inputs[i].parent_producer, compiled_inputs[i]});
    }

    DUET_CHECK_EQ(ps.compiled.graph().outputs().size(), sub.boundary_outputs.size());
    ps.produces = sub.boundary_outputs;

    std::set<int> dep_set;
    for (const Subgraph::BoundaryInput& b : sub.boundary_inputs) {
      const Node& p = parent.node(b.parent_producer);
      if (p.is_input()) continue;
      const int producer = plan.partition_.producer_subgraph(b.parent_producer);
      DUET_CHECK_GE(producer, 0);
      dep_set.insert(producer);
    }
    ps.dep_subgraphs.assign(dep_set.begin(), dep_set.end());
    plan.subgraphs_.push_back(std::move(ps));
  }

  plan.consumers_.resize(plan.subgraphs_.size());
  for (const PlannedSubgraph& ps : plan.subgraphs_) {
    for (int dep : ps.dep_subgraphs) {
      plan.consumers_[static_cast<size_t>(dep)].push_back(ps.id);
    }
  }

  // Static transfer schedule: one step per cross-device boundary edge.
  std::set<std::tuple<int, int, NodeId>> seen_edges;
  for (const PlannedSubgraph& ps : plan.subgraphs_) {
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      const Node& p = parent.node(f.parent_producer);
      if (p.is_input()) continue;  // host-resident; charged as h2d at launch
      const int src = plan.partition_.producer_subgraph(f.parent_producer);
      if (plan.placement_.of(src) == ps.device) continue;
      if (!seen_edges.insert({src, ps.id, f.parent_producer}).second) continue;
      plan.transfers_.push_back({src, ps.id, f.parent_producer,
                                 node_output_bytes(p)});
    }
  }

  // Launch order: Kahn over the subgraph dependency DAG, smallest id first.
  const size_t n = plan.subgraphs_.size();
  std::vector<int> pending(n, 0);
  for (size_t i = 0; i < n; ++i) {
    pending[i] = static_cast<int>(plan.subgraphs_[i].dep_subgraphs.size());
  }
  std::set<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) ready.insert(static_cast<int>(i));
  }
  while (!ready.empty()) {
    const int next = *ready.begin();
    ready.erase(ready.begin());
    plan.step_order_.push_back(next);
    for (int consumer : plan.consumers_[static_cast<size_t>(next)]) {
      if (--pending[static_cast<size_t>(consumer)] == 0) ready.insert(consumer);
    }
  }
  DUET_CHECK_EQ(plan.step_order_.size(), n)
      << "subgraph dependency cycle while ordering plan steps";

  // Liveness-driven arena layout: every boundary value gets a per-device
  // offset, so the executors allocate one arena per device instead of
  // per-tensor buffers.
  plan.memory_plan_ = plan_memory(plan);
  if (telemetry::enabled()) {
    telemetry::counter("plan.builds").add(1);
    telemetry::counter("plan.transfers").add(plan.transfers_.size());
    telemetry::gauge("plan.arena_cpu_peak_bytes")
        .record_max(
            static_cast<double>(plan.memory_plan_->arena_bytes(DeviceKind::kCpu)));
    telemetry::gauge("plan.arena_gpu_peak_bytes")
        .record_max(
            static_cast<double>(plan.memory_plan_->arena_bytes(DeviceKind::kGpu)));
  }
  return plan;
}

}  // namespace duet
