#include "runtime/memory_plan.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace duet {

void MemoryPlan::add_slot(ArenaSlot slot) {
  const int d = static_cast<int>(slot.device);
  DUET_CHECK(d >= 0 && d < kNumDeviceKinds);
  const auto key = std::make_pair(d, slot.value);
  DUET_CHECK(index_.find(key) == index_.end())
      << "value %" << slot.value << " already has a slot on "
      << device_kind_name(slot.device);
  index_[key] = slots_.size();
  arena_bytes_[d] = std::max(arena_bytes_[d], slot.offset + slot.bytes);
  // Naive baseline: one aligned buffer per value. Counting the aligned
  // footprint keeps arena <= naive provable — first-fit stacking at aligned
  // offsets costs at most align_up(bytes) per slot even with zero sharing.
  naive_bytes_[d] += (slot.bytes + kArenaAlignment - 1) / kArenaAlignment *
                     kArenaAlignment;
  slots_.push_back(std::move(slot));
}

const ArenaSlot* MemoryPlan::find(DeviceKind device, NodeId value) const {
  const auto it = index_.find({static_cast<int>(device), value});
  return it == index_.end() ? nullptr : &slots_[it->second];
}

std::string MemoryPlan::to_string(const Graph* parent) const {
  std::ostringstream os;
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    const auto kind = static_cast<DeviceKind>(d);
    os << "  " << device_kind_name(kind) << " arena "
       << human_bytes(arena_bytes(kind)) << " (naive "
       << human_bytes(naive_bytes(kind)) << ")\n";
  }
  for (const ArenaSlot& s : slots_) {
    os << "    [" << device_kind_name(s.device) << " +" << s.offset << ", "
       << human_bytes(s.bytes) << "] %" << s.value;
    if (parent != nullptr && s.value >= 0 &&
        static_cast<size_t>(s.value) < parent->num_nodes()) {
      os << " \"" << parent->node(s.value).name << "\"";
    }
    if (s.def_subgraph < 0) {
      os << "  staged at entry";
    } else {
      os << "  def #" << s.def_subgraph << " @step " << s.def_step;
    }
    os << ", last use @step " << s.last_use_step;
    if (s.held_to_end) os << " (output, held to end)";
    os << "\n";
  }
  return os.str();
}

}  // namespace duet
