#include "runtime/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/trace_export.hpp"

namespace duet {

void Timeline::add(TimelineEvent event) { events_.push_back(std::move(event)); }

double Timeline::makespan() const {
  double end = 0.0;
  for (const TimelineEvent& e : events_) end = std::max(end, e.end);
  return end;
}

double Timeline::busy_time(DeviceKind kind) const {
  double total = 0.0;
  for (const TimelineEvent& e : events_) {
    if (e.kind == TimelineEvent::Kind::kExec && e.device == kind) {
      total += e.duration();
    }
  }
  return total;
}

std::string Timeline::render_ascii(int width) const {
  const double span = makespan();
  std::ostringstream os;
  if (span <= 0.0 || events_.empty()) return "(empty timeline)\n";

  const auto lane = [&](DeviceKind kind, const char* name) {
    std::string row(static_cast<size_t>(width), '.');
    for (const TimelineEvent& e : events_) {
      if (e.kind != TimelineEvent::Kind::kExec || e.device != kind) continue;
      int b = static_cast<int>(std::floor(e.start / span * width));
      int en = static_cast<int>(std::ceil(e.end / span * width));
      b = std::clamp(b, 0, width - 1);
      en = std::clamp(en, b + 1, width);
      const char mark =
          e.subgraph >= 0 ? static_cast<char>('0' + e.subgraph % 10) : '#';
      for (int i = b; i < en; ++i) row[static_cast<size_t>(i)] = mark;
    }
    os << strprintf("%-4s |", name) << row << "|\n";
  };

  os << "time axis: 0 .. " << human_time(span) << " (digits = subgraph id mod 10)\n";
  lane(DeviceKind::kGpu, "GPU");
  lane(DeviceKind::kCpu, "CPU");

  // Transfers as a third lane.
  std::string row(static_cast<size_t>(width), '.');
  for (const TimelineEvent& e : events_) {
    if (e.kind != TimelineEvent::Kind::kTransfer) continue;
    int b = static_cast<int>(std::floor(e.start / span * width));
    int en = static_cast<int>(std::ceil(e.end / span * width));
    b = std::clamp(b, 0, width - 1);
    en = std::clamp(en, b + 1, width);
    for (int i = b; i < en; ++i) row[static_cast<size_t>(i)] = '~';
  }
  os << "PCIe |" << row << "|\n";
  return os.str();
}

std::string Timeline::to_chrome_trace() const {
  // One shared emission path for all trace-event JSON (telemetry's writer
  // escapes labels; the historical pid layout is preserved).
  telemetry::ChromeTraceWriter writer;
  telemetry::detail::set_virtual_process_names(writer);
  telemetry::detail::append_timeline_events(writer, *this);
  return writer.to_json();
}

std::string Timeline::to_csv() const {
  std::ostringstream os;
  os << "kind,device,subgraph,label,start,end\n";
  for (const TimelineEvent& e : events_) {
    os << (e.kind == TimelineEvent::Kind::kExec ? "exec" : "transfer") << ","
       << device_kind_name(e.device) << "," << e.subgraph << "," << e.label << ","
       << e.start << "," << e.end << "\n";
  }
  return os.str();
}

}  // namespace duet
