#pragma once

// Throughput-mode (pipelined) execution: streams a window of independent
// queries through one ExecutionPlan. Different queries' subgraphs interleave
// freely on the two devices — while the GPU runs query q's CNN, the CPU can
// run query q+1's RNN — so sustained throughput is bounded by the busiest
// device, not by the end-to-end latency. This extends the paper's
// latency-oriented engine to the batch/offline serving regime; the same
// placement produced by the greedy-correction scheduler is reused.

#include "runtime/executor.hpp"

namespace duet {

class PipelinedRunner {
 public:
  explicit PipelinedRunner(DevicePair& devices,
                           const LaneConfig& lanes = LaneConfig::single())
      : devices_(devices), lanes_(lanes) {}

  struct ThroughputResult {
    int queries = 0;
    double makespan_s = 0.0;         // first arrival to last completion
    double throughput_qps = 0.0;     // queries / makespan
    double mean_latency_s = 0.0;     // mean per-query completion time
    double bottleneck_busy_s = 0.0;  // busiest device's busy time / query
    std::vector<double> query_latency_s;
  };

  // Simulates `num_queries` back-to-back queries (all arrive at t=0).
  // Timing-only: numeric execution of a pipelined window is identical per
  // query to SimExecutor::run and is validated there.
  ThroughputResult run(const ExecutionPlan& plan, int num_queries,
                       bool with_noise = false);

 private:
  DevicePair& devices_;
  LaneConfig lanes_;
};

}  // namespace duet
