#include "runtime/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"

namespace duet {

PipelinedRunner::ThroughputResult PipelinedRunner::run(const ExecutionPlan& plan,
                                                       int num_queries,
                                                       bool with_noise) {
  DUET_CHECK_GT(num_queries, 0);
  const size_t n = plan.subgraphs().size();
  const size_t total = n * static_cast<size_t>(num_queries);
  const double dispatch = executor_dispatch_overhead();

  // Per-task state, task id = q * n + s.
  std::vector<double> ready(total, 0.0);
  std::vector<double> finish(total, 0.0);
  std::vector<int> pending(total, 0);
  std::vector<bool> done(total, false);

  // Host-input bytes per subgraph (paid per query on GPU-placed subgraphs).
  std::vector<uint64_t> host_bytes(n, 0);
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      if (plan.parent().node(f.parent_producer).is_input()) {
        const Node& p = plan.parent().node(f.parent_producer);
        host_bytes[static_cast<size_t>(ps.id)] +=
            static_cast<uint64_t>(p.out_shape.numel()) * dtype_size(p.out_dtype);
      }
    }
  }

  for (int q = 0; q < num_queries; ++q) {
    for (const PlannedSubgraph& ps : plan.subgraphs()) {
      const size_t t = static_cast<size_t>(q) * n + static_cast<size_t>(ps.id);
      pending[t] = static_cast<int>(ps.dep_subgraphs.size());
      if (ps.device == DeviceKind::kGpu && host_bytes[static_cast<size_t>(ps.id)] > 0) {
        ready[t] = devices_.link->transfer_time(
            host_bytes[static_cast<size_t>(ps.id)], with_noise);
      }
    }
  }

  std::vector<std::vector<double>> lane_free(kNumDeviceKinds);
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    lane_free[d].assign(static_cast<size_t>(std::max(1, lanes_.lanes[d])), 0.0);
  }
  const auto earliest_lane = [&](DeviceKind dev) {
    size_t best = 0;
    const auto& lanes = lane_free[static_cast<int>(dev)];
    for (size_t l = 1; l < lanes.size(); ++l) {
      if (lanes[l] < lanes[best]) best = l;
    }
    return best;
  };

  size_t completed = 0;
  while (completed < total) {
    // Earliest feasible start; ties prefer the older query (FIFO fairness).
    size_t best = total;
    double best_start = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < total; ++t) {
      if (done[t] || pending[t] > 0) continue;
      const PlannedSubgraph& ps = plan.subgraphs()[t % n];
      const double start = std::max(
          ready[t], lane_free[static_cast<int>(ps.device)][earliest_lane(ps.device)]);
      if (start < best_start || (start == best_start && best < total && t < best)) {
        best = t;
        best_start = start;
      }
    }
    DUET_CHECK_LT(best, total) << "pipeline deadlock";

    const PlannedSubgraph& ps = plan.subgraphs()[best % n];
    Device& dev = devices_.device(ps.device);
    const double exec = dev.modeled_time(ps.compiled, with_noise) + dispatch;
    const double end = best_start + exec;
    finish[best] = end;
    done[best] = true;
    lane_free[static_cast<int>(ps.device)][earliest_lane(ps.device)] = end;
    ++completed;

    const size_t q_base = (best / n) * n;
    for (int consumer : plan.consumers()[best % n]) {
      const size_t t = q_base + static_cast<size_t>(consumer);
      const PlannedSubgraph& cs = plan.subgraphs()[static_cast<size_t>(consumer)];
      double avail = end;
      if (cs.device != ps.device) {
        uint64_t bytes = 0;
        for (NodeId out : ps.produces) {
          const Node& p = plan.parent().node(out);
          bytes += static_cast<uint64_t>(p.out_shape.numel()) * dtype_size(p.out_dtype);
        }
        avail += devices_.link->transfer_time(bytes, with_noise);
      }
      ready[t] = std::max(ready[t], avail);
      pending[t] -= 1;
    }
  }

  // Per-query completion: latest finish among its subgraphs (+ d2h of GPU
  // user outputs).
  ThroughputResult r;
  r.queries = num_queries;
  std::vector<uint64_t> user_out_bytes(n, 0);
  std::map<NodeId, int> owner;
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    for (NodeId out : ps.produces) owner[out] = ps.id;
  }
  for (NodeId out : plan.parent().outputs()) {
    const Node& node = plan.parent().node(out);
    user_out_bytes[static_cast<size_t>(owner.at(out))] +=
        static_cast<uint64_t>(node.out_shape.numel()) * dtype_size(node.out_dtype);
  }
  for (int q = 0; q < num_queries; ++q) {
    double latest = 0.0;
    for (size_t s = 0; s < n; ++s) {
      double t = finish[static_cast<size_t>(q) * n + s];
      if (user_out_bytes[s] > 0 &&
          plan.subgraphs()[s].device == DeviceKind::kGpu) {
        t += devices_.link->transfer_time(user_out_bytes[s], with_noise);
      }
      latest = std::max(latest, t);
    }
    r.query_latency_s.push_back(latest);
    r.makespan_s = std::max(r.makespan_s, latest);
    r.mean_latency_s += latest / num_queries;
  }
  r.throughput_qps = num_queries / r.makespan_s;

  // Bottleneck: busiest device's busy time per query.
  double busy[kNumDeviceKinds] = {0.0, 0.0};
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    busy[static_cast<int>(ps.device)] +=
        ps.compiled.est_total_time_s() + dispatch;
  }
  r.bottleneck_busy_s = std::max(busy[0], busy[1]);
  return r;
}

}  // namespace duet
