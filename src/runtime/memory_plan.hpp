#pragma once

// Static memory plan for an ExecutionPlan (ISSUE 2 tentpole, part 2): every
// boundary value (a tensor that crosses a subgraph boundary, plus the GPU
// staging copies of host inputs) is assigned a byte range inside a per-device
// arena. Executors allocate one arena per device and run every boundary
// tensor out of it instead of per-tensor heap allocations; the arena size is
// the packed peak, which liveness-driven reuse keeps well under the naive
// sum of all boundary tensors (TVM-style static buffer planning).
//
// The plan is pure data: the liveness analysis and the first-fit packer that
// produce it live in src/analysis (analysis/liveness.hpp,
// analysis/memory_planner.hpp); the happens-before race checker
// (analysis/race_checker.hpp) proves slot reuse safe for the concurrent
// executor before anything runs from it.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "compiler/cost_model.hpp"
#include "graph/graph.hpp"

namespace duet {

// Arena offsets are aligned so any kernel's vectorized loads stay aligned no
// matter which value lands at the slot.
inline constexpr uint64_t kArenaAlignment = 64;

// One value's residence in one device arena. A value produced on one device
// and consumed on another has a slot per device (the transfer's source and
// destination). `def_subgraph == -1` marks a copy staged from a host input
// at plan entry rather than written by a subgraph.
struct ArenaSlot {
  NodeId value = kInvalidNode;
  DeviceKind device = DeviceKind::kCpu;
  uint64_t offset = 0;
  uint64_t bytes = 0;

  int def_subgraph = -1;
  // Subgraphs whose execution touches this slot: local consumers read it,
  // and remote consumers read it while staging their own copy.
  std::vector<int> uses;

  // Positions in the plan's step order (reporting / packing heuristics; the
  // safety argument for reuse is the happens-before order, not these).
  int def_step = 0;
  int last_use_step = 0;
  // Graph outputs survive to end-of-plan; their slots are never reused.
  bool held_to_end = false;
};

class MemoryPlan {
 public:
  void add_slot(ArenaSlot slot);

  const std::vector<ArenaSlot>& slots() const { return slots_; }
  // The packed arena size for one device (max offset + bytes, aligned).
  uint64_t arena_bytes(DeviceKind device) const {
    return arena_bytes_[static_cast<int>(device)];
  }
  // Sum of all slot bytes on one device — what per-tensor allocation would
  // hold live for the whole run.
  uint64_t naive_bytes(DeviceKind device) const {
    return naive_bytes_[static_cast<int>(device)];
  }

  // Slot of `value` on `device`; nullptr when the value never lives there.
  const ArenaSlot* find(DeviceKind device, NodeId value) const;

  bool empty() const { return slots_.empty(); }

  // Per-device summary plus the slot table, e.g. for `duet_cli analyze`.
  std::string to_string(const Graph* parent = nullptr) const;

 private:
  std::vector<ArenaSlot> slots_;
  std::map<std::pair<int, NodeId>, size_t> index_;  // (device, value) -> slot
  uint64_t arena_bytes_[kNumDeviceKinds] = {0, 0};
  uint64_t naive_bytes_[kNumDeviceKinds] = {0, 0};
};

}  // namespace duet
