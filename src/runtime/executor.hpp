#pragma once

// The heterogeneous execution engine (paper §IV-D, Fig. 9), in two flavors
// sharing one semantics:
//
//   * SimExecutor   — discrete-event simulation on virtual clocks; kernels
//     still execute numerically, but elapsed time comes from the calibrated
//     device models (deterministic or noisy). All benchmarks use this.
//   * ThreadedExecutor — two real worker threads ("child processes" in the
//     paper; threads here since they share an address space), each polling
//     its own synchronization queue, executing subgraphs, and triggering
//     dependents. Measures wall-clock time. Tests use it to show the
//     concurrency machinery computes exactly what a single device computes.

#include <map>

#include "runtime/plan.hpp"
#include "runtime/timeline.hpp"
#include "sched/latency_model.hpp"

namespace duet {

struct ExecutionResult {
  std::vector<Tensor> outputs;  // parent graph output order
  double latency_s = 0.0;       // modeled (Sim) or wall-clock (Threaded)
  Timeline timeline;
};

class SimExecutor {
 public:
  explicit SimExecutor(DevicePair& devices,
                       const LaneConfig& lanes = LaneConfig::single())
      : devices_(devices), lanes_(lanes) {}

  const LaneConfig& lanes() const { return lanes_; }

  // `feeds` maps parent kInput node ids to tensors.
  ExecutionResult run(const ExecutionPlan& plan,
                      const std::map<NodeId, Tensor>& feeds,
                      bool with_noise = false);

  // Time-only fast path: skips numeric kernel execution and the timeline.
  double run_latency_only(const ExecutionPlan& plan, bool with_noise = false);

 private:
  template <bool kNumeric>
  ExecutionResult run_impl(const ExecutionPlan& plan,
                           const std::map<NodeId, Tensor>& feeds, bool with_noise,
                           bool record_timeline);

  DevicePair& devices_;
  LaneConfig lanes_;
};

class ThreadedExecutor {
 public:
  explicit ThreadedExecutor(DevicePair& devices) : devices_(devices) {}

  ExecutionResult run(const ExecutionPlan& plan,
                      const std::map<NodeId, Tensor>& feeds);

 private:
  DevicePair& devices_;
};

}  // namespace duet
