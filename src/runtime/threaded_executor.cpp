// Real-concurrency executor: one worker thread per device, each in a
// poll-execute-trigger loop over its own synchronization queue — the thread
// analogue of the paper's two child processes with shared-memory queues
// (§IV-D, Fig. 9). Used to validate that heterogeneous execution computes
// exactly the single-device reference results; latency reported is host
// wall-clock (this machine is not the paper's testbed, so the modeled times
// from SimExecutor are what the benchmarks report).

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "device/interconnect.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/queue.hpp"

namespace duet {

ExecutionResult ThreadedExecutor::run(const ExecutionPlan& plan,
                                      const std::map<NodeId, Tensor>& feeds) {
  const size_t n = plan.subgraphs().size();
  ExecutionResult result;

  std::mutex state_mutex;  // guards values, pending, timeline, arena staging
  std::map<NodeId, Tensor> values = feeds;
  // With a MemoryPlan attached, boundary values live in one arena per device.
  // All stage() copies happen under state_mutex; the plan's happens-before
  // interference rule guarantees a slot is only reused after every access of
  // its previous tenant's subgraphs completed (queue triggers synchronize).
  ExecutionArenas arenas(plan.memory_plan());
  std::vector<int> pending(n, 0);
  std::atomic<size_t> remaining{n};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  SyncQueue<int> queues[kNumDeviceKinds];

  WallTimer timer;

  // Seed: subgraphs with no producer dependencies are immediately ready.
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    pending[static_cast<size_t>(ps.id)] = static_cast<int>(ps.dep_subgraphs.size());
  }
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    if (ps.dep_subgraphs.empty()) {
      queues[static_cast<int>(ps.device)].push(ps.id);
    }
  }

  const auto worker = [&](DeviceKind kind) {
    Device& dev = devices_.device(kind);
    for (;;) {
      std::optional<int> next = queues[static_cast<int>(kind)].pop();
      if (!next.has_value()) return;  // closed and drained
      const PlannedSubgraph& ps = plan.subgraph(*next);
      try {
        std::map<NodeId, Tensor> sub_feeds;
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          for (const PlannedSubgraph::Feed& f : ps.feeds) {
            auto it = values.find(f.parent_producer);
            DUET_CHECK(it != values.end())
                << "missing dependency value for subgraph " << ps.id;
            // Cross-device feed: "DMA" the payload like the interconnect
            // would — into the consumer device's arena slot when planned,
            // else a deep copy (arena-free fallback).
            if (arenas.enabled()) {
              sub_feeds[f.input_node] =
                  arenas.stage(kind, f.parent_producer, it->second);
            } else {
              const Node& p = plan.parent().node(f.parent_producer);
              const bool crossed = p.is_input() && kind == DeviceKind::kGpu;
              sub_feeds[f.input_node] =
                  crossed ? it->second.clone() : it->second;
            }
          }
        }
        const double t0 = timer.elapsed();
        Device::RunResult rr = dev.execute(ps.compiled, sub_feeds, false);
        const double t1 = timer.elapsed();
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          for (size_t o = 0; o < ps.produces.size(); ++o) {
            values[ps.produces[o]] =
                arenas.stage(kind, ps.produces[o], rr.outputs[o]);
          }
          result.timeline.add({TimelineEvent::Kind::kExec, ps.id, kind,
                               plan.partition().subgraphs[static_cast<size_t>(ps.id)].label,
                               t0, t1});
          // Trigger consumers whose dependencies are now all satisfied.
          for (int consumer : plan.consumers()[static_cast<size_t>(ps.id)]) {
            if (--pending[static_cast<size_t>(consumer)] == 0) {
              queues[static_cast<int>(plan.subgraph(consumer).device)].push(consumer);
            }
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        remaining.store(0);
        for (auto& q : queues) q.close();
        return;
      }
      if (remaining.fetch_sub(1) == 1) {
        for (auto& q : queues) q.close();
        return;
      }
    }
  };

  std::thread cpu_worker(worker, DeviceKind::kCpu);
  std::thread gpu_worker(worker, DeviceKind::kGpu);
  cpu_worker.join();
  gpu_worker.join();

  if (first_error) std::rethrow_exception(first_error);

  result.latency_s = timer.elapsed();
  result.outputs.reserve(plan.parent().outputs().size());
  for (NodeId out : plan.parent().outputs()) {
    auto it = values.find(out);
    DUET_CHECK(it != values.end()) << "output " << out << " was not produced";
    result.outputs.push_back(it->second);
  }
  return result;
}

}  // namespace duet
