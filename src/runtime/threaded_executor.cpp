// Real-concurrency executor: one worker thread per device, each in a
// poll-execute-trigger loop over its own synchronization queue — the thread
// analogue of the paper's two child processes with shared-memory queues
// (§IV-D, Fig. 9). Used to validate that heterogeneous execution computes
// exactly the single-device reference results; latency reported is host
// wall-clock (this machine is not the paper's testbed, so the modeled times
// from SimExecutor are what the benchmarks report).

#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "device/interconnect.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/queue.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {
namespace {

struct ThreadedMetrics {
  telemetry::Histogram& queue_wait_us =
      telemetry::histogram("executor.threaded.queue_wait_us");
  telemetry::Counter& queue_pops =
      telemetry::counter("executor.threaded.queue_pops");
  telemetry::Counter& launches =
      telemetry::counter("executor.threaded.launches");
  telemetry::Counter& transfer_bytes =
      telemetry::counter("executor.threaded.transfer_bytes");
  telemetry::Counter& transfers =
      telemetry::counter("executor.threaded.transfers");
  telemetry::Histogram& subgraph_us =
      telemetry::histogram("executor.threaded.subgraph_us");

  static ThreadedMetrics& get() {
    static ThreadedMetrics m;
    return m;
  }
};

}  // namespace

ExecutionResult ThreadedExecutor::run(const ExecutionPlan& plan,
                                      const std::map<NodeId, Tensor>& feeds) {
  const size_t n = plan.subgraphs().size();
  ExecutionResult result;

  std::mutex state_mutex;  // guards values, pending, timeline, arena staging
  std::map<NodeId, Tensor> values = feeds;
  // With a MemoryPlan attached, boundary values live in one arena per device.
  // All stage() copies happen under state_mutex; the plan's happens-before
  // interference rule guarantees a slot is only reused after every access of
  // its previous tenant's subgraphs completed (queue triggers synchronize).
  ExecutionArenas arenas(plan.memory_plan());
  std::vector<int> pending(n, 0);
  std::atomic<size_t> remaining{n};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  SyncQueue<int> queues[kNumDeviceKinds];

  WallTimer timer;

  // Seed: subgraphs with no producer dependencies are immediately ready.
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    pending[static_cast<size_t>(ps.id)] = static_cast<int>(ps.dep_subgraphs.size());
  }
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    if (ps.dep_subgraphs.empty()) {
      queues[static_cast<int>(ps.device)].push(ps.id);
    }
  }

  const auto worker = [&](DeviceKind kind) {
    Device& dev = devices_.device(kind);
    telemetry::ScopedSpan worker_span(
        telemetry::enabled() ? std::string("worker:") + device_kind_name(kind)
                             : std::string(),
        "exec");
    for (;;) {
      // Time spent blocked on the synchronization queue — the executor's
      // idle/starvation signal (paper §IV-D busy-poll analogue).
      const bool telemetry_on = telemetry::enabled();
      const double wait_start = telemetry_on ? telemetry::now_us() : 0.0;
      std::optional<int> next = queues[static_cast<int>(kind)].pop();
      if (telemetry_on) {
        ThreadedMetrics::get().queue_wait_us.observe(telemetry::now_us() -
                                                     wait_start);
        ThreadedMetrics::get().queue_pops.add(1);
      }
      if (!next.has_value()) return;  // closed and drained
      const PlannedSubgraph& ps = plan.subgraph(*next);
      try {
        std::map<NodeId, Tensor> sub_feeds;
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          for (const PlannedSubgraph::Feed& f : ps.feeds) {
            auto it = values.find(f.parent_producer);
            DUET_CHECK(it != values.end())
                << "missing dependency value for subgraph " << ps.id;
            const Node& p = plan.parent().node(f.parent_producer);
            // A feed whose producer ran on the other device (or a host input
            // consumed on the GPU) crosses the link when staged.
            const int producer =
                plan.partition().producer_subgraph(f.parent_producer);
            const bool crossed =
                producer >= 0 ? plan.subgraph(producer).device != kind
                              : p.is_input() && kind == DeviceKind::kGpu;
            std::optional<telemetry::ScopedSpan> xfer_span;
            if (telemetry_on && crossed) {
              xfer_span.emplace("xfer:" + p.name, "transfer",
                                device_kind_name(kind));
              ThreadedMetrics::get().transfers.add(1);
              ThreadedMetrics::get().transfer_bytes.add(it->second.byte_size());
            }
            // Cross-device feed: "DMA" the payload like the interconnect
            // would — into the consumer device's arena slot when planned,
            // else a deep copy (arena-free fallback).
            if (arenas.enabled()) {
              sub_feeds[f.input_node] =
                  arenas.stage(kind, f.parent_producer, it->second);
            } else {
              sub_feeds[f.input_node] =
                  crossed && p.is_input() ? it->second.clone() : it->second;
            }
          }
        }
        std::optional<telemetry::ScopedSpan> exec_span;
        if (telemetry_on) {
          exec_span.emplace(
              plan.partition().subgraphs[static_cast<size_t>(ps.id)].label,
              "exec", device_kind_name(kind));
        }
        const double t0 = timer.elapsed();
        Device::RunResult rr = dev.execute(ps.compiled, sub_feeds, false);
        const double t1 = timer.elapsed();
        exec_span.reset();
        if (telemetry_on) {
          ThreadedMetrics::get().launches.add(1);
          ThreadedMetrics::get().subgraph_us.observe((t1 - t0) * 1e6);
        }
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          for (size_t o = 0; o < ps.produces.size(); ++o) {
            values[ps.produces[o]] =
                arenas.stage(kind, ps.produces[o], rr.outputs[o]);
          }
          result.timeline.add({TimelineEvent::Kind::kExec, ps.id, kind,
                               plan.partition().subgraphs[static_cast<size_t>(ps.id)].label,
                               t0, t1});
          // Trigger consumers whose dependencies are now all satisfied.
          for (int consumer : plan.consumers()[static_cast<size_t>(ps.id)]) {
            if (--pending[static_cast<size_t>(consumer)] == 0) {
              queues[static_cast<int>(plan.subgraph(consumer).device)].push(consumer);
            }
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        remaining.store(0);
        for (auto& q : queues) q.close();
        return;
      }
      if (remaining.fetch_sub(1) == 1) {
        for (auto& q : queues) q.close();
        return;
      }
    }
  };

  std::thread cpu_worker(worker, DeviceKind::kCpu);
  std::thread gpu_worker(worker, DeviceKind::kGpu);
  cpu_worker.join();
  gpu_worker.join();

  if (first_error) std::rethrow_exception(first_error);

  result.latency_s = timer.elapsed();
  result.outputs.reserve(plan.parent().outputs().size());
  for (NodeId out : plan.parent().outputs()) {
    auto it = values.find(out);
    DUET_CHECK(it != values.end()) << "output " << out << " was not produced";
    result.outputs.push_back(it->second);
  }
  return result;
}

}  // namespace duet
