#pragma once

// Execution-time backing for a MemoryPlan: one byte buffer per device, with
// every boundary value staged into its planned slot as it crosses a
// subgraph boundary. Shared by both executors so the simulated and the
// threaded run read and write the exact same layout. Staging a value whose
// payload already sits in its slot (the common same-device case) is a
// zero-copy re-view; a cross-device stage is the memcpy that stands in for
// the interconnect's DMA.

#include <cstring>
#include <memory>
#include <vector>

#include "runtime/memory_plan.hpp"
#include "tensor/tensor.hpp"

namespace duet {

class ExecutionArenas {
 public:
  // A null plan disables staging: stage() passes tensors through untouched
  // and no arenas are allocated (the latency-only fast path, and plans
  // explicitly stripped with clear_memory_plan()).
  explicit ExecutionArenas(const MemoryPlan* plan) : plan_(plan) {
    if (plan_ == nullptr) return;
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      buffers_[d] = std::make_shared<std::vector<uint8_t>>(
          plan_->arena_bytes(static_cast<DeviceKind>(d)));
    }
  }

  bool enabled() const { return plan_ != nullptr; }

  // Returns `value`'s arena-backed view on `device`, copying the payload of
  // `src` in if it lives elsewhere. Values with no slot on `device` (host
  // inputs read on the CPU, or arenas disabled) pass through unchanged.
  Tensor stage(DeviceKind device, NodeId value, const Tensor& src) const {
    if (plan_ == nullptr || !src.defined()) return src;
    const ArenaSlot* slot = plan_->find(device, value);
    if (slot == nullptr) return src;
    Tensor view = Tensor::view(buffers_[static_cast<int>(device)],
                               static_cast<size_t>(slot->offset), src.shape(),
                               src.dtype());
    if (view.byte_size() > 0 && view.raw_data() != src.raw_data()) {
      std::memcpy(view.raw_data(), src.raw_data(), view.byte_size());
    }
    return view;
  }

 private:
  const MemoryPlan* plan_;
  std::shared_ptr<std::vector<uint8_t>> buffers_[kNumDeviceKinds];
};

}  // namespace duet
