#pragma once

// Blocking synchronization queue used between the executor's device workers
// (paper §IV-D: "the synchronization queue is implemented as a shared memory
// queue for high efficiency"; our workers are threads sharing an address
// space, so the queue is a mutex/condvar-protected deque carrying ready
// subgraph ids).

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace duet {

template <typename T>
class SyncQueue {
 public:
  // Outcome of try_pop. A busy-poll loop needs "empty" and "closed and
  // empty" to be distinguishable in the same atomic observation — checking
  // closed() in a separate call leaves a window where a concurrent push +
  // close between the two calls makes the poller either drop an item or
  // spin forever on a queue that will never produce one.
  enum class TryPop { kItem, kEmpty, kClosed };

  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item arrives or the queue is closed; nullopt on close
  // with an empty queue.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant for the busy-poll loop of the paper's executor.
  // kItem: `out` holds the popped item. kEmpty: nothing yet, poll again.
  // kClosed: closed and drained — the poller must exit its loop.
  TryPop try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!items_.empty()) {
      out = std::move(items_.front());
      items_.pop_front();
      return TryPop::kItem;
    }
    return closed_ ? TryPop::kClosed : TryPop::kEmpty;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace duet
