#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace duet {
namespace {

// Cached registry handles: with telemetry disabled each record costs one
// relaxed atomic load, keeping the 5000-run latency path unperturbed.
struct SimMetrics {
  telemetry::Counter& launches = telemetry::counter("executor.sim.launches");
  telemetry::Counter& transfer_bytes =
      telemetry::counter("executor.sim.transfer_bytes");
  telemetry::Counter& transfers = telemetry::counter("executor.sim.transfers");
  telemetry::Histogram& subgraph_us =
      telemetry::histogram("executor.sim.subgraph_us");

  static SimMetrics& get() {
    static SimMetrics m;
    return m;
  }
};

}  // namespace

template <bool kNumeric>
ExecutionResult SimExecutor::run_impl(const ExecutionPlan& plan,
                                      const std::map<NodeId, Tensor>& feeds,
                                      bool with_noise, bool record_timeline) {
  const size_t n = plan.subgraphs().size();
  ExecutionResult result;

  // Serving request context, if any. Timeline events are tagged with it so
  // drift reports can join per-request; flight launch/transfer events are
  // recorded only inside a request (scheduler evaluation loops calling
  // run_latency_only must stay unperturbed, and engine-driven runs are not
  // incidents worth ring space).
  const uint64_t trace_id =
      record_timeline ? telemetry::current_trace_id() : 0;
  const auto add_event = [&](TimelineEvent event) {
    event.trace_id = trace_id;
    result.timeline.add(std::move(event));
  };

  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  std::vector<int> pending(n, 0);
  std::vector<bool> done(n, false);
  // Per-lane availability (LaneConfig models footnote-2 device streams).
  std::vector<std::vector<double>> lane_free(kNumDeviceKinds);
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    lane_free[d].assign(static_cast<size_t>(std::max(1, lanes_.lanes[d])), 0.0);
  }
  const auto earliest_lane = [&](DeviceKind dev) {
    size_t best_lane = 0;
    const auto& lanes = lane_free[static_cast<int>(dev)];
    for (size_t l = 1; l < lanes.size(); ++l) {
      if (lanes[l] < lanes[best_lane]) best_lane = l;
    }
    return best_lane;
  };

  // Values keyed by parent node id. Feeds seed the store. When the plan
  // carries a MemoryPlan, boundary values are staged into per-device arena
  // slots instead of staying in their own heap buffers.
  std::map<NodeId, Tensor> values;
  ExecutionArenas arenas(kNumeric ? plan.memory_plan() : nullptr);
  if constexpr (kNumeric) values = feeds;

  // Host-input transfer for GPU subgraphs (inputs are host-resident).
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    pending[static_cast<size_t>(ps.id)] = static_cast<int>(ps.dep_subgraphs.size());
    if (ps.device != DeviceKind::kGpu) continue;
    uint64_t host_bytes = 0;
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      if (plan.parent().node(f.parent_producer).is_input()) {
        host_bytes +=
            static_cast<uint64_t>(
                plan.parent().node(f.parent_producer).out_shape.numel()) *
            dtype_size(plan.parent().node(f.parent_producer).out_dtype);
      }
    }
    if (host_bytes > 0) {
      const double dt = devices_.link->transfer_time(host_bytes, with_noise);
      SimMetrics::get().transfer_bytes.add(host_bytes);
      SimMetrics::get().transfers.add(1);
      ready[static_cast<size_t>(ps.id)] = dt;
      if (record_timeline) {
        add_event({TimelineEvent::Kind::kTransfer, ps.id, DeviceKind::kGpu,
                   "h2d-input", 0.0, dt});
      }
      if (trace_id != 0) {
        telemetry::FlightRecorder::instance().record(
            telemetry::FlightKind::kTransfer, trace_id,
            static_cast<uint64_t>(ps.id), host_bytes,
            static_cast<uint8_t>(DeviceKind::kGpu));
      }
    }
  }

  size_t completed = 0;
  while (completed < n) {
    int best = -1;
    double best_start = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || pending[i] > 0) continue;
      const PlannedSubgraph& ps = plan.subgraphs()[i];
      const double start = std::max(
          ready[i], lane_free[static_cast<int>(ps.device)][earliest_lane(ps.device)]);
      if (best < 0 || start < best_start ||
          (start == best_start &&
           plan.partition().subgraphs[i].phase <
               plan.partition().subgraphs[static_cast<size_t>(best)].phase)) {
        best = static_cast<int>(i);
        best_start = start;
      }
    }
    DUET_CHECK_GE(best, 0) << "executor deadlock";

    const size_t i = static_cast<size_t>(best);
    const PlannedSubgraph& ps = plan.subgraphs()[i];
    Device& dev = devices_.device(ps.device);

    double exec_time = 0.0;
    if constexpr (kNumeric) {
      std::map<NodeId, Tensor> sub_feeds;
      for (const PlannedSubgraph::Feed& f : ps.feeds) {
        auto it = values.find(f.parent_producer);
        DUET_CHECK(it != values.end())
            << "missing value for parent node " << f.parent_producer;
        sub_feeds[f.input_node] = arenas.stage(ps.device, f.parent_producer, it->second);
      }
      Device::RunResult rr = dev.execute(ps.compiled, sub_feeds, with_noise);
      exec_time = rr.modeled_time_s;
      for (size_t o = 0; o < ps.produces.size(); ++o) {
        values[ps.produces[o]] = arenas.stage(ps.device, ps.produces[o], rr.outputs[o]);
      }
    } else {
      exec_time = dev.modeled_time(ps.compiled, with_noise);
    }
    // Queue pop + worker wake + dependency triggering (paper §IV-D).
    exec_time += executor_dispatch_overhead();
    SimMetrics::get().launches.add(1);
    SimMetrics::get().subgraph_us.observe(exec_time * 1e6);
    if (trace_id != 0) {
      telemetry::FlightRecorder::instance().record(
          telemetry::FlightKind::kLaunch, trace_id,
          static_cast<uint64_t>(ps.id),
          static_cast<uint64_t>(exec_time * 1e9),
          static_cast<uint8_t>(ps.device));
    }

    const double end = best_start + exec_time;
    finish[i] = end;
    done[i] = true;
    lane_free[static_cast<int>(ps.device)][earliest_lane(ps.device)] = end;
    ++completed;
    if (record_timeline) {
      add_event({TimelineEvent::Kind::kExec, ps.id, ps.device,
                 plan.partition().subgraphs[i].label, best_start, end});
    }

    // Trigger dependents; cross-device edges pay a transfer.
    for (int consumer : plan.consumers()[i]) {
      const size_t j = static_cast<size_t>(consumer);
      const PlannedSubgraph& cs = plan.subgraphs()[j];
      double avail = end;
      if (cs.device != ps.device) {
        uint64_t bytes = 0;
        for (const PlannedSubgraph::Feed& f : cs.feeds) {
          if (std::find(ps.produces.begin(), ps.produces.end(), f.parent_producer) !=
              ps.produces.end()) {
            const Node& p = plan.parent().node(f.parent_producer);
            bytes += static_cast<uint64_t>(p.out_shape.numel()) *
                     dtype_size(p.out_dtype);
          }
        }
        const double dt = devices_.link->transfer_time(bytes, with_noise);
        SimMetrics::get().transfer_bytes.add(bytes);
        SimMetrics::get().transfers.add(1);
        avail += dt;
        if (record_timeline) {
          add_event({TimelineEvent::Kind::kTransfer, ps.id, cs.device, "xfer",
                     end, end + dt});
        }
        if (trace_id != 0) {
          telemetry::FlightRecorder::instance().record(
              telemetry::FlightKind::kTransfer, trace_id,
              static_cast<uint64_t>(ps.id), bytes,
              static_cast<uint8_t>(cs.device));
        }
      }
      ready[j] = std::max(ready[j], avail);
      pending[j] -= 1;
    }
  }

  // Makespan, including the d2h transfer of user-facing GPU outputs.
  double latency = 0.0;
  std::map<NodeId, int> output_owner;
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    for (NodeId out : ps.produces) output_owner[out] = ps.id;
  }
  std::vector<double> output_available(plan.parent().outputs().size(), 0.0);
  for (size_t o = 0; o < plan.parent().outputs().size(); ++o) {
    const NodeId out = plan.parent().outputs()[o];
    const int owner = output_owner.at(out);
    double t = finish[static_cast<size_t>(owner)];
    if (plan.subgraphs()[static_cast<size_t>(owner)].device == DeviceKind::kGpu) {
      const Node& node = plan.parent().node(out);
      const uint64_t bytes =
          static_cast<uint64_t>(node.out_shape.numel()) * dtype_size(node.out_dtype);
      const double dt = devices_.link->transfer_time(bytes, with_noise);
      SimMetrics::get().transfer_bytes.add(bytes);
      SimMetrics::get().transfers.add(1);
      if (record_timeline) {
        add_event({TimelineEvent::Kind::kTransfer, owner, DeviceKind::kCpu,
                   "d2h-output", t, t + dt});
      }
      if (trace_id != 0) {
        telemetry::FlightRecorder::instance().record(
            telemetry::FlightKind::kTransfer, trace_id,
            static_cast<uint64_t>(owner), bytes,
            static_cast<uint8_t>(DeviceKind::kCpu));
      }
      t += dt;
    }
    output_available[o] = t;
    latency = std::max(latency, t);
  }
  // Also count subgraphs whose finish defines the makespan even without a
  // user-facing output (should not happen in a well-formed plan, but be safe).
  for (size_t i = 0; i < n; ++i) latency = std::max(latency, finish[i]);
  result.latency_s = latency;

  if constexpr (kNumeric) {
    result.outputs.reserve(plan.parent().outputs().size());
    for (NodeId out : plan.parent().outputs()) {
      auto it = values.find(out);
      DUET_CHECK(it != values.end()) << "output " << out << " was not produced";
      result.outputs.push_back(it->second);
    }
  }
  return result;
}

ExecutionResult SimExecutor::run(const ExecutionPlan& plan,
                                 const std::map<NodeId, Tensor>& feeds,
                                 bool with_noise) {
  // Wall-clock span for the whole numeric run; the per-subgraph virtual-time
  // spans land in the result's Timeline.
  telemetry::ScopedSpan span("sim-exec", "exec", plan.parent().name());
  return run_impl<true>(plan, feeds, with_noise, /*record_timeline=*/true);
}

double SimExecutor::run_latency_only(const ExecutionPlan& plan, bool with_noise) {
  static const std::map<NodeId, Tensor> kNoFeeds;
  return run_impl<false>(plan, kNoFeeds, with_noise, /*record_timeline=*/false)
      .latency_s;
}

}  // namespace duet
