#include "analysis/plan_validator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "graph/traversal.hpp"

namespace duet {
namespace {

bool is_compute(const Node& n) { return !n.is_input() && !n.is_constant(); }

bool valid_device(DeviceKind kind) {
  const int v = static_cast<int>(kind);
  return v >= 0 && v < kNumDeviceKinds;
}

// parent node id -> owning subgraph id, -1 when unowned. Computed locally so
// the validators work on corrupted partitions without touching the lazily
// built (and throwing) Partition::producer_subgraph index.
std::vector<int> owner_map(const Graph& parent, const Partition& partition,
                           VerifyResult* result) {
  std::vector<int> owner(parent.num_nodes(), -1);
  for (const Subgraph& sub : partition.subgraphs) {
    for (NodeId id : sub.parent_nodes) {
      if (id < 0 || static_cast<size_t>(id) >= parent.num_nodes()) {
        result->error_sub("partition-coverage", sub.id,
                          "subgraph lists nonexistent parent node %" +
                              std::to_string(id));
        continue;
      }
      if (owner[static_cast<size_t>(id)] >= 0) {
        result->error_sub("partition-overlap", sub.id,
                          "parent node %" + std::to_string(id) +
                              " already owned by subgraph #" +
                              std::to_string(owner[static_cast<size_t>(id)]));
        continue;
      }
      owner[static_cast<size_t>(id)] = sub.id;
    }
  }
  return owner;
}

}  // namespace

VerifyResult verify_partition(const Graph& parent, const Partition& partition) {
  VerifyResult result;
  const std::vector<int> owner = owner_map(parent, partition, &result);

  // Coverage: every live compute node belongs to a subgraph (dead code is
  // deliberately outside the partition).
  const std::vector<bool> live = live_nodes(parent);
  for (const Node& n : parent.nodes()) {
    if (!is_compute(n) || !live[static_cast<size_t>(n.id)]) continue;
    if (owner[static_cast<size_t>(n.id)] < 0) {
      result.error("partition-coverage", n.id,
                   "live compute node \"" + n.name + "\" not owned by any subgraph");
    }
  }

  // Phase bookkeeping: each subgraph in exactly one phase, phase back-refs
  // consistent.
  std::vector<int> phase_uses(partition.subgraphs.size(), 0);
  for (const Phase& phase : partition.phases) {
    for (int sid : phase.subgraphs) {
      if (sid < 0 || static_cast<size_t>(sid) >= partition.subgraphs.size()) {
        result.error_sub("phase-membership", sid,
                         "phase " + std::to_string(phase.index) +
                             " lists nonexistent subgraph");
        continue;
      }
      phase_uses[static_cast<size_t>(sid)] += 1;
      if (partition.subgraphs[static_cast<size_t>(sid)].phase != phase.index) {
        result.error_sub("phase-membership", sid,
                         "subgraph records phase " +
                             std::to_string(
                                 partition.subgraphs[static_cast<size_t>(sid)].phase) +
                             " but phase " + std::to_string(phase.index) +
                             " claims it");
      }
    }
  }
  for (size_t i = 0; i < phase_uses.size(); ++i) {
    if (phase_uses[i] != 1) {
      result.error_sub("phase-membership", static_cast<int>(i),
                       "subgraph appears in " + std::to_string(phase_uses[i]) +
                           " phases");
    }
  }

  // Boundary inputs must name valid parent producers outside the subgraph,
  // and compute producers must come from strictly earlier phases.
  for (const Subgraph& sub : partition.subgraphs) {
    for (const Subgraph::BoundaryInput& b : sub.boundary_inputs) {
      if (b.parent_producer < 0 ||
          static_cast<size_t>(b.parent_producer) >= parent.num_nodes()) {
        result.error_sub("boundary-producer", sub.id,
                         "boundary input names nonexistent parent node %" +
                             std::to_string(b.parent_producer));
        continue;
      }
      const int producer = owner[static_cast<size_t>(b.parent_producer)];
      if (producer == sub.id) {
        result.error_sub("boundary-producer", sub.id,
                         "boundary input %" + std::to_string(b.parent_producer) +
                             " is produced inside the subgraph itself");
        continue;
      }
      const Node& p = parent.node(b.parent_producer);
      if (!is_compute(p)) continue;  // parent graph input: always available
      if (producer < 0) {
        result.error_sub("boundary-producer", sub.id,
                         "boundary input %" + std::to_string(b.parent_producer) +
                             " is a compute node owned by no subgraph");
      } else if (partition.subgraphs[static_cast<size_t>(producer)].phase >=
                 sub.phase) {
        result.error_sub("phase-order", sub.id,
                         "depends on subgraph #" + std::to_string(producer) +
                             " of the same or a later phase");
      }
    }
  }
  result.set_artifact(parent.name());
  return result;
}

VerifyResult verify_placement(const Placement& placement, const Partition& partition) {
  VerifyResult result;
  if (placement.size() != partition.subgraphs.size()) {
    result.error_sub("placement-size", -1,
                     "placement covers " + std::to_string(placement.size()) +
                         " subgraphs, partition has " +
                         std::to_string(partition.subgraphs.size()));
    return result;  // per-subgraph checks would read out of range
  }
  for (size_t i = 0; i < placement.size(); ++i) {
    const DeviceKind kind = placement.of(static_cast<int>(i));
    if (!valid_device(kind)) {
      result.error_sub("placement-device", static_cast<int>(i),
                       "placed on invalid device kind " +
                           std::to_string(static_cast<int>(kind)));
    }
  }
  return result;
}

VerifyResult verify_plan(const PlanView& view) {
  VerifyResult result;
  const size_t n = view.partition.subgraphs.size();

  if (view.subgraphs.size() != n) {
    result.error_sub("plan-size", -1,
                     "plan holds " + std::to_string(view.subgraphs.size()) +
                         " subgraphs, partition has " + std::to_string(n));
  }
  for (size_t i = 0; i < view.subgraphs.size(); ++i) {
    if (view.subgraphs[i].id != static_cast<int>(i)) {
      result.error_sub("plan-size", static_cast<int>(i),
                       "planned subgraph at index " + std::to_string(i) +
                           " carries id " + std::to_string(view.subgraphs[i].id));
    }
  }

  const std::vector<int> owner = owner_map(view.parent, view.partition, &result);
  const auto device_of = [&](int sid) -> DeviceKind {
    return view.subgraphs[static_cast<size_t>(sid)].device;
  };

  // The compiled device of each subgraph must agree with the placement the
  // plan claims to implement.
  if (view.placement.size() == view.subgraphs.size()) {
    for (const PlannedSubgraph& ps : view.subgraphs) {
      if (ps.id < 0 || static_cast<size_t>(ps.id) >= view.placement.size()) continue;
      if (ps.device != view.placement.of(ps.id)) {
        result.error_sub("placement-consistency", ps.id,
                         "compiled for " +
                             std::string(device_kind_name(ps.device)) +
                             " but placed on " +
                             device_kind_name(view.placement.of(ps.id)));
      }
    }
  }

  // Required cross-device edges, derived from the feeds; and per-subgraph
  // feed/dep consistency.
  std::map<std::tuple<int, int, NodeId>, int> required;  // edge -> seen count
  for (const PlannedSubgraph& ps : view.subgraphs) {
    const std::set<int> deps(ps.dep_subgraphs.begin(), ps.dep_subgraphs.end());
    std::set<int> used_deps;
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      if (f.parent_producer < 0 ||
          static_cast<size_t>(f.parent_producer) >= view.parent.num_nodes()) {
        result.error_sub("feed-def", ps.id,
                         "feed names nonexistent parent node %" +
                             std::to_string(f.parent_producer));
        continue;
      }
      const Node& p = view.parent.node(f.parent_producer);
      if (p.is_input()) continue;  // host-resident model input
      const int src = owner[static_cast<size_t>(f.parent_producer)];
      if (src < 0 || static_cast<size_t>(src) >= view.subgraphs.size()) {
        result.error_sub("feed-def", ps.id,
                         "feed %" + std::to_string(f.parent_producer) +
                             " has no producing subgraph");
        continue;
      }
      if (!deps.count(src)) {
        result.error_sub("use-before-def", ps.id,
                         "consumes %" + std::to_string(f.parent_producer) +
                             " from subgraph #" + std::to_string(src) +
                             " without declaring the dependency");
      }
      used_deps.insert(src);
      if (device_of(src) != ps.device) {
        required[{src, ps.id, f.parent_producer}] = 0;
      }
    }
    for (int dep : deps) {
      if (!used_deps.count(dep)) {
        result.error_sub("dep-extraneous", ps.id,
                         "declares dependency on subgraph #" + std::to_string(dep) +
                             " but consumes none of its values");
      }
    }
  }

  // Transfer schedule: exactly one step per required edge, nothing else.
  for (const TransferStep& t : view.transfers) {
    const auto key = std::make_tuple(t.src_subgraph, t.dst_subgraph, t.parent_node);
    auto it = required.find(key);
    if (it == required.end()) {
      const bool ids_ok =
          t.src_subgraph >= 0 &&
          static_cast<size_t>(t.src_subgraph) < view.subgraphs.size() &&
          t.dst_subgraph >= 0 &&
          static_cast<size_t>(t.dst_subgraph) < view.subgraphs.size();
      if (ids_ok && device_of(t.src_subgraph) == device_of(t.dst_subgraph)) {
        result.error_sub("same-device-transfer", t.dst_subgraph,
                         "transfer of %" + std::to_string(t.parent_node) +
                             " from subgraph #" + std::to_string(t.src_subgraph) +
                             " stays on one device");
      } else {
        result.error_sub("spurious-transfer", t.dst_subgraph,
                         "transfer of %" + std::to_string(t.parent_node) +
                             " from subgraph #" + std::to_string(t.src_subgraph) +
                             " matches no cross-device edge");
      }
      continue;
    }
    if (++it->second > 1) {
      result.error_sub("duplicate-transfer", t.dst_subgraph,
                       "cross-device edge %" + std::to_string(t.parent_node) +
                           " (#" + std::to_string(t.src_subgraph) + " -> #" +
                           std::to_string(t.dst_subgraph) +
                           ") transferred more than once");
    }
  }
  for (const auto& [edge, count] : required) {
    if (count == 0) {
      result.error_sub("missing-transfer", std::get<1>(edge),
                       "cross-device edge %" + std::to_string(std::get<2>(edge)) +
                           " (#" + std::to_string(std::get<0>(edge)) + " -> #" +
                           std::to_string(std::get<1>(edge)) +
                           ") has no transfer step");
    }
  }

  // Step order: a permutation of the subgraph ids in which every declared
  // dependency precedes its consumer.
  {
    std::vector<int> position(view.subgraphs.size(), -1);
    bool permutation_ok = view.step_order.size() == view.subgraphs.size();
    for (size_t i = 0; i < view.step_order.size(); ++i) {
      const int sid = view.step_order[i];
      if (sid < 0 || static_cast<size_t>(sid) >= view.subgraphs.size() ||
          position[static_cast<size_t>(sid)] >= 0) {
        permutation_ok = false;
        break;
      }
      position[static_cast<size_t>(sid)] = static_cast<int>(i);
    }
    if (!permutation_ok) {
      result.error_sub("step-order", -1,
                       "step order is not a permutation of the subgraph ids");
    } else {
      for (const PlannedSubgraph& ps : view.subgraphs) {
        for (int dep : ps.dep_subgraphs) {
          if (dep < 0 || static_cast<size_t>(dep) >= view.subgraphs.size()) continue;
          if (position[static_cast<size_t>(dep)] >
              position[static_cast<size_t>(ps.id)]) {
            result.error_sub("step-order", ps.id,
                             "scheduled before its dependency subgraph #" +
                                 std::to_string(dep));
          }
        }
      }
    }
  }

  // consumers() must be the exact inverse of dep_subgraphs.
  if (view.consumers.size() == view.subgraphs.size()) {
    std::set<std::pair<int, int>> dep_edges;  // (producer, consumer)
    for (const PlannedSubgraph& ps : view.subgraphs) {
      for (int dep : ps.dep_subgraphs) dep_edges.insert({dep, ps.id});
    }
    std::set<std::pair<int, int>> consumer_edges;
    for (size_t i = 0; i < view.consumers.size(); ++i) {
      for (int c : view.consumers[i]) consumer_edges.insert({static_cast<int>(i), c});
    }
    if (dep_edges != consumer_edges) {
      result.error_sub("consumers-inverse", -1,
                       "consumer lists are not the inverse of the dependency lists");
    }
  } else {
    result.error_sub("consumers-inverse", -1,
                     "consumer table covers " + std::to_string(view.consumers.size()) +
                         " subgraphs, plan has " +
                         std::to_string(view.subgraphs.size()));
  }

  // Every parent output must be materialized by exactly one subgraph.
  std::map<NodeId, int> produced;
  for (const PlannedSubgraph& ps : view.subgraphs) {
    for (NodeId out : ps.produces) produced[out] += 1;
  }
  for (NodeId out : view.parent.outputs()) {
    if (out >= 0 && static_cast<size_t>(out) < view.parent.num_nodes() &&
        view.parent.node(out).is_input()) {
      continue;  // an output that is directly a model input needs no producer
    }
    const auto it = produced.find(out);
    if (it == produced.end()) {
      result.error("outputs-produced", out, "parent output produced by no subgraph");
    } else if (it->second > 1) {
      result.error("outputs-produced", out,
                   "parent output produced by " + std::to_string(it->second) +
                       " subgraphs");
    }
  }
  result.set_artifact(view.parent.name());
  return result;
}

VerifyResult verify_plan(const ExecutionPlan& plan) {
  VerifyResult result = verify_placement(plan.placement(), plan.partition());
  result.merge(verify_plan(PlanView{plan.parent(), plan.partition(),
                                    plan.placement(), plan.subgraphs(),
                                    plan.consumers(), plan.transfers(),
                                    plan.step_order()}));
  return result;
}

}  // namespace duet
