#pragma once

// Liveness analysis over an ExecutionPlan (ISSUE 2 tentpole, part 1): for
// every boundary value, on every device it touches, compute the def /
// last-use interval along the plan's launch order. A value produced on one
// device and consumed on the other has two intervals — the source copy (the
// remote consumer's transfer counts as a *use* of it) and the staged remote
// copy (def at the transfer). Graph outputs are live to end-of-plan.
//
// The step intervals drive the memory planner's packing order and the
// per-device peak report, but step positions alone cannot prove reuse safe:
// the threaded executor runs subgraphs concurrently, constrained only by the
// dependency (queue-trigger) edges. HappensBefore materializes that partial
// order; the planner and the race checker both reason over it.

#include <string>
#include <vector>

#include "runtime/plan.hpp"

namespace duet {

// The partial order the executors actually guarantee: s happens-before t iff
// there is a chain of dependency (queue-trigger) edges from s to t. Workers
// serialize same-device subgraphs, but in no statically known order, so two
// subgraphs without a chain are concurrent for every analysis here — even on
// one device.
class HappensBefore {
 public:
  explicit HappensBefore(const std::vector<PlannedSubgraph>& subgraphs);

  size_t size() const { return reach_.size(); }
  // Strict: a chain of one or more trigger edges leads from `before` to
  // `after`. Never true for before == after.
  bool ordered(int before, int after) const;

 private:
  std::vector<std::vector<bool>> reach_;
};

// One value's lifetime on one device.
struct ValueInterval {
  NodeId value = kInvalidNode;
  DeviceKind device = DeviceKind::kCpu;
  uint64_t bytes = 0;

  // Producing subgraph; -1 when the copy is staged from a host input at plan
  // entry (h2d of a model input consumed on the GPU).
  int def_subgraph = -1;
  // Subgraphs whose execution touches this copy: local consumers read it,
  // remote consumers read it while staging theirs (the transfer), and for a
  // staged copy the stager itself writes it.
  std::vector<int> uses;

  // Positions in step_order. def_step is the producer's position (or the
  // earliest consumer's for an entry-staged copy); last_use_step the latest
  // consumer's (def_step when the value is only ever written).
  int def_step = 0;
  int last_use_step = 0;
  // Graph outputs stay live past the last step (returned to the caller).
  bool held_to_end = false;
};

// Accesses of one value copy: its producing subgraph (if any) plus every
// use, deduplicated — the executions that touch the copy's memory.
std::vector<int> interval_accesses(int def_subgraph, const std::vector<int>& uses);

// True when every access in `a` is strictly happens-before every access in
// `b` — the condition under which b may safely reuse a's arena space. Shared
// by the memory planner (to pack) and the race checker (to re-prove the
// packing).
bool accesses_precede(const std::vector<int>& a, const std::vector<int>& b,
                      const HappensBefore& hb);

struct LivenessInfo {
  std::vector<ValueInterval> intervals;
  size_t num_steps = 0;

  // Sum of interval bytes per device (what per-tensor maps hold live).
  uint64_t naive_bytes[kNumDeviceKinds] = {0, 0};
  // Peak of simultaneously live bytes per device along the step order — the
  // lower bound any packing can hope for under that linearization.
  uint64_t peak_bytes[kNumDeviceKinds] = {0, 0};

  std::string to_string(const Graph& parent) const;
};

// Core analysis over plan components (tests corrupt individual pieces).
// `step_order` must be a permutation of the subgraph ids; positions of
// values outside it (never the case for a valid plan) fall back to 0.
LivenessInfo analyze_liveness(const Graph& parent,
                              const std::vector<PlannedSubgraph>& subgraphs,
                              const std::vector<int>& step_order);
LivenessInfo analyze_liveness(const ExecutionPlan& plan);

}  // namespace duet
