#include "analysis/liveness.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/string_util.hpp"
#include "graph/shape_inference.hpp"

namespace duet {

HappensBefore::HappensBefore(const std::vector<PlannedSubgraph>& subgraphs) {
  const size_t n = subgraphs.size();
  // Trigger edges: dep -> consumer. Ids outside [0, n) (corrupted plans)
  // contribute no edges.
  std::vector<std::vector<int>> out(n);
  for (const PlannedSubgraph& ps : subgraphs) {
    if (ps.id < 0 || static_cast<size_t>(ps.id) >= n) continue;
    for (int dep : ps.dep_subgraphs) {
      if (dep < 0 || static_cast<size_t>(dep) >= n) continue;
      out[static_cast<size_t>(dep)].push_back(ps.id);
    }
  }
  reach_.assign(n, std::vector<bool>(n, false));
  std::vector<int> stack;
  for (size_t s = 0; s < n; ++s) {
    stack.assign(out[s].begin(), out[s].end());
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      if (reach_[s][static_cast<size_t>(t)]) continue;
      reach_[s][static_cast<size_t>(t)] = true;
      for (int u : out[static_cast<size_t>(t)]) stack.push_back(u);
    }
  }
}

bool HappensBefore::ordered(int before, int after) const {
  if (before < 0 || static_cast<size_t>(before) >= reach_.size()) return false;
  if (after < 0 || static_cast<size_t>(after) >= reach_.size()) return false;
  return reach_[static_cast<size_t>(before)][static_cast<size_t>(after)];
}

std::vector<int> interval_accesses(int def_subgraph,
                                   const std::vector<int>& uses) {
  std::vector<int> acc = uses;
  if (def_subgraph >= 0) acc.push_back(def_subgraph);
  std::sort(acc.begin(), acc.end());
  acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
  return acc;
}

bool accesses_precede(const std::vector<int>& a, const std::vector<int>& b,
                      const HappensBefore& hb) {
  for (int x : a) {
    for (int y : b) {
      if (!hb.ordered(x, y)) return false;
    }
  }
  return true;
}

namespace {

uint64_t safe_value_bytes(const Graph& parent, NodeId value) {
  if (value < 0 || static_cast<size_t>(value) >= parent.num_nodes()) return 0;
  return node_output_bytes(parent.node(value));
}

}  // namespace

LivenessInfo analyze_liveness(const Graph& parent,
                              const std::vector<PlannedSubgraph>& subgraphs,
                              const std::vector<int>& step_order) {
  LivenessInfo info;
  info.num_steps = step_order.size();
  const size_t n = subgraphs.size();

  // Position of each subgraph in the launch order (0 fallback for ids a
  // corrupted order dropped — the race checker reports those).
  std::vector<int> pos(n, 0);
  for (size_t i = 0; i < step_order.size(); ++i) {
    const int sid = step_order[i];
    if (sid >= 0 && static_cast<size_t>(sid) < n) {
      pos[static_cast<size_t>(sid)] = static_cast<int>(i);
    }
  }
  const auto pos_of = [&](int sid) {
    return sid >= 0 && static_cast<size_t>(sid) < n
               ? pos[static_cast<size_t>(sid)]
               : 0;
  };

  const std::set<NodeId> outputs(parent.outputs().begin(),
                                 parent.outputs().end());

  // Consumers of each boundary value / host input, grouped per device.
  struct DeviceUses {
    std::vector<int> subgraphs[kNumDeviceKinds];
  };
  std::map<NodeId, DeviceUses> consumers;
  for (const PlannedSubgraph& ps : subgraphs) {
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      consumers[f.parent_producer].subgraphs[static_cast<int>(ps.device)]
          .push_back(ps.id);
    }
  }

  // Producer-side intervals (one per boundary value) plus staged remote
  // copies (one per consuming device other than the producer's).
  for (const PlannedSubgraph& ps : subgraphs) {
    for (NodeId value : ps.produces) {
      ValueInterval home;
      home.value = value;
      home.device = ps.device;
      home.bytes = safe_value_bytes(parent, value);
      home.def_subgraph = ps.id;
      home.def_step = pos_of(ps.id);
      home.last_use_step = home.def_step;
      home.held_to_end = outputs.count(value) > 0;

      const auto it = consumers.find(value);
      for (int d = 0; d < kNumDeviceKinds; ++d) {
        if (it == consumers.end()) break;
        const std::vector<int>& readers = it->second.subgraphs[d];
        if (readers.empty()) continue;
        // Every consumer — local or remote — reads the producer's copy (a
        // remote one reads it while staging its transfer).
        for (int c : readers) {
          home.uses.push_back(c);
          home.last_use_step = std::max(home.last_use_step, pos_of(c));
        }
        if (static_cast<DeviceKind>(d) == ps.device) continue;
        ValueInterval remote;
        remote.value = value;
        remote.device = static_cast<DeviceKind>(d);
        remote.bytes = home.bytes;
        remote.def_subgraph = readers.front();
        remote.uses = readers;
        remote.def_step = pos_of(readers.front());
        remote.last_use_step = remote.def_step;
        for (int c : readers) {
          remote.def_step = std::min(remote.def_step, pos_of(c));
          remote.last_use_step = std::max(remote.last_use_step, pos_of(c));
          if (pos_of(c) == remote.def_step) remote.def_subgraph = c;
        }
        info.intervals.push_back(std::move(remote));
      }
      info.intervals.push_back(std::move(home));
    }
  }

  // Host inputs consumed on the GPU get a staged device copy (the h2d
  // transfer at plan entry). CPU-side reads hit host memory directly, so
  // host inputs need no CPU interval.
  for (const auto& [value, uses] : consumers) {
    if (value < 0 || static_cast<size_t>(value) >= parent.num_nodes()) continue;
    if (!parent.node(value).is_input()) continue;
    const std::vector<int>& gpu_readers =
        uses.subgraphs[static_cast<int>(DeviceKind::kGpu)];
    if (gpu_readers.empty()) continue;
    ValueInterval staged;
    staged.value = value;
    staged.device = DeviceKind::kGpu;
    staged.bytes = safe_value_bytes(parent, value);
    staged.def_subgraph = -1;  // staged at entry, not written by a subgraph
    staged.uses = gpu_readers;
    staged.def_step = pos_of(gpu_readers.front());
    staged.last_use_step = staged.def_step;
    for (int c : gpu_readers) {
      staged.def_step = std::min(staged.def_step, pos_of(c));
      staged.last_use_step = std::max(staged.last_use_step, pos_of(c));
    }
    info.intervals.push_back(std::move(staged));
  }

  std::sort(info.intervals.begin(), info.intervals.end(),
            [](const ValueInterval& a, const ValueInterval& b) {
              return std::tie(a.device, a.def_step, a.value) <
                     std::tie(b.device, b.def_step, b.value);
            });

  // Naive footprint and step-order peak per device (sweep with a diff
  // array; held-to-end intervals never release).
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    std::vector<int64_t> delta(info.num_steps + 2, 0);
    for (const ValueInterval& iv : info.intervals) {
      if (static_cast<int>(iv.device) != d) continue;
      info.naive_bytes[d] += iv.bytes;
      const auto def = static_cast<size_t>(std::max(iv.def_step, 0));
      delta[std::min(def, info.num_steps)] += static_cast<int64_t>(iv.bytes);
      if (!iv.held_to_end) {
        const auto last = static_cast<size_t>(std::max(iv.last_use_step, 0));
        delta[std::min(last + 1, info.num_steps + 1)] -=
            static_cast<int64_t>(iv.bytes);
      }
    }
    int64_t live = 0;
    for (size_t t = 0; t < delta.size(); ++t) {
      live += delta[t];
      info.peak_bytes[d] =
          std::max(info.peak_bytes[d], static_cast<uint64_t>(std::max<int64_t>(live, 0)));
    }
  }
  return info;
}

LivenessInfo analyze_liveness(const ExecutionPlan& plan) {
  return analyze_liveness(plan.parent(), plan.subgraphs(), plan.step_order());
}

std::string LivenessInfo::to_string(const Graph& parent) const {
  std::ostringstream os;
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    const auto kind = static_cast<DeviceKind>(d);
    size_t count = 0;
    for (const ValueInterval& iv : intervals) {
      if (iv.device == kind) ++count;
    }
    os << "  " << device_kind_name(kind) << ": " << count << " values, naive "
       << human_bytes(naive_bytes[d]) << ", step-order peak "
       << human_bytes(peak_bytes[d]) << "\n";
  }
  for (const ValueInterval& iv : intervals) {
    os << "    %" << iv.value;
    if (iv.value >= 0 && static_cast<size_t>(iv.value) < parent.num_nodes()) {
      os << " \"" << parent.node(iv.value).name << "\"";
    }
    os << " on " << device_kind_name(iv.device) << " "
       << human_bytes(iv.bytes) << " [" << iv.def_step << ", "
       << (iv.held_to_end ? "end" : std::to_string(iv.last_use_step)) << "]";
    if (iv.def_subgraph < 0) {
      os << " staged at entry";
    } else {
      os << " def #" << iv.def_subgraph;
    }
    os << ", uses {";
    for (size_t i = 0; i < iv.uses.size(); ++i) {
      os << (i != 0U ? " #" : "#") << iv.uses[i];
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace duet
