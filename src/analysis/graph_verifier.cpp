#include "analysis/graph_verifier.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "graph/shape_inference.hpp"

namespace duet {
namespace {

std::string arity_to_string(OpArity a) {
  std::ostringstream os;
  if (a.max < 0) {
    os << ">= " << a.min;
  } else if (a.min == a.max) {
    os << a.min;
  } else {
    os << a.min << ".." << a.max;
  }
  return os.str();
}

}  // namespace

OpArity op_arity(OpType op) {
  switch (op) {
    case OpType::kInput:
    case OpType::kConstant:
      return {0, 0};
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kMul:
    case OpType::kBiasAdd:
    case OpType::kMatMul:
    case OpType::kBatchMatMul:
    case OpType::kEmbedding:
      return {2, 2};
    case OpType::kDense:
    case OpType::kConv2d:
      return {2, 3};  // optional bias
    case OpType::kBatchNorm:
    case OpType::kLayerNorm:
    case OpType::kMultiHeadAttention:
      return {3, 3};
    case OpType::kLSTM:
    case OpType::kGRU:
      return {3, 4};  // optional bias
    case OpType::kConcat:
      return {1, -1};
    case OpType::kReLU:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kGelu:
    case OpType::kAddScalar:
    case OpType::kMulScalar:
    case OpType::kIdentity:
    case OpType::kSoftmax:
    case OpType::kReduceSum:
    case OpType::kReduceMean:
    case OpType::kReduceMax:
    case OpType::kArgMax:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kTranspose2d:
    case OpType::kSliceRows:
    case OpType::kSeqLast:
    case OpType::kGlobalAvgPool:
    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d:
    case OpType::kElementwiseChain:
      return {1, 1};
  }
  return {0, -1};  // unknown op: accept anything, shape-infer will complain
}

VerifyResult GraphVerifier::verify(const Graph& graph) const {
  VerifyResult result;
  const size_t n = graph.num_nodes();
  // Nodes whose edges all resolved; semantic rules only run on these, so one
  // corrupted edge yields one structural diagnostic, not a cascade.
  std::vector<bool> structurally_ok(n, true);

  for (size_t i = 0; i < n; ++i) {
    const Node& node = graph.nodes()[i];
    if (static_cast<size_t>(node.id) != i) {
      result.error("dense-ids", static_cast<NodeId>(i),
                   "node at index " + std::to_string(i) + " carries id " +
                       std::to_string(node.id));
      structurally_ok[i] = false;
      continue;
    }
    for (NodeId in : node.inputs) {
      if (in < 0 || static_cast<size_t>(in) >= n) {
        result.error("dangling-input", node.id,
                     std::string(op_name(node.op)) + " reads nonexistent node %" +
                         std::to_string(in));
        structurally_ok[i] = false;
      } else if (in >= node.id) {
        // Dense ids are topological by construction, so a forward edge is how
        // a cycle manifests after bad graph surgery.
        result.error("acyclicity", node.id,
                     "input %" + std::to_string(in) +
                         " does not precede the node (forward edge / cycle)");
        structurally_ok[i] = false;
      }
    }
    const OpArity arity = op_arity(node.op);
    const int got = static_cast<int>(node.inputs.size());
    if (got < arity.min || (arity.max >= 0 && got > arity.max)) {
      result.error("arity", node.id,
                   std::string(op_name(node.op)) + " expects " +
                       arity_to_string(arity) + " inputs, got " +
                       std::to_string(got));
      structurally_ok[i] = false;
    }
  }

  // Consumer adjacency must be the exact inverse of the input lists (with
  // multiplicity: a node reading %x twice appears twice in consumers(x)).
  for (size_t i = 0; i < n; ++i) {
    if (!structurally_ok[i]) continue;
    const Node& node = graph.nodes()[i];
    for (NodeId in : node.inputs) {
      const auto& cons = graph.consumers(in);
      const auto uses =
          std::count(node.inputs.begin(), node.inputs.end(), in);
      const auto listed = std::count(cons.begin(), cons.end(), node.id);
      if (listed != uses) {
        result.error("consumer-index", node.id,
                     "reads %" + std::to_string(in) + " " + std::to_string(uses) +
                         "x but appears " + std::to_string(listed) +
                         "x in its consumer list");
        break;
      }
    }
  }

  // Terminals: constants must carry a tensor matching their declared type;
  // pre-bound inputs likewise.
  for (size_t i = 0; i < n; ++i) {
    const Node& node = graph.nodes()[i];
    if (!node.is_constant() && !(node.is_input() && node.value.defined())) continue;
    if (!node.value.defined()) {
      result.error("terminal-value", node.id,
                   "constant \"" + node.name + "\" has no bound value");
      continue;
    }
    if (!(node.value.shape() == node.out_shape) ||
        node.value.dtype() != node.out_dtype) {
      result.error("terminal-value", node.id,
                   "bound tensor is " + node.value.shape().to_string() + " " +
                       dtype_name(node.value.dtype()) + " but node declares " +
                       node.out_shape.to_string() + " " +
                       dtype_name(node.out_dtype));
    }
  }

  // Semantic types: re-derive and compare.
  if (options_.check_types) {
    for (size_t i = 0; i < n; ++i) {
      const Node& node = graph.nodes()[i];
      if (!structurally_ok[i] || node.is_input() || node.is_constant()) continue;
      try {
        const InferredType t = infer_node_type(graph, node);
        if (!(t.shape == node.out_shape)) {
          result.error("type-consistency", node.id,
                       std::string(op_name(node.op)) + " records shape " +
                           node.out_shape.to_string() + " but inference derives " +
                           t.shape.to_string());
        }
        if (t.dtype != node.out_dtype) {
          result.error("type-consistency", node.id,
                       std::string(op_name(node.op)) + " records dtype " +
                           dtype_name(node.out_dtype) + " but inference derives " +
                           dtype_name(t.dtype));
        }
      } catch (const Error& e) {
        result.error("shape-infer", node.id, e.what());
      }
    }
  }

  // Outputs must reference live nodes and exist at all.
  if (graph.outputs().empty()) {
    result.error("outputs", kInvalidNode, "graph has no outputs");
  }
  for (NodeId out : graph.outputs()) {
    if (out < 0 || static_cast<size_t>(out) >= n) {
      result.error("outputs", out, "output references nonexistent node");
    }
  }

  // Duplicate kInput names break ExecutionPlan's positional feed matching →
  // error; duplicates elsewhere only hurt readability → warning.
  std::map<std::string, NodeId> seen;
  for (const Node& node : graph.nodes()) {
    auto [it, inserted] = seen.emplace(node.name, node.id);
    if (inserted) continue;
    const std::string msg =
        "name \"" + node.name + "\" already used by node %" + std::to_string(it->second);
    if (node.is_input() && graph.node(it->second).is_input()) {
      result.error("unique-names", node.id, msg);
    } else {
      result.warning("unique-names", node.id, msg);
    }
  }

  result.set_artifact(graph.name());
  return result;
}

VerifyResult verify_graph(const Graph& graph, GraphVerifyOptions options) {
  return GraphVerifier(options).verify(graph);
}

}  // namespace duet
