#include "analysis/model_check/explorer.hpp"

#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace duet::mc {
namespace {

// Transition identity for sleep masks: (thread, branch) with branch < 2.
uint32_t transition_bit(const Transition& t) {
  return 1u << (static_cast<uint32_t>(t.thread) * 2u +
                static_cast<uint32_t>(t.branch));
}

bool independent(const Transition& a, const Transition& b) {
  if (a.thread == b.thread) return false;
  return (a.writes & (b.reads | b.writes)) == 0 &&
         (b.writes & (a.reads | a.writes)) == 0;
}

class Explorer {
 public:
  Explorer(const Protocol& protocol, const ExploreOptions& options)
      : protocol_(protocol), options_(options) {}

  ExploreResult run() {
    ProtocolState init = protocol_.initial();
    path_.clear();
    dfs(init, 0, 0);
    finish();
    return std::move(result_);
  }

 private:
  void record(const std::vector<Violation>& violations) {
    for (const Violation& v : violations) {
      auto [it, fresh] = first_by_rule_.emplace(v.rule, v.message);
      ++violation_counts_[v.rule];
      if (fresh && result_.counterexamples.size() <
                       options_.max_counterexamples) {
        std::ostringstream trace;
        trace << v.rule << ": ";
        for (size_t i = 0; i < path_.size(); ++i) {
          if (i != 0) trace << " -> ";
          trace << path_[i];
        }
        result_.counterexamples.push_back(trace.str());
      }
    }
  }

  void dfs(const ProtocolState& state, int depth, uint32_t sleep) {
    if (result_.states_visited >= options_.max_states) {
      result_.exhausted = false;
      return;
    }
    // Godefroid's cache-compatible sleep sets: a state stores the
    // intersection of the sleep sets it was reached with; revisiting with a
    // smaller sleep set re-explores exactly the newly-awake transitions.
    uint32_t awake_mask;
    const std::string key = state.encode();
    const auto it = visited_.find(key);
    if (it == visited_.end()) {
      visited_.emplace(key, sleep);
      ++result_.states_visited;
      awake_mask = ~sleep;
    } else {
      if ((it->second & ~sleep) == 0) return;  // nothing new to wake
      awake_mask = it->second & ~sleep;
      it->second &= sleep;
    }
    if (depth > result_.max_depth_seen) result_.max_depth_seen = depth;

    const std::vector<Transition> all = protocol_.enabled(state);
    std::vector<const Transition*> runnable;
    for (const Transition& t : all) {
      if (!options_.sleep_sets || (transition_bit(t) & awake_mask) != 0) {
        runnable.push_back(&t);
      }
    }
    if (all.empty()) {
      std::vector<Violation> violations;
      if (protocol_.all_terminated(state)) {
        protocol_.check_terminal(state, &violations);
      } else {
        violations.push_back(
            {"mc-lost-wakeup", "deadlock: " + protocol_.describe_blocked(state) +
                                   " blocked with no enabled transition"});
      }
      record(violations);
      return;
    }
    if (depth >= options_.max_depth) {
      result_.exhausted = false;
      return;
    }

    uint32_t explored = 0;  // siblings already expanded from this state
    for (const Transition* t : runnable) {
      std::vector<Violation> violations;
      ProtocolState next = protocol_.apply(state, *t, &violations);
      ++result_.transitions_executed;
      path_.push_back(t->label);
      record(violations);

      uint32_t child_sleep = 0;
      if (options_.sleep_sets) {
        // A slept transition is always still enabled (independence preserves
        // enabledness), so scanning the enabled set finds every candidate;
        // dropping a bit we cannot match is sound — just less pruning.
        const uint32_t candidates = (sleep | explored) & ~transition_bit(*t);
        for (const Transition& u : all) {
          if ((candidates & transition_bit(u)) != 0 && independent(*t, u)) {
            child_sleep |= transition_bit(u);
          }
        }
      }
      dfs(next, depth + 1, child_sleep);
      path_.pop_back();
      explored |= transition_bit(*t);
    }
  }

  void finish() {
    for (const auto& [rule, message] : first_by_rule_) {
      Diagnostic d;
      d.severity = Diagnostic::Severity::kError;
      d.rule = rule;
      d.context = "model-check";
      d.location.artifact =
          std::string("serve-protocol:") + variant_name(protocol_.config().variant);
      const uint64_t count = violation_counts_[rule];
      d.message = message;
      if (count > 1) {
        d.message += " (+" + std::to_string(count - 1) + " more)";
      }
      result_.findings.add(std::move(d));
    }
    if (!result_.exhausted) {
      Diagnostic d;
      d.severity = Diagnostic::Severity::kWarning;
      d.rule = "mc-depth-bound";
      d.context = "model-check";
      d.location.artifact =
          std::string("serve-protocol:") + variant_name(protocol_.config().variant);
      d.message = "exploration truncated at depth " +
                  std::to_string(options_.max_depth) + " / " +
                  std::to_string(options_.max_states) +
                  " states; invariants hold only for the explored prefix";
      result_.findings.add(std::move(d));
    }
    result_.findings.sort();
    result_.ok = result_.findings.error_count() == 0;
  }

  const Protocol& protocol_;
  const ExploreOptions& options_;
  ExploreResult result_;
  std::unordered_map<std::string, uint32_t> visited_;
  std::vector<std::string> path_;
  std::map<std::string, std::string> first_by_rule_;
  std::map<std::string, uint64_t> violation_counts_;
};

}  // namespace

std::string ExploreResult::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << ": " << states_visited << " states, "
     << transitions_executed << " transitions, max depth " << max_depth_seen
     << (exhausted ? ", exhaustive" : ", TRUNCATED");
  if (!findings.diagnostics().empty()) {
    os << ", " << findings.error_count() << " violation(s)";
  }
  return os.str();
}

ExploreResult explore(const ProtocolConfig& config,
                      const ExploreOptions& options) {
  const Protocol protocol(config);
  Explorer explorer(protocol, options);
  return explorer.run();
}

}  // namespace duet::mc
