#include "analysis/model_check/protocol.hpp"

#include <utility>

namespace duet::mc {
namespace {

// Shared-variable bits for the independence relation. Enabledness reads are
// included in `reads` (pop reads CLOSED+QUEUE, retire reads REFS, ...), which
// sleep-set soundness requires.
enum : uint32_t {
  kVarQueue = 1u << 0,  // queue_len + enqueued/dequeued ghosts
  kVarClosed = 1u << 1,
  kVarOffered = 1u << 2,
  kVarAccepted = 1u << 3,
  kVarRejected = 1u << 4,
  kVarShed = 1u << 5,
  kVarCompleted = 1u << 6,
  kVarVersion = 1u << 7,
  kVarRefs = 1u << 8,
  kVarRetired = 1u << 9,
};

// Producer program counters.
enum : uint8_t { kProdOffer = 0, kProdOfferWrite = 1, kProdPush = 2 };
// Consumer program counters.
enum : uint8_t { kConsPop = 0, kConsDecide = 1, kConsRun = 2 };
// Swapper program counters.
enum : uint8_t { kSwapBump = 0, kSwapRetire = 1 };

std::string thread_label(const ProtocolConfig& c, int thread) {
  if (thread < c.producers) return "p" + std::to_string(thread);
  if (thread < c.producers + c.consumers) {
    return "c" + std::to_string(thread - c.producers);
  }
  return thread == c.producers + c.consumers ? "swap" : "drain";
}

}  // namespace

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kCorrect:
      return "correct";
    case Variant::kNonAtomicCounter:
      return "non-atomic-counter";
    case Variant::kSilentDropOnFull:
      return "silent-drop-on-full";
    case Variant::kMissedCloseWakeup:
      return "missed-close-wakeup";
    case Variant::kUnrefSnapshot:
      return "unref-snapshot";
  }
  return "unknown";
}

std::string ProtocolState::encode() const {
  std::string out;
  out.reserve(16 + refs.size() + threads.size() * 3);
  const uint8_t scalars[] = {queue_len, closed,    offered,  accepted,
                             rejected,  shed,      completed, enqueued,
                             dequeued,  version,   retired};
  out.append(reinterpret_cast<const char*>(scalars), sizeof(scalars));
  out.append(reinterpret_cast<const char*>(refs.data()), refs.size());
  for (const Thread& t : threads) {
    out.push_back(static_cast<char>(t.pc));
    out.push_back(static_cast<char>(t.a));
    out.push_back(static_cast<char>(t.b));
  }
  return out;
}

Protocol::Protocol(ProtocolConfig config) : config_(std::move(config)) {}

int Protocol::num_threads() const {
  return config_.producers + config_.consumers + 2;  // + swapper + closer
}

ProtocolState Protocol::initial() const {
  ProtocolState s;
  s.refs.assign(static_cast<size_t>(config_.swaps) + 1, 0);
  s.threads.assign(static_cast<size_t>(num_threads()), {});
  for (int p = 0; p < config_.producers; ++p) {
    s.threads[static_cast<size_t>(p)].a =
        static_cast<uint8_t>(config_.requests_per_producer);
    if (config_.requests_per_producer == 0) {
      s.threads[static_cast<size_t>(p)].pc = ProtocolState::kDone;
    }
  }
  ProtocolState::Thread& swapper =
      s.threads[static_cast<size_t>(config_.producers + config_.consumers)];
  swapper.a = static_cast<uint8_t>(config_.swaps);
  if (config_.swaps == 0) swapper.pc = ProtocolState::kDone;
  return s;
}

std::vector<Transition> Protocol::enabled(const ProtocolState& s) const {
  std::vector<Transition> out;
  const int P = config_.producers;
  const int C = config_.consumers;
  const auto add = [&](int thread, int branch, uint32_t reads, uint32_t writes,
                       std::string op) {
    out.push_back(Transition{thread, branch, reads, writes,
                             thread_label(config_, thread) + "." +
                                 std::move(op)});
  };

  for (int p = 0; p < P; ++p) {
    const ProtocolState::Thread& t = s.threads[static_cast<size_t>(p)];
    switch (t.pc) {
      case kProdOffer:
        // Atomic fetch_add, or the load half of the seeded lost-update bug.
        add(p, 0, kVarOffered, config_.variant == Variant::kNonAtomicCounter
                                   ? 0
                                   : kVarOffered,
            "offer");
        break;
      case kProdOfferWrite:
        add(p, 0, 0, kVarOffered, "offer-store");
        break;
      case kProdPush:
        add(p, 0, kVarClosed | kVarQueue,
            kVarQueue | kVarAccepted | kVarRejected, "push");
        break;
      default:
        break;
    }
  }

  for (int c = 0; c < C; ++c) {
    const int thread = P + c;
    const ProtocolState::Thread& t = s.threads[static_cast<size_t>(thread)];
    switch (t.pc) {
      case kConsPop: {
        // Blocking pop: enabled when the wait predicate holds. The seeded
        // missed-wakeup variant waits on items alone, so closed+empty leaves
        // the consumer permanently blocked (found as a deadlock).
        const bool woken = config_.variant == Variant::kMissedCloseWakeup
                               ? s.queue_len > 0
                               : (s.queue_len > 0 || s.closed != 0);
        if (woken) add(thread, 0, kVarClosed | kVarQueue, kVarQueue, "pop");
        break;
      }
      case kConsDecide:
        add(thread, 0, 0, kVarShed, "shed");
        add(thread, 1, kVarVersion, kVarRefs, "snapshot");
        break;
      case kConsRun:
        add(thread, 0, kVarRetired, kVarCompleted | kVarRefs, "run");
        break;
      default:
        break;
    }
  }

  const int swapper = P + C;
  const ProtocolState::Thread& sw = s.threads[static_cast<size_t>(swapper)];
  if (sw.pc == kSwapBump) {
    add(swapper, 0, kVarVersion, kVarVersion, "swap");
  } else if (sw.pc == kSwapRetire) {
    // Grace window: retire only once no worker holds the old snapshot.
    if (s.refs[sw.b] == 0) {
      add(swapper, 0, kVarRefs, kVarRetired, "retire");
    }
  }

  const int closer = P + C + 1;
  if (s.threads[static_cast<size_t>(closer)].pc == 0) {
    // drain() may race submits; close() is a single mutex-protected store.
    add(closer, 0, 0, kVarClosed, "close");
  }
  return out;
}

ProtocolState Protocol::apply(const ProtocolState& s, const Transition& t,
                              std::vector<Violation>* violations) const {
  ProtocolState n = s;
  ProtocolState::Thread& th = n.threads[static_cast<size_t>(t.thread)];
  const int P = config_.producers;
  const int C = config_.consumers;

  if (t.thread < P) {
    switch (th.pc) {
      case kProdOffer:
        if (config_.variant == Variant::kNonAtomicCounter) {
          th.b = n.offered;  // load...
          th.pc = kProdOfferWrite;
        } else {
          ++n.offered;  // fetch_add
          th.pc = kProdPush;
        }
        break;
      case kProdOfferWrite:
        n.offered = static_cast<uint8_t>(th.b + 1);  // ...store: lost update
        th.pc = kProdPush;
        break;
      case kProdPush:
        if (n.closed != 0) {
          ++n.rejected;  // try_push -> kClosed
        } else if (n.queue_len >= config_.queue_capacity) {
          if (config_.variant == Variant::kSilentDropOnFull) {
            ++n.accepted;  // counted accepted, never enqueued
          } else {
            ++n.rejected;  // try_push -> kFull
          }
        } else {
          ++n.queue_len;  // try_push -> kAccepted
          ++n.enqueued;
          ++n.accepted;
        }
        --th.a;
        th.pc = th.a == 0 ? ProtocolState::kDone : kProdOffer;
        break;
      default:
        break;
    }
  } else if (t.thread < P + C) {
    switch (th.pc) {
      case kConsPop:
        if (n.queue_len > 0) {
          --n.queue_len;
          ++n.dequeued;
          th.pc = kConsDecide;
        } else {
          th.pc = ProtocolState::kDone;  // closed+empty: worker exits
        }
        break;
      case kConsDecide:
        if (t.branch == 0) {
          ++n.shed;  // deadline already missed: drop without executing
          th.pc = kConsPop;
        } else {
          th.a = n.version;  // snapshot under plan_mutex_
          if (config_.variant != Variant::kUnrefSnapshot) ++n.refs[th.a];
          th.pc = kConsRun;
        }
        break;
      case kConsRun:
        if ((n.retired >> th.a) & 1u) {
          if (violations != nullptr) {
            violations->push_back(
                {"mc-snapshot-retired",
                 t.label + " executes plan version " + std::to_string(th.a) +
                     " after swap + grace retired it"});
          }
        }
        ++n.completed;
        if (config_.variant != Variant::kUnrefSnapshot) --n.refs[th.a];
        th.pc = kConsPop;
        break;
      default:
        break;
    }
  } else if (t.thread == P + C) {
    if (th.pc == kSwapBump) {
      th.b = n.version;  // the plan this swap retires
      ++n.version;
      th.pc = kSwapRetire;
    } else {
      n.retired = static_cast<uint8_t>(n.retired | (1u << th.b));
      --th.a;
      th.pc = th.a == 0 ? ProtocolState::kDone : kSwapBump;
    }
  } else {
    n.closed = 1;
    th.pc = ProtocolState::kDone;
  }

  // Queue accounting holds in every reachable state, not just at the end:
  // try_push is tri-state-correct iff accepted counts exactly the enqueues.
  if (violations != nullptr) {
    if (n.accepted != n.enqueued) {
      violations->push_back(
          {"mc-queue-accounting",
           "after " + t.label + ": accepted=" + std::to_string(n.accepted) +
               " but enqueued=" + std::to_string(n.enqueued)});
    }
    if (n.enqueued != n.dequeued + n.queue_len) {
      violations->push_back(
          {"mc-queue-accounting",
           "after " + t.label + ": enqueued=" + std::to_string(n.enqueued) +
               " != dequeued " + std::to_string(n.dequeued) + " + queue " +
               std::to_string(n.queue_len)});
    }
    if (n.queue_len > config_.queue_capacity) {
      violations->push_back(
          {"mc-queue-accounting",
           "after " + t.label + ": queue length " +
               std::to_string(n.queue_len) + " exceeds capacity " +
               std::to_string(config_.queue_capacity)});
    }
  }
  return n;
}

bool Protocol::all_terminated(const ProtocolState& s) const {
  for (const ProtocolState::Thread& t : s.threads) {
    if (t.pc != ProtocolState::kDone) return false;
  }
  return true;
}

void Protocol::check_terminal(const ProtocolState& s,
                              std::vector<Violation>* violations) const {
  const int settled = s.completed + s.shed + s.rejected;
  if (s.offered != settled) {
    violations->push_back(
        {"mc-conservation",
         "at quiescence offered=" + std::to_string(s.offered) +
             " but completed+shed+rejected=" + std::to_string(settled) +
             " (completed=" + std::to_string(s.completed) +
             " shed=" + std::to_string(s.shed) +
             " rejected=" + std::to_string(s.rejected) + ")"});
  }
}

std::string Protocol::describe_blocked(const ProtocolState& s) const {
  std::string out;
  for (size_t i = 0; i < s.threads.size(); ++i) {
    if (s.threads[i].pc == ProtocolState::kDone) continue;
    if (!out.empty()) out += ", ";
    out += thread_label(config_, static_cast<int>(i));
  }
  return out;
}

}  // namespace duet::mc
