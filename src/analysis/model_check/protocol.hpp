#pragma once

// Small-scope abstraction of the serving runtime's concurrency protocol
// (ISSUE 6 tentpole, part 2). The real components — BoundedQueue's tri-state
// try_push / blocking pop (serve/request_queue.hpp), AdmissionCounters
// (serve/admission.hpp), and DuetServer's worker loop + plan swap
// (serve/server.cpp) — are modeled as a handful of interleavable atomic
// steps per thread, small enough for exhaustive exploration:
//
//   producers  submit(): offered++  ->  try_push -> accepted++/rejected++
//   consumers  worker_loop(): pop -> shed | (snapshot plan, run, release)
//   swapper    swap_plan(): version++ ; retire old once its refcount drains
//   closer     drain(): close() at any point (races with submits)
//
// The explorer (model_check/explorer.hpp) drives this machine through every
// interleaving (bounded, sleep-set pruned) and checks four invariants:
//
//   mc-conservation     offered == completed + shed + rejected at quiescence
//   mc-queue-accounting accepted == enqueued == dequeued + queue length,
//                       length never exceeds capacity (try_push tri-state)
//   mc-lost-wakeup      no thread blocks forever across drain/shutdown
//   mc-snapshot-retired no worker runs a plan retired by swap + grace
//
// Variants other than kCorrect re-introduce one known-bad implementation
// each; the negative tests prove the checker finds all of them.

#include <cstdint>
#include <string>
#include <vector>

namespace duet::mc {

enum class Variant : uint8_t {
  kCorrect = 0,
  // offered++ as separate load and store — the lost-update bug an atomic
  // fetch_add exists to prevent. Breaks conservation.
  kNonAtomicCounter,
  // try_push reports kAccepted on a full queue without enqueueing — the
  // caller's request silently vanishes. Breaks queue accounting.
  kSilentDropOnFull,
  // pop's wait predicate ignores closed — a consumer that finds the queue
  // empty after close() sleeps forever. Breaks drain/shutdown.
  kMissedCloseWakeup,
  // A worker snapshots the plan without taking a reference — the swapper's
  // grace period sees no holders and retires the plan under the worker.
  kUnrefSnapshot,
};

const char* variant_name(Variant v);

struct ProtocolConfig {
  int producers = 2;
  int consumers = 2;
  int requests_per_producer = 2;
  int queue_capacity = 2;
  int swaps = 1;
  Variant variant = Variant::kCorrect;
};

// Flat, byte-encodable global state. Thread locals: producers use `a` for
// remaining requests and `b` for the non-atomic load; consumers use `a` for
// the held plan version; the swapper uses `a` for remaining swaps and `b`
// for the version being retired.
struct ProtocolState {
  uint8_t queue_len = 0;
  uint8_t closed = 0;
  uint8_t offered = 0;
  uint8_t accepted = 0;
  uint8_t rejected = 0;
  uint8_t shed = 0;
  uint8_t completed = 0;
  uint8_t enqueued = 0;   // ghost: successful try_push count
  uint8_t dequeued = 0;   // ghost: successful pop count
  uint8_t version = 0;    // current plan version
  uint8_t retired = 0;    // bitmask over versions
  std::vector<uint8_t> refs;  // per-version snapshot holders

  struct Thread {
    uint8_t pc = 0;  // kDone once terminated
    uint8_t a = 0;
    uint8_t b = 0;
  };
  std::vector<Thread> threads;

  static constexpr uint8_t kDone = 0xFF;

  std::string encode() const;  // hashable byte string
};

// One interleavable step of one thread. `branch` disambiguates
// nondeterministic choices (a consumer at the shed decision has two).
// `reads`/`writes` are shared-variable bitmasks for the independence
// relation behind sleep-set pruning.
struct Transition {
  int thread = -1;
  int branch = 0;
  uint32_t reads = 0;
  uint32_t writes = 0;
  std::string label;  // e.g. "p0.push", "c1.run", "swap.retire"
};

struct Violation {
  std::string rule;  // mc-conservation / mc-queue-accounting / ...
  std::string message;
};

class Protocol {
 public:
  explicit Protocol(ProtocolConfig config);

  const ProtocolConfig& config() const { return config_; }
  int num_threads() const;

  ProtocolState initial() const;
  std::vector<Transition> enabled(const ProtocolState& s) const;

  // Applies `t` (must be enabled in `s`) and appends any invariant
  // violations observable at this step to `violations`.
  ProtocolState apply(const ProtocolState& s, const Transition& t,
                      std::vector<Violation>* violations) const;

  bool all_terminated(const ProtocolState& s) const;
  // Quiescence checks (conservation identity).
  void check_terminal(const ProtocolState& s,
                      std::vector<Violation>* violations) const;
  // Human-readable list of the threads stuck in a deadlocked state.
  std::string describe_blocked(const ProtocolState& s) const;

 private:
  ProtocolConfig config_;
};

}  // namespace duet::mc
