#pragma once

// Small-scope exhaustive interleaving explorer (ISSUE 6 tentpole, part 2):
// bounded DFS over the abstract serve protocol (model_check/protocol.hpp)
// with visited-state caching and sleep-set pruning (Godefroid) — two
// enabled transitions whose shared-variable footprints do not conflict are
// independent, and only one order of each independent pair is explored.
//
// Violations surface as structured Diagnostics under the mc-* rules of the
// lint catalogue, one per violated rule with the first counterexample trace
// attached, so `duet_cli lint` and the SARIF export treat proven protocol
// bugs exactly like plan lint findings.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/model_check/protocol.hpp"

namespace duet::mc {

struct ExploreOptions {
  int max_depth = 96;           // transitions along one interleaving
  uint64_t max_states = 2'000'000;  // distinct states before giving up
  bool sleep_sets = true;       // disable to measure the pruning
  size_t max_counterexamples = 8;
};

struct ExploreResult {
  bool ok = true;         // no error-severity findings
  bool exhausted = true;  // the bounded space was fully explored
  uint64_t states_visited = 0;
  uint64_t transitions_executed = 0;
  int max_depth_seen = 0;

  // One diagnostic per violated rule (error), plus an mc-depth-bound
  // warning when the exploration was truncated.
  VerifyResult findings;
  // "rule: t1 -> t2 -> ..." for the first few violations.
  std::vector<std::string> counterexamples;

  std::string summary() const;
};

ExploreResult explore(const ProtocolConfig& config,
                      const ExploreOptions& options = {});

}  // namespace duet::mc
