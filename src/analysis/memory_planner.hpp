#pragma once

// Static memory planner (ISSUE 2 tentpole, part 2): packs the liveness
// intervals of each device into arena offsets with first-fit over the
// intervals sorted by definition step. Two values may overlap in the arena
// only when one's every access happens-before the other's every access —
// the step intervals alone would falsely allow reuse between subgraphs the
// concurrent executor may run in either order (two unordered same-device
// subgraphs are serialized by the single worker, but in a dynamic order).
// The race checker (analysis/race_checker.hpp) independently re-proves the
// packing against the same partial order in checked mode.

#include "analysis/liveness.hpp"
#include "runtime/memory_plan.hpp"

namespace duet {

MemoryPlan plan_memory(const LivenessInfo& liveness, const HappensBefore& hb);
MemoryPlan plan_memory(const ExecutionPlan& plan);

}  // namespace duet
