#include "analysis/race_checker.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/liveness.hpp"
#include "graph/shape_inference.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {
namespace {

// Every race-checker diagnostic (error or warning) feeds the global
// "analysis.race_findings" counter so `duet_cli stats` surfaces them.
VerifyResult record_findings(VerifyResult result) {
  if (telemetry::enabled() && !result.diagnostics().empty()) {
    telemetry::counter("analysis.race_findings")
        .add(result.diagnostics().size());
  }
  return result;
}

Diagnostic race(std::string rule, NodeId value, int subgraph,
                std::string message) {
  Diagnostic d;
  d.severity = Diagnostic::Severity::kError;
  d.rule = std::move(rule);
  d.node = value;
  d.subgraph = subgraph;
  d.message = std::move(message);
  return d;
}

bool valid_id(int sid, size_t n) {
  return sid >= 0 && static_cast<size_t>(sid) < n;
}

}  // namespace

VerifyResult verify_races(const PlanView& view, const MemoryPlan* memory) {
  VerifyResult result;
  const size_t n = view.subgraphs.size();
  const HappensBefore hb(view.subgraphs);

  // Writers of each boundary value.
  std::map<NodeId, std::vector<int>> writers;
  for (const PlannedSubgraph& ps : view.subgraphs) {
    for (NodeId value : ps.produces) writers[value].push_back(ps.id);
  }

  // Launch-order positions, when the order is a usable permutation (the
  // plan validator reports malformed orders; -1 marks unscheduled ids).
  std::vector<int> pos(n, -1);
  if (view.step_order.size() == n) {
    for (size_t i = 0; i < view.step_order.size(); ++i) {
      const int sid = view.step_order[i];
      if (valid_id(sid, n)) pos[static_cast<size_t>(sid)] = static_cast<int>(i);
    }
  }

  // write/write: two producers of one value with no trigger chain between
  // them can interleave their stores.
  for (const auto& [value, who] : writers) {
    for (size_t i = 0; i < who.size(); ++i) {
      for (size_t j = i + 1; j < who.size(); ++j) {
        if (hb.ordered(who[i], who[j]) || hb.ordered(who[j], who[i])) continue;
        result.add(race("race-write-write", value, who[j],
                        "value %" + std::to_string(value) +
                            " written by subgraphs #" + std::to_string(who[i]) +
                            " and #" + std::to_string(who[j]) +
                            " with no happens-before edge"));
      }
    }
  }

  // read/write: every read must be ordered after the write it observes, both
  // in the partial order (the synchronization that exists) and in the launch
  // order (the schedule the queues replay).
  for (const PlannedSubgraph& ps : view.subgraphs) {
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      if (!valid_id(f.parent_producer, view.parent.num_nodes())) continue;
      if (view.parent.node(f.parent_producer).is_input()) continue;
      const auto it = writers.find(f.parent_producer);
      if (it == writers.end()) continue;  // feed-def reports the missing producer
      for (int writer : it->second) {
        if (writer == ps.id) continue;
        if (!hb.ordered(writer, ps.id)) {
          result.add(race("race-read-write", f.parent_producer, ps.id,
                          "subgraph #" + std::to_string(ps.id) + " reads %" +
                              std::to_string(f.parent_producer) +
                              " concurrently with its write in #" +
                              std::to_string(writer)));
        }
        if (valid_id(writer, n) && valid_id(ps.id, n) &&
            pos[static_cast<size_t>(writer)] >= 0 &&
            pos[static_cast<size_t>(ps.id)] >= 0 &&
            pos[static_cast<size_t>(writer)] > pos[static_cast<size_t>(ps.id)]) {
          result.add(race("race-step-order", f.parent_producer, ps.id,
                          "launch order schedules the read of %" +
                              std::to_string(f.parent_producer) + " in #" +
                              std::to_string(ps.id) + " (step " +
                              std::to_string(pos[static_cast<size_t>(ps.id)]) +
                              ") before its write in #" + std::to_string(writer) +
                              " (step " +
                              std::to_string(pos[static_cast<size_t>(writer)]) +
                              ")"));
        }
      }
    }
  }

  // Every transfer is a read of the source copy on the destination worker;
  // only a trigger chain src -> dst makes that DMA well-ordered.
  for (const TransferStep& t : view.transfers) {
    if (t.src_subgraph == t.dst_subgraph) continue;
    if (!hb.ordered(t.src_subgraph, t.dst_subgraph)) {
      result.add(race("race-transfer-order", t.parent_node, t.dst_subgraph,
                      "transfer of %" + std::to_string(t.parent_node) +
                          " from #" + std::to_string(t.src_subgraph) + " to #" +
                          std::to_string(t.dst_subgraph) +
                          " is not ordered by any trigger chain"));
    }
  }

  if (memory == nullptr) {
    result.set_artifact(view.parent.name());
    return record_findings(std::move(result));
  }

  // Slot coverage: the executors route every boundary value through its
  // arena slot, so a missing or mis-sized one is a correctness bug.
  const auto check_slot = [&](DeviceKind device, NodeId value, int subgraph) {
    if (!valid_id(value, view.parent.num_nodes())) return;
    const uint64_t want = node_output_bytes(view.parent.node(value));
    const ArenaSlot* slot = memory->find(device, value);
    if (slot == nullptr) {
      result.add(race("slot-missing", value, subgraph,
                      "no " + std::string(device_kind_name(device)) +
                          " arena slot for boundary value %" +
                          std::to_string(value)));
    } else if (slot->bytes != want) {
      result.add(race("slot-size", value, subgraph,
                      "arena slot for %" + std::to_string(value) + " holds " +
                          std::to_string(slot->bytes) + " bytes, value needs " +
                          std::to_string(want)));
    }
  };
  for (const PlannedSubgraph& ps : view.subgraphs) {
    for (NodeId value : ps.produces) check_slot(ps.device, value, ps.id);
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      if (!valid_id(f.parent_producer, view.parent.num_nodes())) continue;
      if (view.parent.node(f.parent_producer).is_input()) {
        // Host inputs are staged only onto the GPU; CPU reads host memory.
        if (ps.device == DeviceKind::kGpu) {
          check_slot(DeviceKind::kGpu, f.parent_producer, ps.id);
        }
        continue;
      }
      check_slot(ps.device, f.parent_producer, ps.id);
    }
  }

  // Arena aliasing: overlapping byte ranges are only safe when every access
  // of one tenant happens-before every access of the other (and the earlier
  // tenant is not a graph output, which must survive to the end).
  const std::vector<ArenaSlot>& slots = memory->slots();
  std::vector<std::vector<int>> accesses(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    accesses[i] = interval_accesses(slots[i].def_subgraph, slots[i].uses);
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    const ArenaSlot& a = slots[i];
    if (a.bytes == 0) continue;
    for (size_t j = i + 1; j < slots.size(); ++j) {
      const ArenaSlot& b = slots[j];
      if (b.bytes == 0 || b.device != a.device) continue;
      if (a.offset + a.bytes <= b.offset || b.offset + b.bytes <= a.offset) {
        continue;  // disjoint ranges
      }
      const bool a_first =
          !a.held_to_end && accesses_precede(accesses[i], accesses[j], hb);
      const bool b_first =
          !b.held_to_end && accesses_precede(accesses[j], accesses[i], hb);
      if (a_first || b_first) continue;
      result.add(race("race-slot-alias", b.value, b.def_subgraph,
                      "values %" + std::to_string(a.value) + " and %" +
                          std::to_string(b.value) + " overlap in the " +
                          device_kind_name(a.device) +
                          " arena without a happens-before order between "
                          "their accesses"));
    }
  }
  result.set_artifact(view.parent.name());
  return record_findings(std::move(result));
}

VerifyResult verify_races(const ExecutionPlan& plan) {
  return verify_races(PlanView{plan.parent(), plan.partition(),
                               plan.placement(), plan.subgraphs(),
                               plan.consumers(), plan.transfers(),
                               plan.step_order()},
                      plan.memory_plan());
}

}  // namespace duet
