#pragma once

// GraphVerifier: structural + semantic well-formedness checks for the graph
// IR, run between compiler passes in checked mode (the Relay/chainer-compiler
// pass-contract discipline). Unlike Graph::validate(), which throws on the
// first structural problem, the verifier collects every violation with a
// stable rule slug so PassManager can report *which pass* broke *which
// invariant* on *which node*.
//
// Invariant catalogue (docs/verification.md): dense-ids, dangling-input,
// acyclicity, arity, terminal-value, shape-infer, type-consistency,
// consumer-index, outputs, unique-names.

#include "analysis/diagnostics.hpp"
#include "graph/graph.hpp"

namespace duet {

// Positional input arity contract per OpType. max < 0 means unbounded
// (kConcat). Terminals take zero inputs.
struct OpArity {
  int min = 0;
  int max = 0;
};
OpArity op_arity(OpType op);

struct GraphVerifyOptions {
  // Re-derive every compute node's output shape/dtype via shape inference
  // and compare against the recorded type. The expensive half of the
  // verifier; structural rules always run.
  bool check_types = true;
};

class GraphVerifier {
 public:
  explicit GraphVerifier(GraphVerifyOptions options = {}) : options_(options) {}

  VerifyResult verify(const Graph& graph) const;

 private:
  GraphVerifyOptions options_;
};

// Convenience wrapper.
VerifyResult verify_graph(const Graph& graph, GraphVerifyOptions options = {});

}  // namespace duet
