#pragma once

// Structured diagnostics for the static verification layer (ISSUE 1). Every
// checker in src/analysis reports violations as Diagnostic records — rule
// slug, offending node / subgraph, and the component (pass, scheduler) that
// produced the artifact — instead of throwing on the first problem. A
// VerifyResult accumulates them so a single run reports every broken
// invariant; throw_if_failed converts the batch into a VerifyError for
// callers that want fail-fast semantics (PassManager, DuetEngine).

#include <string>
#include <vector>

#include "common/error.hpp"
#include "graph/graph.hpp"

namespace duet {

// Where a finding anchors. Every checker names the artifact it inspected
// (usually the model/graph name); the repo file + line are optional — when a
// diagnostic leaves them empty, the SARIF exporter falls back to the rule
// catalogue's per-rule anchor file (analysis/lint/rules.hpp).
struct SourceLocation {
  std::string artifact;  // inspected artifact, e.g. the model name
  std::string file;      // repo-relative file, when the finding has one
  int line = 0;          // 1-based; 0 = unknown
  int step = -1;         // position in a plan's launch order, when applicable
};

struct Diagnostic {
  enum class Severity { kError, kWarning };

  Severity severity = Severity::kError;
  std::string rule;              // stable rule id, e.g. "arity", "sync-elision"
  NodeId node = kInvalidNode;    // offending graph node, when applicable
  int subgraph = -1;             // offending subgraph id, when applicable
  std::string context;           // producing component, e.g. a pass name
  std::string message;
  SourceLocation location;

  // "error[arity] node %3 (pass fusion) [wide-deep]: dense expects 2..3
  // inputs, got 1"
  std::string to_string() const;
};

const char* severity_name(Diagnostic::Severity severity);

class VerifyResult {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void error(std::string rule, NodeId node, std::string message);
  void error_sub(std::string rule, int subgraph, std::string message);
  void warning(std::string rule, NodeId node, std::string message);
  void merge(VerifyResult other);

  // Stamps `context` (typically the pass name) on every diagnostic that does
  // not carry one yet.
  void attribute(const std::string& context);

  // Stamps `location.artifact` (typically the model name) on every
  // diagnostic that does not carry one yet.
  void set_artifact(const std::string& artifact);

  // Deterministic order for reports: severity (errors first), then rule,
  // artifact, subgraph, node, step, message.
  void sort();

  bool ok() const { return error_count() == 0; }
  size_t error_count() const;
  size_t warning_count() const { return diagnostics_.size() - error_count(); }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  // True if any error diagnostic carries `rule`.
  bool has_error(const std::string& rule) const;

  std::string to_string() const;

  // Throws VerifyError carrying all diagnostics when any error is present.
  void throw_if_failed(const std::string& what) const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

// Error thrown by checked-mode verification; keeps the structured
// diagnostics so callers (tests, the CLI) can inspect pass/rule/node
// attribution instead of parsing the message.
class VerifyError : public Error {
 public:
  VerifyError(const std::string& what, std::vector<Diagnostic> diagnostics);
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  std::vector<Diagnostic> diagnostics_;
};

// --- checked mode -------------------------------------------------------------
// Global toggle for the expensive verification hooks (verifier after every
// pass, plan validation in DuetEngine). On by default so tests and the CLI
// get it for free; benchmarks opt out (bench/bench_util.hpp) since they
// measure steady-state performance of already-verified pipelines.
bool verification_enabled();
void set_verification_enabled(bool enabled);

// RAII toggle for tests.
class ScopedVerification {
 public:
  explicit ScopedVerification(bool enabled)
      : previous_(verification_enabled()) {
    set_verification_enabled(enabled);
  }
  ~ScopedVerification() { set_verification_enabled(previous_); }
  ScopedVerification(const ScopedVerification&) = delete;
  ScopedVerification& operator=(const ScopedVerification&) = delete;

 private:
  bool previous_;
};

}  // namespace duet
