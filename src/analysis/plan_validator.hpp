#pragma once

// Static validators for the scheduling artifacts (ISSUE 1 tentpole, part 3):
//
//   * verify_partition  — Partition vs parent graph: every live compute node
//     owned by exactly one subgraph, phases consistent, boundary producers
//     sane.
//   * verify_placement  — Placement vs Partition: every subgraph placed,
//     device kinds valid.
//   * verify_plan       — ExecutionPlan vs partitioned graph: feeds resolve,
//     no use-before-def (every non-input feed backed by a declared dep),
//     exactly one transfer per cross-device edge and none for same-device
//     edges, step order respects dependencies, consumers lists are the exact
//     inverse of deps, every parent output produced once.
//
// All validators return structured diagnostics (analysis/diagnostics.hpp)
// instead of throwing, so a broken scheduler surfaces every violated rule at
// once. PlanView exists so tests can corrupt individual plan components
// without mutable access to ExecutionPlan.

#include "analysis/diagnostics.hpp"
#include "runtime/plan.hpp"

namespace duet {

VerifyResult verify_partition(const Graph& parent, const Partition& partition);
VerifyResult verify_placement(const Placement& placement, const Partition& partition);

// A borrowed view of a plan's components; every reference must outlive the
// view. Tests build corrupted views from copies of a valid plan's vectors.
struct PlanView {
  const Graph& parent;
  const Partition& partition;
  const Placement& placement;
  const std::vector<PlannedSubgraph>& subgraphs;
  const std::vector<std::vector<int>>& consumers;
  const std::vector<TransferStep>& transfers;
  const std::vector<int>& step_order;
};

VerifyResult verify_plan(const PlanView& view);
VerifyResult verify_plan(const ExecutionPlan& plan);

}  // namespace duet
