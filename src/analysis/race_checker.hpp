#pragma once

// Plan-level happens-before race checker (ISSUE 2 tentpole, part 3). The
// threaded executor runs subgraphs concurrently, ordered only by the queue
// trigger edges (dep_subgraphs); two subgraphs without a trigger chain are
// concurrent — even on one device, where the single worker serializes them
// in a dynamically chosen order. This checker builds that partial order and
// reports, as structured diagnostics, every pair of conflicting accesses it
// does not cover:
//
//   * race-read-write     — a subgraph reads a value whose producer is not
//                           happens-before it
//   * race-write-write    — two subgraphs write the same value unordered
//   * race-transfer-order — a TransferStep's destination is not ordered
//                           after its source
//   * race-step-order     — the launch order schedules a read before the
//                           write it needs (a shuffled/corrupted step order)
//   * race-slot-alias     — two values overlap in the arena without every
//                           access of one preceding every access of the other
//   * slot-missing / slot-size — the MemoryPlan lacks (or mis-sizes) a slot
//                           a boundary value needs on some device
//
// Verified in checked mode by DuetEngine alongside the PR 1 validators.

#include "analysis/plan_validator.hpp"
#include "runtime/memory_plan.hpp"

namespace duet {

// `memory` may be null (plan without a memory plan): the access-order rules
// still run, the slot rules are skipped.
VerifyResult verify_races(const PlanView& view, const MemoryPlan* memory);
VerifyResult verify_races(const ExecutionPlan& plan);

}  // namespace duet
