#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <tuple>

namespace duet {

namespace {
std::atomic<bool> g_verification_enabled{true};
}  // namespace

bool verification_enabled() {
  return g_verification_enabled.load(std::memory_order_relaxed);
}

void set_verification_enabled(bool enabled) {
  g_verification_enabled.store(enabled, std::memory_order_relaxed);
}

const char* severity_name(Diagnostic::Severity severity) {
  return severity == Diagnostic::Severity::kError ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << rule << "]";
  if (node != kInvalidNode) os << " node %" << node;
  if (subgraph >= 0) os << " subgraph #" << subgraph;
  if (location.step >= 0) os << " step " << location.step;
  if (!context.empty()) os << " (" << context << ")";
  if (!location.artifact.empty()) os << " [" << location.artifact << "]";
  os << ": " << message;
  return os.str();
}

void VerifyResult::error(std::string rule, NodeId node, std::string message) {
  add({Diagnostic::Severity::kError, std::move(rule), node, -1, {},
       std::move(message)});
}

void VerifyResult::error_sub(std::string rule, int subgraph, std::string message) {
  add({Diagnostic::Severity::kError, std::move(rule), kInvalidNode, subgraph, {},
       std::move(message)});
}

void VerifyResult::warning(std::string rule, NodeId node, std::string message) {
  add({Diagnostic::Severity::kWarning, std::move(rule), node, -1, {},
       std::move(message)});
}

void VerifyResult::merge(VerifyResult other) {
  for (Diagnostic& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

void VerifyResult::attribute(const std::string& context) {
  for (Diagnostic& d : diagnostics_) {
    if (d.context.empty()) d.context = context;
  }
}

void VerifyResult::set_artifact(const std::string& artifact) {
  for (Diagnostic& d : diagnostics_) {
    if (d.location.artifact.empty()) d.location.artifact = artifact;
  }
}

void VerifyResult::sort() {
  const auto key = [](const Diagnostic& d) {
    return std::make_tuple(d.severity != Diagnostic::Severity::kError, d.rule,
                           d.location.artifact, d.subgraph, d.node,
                           d.location.step, d.message);
  };
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
}

size_t VerifyResult::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Diagnostic::Severity::kError) ++n;
  }
  return n;
}

bool VerifyResult::has_error(const std::string& rule) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Diagnostic::Severity::kError && d.rule == rule) return true;
  }
  return false;
}

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) os << "  " << d.to_string() << "\n";
  return os.str();
}

void VerifyResult::throw_if_failed(const std::string& what) const {
  if (ok()) return;
  std::ostringstream os;
  os << what << " (" << error_count() << " invariant violation"
     << (error_count() == 1 ? "" : "s") << "):\n"
     << to_string();
  throw VerifyError(os.str(), diagnostics_);
}

VerifyError::VerifyError(const std::string& what, std::vector<Diagnostic> diagnostics)
    : Error(what), diagnostics_(std::move(diagnostics)) {}

}  // namespace duet
