#pragma once

// Descriptor-driven lint framework (ISSUE 6 tentpole). A LintPass is one
// named analysis over a plan (and optionally the plan it replaced): it
// declares a stable primary rule id plus default severity, and reports
// structured Diagnostics. LintSuite::standard() bundles the shipped passes;
// DuetEngine runs it in checked mode after the plan validator and race
// checker, and `duet_cli lint` surfaces it (text / JSON / SARIF).
//
// Passes reuse PlanView (analysis/plan_validator.hpp) so corruption tests can
// substitute individual plan components, exactly like test_verifier.cpp does
// for the validators.

#include <memory>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/plan_validator.hpp"
#include "runtime/memory_plan.hpp"

namespace duet::lint {

// What a pass inspects. `previous` / `previous_memory` describe the plan an
// in-flight recalibration swap retires (nullable; only the swap-audit pass
// reads them — a worker holding the old snapshot may still touch its
// held-to-end slots during the grace window).
struct LintInput {
  PlanView view;
  const MemoryPlan* memory = nullptr;
  const PlanView* previous = nullptr;
  const MemoryPlan* previous_memory = nullptr;
};

// Borrows everything from `plan`; the plan must outlive the input.
LintInput make_input(const ExecutionPlan& plan);

class LintPass {
 public:
  virtual ~LintPass() = default;

  // Primary rule id this pass reports under (== an entry in
  // lint/rules.hpp; a pass may report secondary rules too).
  virtual const char* id() const = 0;
  virtual Diagnostic::Severity severity() const = 0;
  virtual VerifyResult run(const LintInput& input) const = 0;
};

// The shipped passes (analysis/lint/passes.cpp).
std::unique_ptr<LintPass> make_boundary_type_pass();
std::unique_ptr<LintPass> make_redundant_transfer_pass();
std::unique_ptr<LintPass> make_sync_elision_pass();
std::unique_ptr<LintPass> make_dead_subgraph_pass();
std::unique_ptr<LintPass> make_plan_swap_alias_pass();
// Symbolic batch-polymorphism audits (ISSUE 7; analysis/symbolic/).
std::unique_ptr<LintPass> make_symbolic_shape_pass();
std::unique_ptr<LintPass> make_transfer_blowup_pass();
// Visibility note for the latency evaluator's 64-subgraph memo bitset.
std::unique_ptr<LintPass> make_memo_bitset_pass();
// Metric-registry hygiene: flags families of metric names that embed
// per-entity numeric ids (unbounded series cardinality; ISSUE 8).
std::unique_ptr<LintPass> make_unbounded_series_pass();

class LintSuite {
 public:
  // All shipped passes, registration order == catalogue order.
  static LintSuite standard();

  void add(std::unique_ptr<LintPass> pass);
  const std::vector<std::unique_ptr<LintPass>>& passes() const {
    return passes_;
  }

  // Runs every pass, stamps each diagnostic's context with the producing
  // pass id and its artifact with the parent graph's name, and returns the
  // merged result in deterministic order (VerifyResult::sort).
  VerifyResult run(const LintInput& input) const;
  VerifyResult run(const ExecutionPlan& plan) const {
    return run(make_input(plan));
  }

 private:
  std::vector<std::unique_ptr<LintPass>> passes_;
};

}  // namespace duet::lint
