// The shipped lint passes (ISSUE 6 tentpole). Each pass assumes the plan
// validator's structural rules already ran — ids that fail its checks are
// skipped here rather than re-reported, so one corruption yields one
// diagnostic from the checker that owns the rule.

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint/lint.hpp"
#include "analysis/liveness.hpp"
#include "analysis/symbolic/sym_cost.hpp"
#include "analysis/symbolic/sym_shape_inference.hpp"
#include "device/device.hpp"
#include "graph/shape_inference.hpp"
#include "telemetry/metrics.hpp"

namespace duet::lint {
namespace {

bool valid_node(NodeId id, const Graph& graph) {
  return id >= 0 && static_cast<size_t>(id) < graph.num_nodes();
}

// id -> index into view.subgraphs (identity for a valid plan; corrupted views
// may break the alignment, so passes always go through this map).
std::map<int, size_t> subgraph_index(const PlanView& view) {
  std::map<int, size_t> index;
  for (size_t i = 0; i < view.subgraphs.size(); ++i) {
    index.emplace(view.subgraphs[i].id, i);
  }
  return index;
}

Diagnostic finding(Diagnostic::Severity severity, std::string rule, NodeId node,
                   int subgraph, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.rule = std::move(rule);
  d.node = node;
  d.subgraph = subgraph;
  d.message = std::move(message);
  return d;
}

// --- boundary-type -----------------------------------------------------------
// The plan builder resolves compiled placeholder ids back to parent node ids;
// this pass re-proves that the types survived extraction + optimization: every
// placeholder a feed routes into, and every compiled output a `produces`
// entry maps out of, must carry the parent node's shape and dtype. A mismatch
// means the executor will hand a kernel a differently-shaped buffer than the
// code was compiled for.
class BoundaryTypePass final : public LintPass {
 public:
  const char* id() const override { return "boundary-type"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kError;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    const Graph& parent = input.view.parent;
    for (const PlannedSubgraph& ps : input.view.subgraphs) {
      const Graph& cg = ps.compiled.graph();
      for (const PlannedSubgraph::Feed& f : ps.feeds) {
        if (!valid_node(f.parent_producer, parent)) continue;  // feed-def
        if (!valid_node(f.input_node, cg)) continue;           // feed-def
        check(result, severity(), parent.node(f.parent_producer),
              cg.node(f.input_node), ps.id, "placeholder");
      }
      const std::vector<NodeId>& outs = cg.outputs();
      if (outs.size() != ps.produces.size()) {
        result.add(finding(
            severity(), id(), kInvalidNode, ps.id,
            "produces lists " + std::to_string(ps.produces.size()) +
                " parent values but the compiled graph has " +
                std::to_string(outs.size()) + " outputs"));
        continue;
      }
      for (size_t i = 0; i < outs.size(); ++i) {
        if (!valid_node(ps.produces[i], parent)) continue;  // outputs-produced
        if (!valid_node(outs[i], cg)) continue;             // graph verifier
        check(result, severity(), parent.node(ps.produces[i]), cg.node(outs[i]),
              ps.id, "output");
      }
    }
    return result;
  }

 private:
  static void check(VerifyResult& result, Diagnostic::Severity severity,
                    const Node& parent_node, const Node& compiled_node, int sid,
                    const char* role) {
    if (compiled_node.out_shape == parent_node.out_shape &&
        compiled_node.out_dtype == parent_node.out_dtype) {
      return;
    }
    result.add(finding(
        severity, "boundary-type", parent_node.id, sid,
        std::string(role) + " for %" + std::to_string(parent_node.id) +
            " is " + compiled_node.out_shape.to_string() + " " +
            dtype_name(compiled_node.out_dtype) + " but the parent declares " +
            parent_node.out_shape.to_string() + " " +
            dtype_name(parent_node.out_dtype)));
  }
};

// --- sync-elision ------------------------------------------------------------
// Every cross-device read must be dominated by a transfer-complete edge: some
// transfer stages the value onto the reader's device, and that staging either
// IS the reader (it awaits the DMA itself) or happens-before it through the
// queue-trigger order. missing-transfer proves a transfer exists per edge;
// this pass re-proves the *synchronization*, so a plan that elides a sync
// edge (e.g. after dependency surgery) is caught even when the transfer list
// still looks complete.
class SyncElisionPass final : public LintPass {
 public:
  const char* id() const override { return "sync-elision"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kError;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    const PlanView& view = input.view;
    const Graph& parent = view.parent;
    const std::map<int, size_t> index = subgraph_index(view);
    const HappensBefore hb(view.subgraphs);

    std::map<NodeId, int> producer;  // value -> producing subgraph id
    for (const PlannedSubgraph& ps : view.subgraphs) {
      for (NodeId value : ps.produces) producer.emplace(value, ps.id);
    }
    const auto device_of = [&](int sid) -> const DeviceKind* {
      const auto it = index.find(sid);
      return it == index.end() ? nullptr : &view.subgraphs[it->second].device;
    };

    for (const PlannedSubgraph& ps : view.subgraphs) {
      for (const PlannedSubgraph::Feed& f : ps.feeds) {
        if (!valid_node(f.parent_producer, parent)) continue;  // feed-def
        if (parent.node(f.parent_producer).is_input()) continue;  // entry-staged
        const auto it = producer.find(f.parent_producer);
        if (it == producer.end()) continue;  // feed-def reports it
        const DeviceKind* src_device = device_of(it->second);
        if (src_device == nullptr || *src_device == ps.device) continue;
        if (dominated(view, hb, device_of, f.parent_producer, ps)) continue;
        result.add(finding(
            severity(), id(), f.parent_producer, ps.id,
            "cross-device read of %" + std::to_string(f.parent_producer) +
                " by subgraph #" + std::to_string(ps.id) + " on " +
                device_kind_name(ps.device) +
                " is not dominated by any transfer-complete edge"));
      }
    }
    return result;
  }

 private:
  template <typename DeviceOf>
  static bool dominated(const PlanView& view, const HappensBefore& hb,
                        const DeviceOf& device_of, NodeId value,
                        const PlannedSubgraph& reader) {
    for (const TransferStep& t : view.transfers) {
      if (t.parent_node != value) continue;
      const DeviceKind* dst_device = device_of(t.dst_subgraph);
      if (dst_device == nullptr || *dst_device != reader.device) continue;
      if (t.dst_subgraph == reader.id || hb.ordered(t.dst_subgraph, reader.id)) {
        return true;
      }
    }
    return false;
  }
};

// --- redundant-transfer ------------------------------------------------------
// Boundary values are SSA (one producer, never redefined), so shipping one
// value to the same device more than once can never be observing a fresh
// def — the later transfers re-pay link bytes for a copy already staged. The
// builder currently emits one transfer per (producer, consumer) edge, so a
// value fanning out to two consumers on the far device legitimately trips
// this; it is a warning (an optimization opportunity), not an error.
class RedundantTransferPass final : public LintPass {
 public:
  const char* id() const override { return "redundant-transfer"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    const PlanView& view = input.view;
    const std::map<int, size_t> index = subgraph_index(view);

    // (value, destination device) -> destination subgraphs, in transfer order.
    std::map<std::pair<NodeId, int>, std::vector<int>> shipments;
    for (const TransferStep& t : view.transfers) {
      const auto it = index.find(t.dst_subgraph);
      if (it == index.end()) continue;  // spurious-transfer reports it
      const DeviceKind device = view.subgraphs[it->second].device;
      shipments[{t.parent_node, static_cast<int>(device)}].push_back(
          t.dst_subgraph);
    }
    for (const auto& [key, dsts] : shipments) {
      if (dsts.size() < 2) continue;
      std::string list;
      for (int d : dsts) list += (list.empty() ? "#" : ", #") + std::to_string(d);
      result.add(finding(
          severity(), id(), key.first, dsts.front(),
          "value %" + std::to_string(key.first) + " is shipped to " +
              device_kind_name(static_cast<DeviceKind>(key.second)) + " " +
              std::to_string(dsts.size()) +
              " times with no intervening def (consumers " + list +
              "); later consumers could reuse the staged copy"));
    }
    return result;
  }
};

// --- dead-subgraph / unreachable-step ---------------------------------------
// A subgraph is live when its work reaches a parent graph output: it either
// produces an output value, or a live subgraph depends on it. Anything
// outside that backward closure is dead weight the partitioner should not
// have emitted, and every step that launches it is an unreachable step.
class DeadSubgraphPass final : public LintPass {
 public:
  const char* id() const override { return "dead-subgraph"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    const PlanView& view = input.view;
    const std::map<int, size_t> index = subgraph_index(view);
    const std::set<NodeId> outputs(view.parent.outputs().begin(),
                                   view.parent.outputs().end());

    std::set<int> live;
    std::vector<int> frontier;
    for (const PlannedSubgraph& ps : view.subgraphs) {
      for (NodeId value : ps.produces) {
        if (outputs.count(value) != 0) {
          if (live.insert(ps.id).second) frontier.push_back(ps.id);
          break;
        }
      }
    }
    while (!frontier.empty()) {
      const int sid = frontier.back();
      frontier.pop_back();
      const auto it = index.find(sid);
      if (it == index.end()) continue;
      for (int dep : view.subgraphs[it->second].dep_subgraphs) {
        if (live.insert(dep).second) frontier.push_back(dep);
      }
    }

    for (const PlannedSubgraph& ps : view.subgraphs) {
      if (live.count(ps.id) != 0) continue;
      result.add(finding(severity(), id(), kInvalidNode, ps.id,
                         "no output of subgraph #" + std::to_string(ps.id) +
                             " reaches a graph output"));
    }
    for (size_t i = 0; i < view.step_order.size(); ++i) {
      const int sid = view.step_order[i];
      if (index.count(sid) == 0) continue;  // step-order reports it
      if (live.count(sid) != 0) continue;
      Diagnostic d = finding(severity(), "unreachable-step", kInvalidNode, sid,
                             "step launches dead subgraph #" +
                                 std::to_string(sid));
      d.location.step = static_cast<int>(i);
      result.add(std::move(d));
    }
    return result;
  }
};

// --- swap-slot-size / swap-arena-alias --------------------------------------
// Recalibration swaps a new plan in while workers may still hold the retired
// snapshot through the grace window. Both plans serve the same parent graph,
// so a value that lives in both arenas must keep its byte size (a mismatch
// means one memory plan is corrupt — error). The old snapshot's held-to-end
// slots (graph outputs a straggling worker still writes/reads) overlapping
// the new plan's slots is expected when both arenas pack from offset 0 —
// executors allocate separate arenas per plan — so aliasing is reported as
// one aggregate warning per device, for operators auditing a shared-arena
// deployment.
class PlanSwapAliasPass final : public LintPass {
 public:
  const char* id() const override { return "swap-arena-alias"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    if (input.previous == nullptr || input.previous_memory == nullptr ||
        input.memory == nullptr) {
      return result;  // nothing swapped in/out
    }
    const MemoryPlan& old_mem = *input.previous_memory;
    const MemoryPlan& new_mem = *input.memory;

    for (const ArenaSlot& old_slot : old_mem.slots()) {
      const ArenaSlot* now = new_mem.find(old_slot.device, old_slot.value);
      if (now == nullptr || now->bytes == old_slot.bytes) continue;
      result.add(finding(
          Diagnostic::Severity::kError, "swap-slot-size", old_slot.value, -1,
          "value %" + std::to_string(old_slot.value) + " held " +
              std::to_string(old_slot.bytes) + " bytes in the retired " +
              device_kind_name(old_slot.device) +
              " arena but the swapped-in plan assigns " +
              std::to_string(now->bytes)));
    }

    for (int d = 0; d < kNumDeviceKinds; ++d) {
      const DeviceKind device = static_cast<DeviceKind>(d);
      size_t overlaps = 0;
      for (const ArenaSlot& old_slot : old_mem.slots()) {
        if (!old_slot.held_to_end || old_slot.device != device ||
            old_slot.bytes == 0) {
          continue;
        }
        for (const ArenaSlot& slot : new_mem.slots()) {
          if (slot.device != device || slot.bytes == 0) continue;
          if (old_slot.offset + old_slot.bytes <= slot.offset ||
              slot.offset + slot.bytes <= old_slot.offset) {
            continue;
          }
          ++overlaps;
        }
      }
      if (overlaps == 0) continue;
      result.add(finding(
          severity(), id(), kInvalidNode, -1,
          std::to_string(overlaps) + " live slot pair(s) of the retired " +
              std::string(device_kind_name(device)) +
              " arena alias the swapped-in plan's ranges; sharing one arena "
              "across the swap would require a full drain, not a grace "
              "window"));
    }
    return result;
  }
};

// --- symbolic-shape-contract / unbounded-dim ---------------------------------
// Batch-polymorphism audit (ISSUE 7): run symbolic shape inference over the
// parent graph with the default batch symbol and surface every op whose
// shape contract cannot be expressed over it (a reshape folding the batch
// away, an inexact stride division, a rank break) plus every symbolic dim
// with no finite declared range. Warning severity: a batch-monomorphic graph
// still executes correctly at its traced shape — it just cannot join
// shape-bucketed compilation.
class SymbolicShapePass final : public LintPass {
 public:
  const char* id() const override { return "symbolic-shape-contract"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  VerifyResult run(const LintInput& input) const override {
    symbolic::SymbolicShapes shapes =
        symbolic::infer_symbolic(input.view.parent);
    return std::move(shapes.diagnostics);
  }
};

// --- transfer-blowup ----------------------------------------------------------
// For each subgraph, compare how boundary transfer bytes and flops grow with
// the batch symbol. When transfers grow strictly faster (e.g. an
// embedding-only subgraph: zero flops, linear transfer), scaling the batch
// makes a cross-device placement progressively worse — the scheduler should
// know this subgraph is link-bound by construction, not by profiling.
class TransferBlowupPass final : public LintPass {
 public:
  const char* id() const override { return "transfer-blowup"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    const Graph& parent = input.view.parent;
    const symbolic::SymbolicShapes shapes = symbolic::infer_symbolic(parent);
    if (shapes.batch_symbol.empty()) return result;
    const std::vector<symbolic::SymSubgraphCost> costs =
        symbolic::sym_partition_costs(parent, input.view.partition, shapes);
    for (const symbolic::SymSubgraphCost& c : costs) {
      const symbolic::SymExpr transfer =
          c.transfer_in_bytes + c.transfer_out_bytes;
      if (transfer.is_zero()) continue;
      const int tdeg = transfer.degree(shapes.batch_symbol);
      const int fdeg = c.flops.degree(shapes.batch_symbol);
      if (tdeg <= fdeg) continue;
      result.add(finding(
          severity(), id(), kInvalidNode, c.subgraph,
          "boundary transfer bytes (" + transfer.to_string() + ") grow as " +
              shapes.batch_symbol + "^" + std::to_string(tdeg) +
              " but flops (" + c.flops.to_string() + ") only as " +
              shapes.batch_symbol + "^" + std::to_string(fdeg) +
              "; a cross-device placement of subgraph #" +
              std::to_string(c.subgraph) + " degrades as the batch scales"));
    }
    return result;
  }
};

// --- memo-bitset-fallback -----------------------------------------------------
// The latency evaluator memoizes placements as a 64-bit device bitset and
// silently switches to string keys past 64 subgraphs
// (src/sched/latency_model.cpp). The ROADMAP wants the 2-device assumption
// retired; until then, make plans that cross the cliff visible.
class MemoBitsetPass final : public LintPass {
 public:
  const char* id() const override { return "memo-bitset-fallback"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  VerifyResult run(const LintInput& input) const override {
    VerifyResult result;
    const size_t n = input.view.subgraphs.size();
    if (n <= 64) return result;
    result.add(finding(
        severity(), id(), kInvalidNode, -1,
        "plan has " + std::to_string(n) +
            " subgraphs; the latency evaluator's placement memo exceeds its "
            "64-subgraph bitset and falls back to slower string keys (see "
            "sched.eval.memo_large_key)"));
    return result;
  }
};

// --- telemetry-unbounded-series ----------------------------------------------
// The metrics registry keys series by bare name, so "per-request" or
// "per-plan-version" metrics (serve.request.42.latency_us, ...) grow the
// registry without bound and make every scrape larger than the last — the
// classic unbounded-label-cardinality failure. The pass groups registered
// names by their template (digit-only dot segments replaced by "<id>") and
// warns when one template has accumulated several distinct numeric
// instantiations. It audits process state, not the plan, so it reports
// whatever instrumentation bug the current process has already committed.
class UnboundedSeriesPass final : public LintPass {
 public:
  static constexpr size_t kSeriesThreshold = 4;

  const char* id() const override { return "telemetry-unbounded-series"; }
  Diagnostic::Severity severity() const override {
    return Diagnostic::Severity::kWarning;
  }

  // "serve.request.42.latency_us" -> ("serve.request.<id>.latency_us", true).
  static std::pair<std::string, bool> name_template(const std::string& name) {
    std::string out;
    bool numeric = false;
    size_t start = 0;
    while (start <= name.size()) {
      const size_t dot = name.find('.', start);
      const size_t end = dot == std::string::npos ? name.size() : dot;
      const std::string segment = name.substr(start, end - start);
      const bool digits =
          !segment.empty() &&
          std::all_of(segment.begin(), segment.end(),
                      [](unsigned char c) { return std::isdigit(c) != 0; });
      if (!out.empty() || start > 0) out += '.';
      out += digits ? "<id>" : segment;
      numeric = numeric || digits;
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    return {out, numeric};
  }

  VerifyResult run(const LintInput& input) const override {
    (void)input;
    VerifyResult result;
    std::map<std::string, size_t> families;
    const auto count = [&families](const std::string& name) {
      const auto [tmpl, numeric] = name_template(name);
      if (numeric) families[tmpl]++;
    };
    const telemetry::MetricsRegistry& registry =
        telemetry::MetricsRegistry::instance();
    for (const auto& [name, value] : registry.counters()) {
      (void)value;
      count(name);
    }
    for (const auto& [name, value] : registry.gauges()) {
      (void)value;
      count(name);
    }
    for (const auto& [name, stats] : registry.histograms()) {
      (void)stats;
      count(name);
    }
    for (const auto& [tmpl, instances] : families) {
      if (instances < kSeriesThreshold) continue;
      result.add(finding(
          severity(), id(), kInvalidNode, -1,
          "metric family \"" + tmpl + "\" has " + std::to_string(instances) +
              " numeric-id series; per-entity ids in metric names are "
              "unbounded cardinality — use one series plus the flight "
              "recorder / trace ids for per-request detail"));
    }
    return result;
  }
};

}  // namespace

std::unique_ptr<LintPass> make_boundary_type_pass() {
  return std::make_unique<BoundaryTypePass>();
}
std::unique_ptr<LintPass> make_sync_elision_pass() {
  return std::make_unique<SyncElisionPass>();
}
std::unique_ptr<LintPass> make_redundant_transfer_pass() {
  return std::make_unique<RedundantTransferPass>();
}
std::unique_ptr<LintPass> make_dead_subgraph_pass() {
  return std::make_unique<DeadSubgraphPass>();
}
std::unique_ptr<LintPass> make_plan_swap_alias_pass() {
  return std::make_unique<PlanSwapAliasPass>();
}
std::unique_ptr<LintPass> make_symbolic_shape_pass() {
  return std::make_unique<SymbolicShapePass>();
}
std::unique_ptr<LintPass> make_transfer_blowup_pass() {
  return std::make_unique<TransferBlowupPass>();
}
std::unique_ptr<LintPass> make_memo_bitset_pass() {
  return std::make_unique<MemoBitsetPass>();
}
std::unique_ptr<LintPass> make_unbounded_series_pass() {
  return std::make_unique<UnboundedSeriesPass>();
}

}  // namespace duet::lint
