#pragma once

// SARIF 2.1.0 export for the static-analysis suite (ISSUE 6): one run whose
// tool.driver.rules is the full rule catalogue (analysis/lint/rules.hpp, so
// ruleIndex values are stable) and whose results are the given diagnostics.
// CI uploads the file for PR annotation and gates on zero error-level
// results (`duet_cli lint --all --sarif <path>`).

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace duet::lint {

// Serializes `diagnostics` (in the order given — sort first for determinism)
// as a complete SARIF 2.1.0 log. A diagnostic with no file location anchors
// to its rule's catalogue anchor file; artifact / subgraph / node land in
// logicalLocations.
std::string to_sarif(const std::vector<Diagnostic>& diagnostics);

}  // namespace duet::lint
