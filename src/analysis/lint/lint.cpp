#include "analysis/lint/lint.hpp"

namespace duet::lint {

LintInput make_input(const ExecutionPlan& plan) {
  return LintInput{PlanView{plan.parent(), plan.partition(), plan.placement(),
                            plan.subgraphs(), plan.consumers(),
                            plan.transfers(), plan.step_order()},
                   plan.memory_plan(), nullptr, nullptr};
}

LintSuite LintSuite::standard() {
  LintSuite suite;
  suite.add(make_boundary_type_pass());
  suite.add(make_sync_elision_pass());
  suite.add(make_redundant_transfer_pass());
  suite.add(make_dead_subgraph_pass());
  suite.add(make_plan_swap_alias_pass());
  suite.add(make_symbolic_shape_pass());
  suite.add(make_transfer_blowup_pass());
  suite.add(make_memo_bitset_pass());
  suite.add(make_unbounded_series_pass());
  return suite;
}

void LintSuite::add(std::unique_ptr<LintPass> pass) {
  passes_.push_back(std::move(pass));
}

VerifyResult LintSuite::run(const LintInput& input) const {
  VerifyResult merged;
  for (const auto& pass : passes_) {
    VerifyResult result = pass->run(input);
    result.attribute(pass->id());
    merged.merge(std::move(result));
  }
  merged.set_artifact(input.view.parent.name());
  merged.sort();
  return merged;
}

}  // namespace duet::lint
