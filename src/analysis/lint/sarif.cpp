#include "analysis/lint/sarif.hpp"

#include <sstream>

#include "analysis/lint/rules.hpp"
#include "telemetry/chrome_trace.hpp"

namespace duet::lint {
namespace {

using telemetry::json_escape;

const char* kSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
    "sarif-schema-2.1.0.json";

const char* level_name(Diagnostic::Severity severity) {
  return severity == Diagnostic::Severity::kError ? "error" : "warning";
}

void append_rules(std::ostringstream& os) {
  os << "\"rules\":[";
  bool first = true;
  for (const RuleInfo& rule : rule_catalogue()) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"" << json_escape(rule.id) << "\""
       << ",\"shortDescription\":{\"text\":\"" << json_escape(rule.summary)
       << "\"},\"defaultConfiguration\":{\"level\":\""
       << level_name(rule.severity) << "\"}}";
  }
  os << "]";
}

void append_result(std::ostringstream& os, const Diagnostic& d) {
  const RuleInfo* rule = find_rule(d.rule);
  os << "{\"ruleId\":\"" << json_escape(d.rule) << "\"";
  if (rule != nullptr) {
    os << ",\"ruleIndex\":" << (rule - rule_catalogue().data());
  }
  os << ",\"level\":\"" << level_name(d.severity) << "\""
     << ",\"message\":{\"text\":\"" << json_escape(d.message) << "\"}";

  // Physical location: the diagnostic's own file when it has one, else the
  // rule's catalogue anchor (the source file whose invariant was violated).
  std::string file = d.location.file;
  if (file.empty() && rule != nullptr) file = rule->anchor_file;
  os << ",\"locations\":[{";
  bool wrote_physical = false;
  if (!file.empty()) {
    os << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
       << json_escape(file) << "\",\"uriBaseId\":\"SRCROOT\"}";
    if (d.location.line > 0) {
      os << ",\"region\":{\"startLine\":" << d.location.line << "}";
    }
    os << "}";
    wrote_physical = true;
  }
  // Logical location: which artifact (model) / subgraph / node the finding
  // is about — the coordinates reviewers actually navigate by.
  std::ostringstream logical;
  if (!d.location.artifact.empty()) logical << d.location.artifact;
  if (d.subgraph >= 0) logical << "/subgraph#" << d.subgraph;
  if (d.node != kInvalidNode) logical << "/node%" << d.node;
  if (d.location.step >= 0) logical << "/step" << d.location.step;
  const std::string name = logical.str();
  if (!name.empty()) {
    if (wrote_physical) os << ",";
    os << "\"logicalLocations\":[{\"fullyQualifiedName\":\""
       << json_escape(name) << "\"}]";
  }
  os << "}]";
  if (!d.context.empty()) {
    os << ",\"properties\":{\"pass\":\"" << json_escape(d.context) << "\"}";
  }
  os << "}";
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "{\"$schema\":\"" << kSchema << "\",\"version\":\"2.1.0\",\"runs\":[{"
     << "\"tool\":{\"driver\":{\"name\":\"duet-lint\""
     << ",\"informationUri\":\"https://github.com/duet/duet\""
     << ",\"version\":\"1.0.0\",";
  append_rules(os);
  os << "}},\"columnKind\":\"utf16CodeUnits\",\"results\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i != 0) os << ",";
    append_result(os, diagnostics[i]);
  }
  os << "]}]}";
  return os.str();
}

}  // namespace duet::lint
