#include "analysis/lint/rules.hpp"

#include <map>

namespace duet::lint {
namespace {

constexpr Diagnostic::Severity kError = Diagnostic::Severity::kError;
constexpr Diagnostic::Severity kWarning = Diagnostic::Severity::kWarning;

std::vector<RuleInfo> build_catalogue() {
  return {
      // --- graph verifier (analysis/graph_verifier.cpp) ---------------------
      {"dense-ids", kError, "node ids are dense indices into the node table",
       "src/graph/graph.hpp"},
      {"dangling-input", kError, "every input id names an existing node",
       "src/graph/graph.hpp"},
      {"acyclicity", kError, "every input id precedes the node (graph is a DAG)",
       "src/graph/graph.hpp"},
      {"arity", kError, "positional input count matches the per-op contract",
       "src/analysis/graph_verifier.cpp"},
      {"consumer-index", kError,
       "consumer adjacency is the exact multiset inverse of the input lists",
       "src/graph/graph.hpp"},
      {"terminal-value", kError,
       "constants and pre-bound inputs carry a tensor matching their type",
       "src/graph/graph.hpp"},
      {"shape-infer", kError, "shape inference succeeds on every compute node",
       "src/graph/shape_inference.cpp"},
      {"type-consistency", kError,
       "recorded out_shape/out_dtype equals the re-derived one",
       "src/graph/shape_inference.cpp"},
      {"outputs", kError, "the graph has outputs referencing existing nodes",
       "src/graph/graph.hpp"},
      {"unique-names", kError, "node names are unique (error for inputs)",
       "src/graph/graph.hpp"},
      // --- partition validator (analysis/plan_validator.cpp) ----------------
      {"partition-coverage", kError,
       "every live compute node is owned by a subgraph",
       "src/partition/partitioner.cpp"},
      {"partition-overlap", kError, "no parent node is owned by two subgraphs",
       "src/partition/partitioner.cpp"},
      {"phase-membership", kError,
       "every subgraph sits in exactly one phase and back-references agree",
       "src/partition/partitioner.cpp"},
      {"boundary-producer", kError,
       "boundary inputs name valid parent producers outside the subgraph",
       "src/partition/subgraph.cpp"},
      {"phase-order", kError,
       "compute dependencies come from strictly earlier phases",
       "src/partition/partitioner.cpp"},
      // --- placement validator ----------------------------------------------
      {"placement-size", kError,
       "the placement covers exactly the partition's subgraphs",
       "src/sched/placement.cpp"},
      {"placement-device", kError, "every assigned device kind is valid",
       "src/sched/placement.cpp"},
      // --- plan validator -----------------------------------------------------
      {"plan-size", kError, "planned subgraph ids are dense and match the partition",
       "src/runtime/plan.cpp"},
      {"placement-consistency", kError,
       "each subgraph was compiled for the device the placement assigns",
       "src/runtime/plan.cpp"},
      {"feed-def", kError,
       "every feed names an existing parent node with a producing subgraph",
       "src/runtime/plan.cpp"},
      {"use-before-def", kError,
       "every consumed value's producer is a declared dependency",
       "src/runtime/plan.cpp"},
      {"dep-extraneous", kError, "every declared dependency backs a feed",
       "src/runtime/plan.cpp"},
      {"missing-transfer", kError,
       "every cross-device boundary edge has a TransferStep",
       "src/runtime/plan.cpp"},
      {"duplicate-transfer", kError, "exactly one TransferStep per edge",
       "src/runtime/plan.cpp"},
      {"same-device-transfer", kError, "no transfer for a same-device edge",
       "src/runtime/plan.cpp"},
      {"spurious-transfer", kError, "no transfer for a nonexistent edge",
       "src/runtime/plan.cpp"},
      {"step-order", kError,
       "the launch order is a dependency-respecting permutation",
       "src/runtime/plan.cpp"},
      {"consumers-inverse", kError,
       "the consumer table is the inverse of the dependency lists",
       "src/runtime/plan.cpp"},
      {"outputs-produced", kError,
       "every parent output is materialized by exactly one subgraph",
       "src/runtime/plan.cpp"},
      // --- happens-before race checker (analysis/race_checker.cpp) ---------
      {"race-read-write", kError,
       "every read of a boundary value is ordered after its write",
       "src/runtime/threaded_executor.cpp"},
      {"race-write-write", kError, "two writers of one value are ordered",
       "src/runtime/threaded_executor.cpp"},
      {"race-step-order", kError,
       "the launch order never schedules a read before its write",
       "src/runtime/threaded_executor.cpp"},
      {"race-transfer-order", kError,
       "each transfer's destination is ordered after its source",
       "src/runtime/threaded_executor.cpp"},
      {"race-slot-alias", kError,
       "arena-overlapping values have fully ordered accesses",
       "src/runtime/arena.hpp"},
      {"slot-missing", kError,
       "every boundary value has an arena slot on the devices that touch it",
       "src/runtime/memory_plan.cpp"},
      {"slot-size", kError, "each slot's byte size matches the value's tensor",
       "src/runtime/memory_plan.cpp"},
      // --- lint passes (analysis/lint/) -------------------------------------
      {"boundary-type", kError,
       "compiled subgraph boundary types match the parent graph's types",
       "src/runtime/plan.cpp"},
      {"sync-elision", kError,
       "every cross-device read is dominated by a transfer-complete edge",
       "src/runtime/plan.cpp"},
      {"redundant-transfer", kWarning,
       "no value is shipped to the same device twice without an intervening def",
       "src/runtime/plan.cpp"},
      {"dead-subgraph", kWarning,
       "every subgraph's outputs reach a graph output",
       "src/partition/partitioner.cpp"},
      {"unreachable-step", kWarning,
       "every launch-order step does work that reaches a graph output",
       "src/runtime/plan.cpp"},
      {"swap-slot-size", kError,
       "a value keeps its slot size across a recalibration plan swap",
       "src/serve/recalibration.cpp"},
      {"swap-arena-alias", kWarning,
       "retired-snapshot output slots do not alias the swapped-in plan's slots",
       "src/serve/server.cpp"},
      // --- serve-protocol model checker (analysis/model_check/) ------------
      {"mc-conservation", kError,
       "at quiescence, offered == completed + shed + rejected",
       "src/serve/admission.hpp"},
      {"mc-queue-accounting", kError,
       "try_push is tri-state-correct: accepted iff actually enqueued",
       "src/serve/request_queue.hpp"},
      {"mc-lost-wakeup", kError,
       "no consumer blocks forever across drain/shutdown",
       "src/serve/request_queue.hpp"},
      {"mc-snapshot-retired", kError,
       "no worker executes a plan snapshot retired by swap + grace",
       "src/serve/server.cpp"},
      {"mc-depth-bound", kWarning,
       "the interleaving exploration ran to quiescence within the depth bound",
       "src/analysis/model_check/explorer.cpp"},
      // --- symbolic abstract interpretation (analysis/symbolic/) -----------
      {"symbolic-shape-contract", kWarning,
       "every op's output shape is expressible over the batch symbols",
       "src/analysis/symbolic/sym_shape_inference.cpp"},
      {"unbounded-dim", kWarning,
       "every symbolic dim has a declared, finite range",
       "src/analysis/symbolic/sym_shape_inference.cpp"},
      {"transfer-blowup", kWarning,
       "boundary transfer bytes do not outgrow subgraph flops in the batch",
       "src/analysis/symbolic/sym_cost.cpp"},
      {"memo-bitset-fallback", kWarning,
       "the plan fits the latency evaluator's 64-subgraph placement-memo "
       "bitset",
       "src/sched/latency_model.cpp"},
      {"telemetry-unbounded-series", kWarning,
       "no metric family enumerates per-entity numeric ids (unbounded label "
       "cardinality leaks registry memory and blows up scrapes)",
       "src/telemetry/metrics.cpp"},
  };
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> catalogue = build_catalogue();
  return catalogue;
}

const RuleInfo* find_rule(const std::string& id) {
  static const std::map<std::string, const RuleInfo*> index = [] {
    std::map<std::string, const RuleInfo*> m;
    for (const RuleInfo& r : rule_catalogue()) m.emplace(r.id, &r);
    return m;
  }();
  const auto it = index.find(id);
  return it == index.end() ? nullptr : it->second;
}

}  // namespace duet::lint
