#pragma once

// Rule catalogue for the unified static-analysis suite (ISSUE 6): every
// stable rule id emitted anywhere in src/analysis — the graph verifier, the
// partition/placement/plan validators, the happens-before race checker, the
// lint passes, and the serve-protocol model checker — with its default
// severity, a one-line summary of what it proves, and the repo file findings
// anchor to when a diagnostic carries no location of its own. The SARIF
// exporter (analysis/lint/sarif.hpp) publishes this table as
// tool.driver.rules, so ruleIndex values are stable across runs as long as
// rules are only ever appended.

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace duet::lint {

struct RuleInfo {
  const char* id;  // stable kebab-case rule id (== Diagnostic::rule, SARIF ruleId)
  Diagnostic::Severity severity;
  const char* summary;      // what the rule proves when it does not fire
  const char* anchor_file;  // repo-relative fallback location for findings
};

// Append-only. Index into this vector is the SARIF ruleIndex.
const std::vector<RuleInfo>& rule_catalogue();

// nullptr for an unknown id (SARIF then emits the result without ruleIndex).
const RuleInfo* find_rule(const std::string& id);

}  // namespace duet::lint
