#include "analysis/symbolic/crossover.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/chrome_trace.hpp"

namespace duet::symbolic {
namespace {

struct BatchTimes {
  double cpu = 0;
  double gpu = 0;
  DeviceKind preferred() const {
    return cpu <= gpu ? DeviceKind::kCpu : DeviceKind::kGpu;
  }
};

}  // namespace

CrossoverReport analyze_crossover(const Graph& parent,
                                  const Partition& partition,
                                  const SymbolicShapes& shapes,
                                  const CrossoverOptions& options,
                                  const SymBindings& pinned) {
  DUET_CHECK_LE(options.lo, options.hi) << "crossover range inverted";
  DUET_CHECK_GE(options.lo, 1) << "crossover range must be positive";

  CrossoverReport report;
  report.model = parent.name();
  report.symbol = options.symbol;
  report.lo = options.lo;
  report.hi = options.hi;

  const std::vector<SymSubgraphCost> sub_costs =
      sym_partition_costs(parent, partition, shapes);

  for (const Subgraph& sg : partition.subgraphs) {
    SubgraphCrossover sc;
    sc.subgraph = sg.id;
    sc.label = sg.label;

    // Symbolic node costs are batch-independent; derive them once and
    // specialize per batch inside the scan.
    std::vector<std::pair<OpType, SymNodeCost>> node_costs;
    node_costs.reserve(sg.parent_nodes.size());
    for (NodeId id : sg.parent_nodes) {
      const Node& n = parent.node(id);
      node_costs.emplace_back(n.op, sym_node_cost(parent, n, shapes));
    }
    const SymSubgraphCost& totals =
        sub_costs[static_cast<size_t>(sg.id)];

    BatchTimes prev;
    for (int64_t b = options.lo; b <= options.hi; ++b) {
      SymBindings bindings = pinned;
      bindings[options.symbol] = b;

      BatchTimes t;
      for (const auto& [op, cost] : node_costs) {
        const NodeCostQuantities q = specialize(cost, bindings, op);
        t.cpu += node_time_from_quantities(q, options.cpu, options.compile);
        t.gpu += node_time_from_quantities(q, options.gpu, options.compile);
      }
      // A GPU placement pays the boundary: inputs over, outputs back.
      const auto in_bytes =
          static_cast<uint64_t>(totals.transfer_in_bytes.eval(bindings));
      const auto out_bytes =
          static_cast<uint64_t>(totals.transfer_out_bytes.eval(bindings));
      if (in_bytes > 0) t.gpu += transfer_time_seconds(in_bytes, options.link);
      if (out_bytes > 0) t.gpu += transfer_time_seconds(out_bytes, options.link);

      if (b == options.lo) {
        sc.intervals.push_back({b, b, t.preferred()});
      } else if (t.preferred() == sc.intervals.back().device) {
        sc.intervals.back().hi = b;
      } else {
        CrossoverBoundary edge;
        edge.batch = b;
        edge.from = sc.intervals.back().device;
        edge.to = t.preferred();
        edge.cpu_before = prev.cpu;
        edge.gpu_before = prev.gpu;
        edge.cpu_after = t.cpu;
        edge.gpu_after = t.gpu;
        sc.boundaries.push_back(edge);
        sc.intervals.push_back({b, b, t.preferred()});
      }
      prev = t;
    }
    report.subgraphs.push_back(std::move(sc));
  }

  for (const SubgraphCrossover& sc : report.subgraphs) {
    for (const CrossoverBoundary& edge : sc.boundaries) {
      report.bucket_boundaries.push_back(edge.batch);
    }
  }
  std::sort(report.bucket_boundaries.begin(), report.bucket_boundaries.end());
  report.bucket_boundaries.erase(
      std::unique(report.bucket_boundaries.begin(),
                  report.bucket_boundaries.end()),
      report.bucket_boundaries.end());
  return report;
}

std::string CrossoverReport::to_string() const {
  std::ostringstream os;
  os << "crossover " << model << " over " << symbol << " in [" << lo << ", "
     << hi << "]\n";
  for (const SubgraphCrossover& sc : subgraphs) {
    os << "  subgraph " << sc.subgraph << " (" << sc.label << "): ";
    for (size_t i = 0; i < sc.intervals.size(); ++i) {
      const PreferenceInterval& iv = sc.intervals[i];
      if (i) os << ", ";
      os << device_kind_name(iv.device) << " on [" << iv.lo << ", " << iv.hi
         << "]";
    }
    os << "\n";
    for (const CrossoverBoundary& e : sc.boundaries) {
      os << "    flip at " << symbol << "=" << e.batch << ": "
         << device_kind_name(e.from) << " -> " << device_kind_name(e.to)
         << " (before cpu=" << e.cpu_before << "s gpu=" << e.gpu_before
         << "s, after cpu=" << e.cpu_after << "s gpu=" << e.gpu_after
         << "s)\n";
    }
  }
  os << "  bucket boundaries: ";
  if (bucket_boundaries.empty()) {
    os << "(none: one plan covers the whole range)";
  } else {
    for (size_t i = 0; i < bucket_boundaries.size(); ++i) {
      if (i) os << ", ";
      os << bucket_boundaries[i];
    }
  }
  os << "\n";
  return os.str();
}

std::string CrossoverReport::to_json() const {
  using telemetry::json_escape;
  using telemetry::json_number;
  std::ostringstream os;
  os << "{\"model\":\"" << json_escape(model) << "\",\"symbol\":\""
     << json_escape(symbol) << "\",\"lo\":" << lo << ",\"hi\":" << hi
     << ",\"subgraphs\":[";
  for (size_t s = 0; s < subgraphs.size(); ++s) {
    const SubgraphCrossover& sc = subgraphs[s];
    if (s) os << ",";
    os << "{\"id\":" << sc.subgraph << ",\"label\":\"" << json_escape(sc.label)
       << "\",\"intervals\":[";
    for (size_t i = 0; i < sc.intervals.size(); ++i) {
      const PreferenceInterval& iv = sc.intervals[i];
      if (i) os << ",";
      os << "{\"lo\":" << iv.lo << ",\"hi\":" << iv.hi << ",\"device\":\""
         << device_kind_name(iv.device) << "\"}";
    }
    os << "],\"boundaries\":[";
    for (size_t i = 0; i < sc.boundaries.size(); ++i) {
      const CrossoverBoundary& e = sc.boundaries[i];
      if (i) os << ",";
      os << "{\"batch\":" << e.batch << ",\"from\":\""
         << device_kind_name(e.from) << "\",\"to\":\""
         << device_kind_name(e.to)
         << "\",\"cpu_before_s\":" << json_number(e.cpu_before)
         << ",\"gpu_before_s\":" << json_number(e.gpu_before)
         << ",\"cpu_after_s\":" << json_number(e.cpu_after)
         << ",\"gpu_after_s\":" << json_number(e.gpu_after) << "}";
    }
    os << "]}";
  }
  os << "],\"bucket_boundaries\":[";
  for (size_t i = 0; i < bucket_boundaries.size(); ++i) {
    if (i) os << ",";
    os << bucket_boundaries[i];
  }
  os << "]}";
  return os.str();
}

std::vector<int64_t> serving_bucket_boundaries(const CrossoverReport& report,
                                               int64_t max_batch) {
  std::vector<int64_t> out;
  for (int64_t b : report.bucket_boundaries) {
    if (b > 1 && b <= max_batch) out.push_back(b);
  }
  return out;  // bucket_boundaries is already sorted and deduplicated
}

}  // namespace duet::symbolic
