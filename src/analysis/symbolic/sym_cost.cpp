#include "analysis/symbolic/sym_cost.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/op.hpp"

namespace duet::symbolic {
namespace {

// Symbolic shape of input `i` of `n`, looked up in the inference result.
const SymShape& in_shape(const Graph&, const Node& n, size_t i,
                         const SymbolicShapes& shapes) {
  DUET_CHECK_LT(i, n.inputs.size()) << op_name(n.op) << " missing input " << i;
  const NodeId id = n.inputs[i];
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < shapes.shapes.size());
  return shapes.shapes[static_cast<size_t>(id)];
}

SymExpr out_bytes_sym(const Node& n, const SymbolicShapes& shapes) {
  const SymShape& out = shapes.shapes[static_cast<size_t>(n.id)];
  return out.numel() *
         SymExpr{static_cast<int64_t>(dtype_size(n.out_dtype))};
}

// Mirrors node_flops case by case; every concrete formula is an integer
// polynomial of the dims, restated here over SymExpr.
SymExpr flops_sym(const Graph& g, const Node& n, const SymbolicShapes& shapes) {
  const SymShape& out = shapes.shapes[static_cast<size_t>(n.id)];
  const SymExpr numel_out = out.numel();
  switch (n.op) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kIdentity:
    case OpType::kEmbedding:
      return SymExpr{};
    case OpType::kMatMul: {
      const SymShape& a = in_shape(g, n, 0, shapes);
      const SymShape& b = in_shape(g, n, 1, shapes);
      return SymExpr{2} * a.dim(0) * a.dim(1) * b.dim(1);
    }
    case OpType::kDense: {
      const SymShape& x = in_shape(g, n, 0, shapes);
      const SymShape& w = in_shape(g, n, 1, shapes);
      return SymExpr{2} * x.dim(0) * w.dim(0) * w.dim(1);
    }
    case OpType::kBatchMatMul: {
      const SymShape& a = in_shape(g, n, 0, shapes);
      return SymExpr{2} * a.numel() * out.dim(2);
    }
    case OpType::kConv2d: {
      const SymShape& w = in_shape(g, n, 1, shapes);
      return numel_out * SymExpr{2} * w.dim(1) * w.dim(2) * w.dim(3);
    }
    case OpType::kLSTM: {
      const SymShape& x = in_shape(g, n, 0, shapes);
      const SymExpr& hidden = out.dim(2);
      const SymExpr& input = x.dim(2);
      const SymExpr per_step =
          SymExpr{8} * x.dim(0) * hidden * (input + hidden) +
          SymExpr{10} * x.dim(0) * hidden;
      return per_step * x.dim(1);
    }
    case OpType::kGRU: {
      const SymShape& x = in_shape(g, n, 0, shapes);
      const SymExpr& hidden = out.dim(2);
      const SymExpr& input = x.dim(2);
      const SymExpr per_step =
          SymExpr{6} * x.dim(0) * hidden * (input + hidden) +
          SymExpr{8} * x.dim(0) * hidden;
      return per_step * x.dim(1);
    }
    case OpType::kMultiHeadAttention: {
      const SymShape& x = in_shape(g, n, 0, shapes);
      const SymExpr& b = x.dim(0);
      const SymExpr& s = x.dim(1);
      const SymExpr& m = x.dim(2);
      return SymExpr{6} * b * s * m * m + SymExpr{2} * b * s * m * m +
             SymExpr{4} * b * s * s * m;
    }
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
      return SymExpr{5} * numel_out;
    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d: {
      const int64_t k = n.attrs.get_int("kernel");
      return numel_out * SymExpr{k * k};
    }
    case OpType::kGlobalAvgPool:
      return in_shape(g, n, 0, shapes).numel();
    case OpType::kBatchNorm:
      return SymExpr{2} * numel_out;
    case OpType::kReduceSum:
    case OpType::kReduceMean:
    case OpType::kReduceMax:
    case OpType::kArgMax:
      return in_shape(g, n, 0, shapes).numel();
    case OpType::kGelu:
      return SymExpr{8} * numel_out;
    case OpType::kSigmoid:
    case OpType::kTanh:
      return SymExpr{4} * numel_out;
    case OpType::kElementwiseChain: {
      const auto chain = n.attrs.get_string_or("chain", "");
      const int64_t ops =
          1 + static_cast<int64_t>(std::count(chain.begin(), chain.end(), ','));
      return SymExpr{4 * ops} * numel_out;
    }
    default:
      return numel_out;  // remaining elementwise / movement ops
  }
}

SymExpr launches_sym(const Graph& g, const Node& n,
                     const SymbolicShapes& shapes) {
  switch (n.op) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kIdentity:
      return SymExpr{};
    case OpType::kLSTM:
    case OpType::kGRU:
      // Three launches per timestep; the loop cannot batch.
      return SymExpr{3} * in_shape(g, n, 0, shapes).dim(1);
    case OpType::kMultiHeadAttention:
      return SymExpr{6};
    case OpType::kConv2d:
      return SymExpr{2};
    default:
      return SymExpr{1};
  }
}

}  // namespace

SymNodeCost sym_node_cost(const Graph& graph, const Node& node,
                          const SymbolicShapes& shapes) {
  SymNodeCost c;
  c.metadata = is_metadata_op(node.op);
  if (c.metadata) return c;
  c.flops = flops_sym(graph, node, shapes);
  c.launches = launches_sym(graph, node, shapes);
  // Bytes: a gather touches only the selected rows, not the whole table.
  const SymExpr written = out_bytes_sym(node, shapes);
  if (node.op == OpType::kEmbedding) {
    const Node& idx = graph.node(node.inputs[0]);
    c.read_bytes = in_shape(graph, node, 0, shapes).numel() *
                       SymExpr{static_cast<int64_t>(dtype_size(idx.out_dtype))} +
                   written;
  } else {
    for (NodeId in : node.inputs) {
      c.read_bytes += out_bytes_sym(graph.node(in), shapes);
    }
  }
  c.written_bytes = written;
  const SymShape& out = shapes.shapes[static_cast<size_t>(node.id)];
  if (out.rank() > 0) c.batch = out.dim(0);
  c.layout_tagged = node.op == OpType::kConv2d && node.attrs.has("layout");
  return c;
}

NodeCostQuantities specialize(const SymNodeCost& cost,
                              const SymBindings& bindings, OpType op) {
  NodeCostQuantities q;
  q.op = op;
  q.metadata = cost.metadata;
  if (q.metadata) return q;
  const int64_t flops = cost.flops.eval(bindings);
  DUET_CHECK_GE(flops, 0) << "negative symbolic flops";
  q.flops = static_cast<double>(flops);
  q.read_bytes = static_cast<uint64_t>(cost.read_bytes.eval(bindings));
  q.written_bytes = static_cast<uint64_t>(cost.written_bytes.eval(bindings));
  q.launches = cost.launches.eval(bindings);
  q.batch = std::max<int64_t>(1, cost.batch.eval(bindings));
  q.layout_tagged = cost.layout_tagged;
  return q;
}

std::vector<SymSubgraphCost> sym_partition_costs(const Graph& parent,
                                                 const Partition& partition,
                                                 const SymbolicShapes& shapes) {
  std::vector<SymSubgraphCost> out;
  out.reserve(partition.subgraphs.size());
  for (const Subgraph& sg : partition.subgraphs) {
    SymSubgraphCost c;
    c.subgraph = sg.id;
    for (NodeId id : sg.parent_nodes) {
      const SymNodeCost nc = sym_node_cost(parent, parent.node(id), shapes);
      c.flops += nc.flops;
      c.read_bytes += nc.read_bytes;
      c.written_bytes += nc.written_bytes;
      c.launches += nc.launches;
    }
    for (const Subgraph::BoundaryInput& b : sg.boundary_inputs) {
      c.transfer_in_bytes +=
          out_bytes_sym(parent.node(b.parent_producer), shapes);
    }
    for (NodeId id : sg.boundary_outputs) {
      c.transfer_out_bytes += out_bytes_sym(parent.node(id), shapes);
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace duet::symbolic
