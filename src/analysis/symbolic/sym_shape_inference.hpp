#pragma once

// Symbolic shape inference (ISSUE 7 tentpole, part 2): the whole-graph
// abstract-interpretation twin of graph/shape_inference.cpp. Input dims named
// by SymbolicOptions become symbols (by default dim 0 of every kInput is the
// batch symbol `B`); every op contract in infer_node_type is re-stated over
// SymExpr dims and propagated through the graph. Where the concrete pass
// throws, this pass reports a lint-grade diagnostic and keeps going with the
// node's recorded concrete shape, so one run surfaces every inexpressible
// contract:
//
//   * symbolic-shape-contract — an op's output shape cannot be expressed as
//     a polynomial of the symbols (a reshape that folds the batch away, a
//     stride that does not divide a symbolic extent, a rank mismatch), or a
//     precondition (slice end <= rows) is not provable over the domain.
//   * unbounded-dim — a symbolic dim has no declared range (or its bound
//     saturates int64), so downstream cost/bucket reasoning is unbounded.
//
// Specializing the result at a concrete binding reproduces infer_node_type
// exactly (tests/test_symbolic.cpp proves bit-identity across the zoo).

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/symbolic/sym_expr.hpp"
#include "graph/graph.hpp"

namespace duet::symbolic {

struct SymbolicOptions {
  // Symbol substituted for dim `batch_dim` of every kInput (all zoo models
  // are batch-major). Empty disables the default binding.
  std::string batch_symbol = "B";
  size_t batch_dim = 0;

  // Declared symbol ranges. A referenced symbol with no range triggers the
  // unbounded-dim diagnostic (bounds still work, conservatively, as
  // "unbounded"). Defaults to B in [1, 64] when empty and batch_symbol set.
  SymDomain domain;

  // Extra bindings for tests / the CLI: input node name -> dim index ->
  // symbol name (e.g. {"text_embeddings": {1: "T"}} makes seq length
  // symbolic). Applied after the batch default, so overrides win.
  std::map<std::string, std::map<size_t, std::string>> input_dims;
};

struct SymbolicShapes {
  // Indexed by NodeId, parallel to Graph::nodes().
  std::vector<SymShape> shapes;
  std::vector<DType> dtypes;

  // symbolic-shape-contract / unbounded-dim findings (warning severity:
  // batch-polymorphism is a portability property, not plan correctness).
  VerifyResult diagnostics;

  // The domain actually analyzed (after defaulting) — what bounds and the
  // crossover solver use.
  SymDomain domain;
  std::string batch_symbol;

  bool clean() const { return diagnostics.diagnostics().empty(); }
  // True if any diagnostic carries `rule`.
  bool has(const std::string& rule) const;
};

// Runs symbolic inference over the whole graph. Never throws on contract
// violations (they become diagnostics); structural breakage (dangling input
// ids) is the graph verifier's business and is skipped silently here.
SymbolicShapes infer_symbolic(const Graph& graph,
                              const SymbolicOptions& options = {});

}  // namespace duet::symbolic
