#pragma once

// Symbolic dimension/cost expressions (ISSUE 7 tentpole, part 1). A SymExpr
// is a multivariate polynomial over named symbols (e.g. the batch dimension
// `B`, a sequence length `T`) with int64 coefficients — "affine plus
// product": closed under the +, -, * that shape inference and FLOP counting
// need, with exact division for the few contracts (flatten, head split) that
// divide. Expressions are kept in canonical form (sorted monomials, no zero
// coefficients), so structural equality IS semantic equality, which is what
// the symbolic shape-inference pass uses to prove dim contracts.
//
// All coefficient arithmetic is overflow-checked (a scheduler that silently
// wraps a byte count is worse than one that throws); interval bounds over a
// symbol domain saturate instead, and report unboundedness so the
// `unbounded-dim` lint rule can fire rather than a bogus number propagating.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace duet::symbolic {

// Concrete values for symbols ("B" -> 32). Evaluation throws on a symbol
// missing from the binding.
using SymBindings = std::map<std::string, int64_t>;

// Inclusive integer range a symbol may take.
struct SymRange {
  int64_t lo = 1;
  int64_t hi = 1;
};

// Declared ranges per symbol ("B" -> [1, 64]). Symbols absent from the
// domain are unbounded.
using SymDomain = std::map<std::string, SymRange>;

// Product of symbol powers, e.g. B*T^2. The factor list is sorted by symbol
// name with exponents >= 1; the empty monomial is the constant term.
struct Monomial {
  std::vector<std::pair<std::string, int>> factors;

  int degree_of(const std::string& symbol) const;
  int total_degree() const;
  bool operator==(const Monomial& other) const { return factors == other.factors; }
  bool operator<(const Monomial& other) const;
};

class SymExpr {
 public:
  SymExpr() = default;  // zero
  SymExpr(int64_t constant);  // NOLINT(google-explicit-constructor): dims convert
  static SymExpr symbol(const std::string& name);

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  // Throws unless is_constant().
  int64_t constant_value() const;

  SymExpr operator+(const SymExpr& other) const;
  SymExpr operator-(const SymExpr& other) const;
  SymExpr operator*(const SymExpr& other) const;
  SymExpr& operator+=(const SymExpr& other);
  SymExpr& operator*=(const SymExpr& other);
  bool operator==(const SymExpr& other) const { return terms_ == other.terms_; }
  bool operator!=(const SymExpr& other) const { return !(*this == other); }

  // Exact polynomial division. Supports the cases shape contracts produce —
  // a constant divisor or a single-term divisor — and returns nullopt when
  // the quotient is not a polynomial with integer coefficients.
  std::optional<SymExpr> divided_by(const SymExpr& divisor) const;

  // Exact value at a full binding. Throws on an unbound symbol or int64
  // overflow anywhere in the evaluation.
  int64_t eval(const SymBindings& bindings) const;

  // Interval bounds over `domain`, assuming every symbol range is
  // non-negative. `bounded` is false when a symbol has no declared range or
  // the bound saturates int64.
  struct Interval {
    int64_t lo = 0;
    int64_t hi = 0;
    bool bounded = true;
  };
  Interval bounds(const SymDomain& domain) const;

  // Highest power of `symbol` across all terms (0 when absent) — the
  // asymptotic growth order the transfer-blowup rule compares.
  int degree(const std::string& symbol) const;
  // Every symbol referenced, sorted.
  std::vector<std::string> symbols() const;

  // Canonical rendering, highest total degree first: "2*B*T + 4*B + 128".
  std::string to_string() const;

 private:
  // Canonical form: monomial -> nonzero coefficient.
  std::map<Monomial, int64_t> terms_;
};

// True when `lhs >= rhs` (resp. >) holds for every point of `domain`;
// conservative: false when the difference's bounds are unknown.
bool provably_ge(const SymExpr& lhs, const SymExpr& rhs, const SymDomain& domain);
bool provably_gt(const SymExpr& lhs, const SymExpr& rhs, const SymDomain& domain);

// A tensor shape whose dims are symbolic expressions.
class SymShape {
 public:
  SymShape() = default;
  explicit SymShape(std::vector<SymExpr> dims) : dims_(std::move(dims)) {}
  // Lifts a concrete shape (every dim a constant expression).
  explicit SymShape(const Shape& shape);

  size_t rank() const { return dims_.size(); }
  const SymExpr& dim(size_t i) const;
  const std::vector<SymExpr>& dims() const { return dims_; }

  // Product of all dims (1 for rank 0, mirroring Shape::numel).
  SymExpr numel() const;
  bool is_constant() const;

  bool operator==(const SymShape& other) const { return dims_ == other.dims_; }
  bool operator!=(const SymShape& other) const { return !(*this == other); }

  SymShape with_dim(size_t i, SymExpr value) const;

  // Exact concrete shape at a binding (throws like SymExpr::eval; also on a
  // negative dim, which would mean the binding left the declared domain).
  Shape at(const SymBindings& bindings) const;

  // "[B, 256]"
  std::string to_string() const;

 private:
  std::vector<SymExpr> dims_;
};

}  // namespace duet::symbolic
