#pragma once

// Symbolic cost derivation (ISSUE 7 tentpole, part 3): per-node and
// per-subgraph flops / bytes / launch counts as polynomials of the shape
// symbols, paralleling graph/shape_inference.cpp's node_flops /
// node_kernel_launches / node_bytes and partition/subgraph.cpp's boundary
// byte sums. Every formula there is an integer polynomial of the dims, so
// the SymExpr forms are exact: specializing at a concrete binding reproduces
// the concrete quantities bit-for-bit (all zoo costs are < 2^53, where
// int64 -> double is lossless), which tests/test_symbolic.cpp certifies.

#include <vector>

#include "analysis/symbolic/sym_shape_inference.hpp"
#include "compiler/cost_model.hpp"
#include "partition/partitioner.hpp"

namespace duet::symbolic {

// Symbolic analogue of NodeCostQuantities (flops/bytes/launches only —
// batch and the layout tag specialize per binding).
struct SymNodeCost {
  bool metadata = true;
  SymExpr flops;
  SymExpr read_bytes;
  SymExpr written_bytes;
  SymExpr launches;
  SymExpr batch{1};  // out dim 0 (clamped to >= 1 at specialization)
  bool layout_tagged = false;
};

// Quantities for one node, over the symbolic shapes previously inferred for
// `graph` (shapes.shapes must be indexed by this graph's node ids).
SymNodeCost sym_node_cost(const Graph& graph, const Node& node,
                          const SymbolicShapes& shapes);

// Exact specialization at a binding — the bridge into the shared roofline
// evaluator node_time_from_quantities.
NodeCostQuantities specialize(const SymNodeCost& cost,
                              const SymBindings& bindings, OpType op);

// Per-subgraph totals plus boundary transfer sizes (what the runtime would
// move across PCIe when the subgraph is placed opposite its neighbours).
struct SymSubgraphCost {
  int subgraph = -1;
  SymExpr flops;
  SymExpr read_bytes;
  SymExpr written_bytes;
  SymExpr launches;
  SymExpr transfer_in_bytes;
  SymExpr transfer_out_bytes;
};

// Costs for every subgraph of `partition`, derived from the PARENT graph's
// symbolic shapes (boundary producers are parent nodes).
std::vector<SymSubgraphCost> sym_partition_costs(const Graph& parent,
                                                 const Partition& partition,
                                                 const SymbolicShapes& shapes);

}  // namespace duet::symbolic
