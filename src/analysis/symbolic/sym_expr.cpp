#include "analysis/symbolic/sym_expr.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace duet::symbolic {
namespace {

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kInt64Min = std::numeric_limits<int64_t>::min();

int64_t checked_add(int64_t a, int64_t b) {
  int64_t out = 0;
  DUET_CHECK(!__builtin_add_overflow(a, b, &out))
      << "SymExpr coefficient overflow: " << a << " + " << b;
  return out;
}

int64_t checked_mul(int64_t a, int64_t b) {
  int64_t out = 0;
  DUET_CHECK(!__builtin_mul_overflow(a, b, &out))
      << "SymExpr coefficient overflow: " << a << " * " << b;
  return out;
}

// Saturating arithmetic for interval bounds: a bound past int64 is reported
// as unbounded by the caller instead of wrapping.
int64_t sat_add(int64_t a, int64_t b, bool* exact) {
  int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    *exact = false;
    return (a > 0) == (b > 0) && a < 0 ? kInt64Min : kInt64Max;
  }
  return out;
}

int64_t sat_mul(int64_t a, int64_t b, bool* exact) {
  int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    *exact = false;
    return ((a > 0) == (b > 0)) ? kInt64Max : kInt64Min;
  }
  return out;
}

Monomial merge_monomials(const Monomial& a, const Monomial& b) {
  Monomial out;
  auto ia = a.factors.begin();
  auto ib = b.factors.begin();
  while (ia != a.factors.end() || ib != b.factors.end()) {
    if (ib == b.factors.end() || (ia != a.factors.end() && ia->first < ib->first)) {
      out.factors.push_back(*ia++);
    } else if (ia == a.factors.end() || ib->first < ia->first) {
      out.factors.push_back(*ib++);
    } else {
      out.factors.emplace_back(ia->first, ia->second + ib->second);
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace

int Monomial::degree_of(const std::string& symbol) const {
  for (const auto& [name, exp] : factors) {
    if (name == symbol) return exp;
  }
  return 0;
}

int Monomial::total_degree() const {
  int total = 0;
  for (const auto& [name, exp] : factors) total += exp;
  return total;
}

bool Monomial::operator<(const Monomial& other) const {
  return factors < other.factors;
}

SymExpr::SymExpr(int64_t constant) {
  if (constant != 0) terms_.emplace(Monomial{}, constant);
}

SymExpr SymExpr::symbol(const std::string& name) {
  DUET_CHECK(!name.empty()) << "symbol name must be non-empty";
  SymExpr e;
  Monomial m;
  m.factors.emplace_back(name, 1);
  e.terms_.emplace(std::move(m), 1);
  return e;
}

bool SymExpr::is_constant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.begin()->first.factors.empty());
}

int64_t SymExpr::constant_value() const {
  DUET_CHECK(is_constant()) << "not a constant: " << to_string();
  return terms_.empty() ? 0 : terms_.begin()->second;
}

SymExpr SymExpr::operator+(const SymExpr& other) const {
  SymExpr out = *this;
  out += other;
  return out;
}

SymExpr& SymExpr::operator+=(const SymExpr& other) {
  for (const auto& [mono, coeff] : other.terms_) {
    const auto it = terms_.find(mono);
    if (it == terms_.end()) {
      terms_.emplace(mono, coeff);
      continue;
    }
    it->second = checked_add(it->second, coeff);
    if (it->second == 0) terms_.erase(it);
  }
  return *this;
}

SymExpr SymExpr::operator-(const SymExpr& other) const {
  SymExpr negated;
  for (const auto& [mono, coeff] : other.terms_) {
    DUET_CHECK(coeff != kInt64Min) << "SymExpr coefficient overflow on negate";
    negated.terms_.emplace(mono, -coeff);
  }
  SymExpr out = *this;
  out += negated;
  return out;
}

SymExpr SymExpr::operator*(const SymExpr& other) const {
  SymExpr out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : other.terms_) {
      const Monomial mono = merge_monomials(ma, mb);
      const int64_t coeff = checked_mul(ca, cb);
      const auto it = out.terms_.find(mono);
      if (it == out.terms_.end()) {
        out.terms_.emplace(mono, coeff);
      } else {
        it->second = checked_add(it->second, coeff);
        if (it->second == 0) out.terms_.erase(it);
      }
    }
  }
  return out;
}

SymExpr& SymExpr::operator*=(const SymExpr& other) {
  *this = *this * other;
  return *this;
}

std::optional<SymExpr> SymExpr::divided_by(const SymExpr& divisor) const {
  DUET_CHECK(!divisor.is_zero()) << "SymExpr division by zero";
  if (is_zero()) return SymExpr{};
  if (divisor.terms_.size() != 1) {
    // Multi-term divisors only divide their exact multiples; try the one
    // quotient a shape contract could produce — the dividend equal to the
    // divisor — and give up otherwise.
    return *this == divisor ? std::optional<SymExpr>(SymExpr{1}) : std::nullopt;
  }
  const auto& [dmono, dcoeff] = *divisor.terms_.begin();
  SymExpr out;
  for (const auto& [mono, coeff] : terms_) {
    if (coeff % dcoeff != 0) return std::nullopt;
    Monomial quotient;
    auto dit = dmono.factors.begin();
    for (const auto& [name, exp] : mono.factors) {
      int need = 0;
      if (dit != dmono.factors.end() && dit->first == name) {
        need = dit->second;
        ++dit;
      }
      if (exp < need) return std::nullopt;
      if (exp > need) quotient.factors.emplace_back(name, exp - need);
    }
    if (dit != dmono.factors.end()) return std::nullopt;  // divisor symbol absent
    out.terms_.emplace(std::move(quotient), coeff / dcoeff);
  }
  return out;
}

int64_t SymExpr::eval(const SymBindings& bindings) const {
  int64_t total = 0;
  for (const auto& [mono, coeff] : terms_) {
    int64_t term = coeff;
    for (const auto& [name, exp] : mono.factors) {
      const auto it = bindings.find(name);
      DUET_CHECK(it != bindings.end()) << "unbound symbol " << name << " in "
                                       << to_string();
      for (int e = 0; e < exp; ++e) term = checked_mul(term, it->second);
    }
    total = checked_add(total, term);
  }
  return total;
}

SymExpr::Interval SymExpr::bounds(const SymDomain& domain) const {
  Interval out;
  bool exact = true;
  for (const auto& [mono, coeff] : terms_) {
    // Symbol ranges are non-negative, so each monomial's magnitude is
    // monotone: its range is [prod(lo), prod(hi)] scaled by the coefficient.
    int64_t mono_lo = 1;
    int64_t mono_hi = 1;
    for (const auto& [name, exp] : mono.factors) {
      const auto it = domain.find(name);
      if (it == domain.end()) {
        out.bounded = false;
        return out;
      }
      DUET_CHECK_GE(it->second.lo, 0) << "symbol " << name << " range negative";
      DUET_CHECK_LE(it->second.lo, it->second.hi)
          << "symbol " << name << " range inverted";
      for (int e = 0; e < exp; ++e) {
        mono_lo = sat_mul(mono_lo, it->second.lo, &exact);
        mono_hi = sat_mul(mono_hi, it->second.hi, &exact);
      }
    }
    const int64_t term_lo = sat_mul(coeff, coeff > 0 ? mono_lo : mono_hi, &exact);
    const int64_t term_hi = sat_mul(coeff, coeff > 0 ? mono_hi : mono_lo, &exact);
    out.lo = sat_add(out.lo, term_lo, &exact);
    out.hi = sat_add(out.hi, term_hi, &exact);
  }
  out.bounded = exact;
  return out;
}

int SymExpr::degree(const std::string& symbol) const {
  int deg = 0;
  for (const auto& [mono, coeff] : terms_) {
    deg = std::max(deg, mono.degree_of(symbol));
  }
  return deg;
}

std::vector<std::string> SymExpr::symbols() const {
  std::vector<std::string> out;
  for (const auto& [mono, coeff] : terms_) {
    for (const auto& [name, exp] : mono.factors) {
      if (std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(name);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string SymExpr::to_string() const {
  if (terms_.empty()) return "0";
  // Highest total degree first, then the canonical monomial order.
  std::vector<const std::pair<const Monomial, int64_t>*> ordered;
  ordered.reserve(terms_.size());
  for (const auto& term : terms_) ordered.push_back(&term);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto* a, const auto* b) {
                     return a->first.total_degree() > b->first.total_degree();
                   });
  std::ostringstream os;
  bool first = true;
  for (const auto* term : ordered) {
    const auto& [mono, coeff] = *term;
    if (!first) os << (coeff < 0 ? " - " : " + ");
    const int64_t magnitude = first ? coeff : (coeff < 0 ? -coeff : coeff);
    first = false;
    if (mono.factors.empty()) {
      os << magnitude;
      continue;
    }
    bool printed = false;
    if (magnitude != 1) {
      os << magnitude;
      printed = true;
    }
    for (const auto& [name, exp] : mono.factors) {
      if (printed) os << "*";
      os << name;
      if (exp > 1) os << "^" << exp;
      printed = true;
    }
  }
  return os.str();
}

bool provably_ge(const SymExpr& lhs, const SymExpr& rhs, const SymDomain& domain) {
  const SymExpr::Interval diff = (lhs - rhs).bounds(domain);
  return diff.bounded && diff.lo >= 0;
}

bool provably_gt(const SymExpr& lhs, const SymExpr& rhs, const SymDomain& domain) {
  const SymExpr::Interval diff = (lhs - rhs).bounds(domain);
  return diff.bounded && diff.lo > 0;
}

SymShape::SymShape(const Shape& shape) {
  dims_.reserve(shape.rank());
  for (int64_t d : shape.dims()) dims_.emplace_back(d);
}

const SymExpr& SymShape::dim(size_t i) const {
  DUET_CHECK_LT(i, dims_.size()) << "symbolic shape dim out of range";
  return dims_[i];
}

SymExpr SymShape::numel() const {
  SymExpr n{1};
  for (const SymExpr& d : dims_) n *= d;
  return n;
}

bool SymShape::is_constant() const {
  for (const SymExpr& d : dims_) {
    if (!d.is_constant()) return false;
  }
  return true;
}

SymShape SymShape::with_dim(size_t i, SymExpr value) const {
  DUET_CHECK_LT(i, dims_.size());
  std::vector<SymExpr> d = dims_;
  d[i] = std::move(value);
  return SymShape(std::move(d));
}

Shape SymShape::at(const SymBindings& bindings) const {
  std::vector<int64_t> dims;
  dims.reserve(dims_.size());
  for (const SymExpr& d : dims_) dims.push_back(d.eval(bindings));
  return Shape(std::move(dims));
}

std::string SymShape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i].to_string();
  }
  os << "]";
  return os.str();
}

}  // namespace duet::symbolic
