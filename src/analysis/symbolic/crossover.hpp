#pragma once

// Batch-crossover certification (ISSUE 7 tentpole, part 3b). For every
// subgraph of a phased partition, evaluate the analytic cost model at each
// integer value of one symbol (the batch dimension B) over its declared
// range and find where the CPU-vs-GPU preference flips. GPU time charges the
// PCIe transfers the placement would induce (boundary in + out); CPU time is
// the bare subgraph time, matching the paper's "CPU owns the graph, GPU
// placements pay the boundary" asymmetry.
//
// Each flip is certified, not asserted: the report carries the analytic
// times on BOTH sides of the boundary, so a reader (or the CI artifact
// check) can re-evaluate the model and confirm the preference really
// changes. The sorted set of flip points is the proposed bucket-boundary
// list for shape-bucketed compilation (ROADMAP "batch-size-dependent
// plans").

#include <string>
#include <vector>

#include "analysis/symbolic/sym_cost.hpp"
#include "device/calibration.hpp"

namespace duet::symbolic {

struct CrossoverOptions {
  std::string symbol = "B";
  int64_t lo = 1;
  int64_t hi = 64;
  DeviceCostParams cpu = xeon_gold_6152();
  DeviceCostParams gpu = titan_v();
  TransferParams link = pcie3_x16();
  CompileOptions compile;  // defaults: compiled mode, converged tuning
};

// Maximal batch interval [lo, hi] with one constant preferred device.
struct PreferenceInterval {
  int64_t lo = 0;
  int64_t hi = 0;
  DeviceKind device = DeviceKind::kCpu;
};

// The certificate for one flip: analytic times immediately before and after
// `batch` (the first batch of the new preference).
struct CrossoverBoundary {
  int64_t batch = 0;
  DeviceKind from = DeviceKind::kCpu;
  DeviceKind to = DeviceKind::kGpu;
  double cpu_before = 0;
  double gpu_before = 0;
  double cpu_after = 0;
  double gpu_after = 0;
};

struct SubgraphCrossover {
  int subgraph = -1;
  std::string label;
  std::vector<PreferenceInterval> intervals;
  std::vector<CrossoverBoundary> boundaries;
};

struct CrossoverReport {
  std::string model;
  std::string symbol;
  int64_t lo = 0;
  int64_t hi = 0;
  std::vector<SubgraphCrossover> subgraphs;
  // Distinct flip batches across all subgraphs, sorted — the proposed
  // bucket boundaries (each bucket = one plan).
  std::vector<int64_t> bucket_boundaries;

  bool any_flip() const { return !bucket_boundaries.empty(); }
  std::string to_string() const;
  std::string to_json() const;
};

// Scans `options.symbol` over [lo, hi]; other symbols must be pinned in
// `pinned` (throws on an unbound symbol, like SymExpr::eval).
CrossoverReport analyze_crossover(const Graph& parent,
                                  const Partition& partition,
                                  const SymbolicShapes& shapes,
                                  const CrossoverOptions& options = {},
                                  const SymBindings& pinned = {});

// Certificate -> serving export (ISSUE 10): the report's flip batches,
// clipped to the serving runtime's coalescing range (1, max_batch], ready
// to seed `make_batch_buckets`. The report keeps every certified flip; the
// serving registry only buckets the range it will actually batch over.
std::vector<int64_t> serving_bucket_boundaries(const CrossoverReport& report,
                                               int64_t max_batch);

}  // namespace duet::symbolic
