#include "analysis/symbolic/sym_shape_inference.hpp"

#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "graph/op.hpp"

namespace duet::symbolic {
namespace {

constexpr const char* kRuleShapeContract = "symbolic-shape-contract";
constexpr const char* kRuleUnboundedDim = "unbounded-dim";

// Per-node inference state threaded through the op contracts below.
class Inference {
 public:
  Inference(const Graph& graph, const SymbolicOptions& options)
      : graph_(graph) {
    result_.batch_symbol = options.batch_symbol;
    result_.domain = options.domain;
    if (result_.domain.empty() && !options.batch_symbol.empty()) {
      result_.domain[options.batch_symbol] = SymRange{1, 64};
    }
  }

  SymbolicShapes run(const SymbolicOptions& options) {
    result_.shapes.reserve(graph_.num_nodes());
    result_.dtypes.reserve(graph_.num_nodes());
    for (const Node& n : graph_.nodes()) {
      result_.dtypes.push_back(n.out_dtype);
      result_.shapes.push_back(infer(n, options));
    }
    check_domain_coverage();
    result_.diagnostics.attribute("symbolic-inference");
    result_.diagnostics.set_artifact(graph_.name());
    return std::move(result_);
  }

 private:
  // The symbolic shape of input `i` of node `n` (already inferred — node
  // inputs precede the node in the table by construction).
  const SymShape& in(const Node& n, size_t i) const {
    DUET_CHECK_LT(i, n.inputs.size())
        << op_name(n.op) << " missing input " << i;
    const NodeId id = n.inputs[i];
    DUET_CHECK(id >= 0 && static_cast<size_t>(id) < result_.shapes.size())
        << "input id out of inference order";
    return result_.shapes[static_cast<size_t>(id)];
  }

  // Records a symbolic-shape-contract finding and falls back to the node's
  // recorded concrete shape so inference continues whole-graph. The fallback
  // deliberately drops symbols: downstream consumers see a constant shape,
  // which keeps specialization consistent with what the runtime would do
  // after re-tracing at a concrete batch.
  SymShape contract(const Node& n, const std::string& why) {
    result_.diagnostics.warning(kRuleShapeContract, n.id,
                                std::string(op_name(n.op)) + " '" + n.name +
                                    "': " + why);
    return SymShape(n.out_shape);
  }

  // Emits unbounded-dim once per offending symbol.
  void note_unbounded(const Node& n, const SymExpr& dim) {
    for (const std::string& sym : dim.symbols()) {
      if (result_.domain.count(sym) != 0 || !reported_unbounded_.insert(sym).second) {
        continue;
      }
      result_.diagnostics.warning(
          kRuleUnboundedDim, n.id,
          "symbol '" + sym + "' in dim " + dim.to_string() +
              " has no declared range; bounds and crossover analysis are "
              "unbounded");
    }
  }

  // After the walk: any domain symbol whose declared range saturates a
  // shape's bounds is as good as unbounded — surface it.
  void check_domain_coverage() {
    for (size_t id = 0; id < result_.shapes.size(); ++id) {
      for (const SymExpr& d : result_.shapes[id].dims()) {
        if (d.is_constant()) continue;
        const SymExpr::Interval b = d.bounds(result_.domain);
        bool missing = false;
        for (const std::string& sym : d.symbols()) {
          missing |= result_.domain.count(sym) == 0;
        }
        if (!b.bounded && !missing && reported_saturated_.insert(id).second) {
          result_.diagnostics.warning(
              kRuleUnboundedDim, static_cast<NodeId>(id),
              "dim " + d.to_string() +
                  " overflows int64 over the declared domain");
        }
      }
    }
  }

  SymShape input_shape(const Node& n, const SymbolicOptions& options) {
    SymShape s(n.out_shape);
    if (!options.batch_symbol.empty() && options.batch_dim < s.rank()) {
      s = s.with_dim(options.batch_dim, SymExpr::symbol(options.batch_symbol));
    }
    const auto it = options.input_dims.find(n.name);
    if (it != options.input_dims.end()) {
      for (const auto& [dim, sym] : it->second) {
        if (dim < s.rank()) s = s.with_dim(dim, SymExpr::symbol(sym));
      }
    }
    for (const SymExpr& d : s.dims()) note_unbounded(n, d);
    return s;
  }

  // Mirrors infer_node_type case by case; every DUET_CHECK there becomes a
  // provable-over-the-domain check here, with a contract() fallback.
  SymShape infer(const Node& n, const SymbolicOptions& options) {
    switch (n.op) {
      case OpType::kInput:
        return input_shape(n, options);
      case OpType::kConstant:
        return SymShape(n.out_shape);
      case OpType::kAdd:
      case OpType::kSub:
      case OpType::kMul: {
        const SymShape& a = in(n, 0);
        const SymShape& b = in(n, 1);
        if (a != b) {
          return contract(n, "operand shapes differ symbolically: " +
                                 a.to_string() + " vs " + b.to_string());
        }
        return a;
      }
      case OpType::kReLU:
      case OpType::kSigmoid:
      case OpType::kTanh:
      case OpType::kGelu:
      case OpType::kAddScalar:
      case OpType::kMulScalar:
      case OpType::kIdentity:
      case OpType::kSoftmax:
      case OpType::kElementwiseChain:
      case OpType::kLayerNorm:
      case OpType::kBatchNorm:
        return in(n, 0);
      case OpType::kBiasAdd: {
        const SymShape& x = in(n, 0);
        const SymShape& b = in(n, 1);
        if (b.rank() != 1 || x.rank() == 0) {
          return contract(n, "bias must be rank 1 against ranked input");
        }
        if (b.dim(0) != x.dim(x.rank() - 1)) {
          return contract(n, "bias width " + b.dim(0).to_string() +
                                 " vs feature dim " +
                                 x.dim(x.rank() - 1).to_string());
        }
        return x;
      }
      case OpType::kMatMul: {
        const SymShape& a = in(n, 0);
        const SymShape& b = in(n, 1);
        if (a.rank() != 2 || b.rank() != 2) {
          return contract(n, "matmul operands must be rank 2");
        }
        if (a.dim(1) != b.dim(0)) {
          return contract(n, "K mismatch: " + a.dim(1).to_string() + " vs " +
                                 b.dim(0).to_string());
        }
        return SymShape({a.dim(0), b.dim(1)});
      }
      case OpType::kBatchMatMul: {
        const SymShape& a = in(n, 0);
        const SymShape& b = in(n, 1);
        if (a.rank() != 3) return contract(n, "lhs must be rank 3");
        if (b.rank() != 2 && b.rank() != 3) {
          return contract(n, "rhs must be rank 2 or 3");
        }
        const SymExpr nb = b.rank() == 2 ? b.dim(1) : b.dim(2);
        return SymShape({a.dim(0), a.dim(1), nb});
      }
      case OpType::kDense: {
        const SymShape& x = in(n, 0);
        const SymShape& w = in(n, 1);
        if (x.rank() != 2 || w.rank() != 2) {
          return contract(n, "dense operands must be rank 2");
        }
        if (x.dim(1) != w.dim(0)) {
          return contract(n, "in-features mismatch: " + x.dim(1).to_string() +
                                 " vs " + w.dim(0).to_string());
        }
        return SymShape({x.dim(0), w.dim(1)});
      }
      case OpType::kConv2d: {
        const SymShape& x = in(n, 0);
        const SymShape& w = in(n, 1);
        if (x.rank() != 4 || w.rank() != 4) {
          return contract(n, "conv2d operands must be rank 4");
        }
        if (x.dim(1) != w.dim(1)) {
          return contract(n, "channel mismatch: " + x.dim(1).to_string() +
                                 " vs " + w.dim(1).to_string());
        }
        const int64_t s = n.attrs.get_int_or("stride", 1);
        const int64_t p = n.attrs.get_int_or("padding", 0);
        auto oh = pool_out_sym(n, x.dim(2), w.dim(2), s, p);
        auto ow = pool_out_sym(n, x.dim(3), w.dim(3), s, p);
        if (!oh || !ow) {
          return contract(n, "spatial extent not divisible by stride " +
                                 std::to_string(s) + " symbolically");
        }
        if (!provably_gt(*oh, SymExpr{0}, result_.domain) ||
            !provably_gt(*ow, SymExpr{0}, result_.domain)) {
          return contract(n, "cannot prove conv output positive over domain");
        }
        return SymShape({x.dim(0), w.dim(0), *oh, *ow});
      }
      case OpType::kMaxPool2d:
      case OpType::kAvgPool2d: {
        const SymShape& x = in(n, 0);
        if (x.rank() != 4) return contract(n, "pool input must be rank 4");
        const int64_t k = n.attrs.get_int("kernel");
        const int64_t s = n.attrs.get_int_or("stride", k);
        const int64_t p = n.attrs.get_int_or("padding", 0);
        auto oh = pool_out_sym(n, x.dim(2), SymExpr{k}, s, p);
        auto ow = pool_out_sym(n, x.dim(3), SymExpr{k}, s, p);
        if (!oh || !ow) {
          return contract(n, "spatial extent not divisible by stride " +
                                 std::to_string(s) + " symbolically");
        }
        return SymShape({x.dim(0), x.dim(1), *oh, *ow});
      }
      case OpType::kGlobalAvgPool: {
        const SymShape& x = in(n, 0);
        if (x.rank() != 4) return contract(n, "input must be rank 4");
        return SymShape({x.dim(0), x.dim(1)});
      }
      case OpType::kLSTM:
      case OpType::kGRU: {
        const SymShape& x = in(n, 0);
        const SymShape& whh = in(n, 2);
        if (x.rank() != 3) return contract(n, "rnn input must be rank 3");
        if (whh.rank() == 0) return contract(n, "recurrent weight missing rank");
        return SymShape({x.dim(0), x.dim(1), whh.dim(0)});
      }
      case OpType::kEmbedding: {
        const SymShape& idx = in(n, 0);
        const SymShape& table = in(n, 1);
        if (idx.rank() != 2 || table.rank() != 2) {
          return contract(n, "embedding expects rank-2 indices and table");
        }
        return SymShape({idx.dim(0), idx.dim(1), table.dim(1)});
      }
      case OpType::kReduceSum:
      case OpType::kReduceMean:
      case OpType::kReduceMax: {
        const SymShape& x = in(n, 0);
        const int64_t axis = n.attrs.get_int("axis");
        if (axis < 0 || static_cast<size_t>(axis) >= x.rank()) {
          return contract(n, "reduce axis out of range");
        }
        std::vector<SymExpr> dims;
        for (size_t i = 0; i < x.rank(); ++i) {
          if (static_cast<int64_t>(i) != axis) dims.push_back(x.dim(i));
        }
        if (dims.empty()) dims.emplace_back(1);
        return SymShape(std::move(dims));
      }
      case OpType::kArgMax: {
        const SymShape& x = in(n, 0);
        if (x.rank() == 0) return contract(n, "argmax input must be ranked");
        std::vector<SymExpr> dims(x.dims().begin(), x.dims().end() - 1);
        if (dims.empty()) dims.emplace_back(1);
        return SymShape(std::move(dims));
      }
      case OpType::kConcat: {
        if (n.inputs.empty()) return contract(n, "concat needs inputs");
        const int64_t axis = n.attrs.get_int("axis");
        const SymShape& first = in(n, 0);
        if (axis < 0 || static_cast<size_t>(axis) >= first.rank()) {
          return contract(n, "concat axis out of range");
        }
        SymExpr total;
        for (size_t i = 0; i < n.inputs.size(); ++i) {
          const SymShape& part = in(n, i);
          if (part.rank() != first.rank()) {
            return contract(n, "rank mismatch at input " + std::to_string(i));
          }
          for (size_t d = 0; d < first.rank(); ++d) {
            if (static_cast<int64_t>(d) == axis) continue;
            if (part.dim(d) != first.dim(d)) {
              return contract(n, "non-axis dim mismatch at input " +
                                     std::to_string(i) + ": " +
                                     part.dim(d).to_string() + " vs " +
                                     first.dim(d).to_string());
            }
          }
          total += part.dim(static_cast<size_t>(axis));
        }
        return first.with_dim(static_cast<size_t>(axis), total);
      }
      case OpType::kReshape: {
        const SymShape& x = in(n, 0);
        const SymShape target{Shape(n.attrs.get_ints("dims"))};
        // Target dims are concrete attrs: expressible only when the input's
        // numel is itself constant and matches.
        if (!x.numel().is_constant() || x.numel() != target.numel()) {
          return contract(n, "reshape to concrete dims folds symbolic numel " +
                                 x.numel().to_string());
        }
        return target;
      }
      case OpType::kFlatten: {
        const SymShape& x = in(n, 0);
        if (x.rank() == 0) return contract(n, "flatten input must be ranked");
        auto rest = x.numel().divided_by(x.dim(0));
        if (!rest) {
          return contract(n, "numel " + x.numel().to_string() +
                                 " not divisible by dim0 " +
                                 x.dim(0).to_string());
        }
        return SymShape({x.dim(0), *rest});
      }
      case OpType::kTranspose2d: {
        const SymShape& x = in(n, 0);
        if (x.rank() != 2) return contract(n, "transpose input must be rank 2");
        return SymShape({x.dim(1), x.dim(0)});
      }
      case OpType::kSliceRows: {
        const SymShape& x = in(n, 0);
        if (x.rank() == 0) return contract(n, "slice input must be ranked");
        const int64_t begin = n.attrs.get_int("begin");
        const int64_t end = n.attrs.get_int("end");
        if (!(begin >= 0 && begin < end)) {
          return contract(n, "bad slice bounds");
        }
        if (!provably_ge(x.dim(0), SymExpr{end}, result_.domain)) {
          return contract(n, "cannot prove end " + std::to_string(end) +
                                 " <= rows " + x.dim(0).to_string() +
                                 " over domain");
        }
        return x.with_dim(0, SymExpr{end - begin});
      }
      case OpType::kSeqLast: {
        const SymShape& x = in(n, 0);
        if (x.rank() != 3) return contract(n, "seq-last input must be rank 3");
        return SymShape({x.dim(0), x.dim(2)});
      }
      case OpType::kMultiHeadAttention: {
        const SymShape& x = in(n, 0);
        if (x.rank() != 3) return contract(n, "attention input must be rank 3");
        const int64_t heads = n.attrs.get_int("heads");
        if (heads <= 0 || !x.dim(2).divided_by(SymExpr{heads})) {
          return contract(n, "model dim " + x.dim(2).to_string() +
                                 " not divisible by heads " +
                                 std::to_string(heads));
        }
        return x;
      }
    }
    return contract(n, "unhandled op");
  }

  // Symbolic (in + 2p - k) / s + 1; nullopt when the division is inexact.
  std::optional<SymExpr> pool_out_sym(const Node& n, const SymExpr& in_dim,
                                      const SymExpr& kernel, int64_t stride,
                                      int64_t padding) {
    const SymExpr numerator = in_dim + SymExpr{2 * padding} - kernel;
    if (numerator.is_constant()) {
      // Concrete path: floor division, exactly as the concrete pass.
      return SymExpr{numerator.constant_value() / stride + 1};
    }
    auto q = numerator.divided_by(SymExpr{stride});
    if (!q) return std::nullopt;
    (void)n;
    return *q + SymExpr{1};
  }

  const Graph& graph_;
  SymbolicShapes result_;
  std::set<std::string> reported_unbounded_;
  std::set<size_t> reported_saturated_;
};

}  // namespace

bool SymbolicShapes::has(const std::string& rule) const {
  for (const Diagnostic& d : diagnostics.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

SymbolicShapes infer_symbolic(const Graph& graph,
                              const SymbolicOptions& options) {
  return Inference(graph, options).run(options);
}

}  // namespace duet::symbolic
