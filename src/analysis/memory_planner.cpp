#include "analysis/memory_planner.hpp"

#include <algorithm>
#include <tuple>

namespace duet {
namespace {

uint64_t align_up(uint64_t offset) {
  return (offset + kArenaAlignment - 1) / kArenaAlignment * kArenaAlignment;
}

// May `next` reuse arena space of `prior` (or vice versa)? Anything else
// means the two copies can be live concurrently and must not overlap.
bool may_share(const ValueInterval& a, const std::vector<int>& a_acc,
               const ValueInterval& b, const std::vector<int>& b_acc,
               const HappensBefore& hb) {
  const bool a_first =
      !a.held_to_end && accesses_precede(a_acc, b_acc, hb);
  const bool b_first =
      !b.held_to_end && accesses_precede(b_acc, a_acc, hb);
  return a_first || b_first;
}

}  // namespace

MemoryPlan plan_memory(const LivenessInfo& liveness, const HappensBefore& hb) {
  MemoryPlan plan;

  std::vector<size_t> order(liveness.intervals.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // First-fit packs intervals in launch order; among same-step intervals the
  // larger one goes first (the classic size tiebreak keeps fragmentation
  // down).
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const ValueInterval& a = liveness.intervals[x];
    const ValueInterval& b = liveness.intervals[y];
    return std::make_tuple(a.device, a.def_step, b.bytes, a.value) <
           std::make_tuple(b.device, b.def_step, a.bytes, b.value);
  });

  std::vector<std::vector<int>> accesses(liveness.intervals.size());
  for (size_t i = 0; i < liveness.intervals.size(); ++i) {
    accesses[i] = interval_accesses(liveness.intervals[i].def_subgraph,
                                    liveness.intervals[i].uses);
  }

  std::vector<size_t> placed[kNumDeviceKinds];  // interval indices
  std::vector<uint64_t> offsets(liveness.intervals.size(), 0);
  for (size_t idx : order) {
    const ValueInterval& iv = liveness.intervals[idx];
    const int d = static_cast<int>(iv.device);
    // A corrupted plan can define one value twice (the validator reports
    // it); keep the first copy so the planner stays total.
    if (plan.find(iv.device, iv.value) != nullptr) continue;
    uint64_t offset = 0;
    if (iv.bytes > 0) {
      // Busy ranges: every already-placed interval this one may be live
      // concurrently with.
      std::vector<std::pair<uint64_t, uint64_t>> busy;
      for (size_t other : placed[d]) {
        const ValueInterval& ov = liveness.intervals[other];
        if (ov.bytes == 0) continue;
        if (may_share(iv, accesses[idx], ov, accesses[other], hb)) continue;
        busy.emplace_back(offsets[other], offsets[other] + ov.bytes);
      }
      std::sort(busy.begin(), busy.end());
      for (const auto& [begin, end] : busy) {
        if (offset + iv.bytes <= begin) break;  // fits in the gap
        offset = std::max(offset, align_up(end));
      }
    }
    offsets[idx] = offset;
    placed[d].push_back(idx);

    ArenaSlot slot;
    slot.value = iv.value;
    slot.device = iv.device;
    slot.offset = offset;
    slot.bytes = iv.bytes;
    slot.def_subgraph = iv.def_subgraph;
    slot.uses = iv.uses;
    slot.def_step = iv.def_step;
    slot.last_use_step = iv.last_use_step;
    slot.held_to_end = iv.held_to_end;
    plan.add_slot(std::move(slot));
  }
  return plan;
}

MemoryPlan plan_memory(const ExecutionPlan& plan) {
  return plan_memory(analyze_liveness(plan), HappensBefore(plan.subgraphs()));
}

}  // namespace duet
