#pragma once

// Bounded MPMC request queue — the admission boundary of the serving
// runtime. Unlike the executor's SyncQueue (runtime/queue.hpp), which is
// unbounded because the plan's dependency structure already bounds it, a
// serving queue faces an open-loop arrival process: when producers outrun
// the workers the queue must push back. try_push never blocks — a full
// queue is an admission decision (reject), not a stall — while pop blocks
// workers until work arrives or the queue closes.
//
// close() is the graceful-drain half of shutdown: producers are refused
// from that point on, but everything already accepted stays poppable, so
// workers drain the backlog and then observe the closed+empty state.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace duet::serve {

template <typename T>
class BoundedQueue {
 public:
  enum class Push { kAccepted, kFull, kClosed };

  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Non-blocking admission: kAccepted when the item was enqueued, kFull
  // when the queue is at capacity (the caller sheds or rejects), kClosed
  // after close() (the server is draining or shut down). `item` is moved
  // from only on kAccepted — a refused caller still owns it, so it can
  // answer the request with the rejection.
  Push try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Push::kClosed;
      if (items_.size() >= capacity_) return Push::kFull;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return Push::kAccepted;
  }

  // Blocks until an item arrives or the queue is closed and drained;
  // nullopt means closed+empty — the consumer must exit its loop.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Refuses new pushes; already-accepted items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace duet::serve
