#pragma once

// ModelRegistry — many resident models, one cache, plans per batch bucket
// (ISSUE 10 tentpole). Each registered model brings a batch-parameterized
// graph factory (factory(B) must be structurally identical to factory(1)
// with dim 0 scaled — models/model_zoo.hpp provides the zoo's). At
// registration the registry:
//
//   1. builds the base engine at B=1 (partition, profiles, placement, plan)
//      — compile artifacts and profile statistics flow through the PR-4
//      content-addressed caches, so structurally shared subgraphs across
//      resident models compile and profile once (the registration-delta
//      stats below make the dedup measurable);
//   2. seeds batch-bucket boundaries from the PR-7 crossover certificates
//      (analysis/symbolic/crossover.hpp) and runs the scheduler once per
//      bucket at the bucket's representative batch, recording one placement
//      per bucket — the "plan per bucket" the paper's batch-crossover data
//      calls for;
//   3. lazily instantiates the concrete ExecutionPlan for each batch size a
//      coalesced pickup actually forms, under the bucket's placement, and
//      publishes it behind a shared_ptr snapshot exactly like the server's
//      recalibration swap — readers never block on a build.
//
// The registry is the shared, read-mostly substrate under FleetServer;
// plan_for_batch / service estimates are thread-safe.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "duet/engine.hpp"
#include "sched/batch_buckets.hpp"

namespace duet::serve {

using BatchedGraphFactory = std::function<Graph(int64_t batch)>;

struct ModelRegistryOptions {
  DuetOptions engine;
  // Coalescing range: plans exist for batches in [1, max_batch].
  int64_t max_batch = 32;
  // Bucket-table cap (make_batch_buckets keeps the smallest boundaries).
  size_t max_buckets = 4;
  // Seed bucket boundaries from the crossover certificates. Off = one
  // bucket [1, max_batch], i.e. the single-plan baseline the efficacy gate
  // compares against.
  bool crossover_buckets = true;
};

// Compile/profile cache activity observed during one registration — the
// registry-level dedup surface. Deltas of the process-global PR-4 cache
// stats, so they are meaningful when registrations do not race other
// engine construction (tests and the CLI register sequentially).
struct RegistrationCacheDelta {
  std::string model;
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;
  uint64_t profile_hits = 0;
  uint64_t profile_misses = 0;

  double compile_hit_rate() const {
    const uint64_t total = compile_hits + compile_misses;
    return total > 0 ? static_cast<double>(compile_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

struct RegistryCacheStats {
  std::vector<RegistrationCacheDelta> registrations;
  // Sums over all registrations.
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;
  uint64_t profile_hits = 0;
  uint64_t profile_misses = 0;

  double compile_dedup_ratio() const {
    const uint64_t total = compile_hits + compile_misses;
    return total > 0 ? static_cast<double>(compile_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
  std::string to_string() const;
};

// One resident model: base engine, bucket table with one placement per
// bucket, and the per-batch plan cache.
class ResidentModel {
 public:
  ResidentModel(std::string name, BatchedGraphFactory factory,
                const ModelRegistryOptions& options);

  ResidentModel(const ResidentModel&) = delete;
  ResidentModel& operator=(const ResidentModel&) = delete;

  const std::string& name() const { return name_; }
  const DuetEngine& engine() const { return *engine_; }
  const std::vector<BatchBucket>& buckets() const { return buckets_; }
  const Placement& bucket_placement(size_t bucket) const;
  size_t bucket_of(int64_t batch) const;
  int64_t max_batch() const { return options_.max_batch; }

  // The plan serving a batch-B coalesced execution: factory(B) compiled
  // under the placement of B's bucket. Built on first use, then shared.
  std::shared_ptr<const ExecutionPlan> plan_for_batch(int64_t batch);
  // Same batch-B graph under the base (B=1) placement for every B — the
  // single-plan baseline of the efficacy gate.
  std::shared_ptr<const ExecutionPlan> baseline_plan_for_batch(int64_t batch);

  // Modeled service times the virtual-time fleet simulator replays
  // (deterministic, noise-free). Exact plans are measured only at each
  // bucket's endpoints — transiently, so a max_batch-64 sweep does not pin
  // one compiled plan per batch size — and batches inside a bucket
  // interpolate linearly between its endpoints. The placement flip at a
  // bucket boundary stays an exact discontinuity; both the bucketed and the
  // single-plan baseline curve sample the same grid so their difference is
  // placement, not interpolation error.
  double modeled_service_s(int64_t batch);
  double baseline_service_s(int64_t batch);

 private:
  std::shared_ptr<const ExecutionPlan> plan_for(int64_t batch,
                                                bool bucketed);
  // Exact modeled makespan at `batch`; builds a throwaway plan on a cache
  // miss and memoizes only the scalar.
  double probe_service_s(int64_t batch, bool bucketed);
  double interpolated_service_s(int64_t batch, bool bucketed);

  std::string name_;
  BatchedGraphFactory factory_;
  ModelRegistryOptions options_;
  std::unique_ptr<DuetEngine> engine_;  // base, B=1
  std::vector<BatchBucket> buckets_;
  std::vector<Placement> placements_;  // aligned with buckets_

  // Plan snapshots keyed by (batch, bucketed?), swapped like the server's
  // recalibration snapshots: build outside the lock, publish under it.
  std::mutex plans_mutex_;
  std::map<std::pair<int64_t, bool>, std::shared_ptr<const ExecutionPlan>>
      plans_;
  // Deterministic (noise-free) modeled makespans, same key.
  std::map<std::pair<int64_t, bool>, double> service_cache_;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(ModelRegistryOptions options = {});

  // Builds the resident model (engine + bucket placements) and records the
  // registration's cache delta. Returns the model index FleetRequest uses.
  // Throws on a duplicate name.
  int register_model(const std::string& name, BatchedGraphFactory factory);

  size_t size() const { return models_.size(); }
  int index_of(const std::string& name) const;  // -1 when absent
  ResidentModel& model(int index);
  const ResidentModel& model(int index) const;

  const ModelRegistryOptions& options() const { return options_; }
  const RegistryCacheStats& cache_stats() const { return cache_stats_; }

 private:
  ModelRegistryOptions options_;
  std::vector<std::unique_ptr<ResidentModel>> models_;
  RegistryCacheStats cache_stats_;
};

}  // namespace duet::serve
