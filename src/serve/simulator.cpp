#include "serve/simulator.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace duet::serve {

ServeStats simulate_serving(const std::vector<double>& arrivals,
                            const std::function<double(size_t)>& service_s,
                            const ServeSimConfig& config) {
  DUET_CHECK_GT(config.workers, 0);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    DUET_CHECK_GE(arrivals[i], arrivals[i - 1]) << "arrivals must be ascending";
  }

  AdmissionController admission(config.queue_capacity);
  LatencyRecorder sojourn;
  LatencyRecorder queue_wait;

  // Earliest-free worker pool.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < config.workers; ++w) free_at.push(0.0);

  std::deque<size_t> pending;  // accepted, not yet started (FIFO)
  double last_completion = 0.0;
  double busy_s = 0.0;
  size_t max_depth = 0;

  // Starts queued requests while the earliest-free worker frees no later
  // than `horizon` (departures at a timestamp process before the arrival
  // sharing it). A shed takes no worker time, so the loop keeps going.
  const auto advance = [&](double horizon) {
    while (!pending.empty()) {
      const double free_t = free_at.top();
      const size_t i = pending.front();
      const double start_t = std::max(free_t, arrivals[i]);
      if (start_t > horizon) break;
      pending.pop_front();
      if (admission.should_shed(start_t, arrivals[i], config.deadline_s)) {
        admission.counters().shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      free_at.pop();
      const double completion = start_t + service_s(i);
      free_at.push(completion);
      busy_s += completion - start_t;
      last_completion = std::max(last_completion, completion);
      queue_wait.add(start_t - arrivals[i]);
      sojourn.add(completion - arrivals[i]);
      admission.counters().completed.fetch_add(1, std::memory_order_relaxed);
      if (config.deadline_s > 0.0 &&
          completion > arrivals[i] + config.deadline_s) {
        admission.counters().completed_late.fetch_add(1,
                                                      std::memory_order_relaxed);
      }
    }
  };

  for (size_t i = 0; i < arrivals.size(); ++i) {
    advance(arrivals[i]);
    admission.counters().offered.fetch_add(1, std::memory_order_relaxed);
    if (admission.on_arrival(pending.size()) == Verdict::kReject) {
      admission.counters().rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    admission.counters().accepted.fetch_add(1, std::memory_order_relaxed);
    pending.push_back(i);
    max_depth = std::max(max_depth, pending.size());
  }
  advance(std::numeric_limits<double>::infinity());

  ServeStats stats;
  stats.admission = admission.counters().snapshot();
  const double t0 = arrivals.empty() ? 0.0 : arrivals.front();
  stats.makespan_s = std::max(last_completion - t0, 0.0);
  stats.throughput_qps =
      stats.makespan_s > 0.0
          ? static_cast<double>(stats.admission.completed) / stats.makespan_s
          : 0.0;
  stats.sojourn = sojourn.summarize();
  stats.queue_wait = queue_wait.summarize();
  stats.worker_busy_frac =
      stats.makespan_s > 0.0
          ? busy_s / (static_cast<double>(config.workers) * stats.makespan_s)
          : 0.0;
  stats.max_queue_depth = max_depth;
  return stats;
}

}  // namespace duet::serve
