#include "serve/simulator.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace duet::serve {

ServeStats simulate_serving(const std::vector<double>& arrivals,
                            const std::function<double(size_t)>& service_s,
                            const ServeSimConfig& config) {
  DUET_CHECK_GT(config.workers, 0);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    DUET_CHECK_GE(arrivals[i], arrivals[i - 1]) << "arrivals must be ascending";
  }

  AdmissionController admission(config.queue_capacity);
  LatencyRecorder sojourn;
  LatencyRecorder queue_wait;

  // Earliest-free worker pool.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < config.workers; ++w) free_at.push(0.0);

  std::deque<size_t> pending;  // accepted, not yet started (FIFO)
  double last_completion = 0.0;
  double busy_s = 0.0;
  size_t max_depth = 0;

  // Starts queued requests while the earliest-free worker frees no later
  // than `horizon` (departures at a timestamp process before the arrival
  // sharing it). A shed takes no worker time, so the loop keeps going.
  const auto advance = [&](double horizon) {
    while (!pending.empty()) {
      const double free_t = free_at.top();
      const size_t i = pending.front();
      const double start_t = std::max(free_t, arrivals[i]);
      if (start_t > horizon) break;
      pending.pop_front();
      if (admission.should_shed(start_t, arrivals[i], config.deadline_s)) {
        admission.counters().shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      free_at.pop();
      const double completion = start_t + service_s(i);
      free_at.push(completion);
      busy_s += completion - start_t;
      last_completion = std::max(last_completion, completion);
      queue_wait.add(start_t - arrivals[i]);
      sojourn.add(completion - arrivals[i]);
      admission.counters().completed.fetch_add(1, std::memory_order_relaxed);
      if (config.deadline_s > 0.0 &&
          completion > arrivals[i] + config.deadline_s) {
        admission.counters().completed_late.fetch_add(1,
                                                      std::memory_order_relaxed);
      }
    }
  };

  for (size_t i = 0; i < arrivals.size(); ++i) {
    advance(arrivals[i]);
    admission.counters().offered.fetch_add(1, std::memory_order_relaxed);
    if (admission.on_arrival(pending.size()) == Verdict::kReject) {
      admission.counters().rejected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    admission.counters().accepted.fetch_add(1, std::memory_order_relaxed);
    pending.push_back(i);
    max_depth = std::max(max_depth, pending.size());
  }
  advance(std::numeric_limits<double>::infinity());

  ServeStats stats;
  stats.admission = admission.counters().snapshot();
  const double t0 = arrivals.empty() ? 0.0 : arrivals.front();
  stats.makespan_s = std::max(last_completion - t0, 0.0);
  stats.throughput_qps =
      stats.makespan_s > 0.0
          ? static_cast<double>(stats.admission.completed) / stats.makespan_s
          : 0.0;
  stats.sojourn = sojourn.summarize();
  stats.queue_wait = queue_wait.summarize();
  stats.worker_busy_frac =
      stats.makespan_s > 0.0
          ? busy_s / (static_cast<double>(config.workers) * stats.makespan_s)
          : 0.0;
  stats.max_queue_depth = max_depth;
  return stats;
}

FleetSimStats simulate_fleet(
    const std::vector<FleetSimRequest>& requests,
    const std::function<double(int model, int64_t batch)>& service_s,
    const FleetSimConfig& config) {
  DUET_CHECK_GT(config.workers, 0);
  DUET_CHECK_GE(config.max_batch, 1);
  for (size_t i = 1; i < requests.size(); ++i) {
    DUET_CHECK_GE(requests[i].arrival_s, requests[i - 1].arrival_s)
        << "arrivals must be ascending";
  }
  const std::vector<TenantClass> tenants =
      config.tenants.empty() ? std::vector<TenantClass>{TenantClass{}}
                             : config.tenants;

  FleetQueue queue(tenants, config.queue_capacity);
  std::vector<AdmissionCounters> counters(tenants.size());
  LatencyRecorder sojourn;
  LatencyRecorder queue_wait;

  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < config.workers; ++w) free_at.push(0.0);

  double last_completion = 0.0;
  double busy_s = 0.0;
  size_t max_depth = 0;
  uint64_t batches = 0;
  uint64_t coalesced = 0;
  uint64_t served = 0;
  uint64_t next_id = 1;

  const auto admit = [&](const FleetSimRequest& r) {
    DUET_CHECK_GE(r.tenant, 0);
    DUET_CHECK_LT(static_cast<size_t>(r.tenant), tenants.size());
    AdmissionCounters& c = counters[r.tenant];
    c.offered.fetch_add(1, std::memory_order_relaxed);
    FleetRequest fr;
    fr.id = next_id++;
    fr.tenant = r.tenant;
    fr.model = r.model;
    fr.arrival_s = r.arrival_s;
    const double rel = tenants[r.tenant].deadline_s;
    fr.deadline_s = rel > 0.0 ? r.arrival_s + rel : 0.0;
    if (!queue.push(fr)) {
      c.rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    c.accepted.fetch_add(1, std::memory_order_relaxed);
    max_depth = std::max(max_depth, queue.size());
  };

  size_t i = 0;
  while (i < requests.size() || !queue.empty()) {
    if (queue.empty()) {
      admit(requests[i++]);
      continue;
    }
    const double free_t = free_at.top();
    const double t_pick = std::max(free_t, queue.earliest_arrival());
    // Every arrival up to the pickup instant is in the queue before the
    // policy chooses — picks never see a partial present.
    if (i < requests.size() && requests[i].arrival_s <= t_pick) {
      admit(requests[i++]);
      continue;
    }

    PickResult picked = queue.pick(t_pick, config.max_batch);
    for (const FleetRequest& r : picked.shed) {
      counters[r.tenant].shed.fetch_add(1, std::memory_order_relaxed);
    }
    if (picked.batch.empty()) continue;

    const int64_t batch = static_cast<int64_t>(picked.batch.size());
    const double service = service_s(picked.batch.front().model, batch);
    const double completion = t_pick + service;
    free_at.pop();
    free_at.push(completion);
    busy_s += service;
    last_completion = std::max(last_completion, completion);
    ++batches;
    served += static_cast<uint64_t>(batch);
    if (batch > 1) coalesced += static_cast<uint64_t>(batch);
    for (const FleetRequest& r : picked.batch) {
      queue.charge(r.tenant, service / static_cast<double>(batch));
      queue_wait.add(t_pick - r.arrival_s);
      sojourn.add(completion - r.arrival_s);
      AdmissionCounters& c = counters[r.tenant];
      c.completed.fetch_add(1, std::memory_order_relaxed);
      if (r.deadline_s > 0.0 && completion > r.deadline_s) {
        c.completed_late.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  FleetSimStats stats;
  AdmissionCounters total;
  for (size_t t = 0; t < tenants.size(); ++t) {
    FleetTenantStats ts;
    ts.name = tenants[t].name;
    ts.admission = counters[t].snapshot();
    total.offered += ts.admission.offered;
    total.accepted += ts.admission.accepted;
    total.rejected += ts.admission.rejected;
    total.shed += ts.admission.shed;
    total.completed += ts.admission.completed;
    total.completed_late += ts.admission.completed_late;
    stats.tenants.push_back(std::move(ts));
  }
  stats.total = total.snapshot();
  const double t0 = requests.empty() ? 0.0 : requests.front().arrival_s;
  stats.makespan_s = std::max(last_completion - t0, 0.0);
  stats.throughput_qps =
      stats.makespan_s > 0.0
          ? static_cast<double>(stats.total.completed) / stats.makespan_s
          : 0.0;
  stats.sojourn = sojourn.summarize();
  stats.queue_wait = queue_wait.summarize();
  stats.worker_busy_frac =
      stats.makespan_s > 0.0
          ? busy_s / (static_cast<double>(config.workers) * stats.makespan_s)
          : 0.0;
  stats.max_queue_depth = max_depth;
  stats.batches = batches;
  stats.coalesced_requests = coalesced;
  stats.mean_batch =
      batches > 0 ? static_cast<double>(served) / static_cast<double>(batches)
                  : 0.0;
  return stats;
}

}  // namespace duet::serve
