#include "serve/recalibration.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "device/calibration.hpp"

namespace duet::serve {

void DriftAccumulator::record(const Timeline& timeline) {
  for (const TimelineEvent& e : timeline.events()) {
    if (e.kind != TimelineEvent::Kind::kExec) continue;
    record(e.subgraph, e.device, e.duration());
  }
}

void DriftAccumulator::record(int subgraph, DeviceKind device, double seconds) {
  DUET_CHECK(subgraph >= 0 && static_cast<size_t>(subgraph) < cells_.size())
      << "subgraph " << subgraph << " out of range";
  Cell& c = cells_[static_cast<size_t>(subgraph)][static_cast<int>(device)];
  c.sum_s += seconds;
  c.count += 1;
}

uint64_t DriftAccumulator::samples(int subgraph, DeviceKind device) const {
  return cells_[static_cast<size_t>(subgraph)][static_cast<int>(device)].count;
}

double DriftAccumulator::mean_s(int subgraph, DeviceKind device) const {
  const Cell& c = cells_[static_cast<size_t>(subgraph)][static_cast<int>(device)];
  return c.count == 0 ? 0.0 : c.sum_s / static_cast<double>(c.count);
}

uint64_t DriftAccumulator::total_samples() const {
  uint64_t total = 0;
  for (const auto& row : cells_)
    for (const Cell& c : row) total += c.count;
  return total;
}

void DriftAccumulator::reset() {
  for (auto& row : cells_)
    for (Cell& c : row) c = Cell{};
}

RecalibrationResult recalibrate(const Graph& model, const Partition& partition,
                                const std::vector<SubgraphProfile>& base,
                                const DriftAccumulator& observed,
                                const Placement& current,
                                const TransferParams& link,
                                const RecalibrationOptions& options) {
  DUET_CHECK_EQ(observed.num_subgraphs(), base.size());
  DUET_CHECK_EQ(current.size(), base.size());

  // Observed exec spans include the per-dispatch overhead the evaluator adds
  // on top of profile means; subtract it so the override slots into the same
  // place the offline mean occupied.
  const double dispatch = executor_dispatch_overhead();
  std::vector<SubgraphProfile> adjusted = base;
  size_t overridden = 0;
  for (size_t i = 0; i < adjusted.size(); ++i) {
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      const DeviceKind kind = static_cast<DeviceKind>(d);
      if (observed.samples(static_cast<int>(i), kind) < options.min_samples)
        continue;
      const double mean =
          std::max(observed.mean_s(static_cast<int>(i), kind) - dispatch, 1e-9);
      adjusted[i].per_device[d].mean_s = mean;
      adjusted[i].per_device[d].stats.mean = mean;
      ++overridden;
    }
  }

  LatencyEvaluator evaluator(partition, model, adjusted, link);
  RecalibrationResult result;
  result.overridden_cells = overridden;
  result.predicted_current_s = evaluator.evaluate(current);

  Rng rng(options.seed);
  SchedulingContext ctx;
  ctx.partition = &partition;
  ctx.profiles = &adjusted;
  ctx.evaluator = &evaluator;
  ctx.rng = &rng;
  ScheduleResult proposal = make_scheduler(options.scheduler)->schedule(ctx);
  result.predicted_new_s = proposal.est_latency_s;
  result.correction_rounds = proposal.correction_rounds;

  const bool improves =
      result.predicted_new_s <
      result.predicted_current_s * (1.0 - options.swap_threshold);
  if (improves && proposal.placement != current) {
    result.swapped = true;
    result.placement = std::move(proposal.placement);
  } else {
    result.placement = current;
  }
  return result;
}

}  // namespace duet::serve
