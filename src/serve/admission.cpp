#include "serve/admission.hpp"

namespace duet::serve {

std::vector<TenantClass> default_tenant_classes(int count,
                                                double deadline_s) {
  static const char* kNames[] = {"gold", "silver", "bronze"};
  std::vector<TenantClass> tenants;
  for (int i = 0; i < count; ++i) {
    TenantClass t;
    // Past the named palette, extra classes reuse the bronze label with a
    // letter suffix (still bounded, still non-numeric).
    t.name = i < 3 ? kNames[i]
                   : std::string("bronze-") + static_cast<char>('a' + i - 3);
    t.weight = i < 3 ? static_cast<double>(4 >> i) : 1.0;
    t.deadline_s = deadline_s;
    tenants.push_back(std::move(t));
  }
  return tenants;
}

AdmissionCounters::Snapshot AdmissionCounters::snapshot() const {
  Snapshot s;
  s.offered = offered.load(std::memory_order_relaxed);
  s.accepted = accepted.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.shed = shed.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.completed_late = completed_late.load(std::memory_order_relaxed);
  return s;
}

void AdmissionCounters::reset() {
  offered.store(0, std::memory_order_relaxed);
  accepted.store(0, std::memory_order_relaxed);
  rejected.store(0, std::memory_order_relaxed);
  shed.store(0, std::memory_order_relaxed);
  completed.store(0, std::memory_order_relaxed);
  completed_late.store(0, std::memory_order_relaxed);
}

}  // namespace duet::serve
