#include "serve/admission.hpp"

namespace duet::serve {

AdmissionCounters::Snapshot AdmissionCounters::snapshot() const {
  Snapshot s;
  s.offered = offered.load(std::memory_order_relaxed);
  s.accepted = accepted.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.shed = shed.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.completed_late = completed_late.load(std::memory_order_relaxed);
  return s;
}

void AdmissionCounters::reset() {
  offered.store(0, std::memory_order_relaxed);
  accepted.store(0, std::memory_order_relaxed);
  rejected.store(0, std::memory_order_relaxed);
  shed.store(0, std::memory_order_relaxed);
  completed.store(0, std::memory_order_relaxed);
  completed_late.store(0, std::memory_order_relaxed);
}

}  // namespace duet::serve
