#pragma once

// Virtual-time serving simulator: a deterministic FIFO multi-worker queue
// over the sim device pair. Each worker is an independent engine replica
// (its own CPU-GPU pair), service time is the plan's modeled makespan, and
// arrivals come from an open-loop trace (workload.hpp) — so throughput,
// tail sojourn, shed rate, and reject rate under any offered load are exact,
// reproducible numbers, the same way every benchmark in this repo reports
// modeled time rather than wall clock of the build machine. The admission
// and shedding decisions are the ones in admission.hpp, shared with the
// real-threaded DuetServer (server.hpp), which is what the serving tests
// validate against.

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "serve/admission.hpp"

namespace duet::serve {

struct ServeSimConfig {
  int workers = 1;
  size_t queue_capacity = 128;
  // Per-request deadline measured from arrival; <= 0 disables shedding.
  double deadline_s = 0.0;
};

struct ServeStats {
  AdmissionCounters::Snapshot admission;
  double makespan_s = 0.0;        // first arrival to last completion
  double throughput_qps = 0.0;    // completed / makespan
  SummaryStats sojourn;           // arrival -> completion, completed only
  SummaryStats queue_wait;        // arrival -> start of service
  double worker_busy_frac = 0.0;  // busy time / (workers * makespan)
  size_t max_queue_depth = 0;
};

// Replays `arrivals` (ascending seconds) against `workers` modeled engine
// replicas. `service_s(i)` returns the service time of request i — a
// constant for deterministic runs, or a per-request noisy draw (callers
// seed it; the simulator itself is RNG-free).
ServeStats simulate_serving(const std::vector<double>& arrivals,
                            const std::function<double(size_t)>& service_s,
                            const ServeSimConfig& config);

}  // namespace duet::serve
