#pragma once

// Virtual-time serving simulator: a deterministic FIFO multi-worker queue
// over the sim device pair. Each worker is an independent engine replica
// (its own CPU-GPU pair), service time is the plan's modeled makespan, and
// arrivals come from an open-loop trace (workload.hpp) — so throughput,
// tail sojourn, shed rate, and reject rate under any offered load are exact,
// reproducible numbers, the same way every benchmark in this repo reports
// modeled time rather than wall clock of the build machine. The admission
// and shedding decisions are the ones in admission.hpp, shared with the
// real-threaded DuetServer (server.hpp), which is what the serving tests
// validate against.

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "serve/admission.hpp"
#include "serve/fleet_policy.hpp"

namespace duet::serve {

struct ServeSimConfig {
  int workers = 1;
  size_t queue_capacity = 128;
  // Per-request deadline measured from arrival; <= 0 disables shedding.
  double deadline_s = 0.0;
};

struct ServeStats {
  AdmissionCounters::Snapshot admission;
  double makespan_s = 0.0;        // first arrival to last completion
  double throughput_qps = 0.0;    // completed / makespan
  SummaryStats sojourn;           // arrival -> completion, completed only
  SummaryStats queue_wait;        // arrival -> start of service
  double worker_busy_frac = 0.0;  // busy time / (workers * makespan)
  size_t max_queue_depth = 0;
};

// Replays `arrivals` (ascending seconds) against `workers` modeled engine
// replicas. `service_s(i)` returns the service time of request i — a
// constant for deterministic runs, or a per-request noisy draw (callers
// seed it; the simulator itself is RNG-free).
ServeStats simulate_serving(const std::vector<double>& arrivals,
                            const std::function<double(size_t)>& service_s,
                            const ServeSimConfig& config);

// --- Multi-tenant batched twin (ISSUE 10) ----------------------------------
//
// simulate_fleet extends the model above with the FleetServer's pickup
// policy — weighted fair queueing across tenants, EDF within, same-model
// coalescing up to max_batch (serve/fleet_policy.hpp, shared verbatim with
// the real threads). Service time is per (model, batch), which is exactly
// what makes the plan-per-bucket efficacy CI gate machine-independent: feed
// it ResidentModel::modeled_service_s for the bucketed run and
// baseline_service_s for the single-plan baseline and compare.

struct FleetSimRequest {
  double arrival_s = 0.0;  // ascending across the trace
  int tenant = 0;
  int model = 0;
};

struct FleetSimConfig {
  int workers = 1;
  size_t queue_capacity = 128;
  // Tenant classes (weights + per-class relative deadlines). Empty = one
  // default tenant, no deadline.
  std::vector<TenantClass> tenants;
  int64_t max_batch = 8;
};

struct FleetTenantStats {
  std::string name;
  AdmissionCounters::Snapshot admission;
};

struct FleetSimStats {
  // Per-tenant conservation holds classwise:
  // offered = completed + shed + rejected.
  std::vector<FleetTenantStats> tenants;
  AdmissionCounters::Snapshot total;
  double makespan_s = 0.0;
  double throughput_qps = 0.0;
  SummaryStats sojourn;
  SummaryStats queue_wait;
  double worker_busy_frac = 0.0;
  size_t max_queue_depth = 0;
  uint64_t batches = 0;             // executions launched
  uint64_t coalesced_requests = 0;  // requests served in batches of > 1
  double mean_batch = 0.0;          // completed requests / batches
};

FleetSimStats simulate_fleet(
    const std::vector<FleetSimRequest>& requests,
    const std::function<double(int model, int64_t batch)>& service_s,
    const FleetSimConfig& config);

}  // namespace duet::serve
