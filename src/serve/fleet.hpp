#pragma once

// FleetServer — the multi-tenant, multi-model serving frontend (ISSUE 10
// tentpole). Where DuetServer is one model × N replica workers over a FIFO
// queue, FleetServer fronts a ModelRegistry of resident models with the
// WFQ + EDF + coalescing pickup policy of serve/fleet_policy.hpp:
//
//   * submit() names a registered model and a tenant class; admission is
//     reject-on-full exactly as before, but counted per tenant — the
//     conservation identity offered = completed + shed + rejected holds for
//     every tenant class separately (tested).
//   * workers pick with the shared FleetQueue policy: the least-served
//     backlogged tenant's most urgent request fixes the model, then up to
//     max_batch compatible requests coalesce into ONE batched execution
//     under the batch's bucket plan (registry.plan_for_batch). Outputs are
//     split back per request — bit-identical to the requests having run
//     alone (the batching correctness gate).
//   * every served request bills its own tenant virtual time, so a
//     coalesced batch spanning tenants charges each fairly.
//
// The same policy object drives the virtual-time twin simulate_fleet
// (serve/simulator.hpp); CI's tail-latency and fairness gates run there.

#include <future>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "serve/fleet_policy.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/simulator.hpp"

namespace duet::serve {

struct FleetOptions {
  int workers = 2;
  size_t queue_capacity = 128;
  // Tenant classes; empty = one default tenant (weight 1, no deadline).
  std::vector<TenantClass> tenants;
  // Coalescing cap per pickup; clipped to the registry's max_batch.
  int64_t max_batch = 8;
  bool with_noise = false;
  // Workers start blocked before their first pick until resume() — same
  // deterministic-test affordance as ServeOptions::start_paused.
  bool start_paused = false;
  uint64_t seed = 42;
};

struct FleetResponse {
  RequestStatus status = RequestStatus::kRejected;
  std::vector<Tensor> outputs;     // this request's rows only; kOk only
  double modeled_latency_s = 0.0;  // makespan of the (batched) execution
  int64_t batch = 0;               // coalesced size of that execution
  size_t bucket = 0;               // bucket whose plan served it
  double wall_wait_s = 0.0;
  double wall_latency_s = 0.0;
};

struct FleetServerStats {
  std::vector<FleetTenantStats> tenants;
  AdmissionCounters::Snapshot total;
  uint64_t batches = 0;
  uint64_t coalesced_requests = 0;
  double mean_batch = 0.0;
  // Executions by batch size — the coalescing histogram.
  std::map<int64_t, uint64_t> batch_histogram;
  SummaryStats modeled_latency;  // per completed request
  SummaryStats wall_wait;
  size_t max_queue_depth = 0;
};

class FleetServer {
 public:
  // The registry must outlive the server (it is the shared substrate many
  // servers / benches may front).
  FleetServer(ModelRegistry& registry, FleetOptions options = {});
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  const FleetOptions& options() const { return options_; }
  ModelRegistry& registry() { return registry_; }

  // Thread-safe. `model` is a registry index, `tenant` a class index.
  // `deadline_s` < 0 applies the tenant class default; 0 disables.
  std::future<FleetResponse> submit(int model, int tenant,
                                    std::map<NodeId, Tensor> feeds,
                                    double deadline_s = -1.0);

  void resume();
  void drain();
  void shutdown();

  FleetServerStats stats() const;

 private:
  struct Pending {
    uint64_t trace_id = 0;
    int tenant = 0;
    double arrival_s = 0.0;
    double deadline_s = 0.0;  // absolute
    std::map<NodeId, Tensor> feeds;
    std::promise<FleetResponse> promise;
  };

  void worker_loop();
  // Resolves + inflight bookkeeping. Caller must not hold queue_mutex_.
  void resolve(Pending& pending, FleetResponse&& response);
  Pending take_pending(uint64_t id);

  ModelRegistry& registry_;
  FleetOptions options_;
  WallTimer clock_;
  std::vector<std::thread> workers_;

  // Pause gate (start_paused).
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  // Policy queue + request payloads + lifecycle, one lock: pickups must see
  // a consistent queue/payload pair.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  FleetQueue policy_;
  std::unordered_map<uint64_t, Pending> pending_;
  bool draining_ = false;
  uint64_t inflight_ = 0;
  size_t max_queue_depth_ = 0;
  std::condition_variable inflight_cv_;

  // Per-tenant admission counters (atomics; index = tenant class).
  std::vector<AdmissionCounters> counters_;

  mutable std::mutex stats_mutex_;
  LatencyRecorder modeled_latency_;
  LatencyRecorder wall_wait_;
  uint64_t batches_ = 0;
  uint64_t served_ = 0;
  uint64_t coalesced_ = 0;
  std::map<int64_t, uint64_t> batch_histogram_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> shut_down_{false};
};

}  // namespace duet::serve
