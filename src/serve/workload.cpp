#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace duet::serve {

namespace {

// One exponential inter-arrival gap at `qps`. uniform() is in [0, 1); guard
// the log away from -inf.
double exp_gap(double qps, Rng& rng) {
  const double u = std::max(rng.uniform(), 1e-12);
  return -std::log(u) / qps;
}

}  // namespace

std::vector<double> poisson_trace(double qps, int n, Rng& rng) {
  DUET_CHECK_GT(qps, 0.0);
  DUET_CHECK_GE(n, 0);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += exp_gap(qps, rng);
    arrivals.push_back(t);
  }
  return arrivals;
}

std::vector<double> bursty_trace(double base_qps, double burst_qps,
                                 double period_s, double duty, int n, Rng& rng) {
  DUET_CHECK_GT(base_qps, 0.0);
  DUET_CHECK_GE(burst_qps, base_qps);
  DUET_CHECK_GT(period_s, 0.0);
  DUET_CHECK(duty > 0.0 && duty < 1.0) << "duty must be in (0, 1)";
  DUET_CHECK_GE(n, 0);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    // Rate of the window `t` currently sits in: the burst occupies the
    // first `duty` fraction of every period.
    const double phase = t - std::floor(t / period_s) * period_s;
    const double rate = phase < duty * period_s ? burst_qps : base_qps;
    t += exp_gap(rate, rng);
    arrivals.push_back(t);
  }
  return arrivals;
}

double offered_qps(const std::vector<double>& arrivals) {
  if (arrivals.size() < 2) return 0.0;
  const double span = arrivals.back() - arrivals.front();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(arrivals.size()) / span;
}

}  // namespace duet::serve
