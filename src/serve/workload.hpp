#pragma once

// Open-loop arrival generators for the serving runtime: requests arrive on
// their own schedule whether or not the server keeps up (the regime behind
// the paper's Fig. 12 tail-latency study — a closed back-to-back loop can
// never expose queueing delay). Traces are plain ascending timestamps in
// seconds from a seeded Rng, so every consumer — the virtual-time serving
// simulator, the real-threaded server, the bench sweeps — replays the exact
// same arrival process.

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace duet::serve {

// `n` Poisson arrivals at `qps` (i.i.d. exponential gaps), starting at the
// first gap after t=0.
std::vector<double> poisson_trace(double qps, int n, Rng& rng);

// On/off-modulated Poisson: alternating bursts of `burst_qps` and quiet
// periods of `base_qps`, switching every `period_s` seconds with the burst
// occupying `duty` of each period. Models the flash-crowd traffic a shed
// policy exists for.
std::vector<double> bursty_trace(double base_qps, double burst_qps,
                                 double period_s, double duty, int n, Rng& rng);

// Offered rate of a trace: n / span of arrivals (0 for traces shorter than
// two requests).
double offered_qps(const std::vector<double>& arrivals);

}  // namespace duet::serve
