#include "serve/fleet_policy.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace duet::serve {

FleetQueue::FleetQueue(std::vector<TenantClass> tenants,
                       size_t queue_capacity)
    : tenants_(std::move(tenants)), capacity_(queue_capacity) {
  DUET_CHECK(!tenants_.empty()) << "fleet queue needs at least one tenant";
  for (const TenantClass& t : tenants_) {
    DUET_CHECK_GT(t.weight, 0.0) << "tenant weight must be positive";
  }
  queues_.resize(tenants_.size());
  vtime_.assign(tenants_.size(), 0.0);
}

bool FleetQueue::edf_before(const FleetRequest& a, const FleetRequest& b) {
  const double da =
      a.deadline_s > 0.0 ? a.deadline_s : std::numeric_limits<double>::max();
  const double db =
      b.deadline_s > 0.0 ? b.deadline_s : std::numeric_limits<double>::max();
  if (da != db) return da < db;
  return a.id < b.id;
}

bool FleetQueue::push(const FleetRequest& request) {
  DUET_CHECK_GE(request.tenant, 0);
  DUET_CHECK_LT(static_cast<size_t>(request.tenant), tenants_.size());
  if (size_ >= capacity_) return false;
  std::deque<FleetRequest>& q = queues_[request.tenant];
  if (q.empty()) {
    // Idle -> backlogged: forfeit banked credit (start-time fair queueing).
    vtime_[request.tenant] = std::max(vtime_[request.tenant], virtual_now_);
  }
  q.insert(std::upper_bound(q.begin(), q.end(), request, edf_before), request);
  ++size_;
  return true;
}

PickResult FleetQueue::pick(double now_s, int64_t max_batch) {
  DUET_CHECK_GE(max_batch, 1);
  PickResult result;

  // WFQ head: pop the min-vtime tenant's EDF head, shedding expired
  // requests until one is runnable (or the queue drains).
  FleetRequest head;
  bool have_head = false;
  while (!have_head && size_ > 0) {
    int best = -1;
    for (size_t t = 0; t < queues_.size(); ++t) {
      if (queues_[t].empty()) continue;
      if (best < 0 || vtime_[t] < vtime_[best]) best = static_cast<int>(t);
    }
    std::deque<FleetRequest>& q = queues_[best];
    const FleetRequest r = q.front();
    q.pop_front();
    --size_;
    if (r.deadline_s > 0.0 && now_s > r.deadline_s) {
      result.shed.push_back(r);
    } else {
      head = r;
      have_head = true;
    }
  }
  if (!have_head) return result;

  virtual_now_ = vtime_[head.tenant];
  result.batch.push_back(head);

  // Coalesce: same-model requests in global EDF order across all tenants.
  while (static_cast<int64_t>(result.batch.size()) < max_batch) {
    int best_t = -1;
    size_t best_i = 0;
    for (size_t t = 0; t < queues_.size(); ++t) {
      // EDF-sorted queues: the first same-model entry is the tenant's best.
      for (size_t i = 0; i < queues_[t].size(); ++i) {
        if (queues_[t][i].model != head.model) continue;
        if (best_t < 0 ||
            edf_before(queues_[t][i], queues_[best_t][best_i])) {
          best_t = static_cast<int>(t);
          best_i = i;
        }
        break;
      }
    }
    if (best_t < 0) break;
    const FleetRequest r = queues_[best_t][best_i];
    queues_[best_t].erase(queues_[best_t].begin() +
                          static_cast<std::ptrdiff_t>(best_i));
    --size_;
    if (r.deadline_s > 0.0 && now_s > r.deadline_s) {
      result.shed.push_back(r);
    } else {
      result.batch.push_back(r);
    }
  }

  // Keep EDF order within the batch (the head was WFQ-chosen, so it may
  // have a later deadline than a coalesced member from another tenant).
  std::sort(result.batch.begin(), result.batch.end(), edf_before);
  return result;
}

void FleetQueue::charge(int tenant, double share_s) {
  DUET_CHECK_GE(tenant, 0);
  DUET_CHECK_LT(static_cast<size_t>(tenant), tenants_.size());
  vtime_[tenant] += share_s / tenants_[tenant].weight;
  virtual_now_ = std::max(virtual_now_, vtime_[tenant]);
}

double FleetQueue::earliest_arrival() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const std::deque<FleetRequest>& q : queues_) {
    for (const FleetRequest& r : q) {
      earliest = std::min(earliest, r.arrival_s);
    }
  }
  return earliest;
}

double FleetQueue::virtual_time(int tenant) const {
  DUET_CHECK_GE(tenant, 0);
  DUET_CHECK_LT(static_cast<size_t>(tenant), tenants_.size());
  return vtime_[tenant];
}

}  // namespace duet::serve
