#include "serve/fleet.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "serve/batching.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace duet::serve {

using telemetry::FlightKind;
using telemetry::FlightRecorder;

namespace {

std::vector<TenantClass> normalize_tenants(std::vector<TenantClass> tenants) {
  if (tenants.empty()) tenants.push_back(TenantClass{});
  return tenants;
}

}  // namespace

FleetServer::FleetServer(ModelRegistry& registry, FleetOptions options)
    : registry_(registry),
      options_([&] {
        options.tenants = normalize_tenants(std::move(options.tenants));
        options.max_batch =
            std::min(options.max_batch, registry.options().max_batch);
        return std::move(options);
      }()),
      paused_(options_.start_paused),
      policy_(options_.tenants, options_.queue_capacity),
      counters_(options_.tenants.size()) {
  DUET_CHECK_GT(options_.workers, 0);
  DUET_CHECK_GT(options_.queue_capacity, 0u);
  DUET_CHECK_GE(options_.max_batch, 1);
  DUET_CHECK_GT(registry_.size(), 0u) << "fleet over an empty registry";
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  DUET_LOG_INFO << "FleetServer up: " << options_.workers << " workers, "
                << registry_.size() << " resident models, "
                << options_.tenants.size() << " tenant classes, max batch "
                << options_.max_batch;
}

FleetServer::~FleetServer() { shutdown(); }

std::future<FleetResponse> FleetServer::submit(int model, int tenant,
                                               std::map<NodeId, Tensor> feeds,
                                               double deadline_s) {
  DUET_CHECK_GE(model, 0);
  DUET_CHECK_LT(static_cast<size_t>(model), registry_.size());
  DUET_CHECK_GE(tenant, 0);
  DUET_CHECK_LT(static_cast<size_t>(tenant), options_.tenants.size());

  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const double arrival_s = clock_.elapsed();
  const double rel = deadline_s < 0.0 ? options_.tenants[static_cast<size_t>(
                                            tenant)].deadline_s
                                      : deadline_s;

  Pending pending;
  pending.trace_id = id;
  pending.tenant = tenant;
  pending.arrival_s = arrival_s;
  pending.deadline_s = rel > 0.0 ? arrival_s + rel : 0.0;
  pending.feeds = std::move(feeds);
  std::future<FleetResponse> future = pending.promise.get_future();

  FleetRequest request;
  request.id = id;
  request.tenant = tenant;
  request.model = model;
  request.arrival_s = arrival_s;
  request.deadline_s = pending.deadline_s;

  counters_[static_cast<size_t>(tenant)].offered.fetch_add(
      1, std::memory_order_relaxed);

  bool accepted = false;
  uint64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = policy_.size();
    if (!draining_ && policy_.push(request)) {
      accepted = true;
      pending_.emplace(id, std::move(pending));
      ++inflight_;
      max_queue_depth_ = std::max(max_queue_depth_, policy_.size());
    }
  }
  if (accepted) {
    counters_[static_cast<size_t>(tenant)].accepted.fetch_add(
        1, std::memory_order_relaxed);
    FlightRecorder::instance().record(FlightKind::kEnqueue, id, depth);
    telemetry::counter("fleet.offered." + options_.tenants[tenant].name)
        .add(1);
    queue_cv_.notify_one();
    return future;
  }

  counters_[static_cast<size_t>(tenant)].rejected.fetch_add(
      1, std::memory_order_relaxed);
  telemetry::counter("fleet.rejected." + options_.tenants[tenant].name).add(1);
  FlightRecorder::instance().record(FlightKind::kReject, id, depth);
  FleetResponse response;
  response.status = RequestStatus::kRejected;
  response.wall_latency_s = clock_.elapsed() - arrival_s;
  pending.promise.set_value(std::move(response));
  return future;
}

void FleetServer::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void FleetServer::drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  resume();
  queue_cv_.notify_all();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void FleetServer::shutdown() {
  if (shut_down_.exchange(true)) return;
  drain();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

FleetServer::Pending FleetServer::take_pending(uint64_t id) {
  const auto it = pending_.find(id);
  DUET_CHECK(it != pending_.end()) << "picked request has no payload";
  Pending out = std::move(it->second);
  pending_.erase(it);
  return out;
}

void FleetServer::resolve(Pending& pending, FleetResponse&& response) {
  response.wall_latency_s = clock_.elapsed() - pending.arrival_s;
  pending.promise.set_value(std::move(response));
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    DUET_CHECK_GT(inflight_, 0u);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

void FleetServer::worker_loop() {
  // Full device-pair replica per worker, as in DuetServer: execution never
  // contends, and with noise off the outputs are bit-identical whichever
  // worker (and whatever coalescing) served the request.
  DevicePair devices =
      make_default_device_pair(registry_.options().engine.seed ^
                               0x5EEDFACEull);
  SimExecutor executor(devices);

  {
    std::unique_lock<std::mutex> lock(pause_mutex_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }

  while (true) {
    PickResult picked;
    std::vector<Pending> batch_pending;
    std::vector<Pending> shed_pending;
    double pickup_s = 0.0;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return draining_ || !policy_.empty(); });
      if (policy_.empty()) {
        if (draining_) return;
        continue;
      }
      pickup_s = clock_.elapsed();
      picked = policy_.pick(pickup_s, options_.max_batch);
      shed_pending.reserve(picked.shed.size());
      for (const FleetRequest& r : picked.shed) {
        shed_pending.push_back(take_pending(r.id));
      }
      batch_pending.reserve(picked.batch.size());
      for (const FleetRequest& r : picked.batch) {
        batch_pending.push_back(take_pending(r.id));
      }
    }

    for (Pending& p : shed_pending) {
      const size_t t = static_cast<size_t>(p.tenant);
      counters_[t].shed.fetch_add(1, std::memory_order_relaxed);
      telemetry::counter("fleet.shed." + options_.tenants[t].name).add(1);
      FlightRecorder::instance().record(
          FlightKind::kShed, p.trace_id,
          static_cast<uint64_t>((pickup_s - p.arrival_s) * 1e6));
      FleetResponse response;
      response.status = RequestStatus::kShed;
      response.wall_wait_s = pickup_s - p.arrival_s;
      resolve(p, std::move(response));
    }
    if (picked.batch.empty()) continue;

    const int model = picked.batch.front().model;
    const int64_t batch = static_cast<int64_t>(picked.batch.size());
    ResidentModel& resident = registry_.model(model);
    const std::shared_ptr<const ExecutionPlan> plan =
        resident.plan_for_batch(batch);
    const size_t bucket = resident.bucket_of(batch);

    std::vector<const std::map<NodeId, Tensor>*> feed_ptrs;
    feed_ptrs.reserve(batch_pending.size());
    for (const Pending& p : batch_pending) feed_ptrs.push_back(&p.feeds);
    const std::map<NodeId, Tensor> stacked = stack_feeds(feed_ptrs);

    for (const Pending& p : batch_pending) {
      FlightRecorder::instance().record(
          FlightKind::kPickup, p.trace_id,
          static_cast<uint64_t>((pickup_s - p.arrival_s) * 1e6));
    }
    if (batch > 1) {
      FlightRecorder::instance().record(FlightKind::kCoalesce,
                                        batch_pending.front().trace_id,
                                        static_cast<uint64_t>(batch),
                                        static_cast<uint64_t>(model));
    }

    ExecutionResult result;
    {
      telemetry::TraceScope trace(batch_pending.front().trace_id);
      result = executor.run(*plan, stacked, options_.with_noise);
    }
    std::vector<std::vector<Tensor>> rows =
        split_outputs(result.outputs, batch_pending.size());

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      for (const FleetRequest& r : picked.batch) {
        policy_.charge(r.tenant,
                       result.latency_s / static_cast<double>(batch));
      }
    }

    const double done_s = clock_.elapsed();
    telemetry::histogram("fleet.batch_size")
        .observe(static_cast<double>(batch));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++batches_;
      served_ += static_cast<uint64_t>(batch);
      if (batch > 1) coalesced_ += static_cast<uint64_t>(batch);
      ++batch_histogram_[batch];
      for (const Pending& p : batch_pending) {
        modeled_latency_.add(result.latency_s);
        wall_wait_.add(pickup_s - p.arrival_s);
      }
    }
    for (size_t i = 0; i < batch_pending.size(); ++i) {
      Pending& p = batch_pending[i];
      const size_t t = static_cast<size_t>(p.tenant);
      counters_[t].completed.fetch_add(1, std::memory_order_relaxed);
      if (p.deadline_s > 0.0 && done_s > p.deadline_s) {
        counters_[t].completed_late.fetch_add(1, std::memory_order_relaxed);
      }
      telemetry::counter("fleet.completed." + options_.tenants[t].name)
          .add(1);
      FlightRecorder::instance().record(
          FlightKind::kComplete, p.trace_id, static_cast<uint64_t>(batch),
          static_cast<uint64_t>((done_s - p.arrival_s) * 1e6));
      FleetResponse response;
      response.status = RequestStatus::kOk;
      response.outputs = std::move(rows[i]);
      response.modeled_latency_s = result.latency_s;
      response.batch = batch;
      response.bucket = bucket;
      response.wall_wait_s = pickup_s - p.arrival_s;
      resolve(p, std::move(response));
    }
  }
}

FleetServerStats FleetServer::stats() const {
  FleetServerStats s;
  AdmissionCounters total;
  for (size_t t = 0; t < options_.tenants.size(); ++t) {
    FleetTenantStats ts;
    ts.name = options_.tenants[t].name;
    ts.admission = counters_[t].snapshot();
    total.offered += ts.admission.offered;
    total.accepted += ts.admission.accepted;
    total.rejected += ts.admission.rejected;
    total.shed += ts.admission.shed;
    total.completed += ts.admission.completed;
    total.completed_late += ts.admission.completed_late;
    s.tenants.push_back(std::move(ts));
  }
  s.total = total.snapshot();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.batches = batches_;
    s.coalesced_requests = coalesced_;
    s.mean_batch = batches_ > 0 ? static_cast<double>(served_) /
                                      static_cast<double>(batches_)
                                : 0.0;
    s.batch_histogram = batch_histogram_;
    s.modeled_latency = modeled_latency_.summarize();
    s.wall_wait = wall_wait_.summarize();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.max_queue_depth = max_queue_depth_;
  }
  return s;
}

}  // namespace duet::serve
