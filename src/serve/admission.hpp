#pragma once

// Admission control and load shedding for the serving runtime. Two cheap,
// deterministic policies shared verbatim by the real-threaded server and
// the virtual-time simulator (so the simulator's shed/reject accounting is
// the ground truth the real server is tested against):
//
//   * reject-on-full      — an arrival finding the bounded queue at
//     capacity is refused immediately. Open-loop traffic cannot be made to
//     wait; an unbounded backlog just converts overload into unbounded
//     latency for everyone (the classic serving-system failure mode).
//   * shed-on-deadline-miss — a request whose deadline has already expired
//     when a worker picks it up is dropped without executing. The work
//     would be wasted: the client has timed out, and executing it only
//     delays the requests behind it.
//
// Completed-but-late requests (started before the deadline, finished after)
// are delivered and counted separately: the expensive part is already paid
// by then, and the tail accounting in ServeStats makes the lateness
// visible.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace duet::serve {

enum class Verdict { kAdmit, kReject, kShed };

// A tenant priority class for the multi-tenant fleet runtime (ISSUE 10).
// `weight` is the tenant's weighted-fair-queueing share: over a contended
// interval a tenant with twice the weight is billed half the virtual time
// per second of service, so it gets twice the throughput. `deadline_s` is
// the default deadline applied to the tenant's requests submitted without
// one (<= 0 disables shedding for them). Names are small human labels
// (gold/silver/bronze), never per-request ids — tenant-labelled telemetry
// series must stay bounded (see the telemetry-unbounded-series lint).
struct TenantClass {
  std::string name = "default";
  double weight = 1.0;
  double deadline_s = 0.0;
};

// The default three-class palette benchmarks and the CLI use: gold carries
// double silver's share, silver double bronze's.
std::vector<TenantClass> default_tenant_classes(int count,
                                                double deadline_s = 0.0);

// Tally of every admission decision. Safe for concurrent recording;
// snapshot() gives a consistent-enough view for reports (counters are
// monotonic and read after the traffic they describe has drained).
struct AdmissionCounters {
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> completed_late{0};

  struct Snapshot {
    uint64_t offered = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t completed = 0;
    uint64_t completed_late = 0;

    double shed_rate() const {
      return offered > 0
                 ? static_cast<double>(shed) / static_cast<double>(offered)
                 : 0.0;
    }
    double reject_rate() const {
      return offered > 0
                 ? static_cast<double>(rejected) / static_cast<double>(offered)
                 : 0.0;
    }
  };
  Snapshot snapshot() const;
  void reset();
};

class AdmissionController {
 public:
  // `queue_capacity` bounds the number of waiting (not yet started)
  // requests a new arrival may find.
  explicit AdmissionController(size_t queue_capacity)
      : queue_capacity_(queue_capacity) {}

  size_t queue_capacity() const { return queue_capacity_; }

  // Arrival-time decision: admit unless the queue is already full.
  Verdict on_arrival(size_t queue_length) const {
    return queue_length >= queue_capacity_ ? Verdict::kReject : Verdict::kAdmit;
  }

  // Start-of-service decision: shed when the deadline expired before the
  // request could start. `deadline_s` <= 0 means no deadline.
  bool should_shed(double now_s, double arrival_s, double deadline_s) const {
    return deadline_s > 0.0 && now_s > arrival_s + deadline_s;
  }

  AdmissionCounters& counters() { return counters_; }
  const AdmissionCounters& counters() const { return counters_; }

 private:
  const size_t queue_capacity_;
  AdmissionCounters counters_;
};

}  // namespace duet::serve
