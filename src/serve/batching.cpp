#include "serve/batching.hpp"

#include "common/error.hpp"

namespace duet::serve {

std::map<NodeId, Tensor> stack_feeds(
    const std::vector<const std::map<NodeId, Tensor>*>& feeds) {
  DUET_CHECK(!feeds.empty()) << "stack_feeds of zero requests";
  const std::map<NodeId, Tensor>& first = *feeds.front();
  std::map<NodeId, Tensor> stacked;
  for (const auto& [id, tensor] : first) {
    (void)tensor;
    std::vector<Tensor> parts;
    parts.reserve(feeds.size());
    for (const std::map<NodeId, Tensor>* request : feeds) {
      DUET_CHECK_EQ(request->size(), first.size())
          << "coalesced requests bind different input sets";
      const auto it = request->find(id);
      DUET_CHECK(it != request->end())
          << "coalesced request missing input node " << id;
      parts.push_back(it->second);
    }
    stacked.emplace(id, Tensor::concat0(parts));
  }
  return stacked;
}

std::vector<std::vector<Tensor>> split_outputs(
    const std::vector<Tensor>& outputs, size_t requests) {
  DUET_CHECK_GT(requests, 0u);
  std::vector<std::vector<Tensor>> per_request(requests);
  for (const Tensor& out : outputs) {
    DUET_CHECK_GE(out.shape().rank(), 1u) << "rank-0 output cannot be split";
    DUET_CHECK_EQ(out.shape()[0] % static_cast<int64_t>(requests), 0)
        << "output dim 0 not divisible by coalesced request count";
    const int64_t rows = out.shape()[0] / static_cast<int64_t>(requests);
    for (size_t i = 0; i < requests; ++i) {
      per_request[i].push_back(
          out.slice0(static_cast<int64_t>(i) * rows, rows));
    }
  }
  return per_request;
}

}  // namespace duet::serve
