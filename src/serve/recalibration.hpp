#pragma once

// Online recalibration — the compiler-runtime coupling of the paper, run
// continuously under load. The scheduler placed subgraphs using offline
// profiled latencies; the learned-cost-model literature (PAPERS.md: Kaufman
// et al., Singh et al.) and our own telemetry DriftReport both show those
// estimates drift from observed behaviour. The serving runtime therefore
// accumulates the per-subgraph execution times its workers actually record,
// substitutes them into the profiles once enough samples exist, re-runs the
// greedy-correction scheduler against the corrected costs, and — when the
// predicted makespan improves by more than a threshold — hands the new
// placement back to the server for an atomic plan swap. Placement never
// changes results (every device computes identical numerics; the
// equivalence is tested), so swapping is safe mid-traffic.

#include <array>
#include <vector>

#include "device/interconnect.hpp"
#include "profile/profiler.hpp"
#include "runtime/timeline.hpp"
#include "sched/scheduler.hpp"

namespace duet::serve {

// Per-(subgraph, device) running mean of observed execution time. Callers
// serialize access (the server records under its stats mutex); the
// accumulator itself is plain data.
class DriftAccumulator {
 public:
  explicit DriftAccumulator(size_t num_subgraphs) : cells_(num_subgraphs) {}

  size_t num_subgraphs() const { return cells_.size(); }

  // Sums every kExec event of an executor timeline into the matching cell.
  void record(const Timeline& timeline);
  // Direct injection: one observed execution of `subgraph` on `device`.
  // (Tests use it to model drift scenarios without running traffic.)
  void record(int subgraph, DeviceKind device, double seconds);

  uint64_t samples(int subgraph, DeviceKind device) const;
  double mean_s(int subgraph, DeviceKind device) const;  // 0 with no samples
  uint64_t total_samples() const;
  void reset();

 private:
  struct Cell {
    double sum_s = 0.0;
    uint64_t count = 0;
  };
  std::vector<std::array<Cell, kNumDeviceKinds>> cells_;
};

struct RecalibrationOptions {
  // Required relative improvement of the predicted makespan before a swap
  // is worth paying (plan rebuild + the risk of thrashing on noise).
  double swap_threshold = 0.03;
  // Observations a (subgraph, device) cell needs before its profile entry
  // is overridden; under-sampled cells keep the offline profile.
  uint64_t min_samples = 8;
  std::string scheduler = "greedy-correction";
  uint64_t seed = 42;
};

struct RecalibrationResult {
  bool swapped = false;
  Placement placement;  // proposed placement (== current when !swapped)
  double predicted_current_s = 0.0;  // current placement under observed costs
  double predicted_new_s = 0.0;      // proposed placement under observed costs
  int correction_rounds = 0;
  size_t overridden_cells = 0;  // profile entries replaced by observations
};

// Copies `base` profiles, overrides sufficiently-sampled means with
// observed ones (minus the dispatch overhead the evaluator re-adds), and
// re-runs the scheduler. Pure: no global state, deterministic for a fixed
// accumulator.
RecalibrationResult recalibrate(const Graph& model, const Partition& partition,
                                const std::vector<SubgraphProfile>& base,
                                const DriftAccumulator& observed,
                                const Placement& current,
                                const TransferParams& link,
                                const RecalibrationOptions& options = {});

}  // namespace duet::serve
