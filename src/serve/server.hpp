#pragma once

// DuetServer — the concurrent serving runtime over a DUET-scheduled plan.
//
// One DuetEngine builds the placement and plan (warm PR-4 caches make this
// cheap); the plan is then shared, immutable, behind a shared_ptr that
// workers snapshot per request and recalibration swaps atomically. N worker
// threads pop a bounded MPMC queue (request_queue.hpp); each owns a full
// device-pair replica, so numeric execution never contends and — with noise
// off — outputs are bit-identical no matter how many workers raced for the
// request (tested). Admission follows admission.hpp: arrivals finding the
// queue full are rejected immediately, requests whose deadline expired
// before a worker reached them are shed unexecuted, and late completions
// are delivered but counted.
//
// Recalibration closes the compiler-runtime loop online: worker timelines
// feed a DriftAccumulator, and every `recalibrate_every` completions (or on
// demand) the server re-runs greedy correction against the observed costs,
// rebuilding and swapping the plan when the predicted makespan improves by
// the threshold. In-flight requests keep their snapshot; the swap is
// invisible except in `plan_version` — placement never changes numerics.
//
// Lifecycle: construct (optionally start_paused for deterministic tests) →
// submit() from any thread → drain() to stop accepting and wait for every
// accepted request to resolve → shutdown() (idempotent, run by the
// destructor) to join the workers.

#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "duet/engine.hpp"
#include "serve/admission.hpp"
#include "serve/recalibration.hpp"
#include "serve/request_queue.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/slo_monitor.hpp"

namespace duet::serve {

// PR-8 observability knobs. The flight recorder itself is process-global
// and always on; these configure the server's windowed SLO view and when a
// post-mortem dump is triggered.
struct ServeObservability {
  // Sliding window behind slo_snapshot(): `slo_window_s` of history in
  // `slo_buckets` ring slots.
  double slo_window_s = 10.0;
  int slo_buckets = 10;
  // Completed requests slower than this are SLO breaches; 0 falls back to
  // the request deadline (late completions breach, on-time ones do not).
  double slo_latency_s = 0.0;
  // Incident triggers (deadline-miss burst / shed-rate threshold). A fired
  // trigger dumps the flight rings into `dump_dir` once; "" disables
  // trigger-driven dumps (explicit FlightRecorder::dump still works).
  telemetry::DumpTriggerConfig trigger;
  std::string dump_dir;
  double dump_window_ms = 0.0;  // 0 = everything surviving in the rings
};

struct ServeOptions {
  int workers = 2;
  size_t queue_capacity = 64;
  // Wall-clock deadline applied to requests submitted without one;
  // <= 0 disables shedding for them.
  double default_deadline_s = 0.0;
  // Noise on modeled execution times (numerics are unaffected either way).
  bool with_noise = false;
  // Recalibrate after this many completions; 0 leaves it manual
  // (recalibrate_now()).
  uint64_t recalibrate_every = 0;
  RecalibrationOptions recalibration;
  // Workers start blocked before their first pop until resume() — lets
  // tests fill the queue (deterministic rejects) or let deadlines expire
  // (deterministic sheds) without racing the workers.
  bool start_paused = false;
  ServeObservability observability;
  DuetOptions engine;
};

enum class RequestStatus { kOk, kRejected, kShed };

struct Response {
  RequestStatus status = RequestStatus::kRejected;
  std::vector<Tensor> outputs;       // parent graph output order; kOk only
  double modeled_latency_s = 0.0;    // virtual-time makespan of the run
  double wall_wait_s = 0.0;          // arrival -> worker pickup
  double wall_latency_s = 0.0;       // arrival -> response resolved
  uint64_t plan_version = 0;         // plan generation that served it
};

struct ServerStats {
  AdmissionCounters::Snapshot admission;
  SummaryStats modeled_latency;  // completed requests only
  SummaryStats wall_wait;
  uint64_t swap_count = 0;
  uint64_t plan_version = 0;
  uint64_t recalibrations = 0;
  uint64_t drift_samples = 0;
  uint64_t slo_breaches = 0;  // sheds + over-SLO completions, process total
  uint64_t flight_dumps = 0;  // trigger-driven post-mortem dumps written
};

class DuetServer {
 public:
  explicit DuetServer(Graph model, ServeOptions options = {});
  ~DuetServer();

  DuetServer(const DuetServer&) = delete;
  DuetServer& operator=(const DuetServer&) = delete;

  const DuetEngine& engine() const { return *engine_; }
  const ServeOptions& options() const { return options_; }

  // Thread-safe. `deadline_s` < 0 applies options().default_deadline_s.
  // The future resolves with kRejected immediately when the queue is full
  // or the server is draining; otherwise when a worker finishes (kOk) or
  // sheds (kShed) the request.
  std::future<Response> submit(std::map<NodeId, Tensor> feeds,
                               double deadline_s = -1.0);

  // Releases start_paused workers. No-op otherwise.
  void resume();
  // Stops accepting, then blocks until every accepted request has resolved;
  // workers exit once the backlog is empty. Stats remain readable after.
  void drain();
  // drain() + join workers. Idempotent; the destructor calls it.
  void shutdown();

  // Re-runs the scheduler against accumulated drift and swaps the plan when
  // the predicted improvement clears the threshold. Serialized internally;
  // safe to call while traffic flows.
  RecalibrationResult recalibrate_now();
  // Force a specific placement (tests): rebuilds the plan and swaps.
  void apply_placement(const Placement& placement);

  std::shared_ptr<const ExecutionPlan> plan_snapshot() const;
  Placement current_placement() const;
  uint64_t swap_count() const;
  uint64_t plan_version() const;
  ServerStats stats() const;

  // Windowed SLO view (last observability.slo_window_s seconds): latency
  // quantiles, queue wait/depth, shed/reject rates, breaches, plan version.
  telemetry::SloSnapshot slo_snapshot() const;

 private:
  struct Request {
    uint64_t id = 0;
    uint64_t trace_id = 0;  // minted at admission; flows through the flight
                            // recorder, executor timeline, and Chrome flows
    std::map<NodeId, Tensor> feeds;
    double deadline_s = 0.0;
    double arrival_s = 0.0;  // server clock
    std::promise<Response> promise;
  };

  void worker_loop();
  void resolve(Request& request, Response&& response);
  void swap_plan(const Placement& placement);
  // Writes a trigger-driven flight dump once (no-op without a dump_dir).
  void maybe_flight_dump(const std::string& reason);

  ServeOptions options_;
  std::unique_ptr<DuetEngine> engine_;
  WallTimer clock_;

  BoundedQueue<Request> queue_;
  AdmissionController admission_;
  std::vector<std::thread> workers_;

  // Pause gate (start_paused).
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  // Accepted-but-unresolved count; drain() waits for it to hit zero.
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  uint64_t pending_ = 0;
  bool draining_ = false;

  // Shared immutable plan + its placement, swapped under plan_mutex_.
  mutable std::mutex plan_mutex_;
  std::shared_ptr<const ExecutionPlan> plan_;
  Placement placement_;
  uint64_t plan_version_ = 1;
  uint64_t swap_count_ = 0;

  // Observed latencies + request stats, recorded under stats_mutex_.
  mutable std::mutex stats_mutex_;
  DriftAccumulator drift_;
  LatencyRecorder modeled_latency_;
  LatencyRecorder wall_wait_;
  uint64_t recalibrations_ = 0;

  // Serializes recalibration itself (scheduler run + plan rebuild).
  std::mutex recalibrate_mutex_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> completed_since_recalibration_{0};
  std::atomic<bool> shut_down_{false};

  // PR-8 observability state. The monitor serializes internally; the
  // trigger and dump flag are safe from any worker.
  telemetry::SloMonitor slo_;
  telemetry::DumpTrigger dump_trigger_;
  std::atomic<uint64_t> slo_breaches_{0};
  std::atomic<uint64_t> flight_dumps_{0};
};

}  // namespace duet::serve
