#pragma once

// Request coalescing primitives: merge B compatible batch-1 requests into
// one batch-B execution and split the batched outputs back per request.
//
// The contract the batching correctness gate enforces (tests/test_fleet.cpp
// and the serve-smoke CI job): a coalesced execution over stacked feeds is
// bit-identical to the B independent single-request executions, for every
// zoo model. This holds because (a) the builders are deterministic, so the
// batch-B graph has the same node ids and the same weights as the batch-1
// graph, and (b) every kernel treats dim-0 rows independently with the same
// per-row reduction order at any batch size.

#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "tensor/tensor.hpp"

namespace duet::serve {

// Stacks per-request feed maps along dim 0: for every input id present in
// the first map, concatenates the requests' tensors in order. All maps must
// bind the same input ids (checked) — coalescing only ever merges requests
// for the same model.
std::map<NodeId, Tensor> stack_feeds(
    const std::vector<const std::map<NodeId, Tensor>*>& feeds);

// Splits batched outputs back into per-request rows: result[i] holds row
// ranges [i*rows_per_request, (i+1)*rows_per_request) of every output, in
// the parent graph's output order. `requests` must evenly divide each
// output's dim 0.
std::vector<std::vector<Tensor>> split_outputs(
    const std::vector<Tensor>& outputs, size_t requests);

}  // namespace duet::serve
