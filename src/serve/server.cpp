#include "serve/server.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet::serve {

DuetServer::DuetServer(Graph model, ServeOptions options)
    : options_(std::move(options)),
      engine_(std::make_unique<DuetEngine>(std::move(model), options_.engine)),
      queue_(options_.queue_capacity),
      admission_(options_.queue_capacity),
      paused_(options_.start_paused),
      plan_(std::make_shared<const ExecutionPlan>(engine_->plan())),
      placement_(engine_->report().schedule.placement),
      drift_(engine_->partition().subgraphs.size()) {
  DUET_CHECK_GT(options_.workers, 0);
  DUET_CHECK_GT(options_.queue_capacity, 0u);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  DUET_LOG_INFO << "DuetServer up: " << options_.workers << " workers, queue "
                << options_.queue_capacity << ", model \""
                << engine_->model().name() << "\"";
}

DuetServer::~DuetServer() { shutdown(); }

std::future<Response> DuetServer::submit(std::map<NodeId, Tensor> feeds,
                                         double deadline_s) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.feeds = std::move(feeds);
  request.deadline_s =
      deadline_s < 0.0 ? options_.default_deadline_s : deadline_s;
  request.arrival_s = clock_.elapsed();
  std::future<Response> future = request.promise.get_future();

  admission_.counters().offered.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  if (queue_.try_push(std::move(request)) ==
      BoundedQueue<Request>::Push::kAccepted) {
    admission_.counters().accepted.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  // Refused (full or draining): try_push left `request` untouched, so the
  // rejection resolves the caller's future immediately.
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --pending_;
  }
  pending_cv_.notify_all();
  admission_.counters().rejected.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("serve.rejected").add(1);
  Response response;
  response.status = RequestStatus::kRejected;
  response.wall_latency_s = clock_.elapsed() - request.arrival_s;
  request.promise.set_value(std::move(response));
  return future;
}

void DuetServer::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void DuetServer::drain() {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    draining_ = true;
  }
  resume();  // a paused server can never drain its backlog
  queue_.close();
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

void DuetServer::shutdown() {
  if (shut_down_.exchange(true)) return;
  drain();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void DuetServer::worker_loop() {
  // Each worker is a full engine replica: its own device pair (same seed
  // derivation as the engine's post-profiling devices, so modeled times
  // match DuetEngine::latency) and per-run arenas inside SimExecutor::run.
  DevicePair devices =
      make_default_device_pair(options_.engine.seed ^ 0x5EEDFACEull);
  SimExecutor executor(devices);

  {
    std::unique_lock<std::mutex> lock(pause_mutex_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }

  while (std::optional<Request> item = queue_.pop()) {
    Request request = std::move(*item);
    const double pickup_s = clock_.elapsed();
    Response response;
    response.wall_wait_s = pickup_s - request.arrival_s;

    if (admission_.should_shed(pickup_s, request.arrival_s,
                               request.deadline_s)) {
      admission_.counters().shed.fetch_add(1, std::memory_order_relaxed);
      telemetry::counter("serve.shed").add(1);
      response.status = RequestStatus::kShed;
      resolve(request, std::move(response));
      continue;
    }

    std::shared_ptr<const ExecutionPlan> plan;
    uint64_t version = 0;
    {
      std::lock_guard<std::mutex> lock(plan_mutex_);
      plan = plan_;
      version = plan_version_;
    }

    ExecutionResult result;
    {
      const bool telemetry_on = telemetry::enabled();
      telemetry::ScopedSpan span(
          telemetry_on ? "request:" + std::to_string(request.id)
                       : std::string(),
          "serve", engine_->model().name());
      result = executor.run(*plan, request.feeds, options_.with_noise);
    }

    response.status = RequestStatus::kOk;
    response.outputs = std::move(result.outputs);
    response.modeled_latency_s = result.latency_s;
    response.plan_version = version;

    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      drift_.record(result.timeline);
      modeled_latency_.add(result.latency_s);
      wall_wait_.add(response.wall_wait_s);
    }
    admission_.counters().completed.fetch_add(1, std::memory_order_relaxed);
    if (request.deadline_s > 0.0 &&
        clock_.elapsed() > request.arrival_s + request.deadline_s) {
      admission_.counters().completed_late.fetch_add(1,
                                                     std::memory_order_relaxed);
    }
    telemetry::counter("serve.completed").add(1);
    resolve(request, std::move(response));

    if (options_.recalibrate_every > 0) {
      const uint64_t done =
          completed_since_recalibration_.fetch_add(1,
                                                   std::memory_order_relaxed) +
          1;
      if (done % options_.recalibrate_every == 0) recalibrate_now();
    }
  }
}

void DuetServer::resolve(Request& request, Response&& response) {
  response.wall_latency_s = clock_.elapsed() - request.arrival_s;
  request.promise.set_value(std::move(response));
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    DUET_CHECK_GT(pending_, 0u);
    --pending_;
  }
  pending_cv_.notify_all();
}

RecalibrationResult DuetServer::recalibrate_now() {
  std::lock_guard<std::mutex> serialize(recalibrate_mutex_);
  DriftAccumulator observed(0);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    observed = drift_;
    ++recalibrations_;
  }
  RecalibrationResult result =
      recalibrate(engine_->model(), engine_->partition(),
                  engine_->report().profiles, observed, current_placement(),
                  engine_->devices().link->params(), options_.recalibration);
  telemetry::counter("serve.recalibrations").add(1);
  if (result.swapped) {
    DUET_LOG_INFO << "recalibration swap: predicted "
                  << result.predicted_current_s << "s -> "
                  << result.predicted_new_s << "s";
    swap_plan(result.placement);
  }
  return result;
}

void DuetServer::apply_placement(const Placement& placement) {
  std::lock_guard<std::mutex> serialize(recalibrate_mutex_);
  swap_plan(placement);
}

void DuetServer::swap_plan(const Placement& placement) {
  // Build outside the plan lock: in-flight requests keep their snapshot and
  // new pickups keep the old plan until the swap below.
  std::shared_ptr<const ExecutionPlan> next =
      std::make_shared<const ExecutionPlan>(
          engine_->build_plan_for(placement));
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    plan_ = std::move(next);
    placement_ = placement;
    ++plan_version_;
    ++swap_count_;
  }
  telemetry::counter("serve.plan_swaps").add(1);
}

std::shared_ptr<const ExecutionPlan> DuetServer::plan_snapshot() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return plan_;
}

Placement DuetServer::current_placement() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return placement_;
}

uint64_t DuetServer::swap_count() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return swap_count_;
}

uint64_t DuetServer::plan_version() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return plan_version_;
}

ServerStats DuetServer::stats() const {
  ServerStats s;
  s.admission = admission_.counters().snapshot();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.modeled_latency = modeled_latency_.summarize();
    s.wall_wait = wall_wait_.summarize();
    s.recalibrations = recalibrations_;
    s.drift_samples = drift_.total_samples();
  }
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    s.swap_count = swap_count_;
    s.plan_version = plan_version_;
  }
  return s;
}

}  // namespace duet::serve
