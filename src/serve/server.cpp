#include "serve/server.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace duet::serve {

using telemetry::FlightKind;
using telemetry::FlightRecorder;

DuetServer::DuetServer(Graph model, ServeOptions options)
    : options_(std::move(options)),
      engine_(std::make_unique<DuetEngine>(std::move(model), options_.engine)),
      queue_(options_.queue_capacity),
      admission_(options_.queue_capacity),
      paused_(options_.start_paused),
      plan_(std::make_shared<const ExecutionPlan>(engine_->plan())),
      placement_(engine_->report().schedule.placement),
      drift_(engine_->partition().subgraphs.size()),
      slo_(options_.observability.slo_window_s,
           options_.observability.slo_buckets),
      dump_trigger_(options_.observability.trigger) {
  DUET_CHECK_GT(options_.workers, 0);
  DUET_CHECK_GT(options_.queue_capacity, 0u);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  DUET_LOG_INFO << "DuetServer up: " << options_.workers << " workers, queue "
                << options_.queue_capacity << ", model \""
                << engine_->model().name() << "\"";
}

DuetServer::~DuetServer() { shutdown(); }

std::future<Response> DuetServer::submit(std::map<NodeId, Tensor> feeds,
                                         double deadline_s) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.trace_id = request.id;  // minted at admission, unique per request
  request.feeds = std::move(feeds);
  request.deadline_s =
      deadline_s < 0.0 ? options_.default_deadline_s : deadline_s;
  request.arrival_s = clock_.elapsed();
  std::future<Response> future = request.promise.get_future();
  const uint64_t trace_id = request.trace_id;
  const double now_us = telemetry::now_us();
  const uint64_t depth = queue_.size();
  slo_.record_offered(now_us);
  slo_.record_queue_depth(now_us, static_cast<double>(depth));

  admission_.counters().offered.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  if (queue_.try_push(std::move(request)) ==
      BoundedQueue<Request>::Push::kAccepted) {
    admission_.counters().accepted.fetch_add(1, std::memory_order_relaxed);
    FlightRecorder::instance().record(FlightKind::kEnqueue, trace_id, depth);
    return future;
  }

  // Refused (full or draining): try_push left `request` untouched, so the
  // rejection resolves the caller's future immediately.
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --pending_;
  }
  pending_cv_.notify_all();
  admission_.counters().rejected.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("serve.rejected").add(1);
  slo_.record_rejected(telemetry::now_us());
  FlightRecorder::instance().record(FlightKind::kReject, trace_id, depth);
  Response response;
  response.status = RequestStatus::kRejected;
  response.wall_latency_s = clock_.elapsed() - request.arrival_s;
  request.promise.set_value(std::move(response));
  return future;
}

void DuetServer::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void DuetServer::drain() {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    draining_ = true;
  }
  resume();  // a paused server can never drain its backlog
  queue_.close();
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

void DuetServer::shutdown() {
  if (shut_down_.exchange(true)) return;
  drain();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void DuetServer::worker_loop() {
  // Each worker is a full engine replica: its own device pair (same seed
  // derivation as the engine's post-profiling devices, so modeled times
  // match DuetEngine::latency) and per-run arenas inside SimExecutor::run.
  DevicePair devices =
      make_default_device_pair(options_.engine.seed ^ 0x5EEDFACEull);
  SimExecutor executor(devices);

  {
    std::unique_lock<std::mutex> lock(pause_mutex_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }

  while (std::optional<Request> item = queue_.pop()) {
    Request request = std::move(*item);
    const double pickup_s = clock_.elapsed();
    Response response;
    response.wall_wait_s = pickup_s - request.arrival_s;
    const double wait_us = response.wall_wait_s * 1e6;
    slo_.record_queue_wait(telemetry::now_us(), wait_us);

    if (admission_.should_shed(pickup_s, request.arrival_s,
                               request.deadline_s)) {
      admission_.counters().shed.fetch_add(1, std::memory_order_relaxed);
      telemetry::counter("serve.shed").add(1);
      const double now_us = telemetry::now_us();
      slo_.record_shed(now_us);
      slo_breaches_.fetch_add(1, std::memory_order_relaxed);
      telemetry::counter("serve.slo_breaches").add(1);
      FlightRecorder::instance().record(FlightKind::kShed, request.trace_id,
                                        static_cast<uint64_t>(wait_us));
      response.status = RequestStatus::kShed;
      resolve(request, std::move(response));
      if (dump_trigger_.on_deadline_miss(now_us)) {
        maybe_flight_dump("deadline-miss-burst");
      }
      if (dump_trigger_.on_outcome(/*shed=*/true)) {
        maybe_flight_dump("shed-rate");
      }
      continue;
    }
    FlightRecorder::instance().record(FlightKind::kPickup, request.trace_id,
                                      static_cast<uint64_t>(wait_us));

    std::shared_ptr<const ExecutionPlan> plan;
    uint64_t version = 0;
    {
      std::lock_guard<std::mutex> lock(plan_mutex_);
      plan = plan_;
      version = plan_version_;
    }

    ExecutionResult result;
    {
      const bool telemetry_on = telemetry::enabled();
      telemetry::ScopedSpan span(
          telemetry_on ? "request:" + std::to_string(request.id)
                       : std::string(),
          "serve", engine_->model().name());
      // Request context for the executor: timeline events and flight
      // launch/transfer records inside run() tag themselves with this id.
      telemetry::TraceScope trace(request.trace_id);
      result = executor.run(*plan, request.feeds, options_.with_noise);
    }

    response.status = RequestStatus::kOk;
    response.outputs = std::move(result.outputs);
    response.modeled_latency_s = result.latency_s;
    response.plan_version = version;

    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      drift_.record(result.timeline);
      modeled_latency_.add(result.latency_s);
      wall_wait_.add(response.wall_wait_s);
    }
    admission_.counters().completed.fetch_add(1, std::memory_order_relaxed);
    const double done_s = clock_.elapsed();
    const double latency_s = done_s - request.arrival_s;
    const bool late = request.deadline_s > 0.0 &&
                      done_s > request.arrival_s + request.deadline_s;
    if (late) {
      admission_.counters().completed_late.fetch_add(1,
                                                     std::memory_order_relaxed);
    }
    // SLO breach: over the configured latency target, or — with no explicit
    // target — over the request's own deadline.
    const double slo_s = options_.observability.slo_latency_s;
    const bool breach = slo_s > 0.0 ? latency_s > slo_s : late;
    const double now_us = telemetry::now_us();
    slo_.record_completed(now_us, latency_s * 1e6, breach);
    if (breach) {
      slo_breaches_.fetch_add(1, std::memory_order_relaxed);
      telemetry::counter("serve.slo_breaches").add(1);
      if (dump_trigger_.on_deadline_miss(now_us)) {
        maybe_flight_dump("deadline-miss-burst");
      }
    }
    if (dump_trigger_.on_outcome(/*shed=*/false)) {
      maybe_flight_dump("shed-rate");
    }
    telemetry::counter("serve.completed").add(1);
    FlightRecorder::instance().record(FlightKind::kComplete, request.trace_id,
                                      version,
                                      static_cast<uint64_t>(latency_s * 1e6));
    resolve(request, std::move(response));

    if (options_.recalibrate_every > 0) {
      const uint64_t done =
          completed_since_recalibration_.fetch_add(1,
                                                   std::memory_order_relaxed) +
          1;
      if (done % options_.recalibrate_every == 0) recalibrate_now();
    }
  }
}

void DuetServer::resolve(Request& request, Response&& response) {
  response.wall_latency_s = clock_.elapsed() - request.arrival_s;
  request.promise.set_value(std::move(response));
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    DUET_CHECK_GT(pending_, 0u);
    --pending_;
  }
  pending_cv_.notify_all();
}

RecalibrationResult DuetServer::recalibrate_now() {
  std::lock_guard<std::mutex> serialize(recalibrate_mutex_);
  DriftAccumulator observed(0);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    observed = drift_;
    ++recalibrations_;
  }
  // The windowed SLO view gates the work: an empty window with no drift
  // samples means nothing ran since the last reset, so re-running the
  // scheduler would only reproduce the offline decision.
  const telemetry::SloSnapshot slo = slo_.snapshot(telemetry::now_us());
  if (observed.total_samples() == 0 && slo.completed == 0) {
    telemetry::counter("serve.recalibrations.skipped_empty").add(1);
    RecalibrationResult empty;
    empty.placement = current_placement();
    return empty;
  }
  if (slo.breaches > 0) {
    DUET_LOG_INFO << "recalibrating with " << slo.breaches
                  << " SLO breaches in the last " << slo.window_s
                  << "s window (p99 " << slo.latency_p99_us << "us)";
  }
  RecalibrationResult result =
      recalibrate(engine_->model(), engine_->partition(),
                  engine_->report().profiles, observed, current_placement(),
                  engine_->devices().link->params(), options_.recalibration);
  telemetry::counter("serve.recalibrations").add(1);
  if (result.swapped) {
    DUET_LOG_INFO << "recalibration swap: predicted "
                  << result.predicted_current_s << "s -> "
                  << result.predicted_new_s << "s";
    swap_plan(result.placement);
  }
  return result;
}

void DuetServer::apply_placement(const Placement& placement) {
  std::lock_guard<std::mutex> serialize(recalibrate_mutex_);
  swap_plan(placement);
}

void DuetServer::swap_plan(const Placement& placement) {
  // Build outside the plan lock: in-flight requests keep their snapshot and
  // new pickups keep the old plan until the swap below.
  std::shared_ptr<const ExecutionPlan> next =
      std::make_shared<const ExecutionPlan>(
          engine_->build_plan_for(placement));
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    plan_ = std::move(next);
    placement_ = placement;
    ++plan_version_;
    ++swap_count_;
    version = plan_version_;
  }
  telemetry::counter("serve.plan_swaps").add(1);
  const double now_us = telemetry::now_us();
  slo_.record_plan_version(now_us, version);
  FlightRecorder::instance().record(FlightKind::kSwap, 0, version);
}

void DuetServer::maybe_flight_dump(const std::string& reason) {
  if (options_.observability.dump_dir.empty()) return;
  const telemetry::FlightDumpSummary summary = FlightRecorder::instance().dump(
      options_.observability.dump_dir, reason,
      options_.observability.dump_window_ms);
  flight_dumps_.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("serve.flight_dumps").add(1);
  DUET_LOG_WARN << "flight dump (" << reason << "): " << summary.events
                << " events, " << summary.complete_paths
                << " complete request paths -> " << summary.trace_path;
}

std::shared_ptr<const ExecutionPlan> DuetServer::plan_snapshot() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return plan_;
}

Placement DuetServer::current_placement() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return placement_;
}

uint64_t DuetServer::swap_count() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return swap_count_;
}

uint64_t DuetServer::plan_version() const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  return plan_version_;
}

ServerStats DuetServer::stats() const {
  ServerStats s;
  s.admission = admission_.counters().snapshot();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.modeled_latency = modeled_latency_.summarize();
    s.wall_wait = wall_wait_.summarize();
    s.recalibrations = recalibrations_;
    s.drift_samples = drift_.total_samples();
  }
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    s.swap_count = swap_count_;
    s.plan_version = plan_version_;
  }
  s.slo_breaches = slo_breaches_.load(std::memory_order_relaxed);
  s.flight_dumps = flight_dumps_.load(std::memory_order_relaxed);
  return s;
}

telemetry::SloSnapshot DuetServer::slo_snapshot() const {
  telemetry::SloSnapshot snap = slo_.snapshot(telemetry::now_us());
  // No swap landed inside the window: report the live plan version rather
  // than 0, so operators always see which plan is serving.
  if (snap.plan_version == 0) snap.plan_version = plan_version();
  return snap;
}

}  // namespace duet::serve
