#include "serve/model_registry.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/symbolic/crossover.hpp"
#include "analysis/symbolic/sym_shape_inference.hpp"
#include "common/error.hpp"
#include "compiler/compile_cache.hpp"
#include "compiler/pass.hpp"
#include "profile/profile_cache.hpp"

namespace duet::serve {

std::string RegistryCacheStats::to_string() const {
  std::ostringstream os;
  os << "registry caches: compile " << compile_hits << "/" << (compile_hits + compile_misses)
     << " hits (dedup " << compile_dedup_ratio() << "), profile "
     << profile_hits << "/" << (profile_hits + profile_misses) << " hits\n";
  for (const RegistrationCacheDelta& d : registrations) {
    os << "  " << d.model << ": compile +" << d.compile_misses << " miss/+"
       << d.compile_hits << " hit, profile +" << d.profile_misses << " miss/+"
       << d.profile_hits << " hit\n";
  }
  return os.str();
}

ResidentModel::ResidentModel(std::string name, BatchedGraphFactory factory,
                             const ModelRegistryOptions& options)
    : name_(std::move(name)),
      factory_(std::move(factory)),
      options_(options) {
  DUET_CHECK_GE(options_.max_batch, 1);
  engine_ = std::make_unique<DuetEngine>(factory_(1), options_.engine);

  // Bucket boundaries from the PR-7 certificates: scan the batch symbol over
  // the coalescing range on the same optimized/partitioned graph the
  // analysis CLI certifies.
  std::vector<int64_t> boundaries;
  if (options_.crossover_buckets && options_.max_batch > 1) {
    const Graph optimized =
        PassManager::standard(options_.engine.compile).run(factory_(1));
    const Partition partition =
        partition_phased(optimized, options_.engine.partition);
    const symbolic::SymbolicShapes shapes =
        symbolic::infer_symbolic(optimized, symbolic::SymbolicOptions{});
    symbolic::CrossoverOptions x_opts;
    x_opts.lo = 1;
    x_opts.hi = options_.max_batch;
    const symbolic::CrossoverReport report =
        symbolic::analyze_crossover(optimized, partition, shapes, x_opts);
    boundaries = symbolic::serving_bucket_boundaries(report, options_.max_batch);
  }
  buckets_ = make_batch_buckets(std::move(boundaries), options_.max_batch,
                                options_.max_buckets);

  // One scheduler run per bucket at its representative batch. Bucket 0's
  // representative is batch 1, which is exactly the base engine.
  placements_.reserve(buckets_.size());
  for (const BatchBucket& bucket : buckets_) {
    if (bucket.rep() == 1) {
      placements_.push_back(engine_->report().schedule.placement);
      continue;
    }
    DuetEngine bucket_engine(factory_(bucket.rep()), options_.engine);
    const Placement& placement = bucket_engine.report().schedule.placement;
    DUET_CHECK_EQ(placement.size(),
                  engine_->report().schedule.placement.size())
        << "factory(" << bucket.rep()
        << ") partitions differently from factory(1) for model " << name_;
    placements_.push_back(placement);
  }
}

const Placement& ResidentModel::bucket_placement(size_t bucket) const {
  DUET_CHECK_LT(bucket, placements_.size());
  return placements_[bucket];
}

size_t ResidentModel::bucket_of(int64_t batch) const {
  return bucket_for(buckets_, batch);
}

std::shared_ptr<const ExecutionPlan> ResidentModel::plan_for_batch(
    int64_t batch) {
  return plan_for(batch, /*bucketed=*/true);
}

std::shared_ptr<const ExecutionPlan> ResidentModel::baseline_plan_for_batch(
    int64_t batch) {
  return plan_for(batch, /*bucketed=*/false);
}

std::shared_ptr<const ExecutionPlan> ResidentModel::plan_for(int64_t batch,
                                                             bool bucketed) {
  DUET_CHECK_GE(batch, 1);
  DUET_CHECK_LE(batch, options_.max_batch)
      << "batch beyond the registry's coalescing range";
  const std::pair<int64_t, bool> key{batch, bucketed};
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
  }

  // Build outside the lock (compiles are slow; the caches keep them warm),
  // publish under it — the recalibration-swap pattern. A losing racer just
  // adopts the winner's snapshot.
  const Placement& placement =
      bucketed ? placements_[bucket_of(batch)] : placements_.front();
  Graph graph = factory_(batch);
  Partition partition = partition_phased(graph, options_.engine.partition);
  DUET_CHECK_EQ(partition.subgraphs.size(), placement.size())
      << "batched partition diverged for model " << name_;
  auto plan = std::make_shared<const ExecutionPlan>(
      ExecutionPlan::build(graph, std::move(partition), placement,
                           engine_->devices(), options_.engine.compile));

  std::lock_guard<std::mutex> lock(plans_mutex_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  (void)inserted;
  return it->second;
}

double ResidentModel::probe_service_s(int64_t batch, bool bucketed) {
  DUET_CHECK_GE(batch, 1);
  DUET_CHECK_LE(batch, options_.max_batch);
  const std::pair<int64_t, bool> key{batch, bucketed};
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    const auto it = service_cache_.find(key);
    if (it != service_cache_.end()) return it->second;
  }
  // Throwaway plan: measured, never published. Racing probes duplicate a
  // little work and agree on the (deterministic) answer.
  const Placement& placement =
      bucketed ? placements_[bucket_of(batch)] : placements_.front();
  Graph graph = factory_(batch);
  Partition partition = partition_phased(graph, options_.engine.partition);
  DUET_CHECK_EQ(partition.subgraphs.size(), placement.size())
      << "batched partition diverged for model " << name_;
  const ExecutionPlan plan =
      ExecutionPlan::build(graph, std::move(partition), placement,
                           engine_->devices(), options_.engine.compile);
  SimExecutor executor(engine_->devices());
  const double s = executor.run_latency_only(plan, /*with_noise=*/false);
  std::lock_guard<std::mutex> lock(plans_mutex_);
  service_cache_.emplace(key, s);
  return s;
}

double ResidentModel::interpolated_service_s(int64_t batch, bool bucketed) {
  DUET_CHECK_GE(batch, 1);
  const int64_t b = std::min(batch, options_.max_batch);
  const BatchBucket& bucket = buckets_[bucket_of(b)];
  const double at_lo = probe_service_s(bucket.lo, bucketed);
  if (b == bucket.lo || bucket.lo == bucket.hi) return at_lo;
  const double at_hi = probe_service_s(bucket.hi, bucketed);
  const double t = static_cast<double>(b - bucket.lo) /
                   static_cast<double>(bucket.hi - bucket.lo);
  return at_lo + t * (at_hi - at_lo);
}

double ResidentModel::modeled_service_s(int64_t batch) {
  return interpolated_service_s(batch, /*bucketed=*/true);
}

double ResidentModel::baseline_service_s(int64_t batch) {
  return interpolated_service_s(batch, /*bucketed=*/false);
}

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(std::move(options)) {}

int ModelRegistry::register_model(const std::string& name,
                                  BatchedGraphFactory factory) {
  DUET_CHECK(index_of(name) < 0) << "model already registered: " << name;
  const CompileCache::Stats compile_before = CompileCache::instance().stats();
  const ProfileCache::Stats profile_before = ProfileCache::instance().stats();

  models_.push_back(
      std::make_unique<ResidentModel>(name, std::move(factory), options_));

  const CompileCache::Stats compile_after = CompileCache::instance().stats();
  const ProfileCache::Stats profile_after = ProfileCache::instance().stats();
  RegistrationCacheDelta delta;
  delta.model = name;
  delta.compile_hits = compile_after.hits - compile_before.hits;
  delta.compile_misses = compile_after.misses - compile_before.misses;
  delta.profile_hits = profile_after.hits - profile_before.hits;
  delta.profile_misses = profile_after.misses - profile_before.misses;
  cache_stats_.registrations.push_back(delta);
  cache_stats_.compile_hits += delta.compile_hits;
  cache_stats_.compile_misses += delta.compile_misses;
  cache_stats_.profile_hits += delta.profile_hits;
  cache_stats_.profile_misses += delta.profile_misses;
  return static_cast<int>(models_.size()) - 1;
}

int ModelRegistry::index_of(const std::string& name) const {
  for (size_t i = 0; i < models_.size(); ++i) {
    if (models_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

ResidentModel& ModelRegistry::model(int index) {
  DUET_CHECK_GE(index, 0);
  DUET_CHECK_LT(static_cast<size_t>(index), models_.size());
  return *models_[index];
}

const ResidentModel& ModelRegistry::model(int index) const {
  DUET_CHECK_GE(index, 0);
  DUET_CHECK_LT(static_cast<size_t>(index), models_.size());
  return *models_[index];
}

}  // namespace duet::serve
