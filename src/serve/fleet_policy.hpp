#pragma once

// The multi-tenant pickup policy (ISSUE 10): weighted fair queueing across
// tenant classes, earliest-deadline-first within each tenant, and same-model
// request coalescing — one deterministic data structure shared verbatim by
// the real-threaded FleetServer (serve/fleet.hpp) and the virtual-time
// fleet simulator (serve/simulator.hpp), the same single-source-of-policy
// contract admission.hpp set for reject/shed.
//
// WFQ: each tenant carries a virtual finish time. A pickup chooses the
// backlogged tenant with the smallest virtual time (ties break on the
// smaller tenant index), and after execution every served request bills its
// own tenant `service_share / weight` via charge() — so over a contended
// interval tenants receive throughput proportional to their weights, even
// when a coalesced batch mixes tenants. A tenant going from idle to
// backlogged snaps its virtual time forward to the policy's current virtual
// now, so sleeping never banks credit (standard start-time fair queueing).
//
// EDF within a tenant keeps the deadline-shedding story coherent: the
// request picked first is the one that will be shed first if the backlog is
// hopeless. No-deadline requests order after every deadlined one, FIFO among
// themselves.
//
// Coalescing: the WFQ+EDF head fixes the model; the batch then fills with
// up to max_batch same-model requests in global EDF order across every
// tenant (cross-tenant coalescing is what makes batching pay at fleet
// scale — each member still bills its own tenant). Requests whose deadline
// already expired are shed as they are encountered, never executed.
//
// The structure itself is not thread-safe: the server serializes access
// under its queue mutex; the simulator is single-threaded.

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/admission.hpp"

namespace duet::serve {

// Policy-visible view of a queued request. The server keeps feeds/promises
// aside keyed by `id`; the simulator needs nothing else.
struct FleetRequest {
  uint64_t id = 0;        // submission order; the final tie-break
  int tenant = 0;
  int model = 0;          // ModelRegistry index
  double arrival_s = 0.0;
  double deadline_s = 0.0;  // absolute; <= 0 = no deadline
};

struct PickResult {
  // Same model, global EDF order; empty when only expired requests were
  // queued (everything picked went to `shed`).
  std::vector<FleetRequest> batch;
  std::vector<FleetRequest> shed;  // deadline expired before pickup
};

class FleetQueue {
 public:
  explicit FleetQueue(std::vector<TenantClass> tenants,
                      size_t queue_capacity);

  const std::vector<TenantClass>& tenants() const { return tenants_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Arrival decision + enqueue: false = queue full, the caller rejects.
  bool push(const FleetRequest& request);

  // One pickup at time `now_s`: WFQ tenant choice, EDF head, coalesce up to
  // `max_batch`. Expired requests encountered on the way are shed. Returns
  // empty batch AND empty shed only when the queue is empty.
  PickResult pick(double now_s, int64_t max_batch);

  // Bills `share_s` seconds of service to `tenant` (divided by its weight).
  // Callers charge service_s / batch_size per served request.
  void charge(int tenant, double share_s);

  // Earliest arrival among queued requests (simulator event horizon);
  // infinity when empty.
  double earliest_arrival() const;

  double virtual_time(int tenant) const;

 private:
  // Ordered EDF position for `request` in tenant queue `q` (deadline, then
  // id — no-deadline requests sort last).
  static bool edf_before(const FleetRequest& a, const FleetRequest& b);

  std::vector<TenantClass> tenants_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  // Per-tenant backlog, kept EDF-sorted on insert (queues are small — at
  // most `capacity` across all tenants — so ordered insert beats a heap on
  // clarity and is just as deterministic).
  std::vector<std::deque<FleetRequest>> queues_;
  std::vector<double> vtime_;
  double virtual_now_ = 0.0;
};

}  // namespace duet::serve
