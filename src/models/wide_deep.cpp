// Wide-and-Deep (paper Fig. 2): four heterogeneous branches — a wide linear
// part, a deep FFN, a stacked-LSTM text encoder, and a ResNet image encoder
// — concatenated into a joint head. This is the model whose execution
// timeline (Fig. 4) motivates DUET: the LSTM runs much faster on CPU while
// the CNN runs much faster on GPU.

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {

WideDeepConfig WideDeepConfig::tiny() {
  WideDeepConfig c;
  c.wide_features = 64;
  c.deep_features = 32;
  c.ffn_hidden = 64;
  c.ffn_layers = 2;
  c.rnn_input = 32;
  c.rnn_hidden = 32;
  c.seq_len = 6;
  c.cnn_depth = 18;
  c.image_size = 32;
  c.branch_dim = 32;
  return c;
}

Graph build_wide_deep(const WideDeepConfig& c, uint64_t seed) {
  GraphBuilder b("wide-and-deep", seed);

  // Wide part: a single linear layer over (dense-encoded) wide features.
  const NodeId wide_in = b.input(Shape{c.batch, c.wide_features}, "wide_features");
  const NodeId wide = b.dense(wide_in, c.branch_dim, "", "wide.linear");

  // Deep part: FFN over dense features.
  const NodeId deep_in = b.input(Shape{c.batch, c.deep_features}, "deep_features");
  NodeId deep = deep_in;
  for (int l = 0; l < c.ffn_layers; ++l) {
    deep = b.dense(deep, c.ffn_hidden, "relu", strprintf("ffn.fc%d", l));
  }
  deep = b.dense(deep, c.branch_dim, "relu", "ffn.out");

  // Text part: stacked LSTM over pre-embedded tokens, last hidden state.
  const NodeId text_in =
      b.input(Shape{c.batch, c.seq_len, c.rnn_input}, "text_embeddings");
  NodeId rnn = text_in;
  for (int l = 0; l < c.rnn_layers; ++l) {
    rnn = b.lstm(rnn, c.rnn_hidden, strprintf("rnn.lstm%d", l));
  }
  NodeId text = b.last_timestep(rnn);
  text = b.dense(text, c.branch_dim, "", "rnn.out");

  // Image part: ResNet trunk + projection.
  const NodeId image_in =
      b.input(Shape{c.batch, 3, c.image_size, c.image_size}, "image");
  NodeId cnn = resnet_trunk(b, image_in, c.cnn_depth, "cnn");
  cnn = b.dense(cnn, c.branch_dim, "", "cnn.out");

  // Joint head.
  NodeId joint = b.concat({wide, deep, text, cnn}, 1);
  joint = b.dense(joint, 128, "relu", "head.fc1");
  joint = b.dense(joint, 1, "", "head.logit");
  const NodeId prob = b.sigmoid(joint);

  return b.finish({prob});
}

}  // namespace duet::models
