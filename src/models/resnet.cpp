// ResNet-18/34/50/101 (He et al.): the "traditional model" of the paper's
// Table III fallback study, and the CNN encoder inside Wide-and-Deep.
// Standard stem (7x7/2 conv + 3x3/2 maxpool), four residual stages with
// BasicBlock (18/34) or Bottleneck (50/101), global average pool.

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {
namespace {

struct StagePlan {
  int blocks[4];
  bool bottleneck;
};

StagePlan stage_plan(int depth) {
  switch (depth) {
    case 18:
      return {{2, 2, 2, 2}, false};
    case 34:
      return {{3, 4, 6, 3}, false};
    case 50:
      return {{3, 4, 6, 3}, true};
    case 101:
      return {{3, 4, 23, 3}, true};
    default:
      DUET_THROW("unsupported ResNet depth " << depth << " (want 18/34/50/101)");
  }
}

NodeId conv_bn_relu(GraphBuilder& b, NodeId x, int64_t out_ch, int kernel,
                    int stride, int padding, bool relu, const std::string& name) {
  NodeId y = b.conv2d(x, out_ch, kernel, stride, padding, name + ".conv");
  y = b.batch_norm(y, name + ".bn");
  if (relu) y = b.relu(y);
  return y;
}

NodeId basic_block(GraphBuilder& b, NodeId x, int64_t channels, int stride,
                   const std::string& name) {
  NodeId main = conv_bn_relu(b, x, channels, 3, stride, 1, true, name + ".c1");
  main = conv_bn_relu(b, main, channels, 3, 1, 1, false, name + ".c2");
  NodeId skip = x;
  const int64_t in_ch = b.graph().node(x).out_shape.dim(1);
  if (stride != 1 || in_ch != channels) {
    skip = conv_bn_relu(b, x, channels, 1, stride, 0, false, name + ".down");
  }
  return b.relu(b.add(main, skip));
}

NodeId bottleneck_block(GraphBuilder& b, NodeId x, int64_t channels, int stride,
                        const std::string& name) {
  const int64_t expanded = channels * 4;
  NodeId main = conv_bn_relu(b, x, channels, 1, 1, 0, true, name + ".c1");
  main = conv_bn_relu(b, main, channels, 3, stride, 1, true, name + ".c2");
  main = conv_bn_relu(b, main, expanded, 1, 1, 0, false, name + ".c3");
  NodeId skip = x;
  const int64_t in_ch = b.graph().node(x).out_shape.dim(1);
  if (stride != 1 || in_ch != expanded) {
    skip = conv_bn_relu(b, x, expanded, 1, stride, 0, false, name + ".down");
  }
  return b.relu(b.add(main, skip));
}

}  // namespace

NodeId resnet_trunk(GraphBuilder& b, NodeId x, int depth,
                    const std::string& prefix) {
  const StagePlan plan = stage_plan(depth);
  NodeId y = conv_bn_relu(b, x, 64, 7, 2, 3, true, prefix + ".stem");
  y = b.max_pool2d(y, 3, 2, 1);
  int64_t channels = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const int stride = stage == 0 ? 1 : 2;
    for (int block = 0; block < plan.blocks[stage]; ++block) {
      const std::string name = strprintf("%s.s%d.b%d", prefix.c_str(), stage, block);
      if (plan.bottleneck) {
        y = bottleneck_block(b, y, channels, block == 0 ? stride : 1, name);
      } else {
        y = basic_block(b, y, channels, block == 0 ? stride : 1, name);
      }
    }
    channels *= 2;
  }
  return b.global_avg_pool(y);
}

ResNetConfig ResNetConfig::tiny() {
  ResNetConfig c;
  c.depth = 18;
  c.image_size = 32;
  c.num_classes = 10;
  return c;
}

Graph build_resnet(const ResNetConfig& c, uint64_t seed) {
  GraphBuilder b(strprintf("resnet%d", c.depth), seed);
  const NodeId image = b.input(Shape{c.batch, 3, c.image_size, c.image_size}, "image");
  NodeId features = resnet_trunk(b, image, c.depth, "trunk");
  NodeId logits = b.dense(features, c.num_classes, "", "fc");
  return b.finish({b.softmax(logits)});
}

}  // namespace duet::models
