// DLRM-style deep recommendation model (Naumov et al.): a dense-feature
// bottom MLP runs in parallel with many sparse-feature embedding lookups;
// their outputs meet in a pairwise feature-interaction layer feeding a top
// MLP. Like Wide-and-Deep this is a production recommender architecture
// (the paper's §I cites recommender systems as a DUET target): the embedding
// gathers are memory-bound and CPU-friendly while the MLPs vectorize well,
// and the bottom branches are mutually independent.

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {

DlrmConfig DlrmConfig::tiny() {
  DlrmConfig c;
  c.dense_features = 8;
  c.num_sparse = 3;
  c.vocab = 50;
  c.embed_dim = 8;
  c.bottom_hidden = 16;
  c.bottom_layers = 2;
  c.top_hidden = 16;
  c.top_layers = 2;
  return c;
}

Graph build_dlrm(const DlrmConfig& c, uint64_t seed) {
  GraphBuilder b("dlrm", seed);

  // Bottom MLP over the dense features.
  const NodeId dense_in = b.input(Shape{c.batch, c.dense_features}, "dense_features");
  NodeId bottom = dense_in;
  for (int l = 0; l < c.bottom_layers; ++l) {
    bottom = b.dense(bottom, c.bottom_hidden, "relu", strprintf("bottom.fc%d", l));
  }
  bottom = b.dense(bottom, c.embed_dim, "relu", "bottom.out");

  // One embedding table per sparse feature; indices arrive as int32.
  std::vector<NodeId> features{bottom};
  for (int s = 0; s < c.num_sparse; ++s) {
    const NodeId idx = b.input(Shape{c.batch, 1}, strprintf("sparse%d", s),
                               DType::kInt32);
    NodeId e = b.embedding(idx, c.vocab, c.embed_dim, strprintf("emb%d", s));
    // [batch, 1, dim] -> [batch, dim]
    e = b.reshape(e, Shape{c.batch, c.embed_dim});
    features.push_back(e);
  }

  // Feature interaction: concat all feature vectors, then the dot-product
  // interaction approximated by a dense mixing layer over the concatenation
  // (batch-size-agnostic, unlike an explicit pairwise matmul at batch 1).
  NodeId interact = b.concat(features, 1);
  interact = b.dense(interact, c.top_hidden, "relu", "interact.mix");

  // Top MLP to the CTR logit.
  NodeId top = interact;
  for (int l = 0; l < c.top_layers; ++l) {
    top = b.dense(top, c.top_hidden, "relu", strprintf("top.fc%d", l));
  }
  top = b.dense(top, 1, "", "top.logit");
  return b.finish({b.sigmoid(top)});
}

}  // namespace duet::models
