// Siamese network (paper workload 2): two independent LSTM branches encode
// a query and a passage; a small head scores their similarity. The two
// branches are the multi-path phase DUET splits across CPU and GPU.

#include "models/model_zoo.hpp"

namespace duet::models {

SiameseConfig SiameseConfig::tiny() {
  SiameseConfig c;
  c.seq_len = 6;
  c.embed_dim = 16;
  c.rnn_hidden = 32;
  c.proj_dim = 16;
  return c;
}

Graph build_siamese(const SiameseConfig& c, uint64_t seed) {
  GraphBuilder b("siamese", seed);

  const auto branch = [&](const std::string& name) {
    const NodeId in =
        b.input(Shape{c.batch, c.seq_len, c.embed_dim}, name + "_embeddings");
    NodeId h = b.lstm(in, c.rnn_hidden, name + ".lstm");
    h = b.seq_mean(h);
    return b.dense(h, c.proj_dim, "tanh", name + ".proj");
  };

  const NodeId left = branch("query");
  const NodeId right = branch("passage");

  // Similarity head: the branch encodings join here (the first node every
  // path passes through, so the partitioner's phase boundary lands on it).
  NodeId joint = b.concat({left, right}, 1);
  joint = b.dense(joint, 64, "relu", "head.fc");
  joint = b.dense(joint, 1, "", "head.logit");
  return b.finish({b.sigmoid(joint)});
}

}  // namespace duet::models
