// MT-DNN (paper Fig. 3): a shared lexicon encoder + multi-layer transformer
// encoder, followed by independent task-specific output layers. Following
// the MT-DNN paper, each answer module is a SAN-style multi-step reasoner —
// recurrent, hence sequential and GPU-unfriendly at batch 1 — which is what
// gives DUET room to co-execute the heads on the CPU.

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {

MtDnnConfig MtDnnConfig::tiny() {
  MtDnnConfig c;
  c.seq_len = 6;
  c.model_dim = 48;
  c.encoder_layers = 1;
  c.num_heads_attn = 4;
  c.num_tasks = 3;
  c.task_hidden = 16;
  return c;
}

Graph build_mtdnn(const MtDnnConfig& c, uint64_t seed) {
  GraphBuilder b("mt-dnn", seed);

  // Lexicon encoder: pre-embedded tokens projected into model space.
  const NodeId tokens =
      b.input(Shape{c.batch, c.seq_len, c.model_dim}, "token_embeddings");
  NodeId x = tokens;

  // Transformer encoder stack (post-norm residual blocks).
  for (int l = 0; l < c.encoder_layers; ++l) {
    const std::string name = strprintf("enc%d", l);
    NodeId attn = b.attention(x, c.num_heads_attn, name + ".attn");
    x = b.layer_norm(b.add(x, attn), name + ".ln1");
    // FFN sublayer operates on the flattened token matrix.
    NodeId flat = b.reshape(x, Shape{c.batch * c.seq_len, c.model_dim});
    NodeId ff = b.dense(flat, 4 * c.model_dim, "gelu", name + ".ff1");
    ff = b.dense(ff, c.model_dim, "", name + ".ff2");
    ff = b.reshape(ff, Shape{c.batch, c.seq_len, c.model_dim});
    x = b.layer_norm(b.add(x, ff), name + ".ln2");
  }

  // Task-specific output layers: SAN answer module (GRU over the encoded
  // sequence) + classifier per task. Independent of each other.
  std::vector<NodeId> outputs;
  for (int t = 0; t < c.num_tasks; ++t) {
    const std::string name = strprintf("task%d", t);
    NodeId san = b.gru(x, c.task_hidden, name + ".san");
    NodeId pooled = b.last_timestep(san);
    NodeId logits = b.dense(pooled, 3, "", name + ".cls");
    outputs.push_back(b.softmax(logits));
  }
  return b.finish(outputs);
}

}  // namespace duet::models
