#pragma once

// The evaluation workloads (paper §VI-A, Table I): Wide-and-Deep, Siamese,
// MT-DNN — the heterogeneous-structure models DUET targets — plus the
// "traditional" sequential models (ResNet family, VGG, SqueezeNet) used for
// the fallback study (Table III). All builders take a config struct whose
// defaults reproduce the paper's setting; the sweep benchmarks (Figs. 14-17)
// vary single fields.

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace duet::models {

// --- Wide-and-Deep (Fig. 2): wide linear + FFN + stacked LSTM + CNN encoder
// feeding a joint head. -------------------------------------------------------
struct WideDeepConfig {
  int64_t batch = 1;
  int64_t wide_features = 1000;  // sparse-ish wide features (dense encoded)
  int64_t deep_features = 256;   // FFN input
  int64_t ffn_hidden = 1024;
  int ffn_layers = 3;
  int64_t rnn_input = 256;  // pre-embedded text features
  int64_t rnn_hidden = 256;
  int rnn_layers = 1;  // Fig. 14 sweeps 1/2/4/8
  int64_t seq_len = 100;
  int cnn_depth = 18;  // ResNet encoder depth; Fig. 15 sweeps 18/34/50/101
  int64_t image_size = 224;
  int64_t branch_dim = 256;  // per-branch encoding width

  // Small variant whose kernels run in milliseconds on the host — used by
  // numeric correctness tests and examples.
  static WideDeepConfig tiny();
};
Graph build_wide_deep(const WideDeepConfig& config = {}, uint64_t seed = 42);

// --- Siamese network (two independent LSTM branches + similarity head). -----
struct SiameseConfig {
  int64_t batch = 1;
  int64_t seq_len = 128;
  int64_t embed_dim = 128;
  int64_t rnn_hidden = 768;
  int64_t proj_dim = 128;

  static SiameseConfig tiny();
};
Graph build_siamese(const SiameseConfig& config = {}, uint64_t seed = 43);

// --- MT-DNN (Fig. 3): shared transformer encoder + independent task heads
// with SAN-style recurrent answer modules. ------------------------------------
struct MtDnnConfig {
  int64_t batch = 1;
  int64_t seq_len = 64;
  int64_t model_dim = 768;
  int encoder_layers = 3;
  int num_heads_attn = 12;
  int num_tasks = 6;
  int64_t task_hidden = 512;  // SAN GRU width per task head

  static MtDnnConfig tiny();
};
Graph build_mtdnn(const MtDnnConfig& config = {}, uint64_t seed = 44);

// --- Traditional models (Table III fallback study). --------------------------
struct ResNetConfig {
  int64_t batch = 1;
  int depth = 50;  // 18 / 34 / 50 / 101
  int64_t image_size = 224;
  int64_t num_classes = 1000;

  static ResNetConfig tiny();
};
Graph build_resnet(const ResNetConfig& config = {}, uint64_t seed = 45);

struct VggConfig {
  int64_t batch = 1;
  int64_t image_size = 224;
  int64_t num_classes = 1000;

  static VggConfig tiny();
};
Graph build_vgg16(const VggConfig& config = {}, uint64_t seed = 46);

struct SqueezeNetConfig {
  int64_t batch = 1;
  int64_t image_size = 224;
  int64_t num_classes = 1000;

  static SqueezeNetConfig tiny();
};
Graph build_squeezenet(const SqueezeNetConfig& config = {}, uint64_t seed = 47);

// DLRM-style recommender: bottom MLP || sparse embedding lookups -> feature
// interaction -> top MLP.
struct DlrmConfig {
  int64_t batch = 1;
  int64_t dense_features = 256;
  int num_sparse = 26;       // Criteo-like sparse feature count
  int64_t vocab = 100000;
  int64_t embed_dim = 64;
  int64_t bottom_hidden = 512;
  int bottom_layers = 3;
  int64_t top_hidden = 512;
  int top_layers = 3;

  static DlrmConfig tiny();
};
Graph build_dlrm(const DlrmConfig& config = {}, uint64_t seed = 49);

// GoogLeNet-style Inception v1: nine four-branch inception modules — the
// high-fan-out CNN case the paper's introduction cites.
struct InceptionConfig {
  int64_t batch = 1;
  int64_t image_size = 224;
  int64_t num_classes = 1000;

  static InceptionConfig tiny();
};
Graph build_inception(const InceptionConfig& config = {}, uint64_t seed = 48);

// Internal building block shared by Wide-and-Deep and the ResNet models:
// appends a ResNet trunk (stem + residual stages + global pool) to `x`
// (NCHW) and returns the pooled [batch, channels] feature node.
NodeId resnet_trunk(GraphBuilder& b, NodeId x, int depth,
                    const std::string& prefix);

// --- common helpers ------------------------------------------------------------
// Builds by name: "wide-deep", "siamese", "mtdnn", "resnet18/34/50/101",
// "vgg16", "squeezenet". Uses each model's default config.
Graph build_by_name(const std::string& name, uint64_t seed = 42);

// Batch-parameterized builders (ISSUE 10): the named model's default (or
// tiny) config with `batch` overridden, same seed — so the batch-B graph has
// the same structure, node ids, and weights as the batch-1 graph, which is
// what lets the serving runtime coalesce requests and compile one plan per
// batch bucket. `zoo_batched_factory` packages this as the factory the
// ModelRegistry consumes.
Graph build_by_name_batched(const std::string& name, int64_t batch,
                            bool tiny = false, uint64_t seed = 42);
std::function<Graph(int64_t)> zoo_batched_factory(const std::string& name,
                                                  bool tiny = false,
                                                  uint64_t seed = 42);

// Every name build_by_name accepts (one entry per ResNet depth) — the model
// zoo as `duet_cli verify --all` walks it.
const std::vector<std::string>& zoo_model_names();

// Random feed tensors for every kInput of `graph` (normal floats; uniform
// indices for int32 inputs).
std::map<NodeId, Tensor> make_random_feeds(const Graph& graph, Rng& rng);

}  // namespace duet::models
