// VGG-16 (Simonyan & Zisserman): a purely sequential conv stack — another
// "traditional model" exercising DUET's single-device fallback.

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {

VggConfig VggConfig::tiny() {
  VggConfig c;
  c.image_size = 32;
  c.num_classes = 10;
  return c;
}

Graph build_vgg16(const VggConfig& c, uint64_t seed) {
  GraphBuilder b("vgg16", seed);
  const NodeId image = b.input(Shape{c.batch, 3, c.image_size, c.image_size}, "image");

  // Channel plan per stage; each stage is `reps` 3x3 convs then 2x2 maxpool.
  const int64_t channels[5] = {64, 128, 256, 512, 512};
  const int reps[5] = {2, 2, 3, 3, 3};

  NodeId x = image;
  for (int stage = 0; stage < 5; ++stage) {
    for (int r = 0; r < reps[stage]; ++r) {
      x = b.conv2d(x, channels[stage], 3, 1, 1, strprintf("s%d.conv%d", stage, r));
      x = b.relu(x);
    }
    x = b.max_pool2d(x, 2, 2, 0);
  }
  x = b.flatten(x);
  x = b.dense(x, 4096, "relu", "fc1");
  x = b.dense(x, 4096, "relu", "fc2");
  x = b.dense(x, c.num_classes, "", "fc3");
  return b.finish({b.softmax(x)});
}

}  // namespace duet::models
