// GoogLeNet-style Inception v1: every inception module runs four parallel
// branches (1x1 / 3x3 / 5x5 / pool-proj) that concat along channels. The
// paper's §I cites exactly this kind of high-fan-out CNN as having "more
// potential for parallel execution" — but the branches are all convolutions
// (GPU-friendly) and tiny relative to PCIe cost, so DUET's scheduler should
// still decline to split them: a sharper fallback test than plain ResNet.

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {
namespace {

NodeId conv_relu(GraphBuilder& b, NodeId x, int64_t ch, int k, int stride,
                 int pad, const std::string& name) {
  NodeId y = b.conv2d(x, ch, k, stride, pad, name);
  return b.relu(y);
}

struct InceptionSpec {
  int64_t c1x1, c3x3r, c3x3, c5x5r, c5x5, pool_proj;
};

NodeId inception_module(GraphBuilder& b, NodeId x, const InceptionSpec& s,
                        const std::string& name) {
  const NodeId b1 = conv_relu(b, x, s.c1x1, 1, 1, 0, name + ".b1.conv");
  NodeId b2 = conv_relu(b, x, s.c3x3r, 1, 1, 0, name + ".b2.reduce");
  b2 = conv_relu(b, b2, s.c3x3, 3, 1, 1, name + ".b2.conv");
  NodeId b3 = conv_relu(b, x, s.c5x5r, 1, 1, 0, name + ".b3.reduce");
  b3 = conv_relu(b, b3, s.c5x5, 5, 1, 2, name + ".b3.conv");
  NodeId b4 = b.max_pool2d(x, 3, 1, 1);
  b4 = conv_relu(b, b4, s.pool_proj, 1, 1, 0, name + ".b4.proj");
  return b.concat({b1, b2, b3, b4}, 1);
}

}  // namespace

InceptionConfig InceptionConfig::tiny() {
  InceptionConfig c;
  c.image_size = 32;
  c.num_classes = 10;
  return c;
}

Graph build_inception(const InceptionConfig& c, uint64_t seed) {
  GraphBuilder b("inception-v1", seed);
  const NodeId image = b.input(Shape{c.batch, 3, c.image_size, c.image_size}, "image");

  NodeId x = conv_relu(b, image, 64, 7, 2, 3, "stem.conv1");
  x = b.max_pool2d(x, 3, 2, 1);
  x = conv_relu(b, x, 64, 1, 1, 0, "stem.conv2");
  x = conv_relu(b, x, 192, 3, 1, 1, "stem.conv3");
  x = b.max_pool2d(x, 3, 2, 1);

  // GoogLeNet's nine inception modules with the published channel plans.
  const InceptionSpec specs[9] = {
      {64, 96, 128, 16, 32, 32},     // 3a
      {128, 128, 192, 32, 96, 64},   // 3b
      {192, 96, 208, 16, 48, 64},    // 4a
      {160, 112, 224, 24, 64, 64},   // 4b
      {128, 128, 256, 24, 64, 64},   // 4c
      {112, 144, 288, 32, 64, 64},   // 4d
      {256, 160, 320, 32, 128, 128}, // 4e
      {256, 160, 320, 32, 128, 128}, // 5a
      {384, 192, 384, 48, 128, 128}, // 5b
  };
  for (int i = 0; i < 9; ++i) {
    x = inception_module(b, x, specs[i], strprintf("inc%d", i));
    if (i == 1 || i == 6) x = b.max_pool2d(x, 3, 2, 1);
  }

  x = b.global_avg_pool(x);
  x = b.dense(x, c.num_classes, "", "fc");
  return b.finish({b.softmax(x)});
}

}  // namespace duet::models
