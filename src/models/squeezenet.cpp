// SqueezeNet 1.0 (Iandola et al.): fire modules whose expand stage has two
// parallel convolutions (1x1 and 3x3). The tiny two-branch regions give the
// partitioner multi-path phases whose branches are far too small to be worth
// moving across PCIe — a good stress test of the fallback logic.

#include "common/string_util.hpp"
#include "models/model_zoo.hpp"

namespace duet::models {
namespace {

NodeId fire_module(GraphBuilder& b, NodeId x, int64_t squeeze, int64_t expand,
                   const std::string& name) {
  NodeId s = b.conv2d(x, squeeze, 1, 1, 0, name + ".squeeze");
  s = b.relu(s);
  NodeId e1 = b.conv2d(s, expand, 1, 1, 0, name + ".expand1x1");
  e1 = b.relu(e1);
  NodeId e3 = b.conv2d(s, expand, 3, 1, 1, name + ".expand3x3");
  e3 = b.relu(e3);
  return b.concat({e1, e3}, 1);
}

}  // namespace

SqueezeNetConfig SqueezeNetConfig::tiny() {
  SqueezeNetConfig c;
  c.image_size = 32;
  c.num_classes = 10;
  return c;
}

Graph build_squeezenet(const SqueezeNetConfig& c, uint64_t seed) {
  GraphBuilder b("squeezenet", seed);
  const NodeId image = b.input(Shape{c.batch, 3, c.image_size, c.image_size}, "image");

  NodeId x = b.conv2d(image, 96, 7, 2, 3, "stem.conv");
  x = b.relu(x);
  x = b.max_pool2d(x, 3, 2, 0);

  const int64_t squeeze[8] = {16, 16, 32, 32, 48, 48, 64, 64};
  const int64_t expand[8] = {64, 64, 128, 128, 192, 192, 256, 256};
  for (int i = 0; i < 8; ++i) {
    x = fire_module(b, x, squeeze[i], expand[i], strprintf("fire%d", i + 2));
    if (i == 3 || i == 7) x = b.max_pool2d(x, 3, 2, 0);
  }

  x = b.conv2d(x, c.num_classes, 1, 1, 0, "classifier.conv");
  x = b.relu(x);
  x = b.global_avg_pool(x);
  return b.finish({b.softmax(x)});
}

}  // namespace duet::models
