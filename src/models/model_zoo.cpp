#include "models/model_zoo.hpp"

#include "common/error.hpp"

namespace duet::models {

Graph build_by_name(const std::string& name, uint64_t seed) {
  if (name == "wide-deep") return build_wide_deep(WideDeepConfig{}, seed);
  if (name == "siamese") return build_siamese(SiameseConfig{}, seed);
  if (name == "mtdnn") return build_mtdnn(MtDnnConfig{}, seed);
  if (name == "vgg16") return build_vgg16(VggConfig{}, seed);
  if (name == "squeezenet") return build_squeezenet(SqueezeNetConfig{}, seed);
  if (name == "inception") return build_inception(InceptionConfig{}, seed);
  if (name == "dlrm") return build_dlrm(DlrmConfig{}, seed);
  if (name.rfind("resnet", 0) == 0) {
    ResNetConfig c;
    c.depth = std::stoi(name.substr(6));
    return build_resnet(c, seed);
  }
  DUET_THROW("unknown model: " << name);
}

Graph build_by_name_batched(const std::string& name, int64_t batch,
                            bool tiny, uint64_t seed) {
  DUET_CHECK_GE(batch, 1) << "batch must be positive";
  if (name == "wide-deep") {
    WideDeepConfig c = tiny ? WideDeepConfig::tiny() : WideDeepConfig{};
    c.batch = batch;
    return build_wide_deep(c, seed);
  }
  if (name == "siamese") {
    SiameseConfig c = tiny ? SiameseConfig::tiny() : SiameseConfig{};
    c.batch = batch;
    return build_siamese(c, seed);
  }
  if (name == "mtdnn") {
    MtDnnConfig c = tiny ? MtDnnConfig::tiny() : MtDnnConfig{};
    c.batch = batch;
    return build_mtdnn(c, seed);
  }
  if (name == "vgg16") {
    VggConfig c = tiny ? VggConfig::tiny() : VggConfig{};
    c.batch = batch;
    return build_vgg16(c, seed);
  }
  if (name == "squeezenet") {
    SqueezeNetConfig c = tiny ? SqueezeNetConfig::tiny() : SqueezeNetConfig{};
    c.batch = batch;
    return build_squeezenet(c, seed);
  }
  if (name == "inception") {
    InceptionConfig c = tiny ? InceptionConfig::tiny() : InceptionConfig{};
    c.batch = batch;
    return build_inception(c, seed);
  }
  if (name == "dlrm") {
    DlrmConfig c = tiny ? DlrmConfig::tiny() : DlrmConfig{};
    c.batch = batch;
    return build_dlrm(c, seed);
  }
  if (name.rfind("resnet", 0) == 0) {
    ResNetConfig c = tiny ? ResNetConfig::tiny() : ResNetConfig{};
    c.depth = std::stoi(name.substr(6));
    c.batch = batch;
    return build_resnet(c, seed);
  }
  DUET_THROW("unknown model: " << name);
}

std::function<Graph(int64_t)> zoo_batched_factory(const std::string& name,
                                                  bool tiny, uint64_t seed) {
  // Validates eagerly so a bad name throws at registration, not first use.
  (void)build_by_name_batched(name, 1, tiny, seed);
  return [name, tiny, seed](int64_t batch) {
    return build_by_name_batched(name, batch, tiny, seed);
  };
}

const std::vector<std::string>& zoo_model_names() {
  static const std::vector<std::string> kNames = {
      "wide-deep", "siamese",  "mtdnn",    "resnet18", "resnet34", "resnet50",
      "resnet101", "vgg16",    "squeezenet", "inception", "dlrm",
  };
  return kNames;
}

std::map<NodeId, Tensor> make_random_feeds(const Graph& graph, Rng& rng) {
  std::map<NodeId, Tensor> feeds;
  for (NodeId id : graph.input_ids()) {
    const Node& n = graph.node(id);
    if (n.out_dtype == DType::kInt32) {
      // Index input: bound draws by the smallest table any consuming
      // embedding gathers from.
      int64_t limit = 100;
      for (NodeId c : graph.consumers(id)) {
        const Node& consumer = graph.node(c);
        if (consumer.op == OpType::kEmbedding && consumer.inputs[0] == id) {
          limit = std::min(limit, graph.node(consumer.inputs[1]).out_shape.dim(0));
        }
      }
      Tensor t(n.out_shape, DType::kInt32);
      int32_t* p = t.data<int32_t>();
      for (int64_t i = 0; i < t.numel(); ++i) {
        p[i] = static_cast<int32_t>(rng.uniform_int(0, limit - 1));
      }
      feeds[id] = std::move(t);
    } else {
      feeds[id] = Tensor::randn(n.out_shape, rng, 1.0f);
    }
  }
  return feeds;
}

}  // namespace duet::models
