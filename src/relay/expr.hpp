#pragma once

// A Relay-like expression IR (paper §V, Listing 1): a pure, expression-
// oriented language in A-normal form. DUET's front-end ingests models in
// this form, translates them to the adjacency-list graph via a visitor
// (to_graph.cpp), and translates partitioned subgraphs back to a sequence of
// Relay statements (from_graph.cpp) for compilation.
//
// Grammar (BNF, printed/parsed by printer.cpp / parser.cpp):
//
//   module   ::= "def" "@" ident "(" params ")" "{" let* result "}"
//   params   ::= param ("," param)*
//   param    ::= var ":" type
//   let      ::= var "=" expr ";"
//   expr     ::= call | var | const-decl
//   call     ::= ident "(" args? ")" attrs?
//   args     ::= operand ("," operand)*
//   operand  ::= var
//   const-decl ::= "constant" type
//   attrs    ::= "{" key "=" value ("," key "=" value)* "}"
//   result   ::= "(" var ("," var)* ")"
//   type     ::= "Tensor[" shape "," dtype "]"
//   var      ::= "%" ident
//
// Semantics match the graph IR one-to-one; the op vocabulary is OpType.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "tensor/tensor.hpp"

namespace duet::relay {

struct TensorType {
  Shape shape;
  DType dtype = DType::kFloat32;

  bool operator==(const TensorType& other) const {
    return shape == other.shape && dtype == other.dtype;
  }
  std::string to_string() const;
};

// A binding name, e.g. "%x" or "%17". Stored without the '%'.
using VarName = std::string;

struct CallExpr {
  OpType op = OpType::kIdentity;
  std::vector<VarName> args;
  AttrMap attrs;
};

struct ConstDecl {
  TensorType type;
  Tensor value;  // may be undefined when parsed from text without a table
};

// One ANF statement: either `%v = call(...)` or `%v = constant Tensor[...]`.
struct Binding {
  VarName var;
  enum class Kind { kCall, kConstant } kind = Kind::kCall;
  CallExpr call;
  ConstDecl constant;
  TensorType type;  // result type (redundant but kept for checking/printing)
};

struct Param {
  VarName var;
  TensorType type;
};

// A whole function: `def @name(params) { bindings; (outputs) }`.
struct Module {
  std::string name = "main";
  std::vector<Param> params;
  std::vector<Binding> bindings;
  std::vector<VarName> outputs;

  const Binding* find(const VarName& var) const;
};

}  // namespace duet::relay
