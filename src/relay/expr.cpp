#include "relay/expr.hpp"

#include <sstream>

namespace duet::relay {

std::string TensorType::to_string() const {
  std::ostringstream os;
  os << "Tensor[(";
  for (size_t i = 0; i < shape.rank(); ++i) {
    if (i) os << ", ";
    os << shape.dim(i);
  }
  os << "), " << dtype_name(dtype) << "]";
  return os.str();
}

const Binding* Module::find(const VarName& var) const {
  for (const Binding& b : bindings) {
    if (b.var == var) return &b;
  }
  return nullptr;
}

}  // namespace duet::relay
