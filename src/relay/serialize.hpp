#pragma once

// Persistence for Relay modules: the text form carries structure; a binary
// sidecar (`<path>.weights`) carries the constant tensors so a saved model
// round-trips with its parameters. Format of the sidecar:
//
//   magic "DUETWT01"
//   u32 count
//   repeat count times:
//     u16 name_len, name bytes            (binding var name)
//     u8 dtype, u8 rank, i64 dims[rank]
//     raw payload (numel * dtype_size bytes, little-endian host order)

#include <string>

#include "relay/relay.hpp"

namespace duet::relay {

// Writes `<path>` (text) and `<path>.weights` (constants). Throws on I/O
// failure.
void save_module(const Module& module, const std::string& path);

// Parses `<path>`; if `<path>.weights` exists its tensors override the
// zero-initialized constants.
Module load_module(const std::string& path);

}  // namespace duet::relay
