// Recursive-descent parser for the textual Relay-like form (grammar in
// expr.hpp). The printer and parser are exact inverses, which the round-trip
// tests rely on.

#include <cctype>

#include "common/error.hpp"
#include "relay/relay.hpp"

namespace duet::relay {
namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    DUET_CHECK(pos_ < text_.size()) << "unexpected end of relay text";
    return text_[pos_];
  }

  void expect(char c) {
    skip_ws();
    DUET_CHECK(pos_ < text_.size() && text_[pos_] == c)
        << "expected '" << c << "' at offset " << pos_ << ", got '"
        << (pos_ < text_.size() ? text_.substr(pos_, 10) : "<eof>") << "'";
    ++pos_;
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_word(const std::string& word) {
    const std::string got = ident();
    DUET_CHECK(got == word) << "expected '" << word << "', got '" << got << "'";
  }

  std::string ident() {
    skip_ws();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '-')) {
      ++pos_;
    }
    DUET_CHECK(pos_ > start) << "expected identifier at offset " << start;
    return text_.substr(start, pos_ - start);
  }

  std::string quoted_string() {
    expect('"');
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    DUET_CHECK(pos_ < text_.size()) << "unterminated string";
    const std::string s = text_.substr(start, pos_ - start);
    ++pos_;
    return s;
  }

  // Number; sets *is_float when a '.' / exponent appears.
  double number(bool* is_float) {
    skip_ws();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool saw_float = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        saw_float = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      } else {
        break;
      }
    }
    DUET_CHECK(pos_ > start) << "expected number at offset " << start;
    *is_float = saw_float;
    return std::stod(text_.substr(start, pos_ - start));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

TensorType parse_type(Lexer& lex) {
  lex.expect_word("Tensor");
  lex.expect('[');
  lex.expect('(');
  std::vector<int64_t> dims;
  if (!lex.accept(')')) {
    for (;;) {
      bool is_float = false;
      dims.push_back(static_cast<int64_t>(lex.number(&is_float)));
      if (lex.accept(')')) break;
      lex.expect(',');
    }
  }
  lex.expect(',');
  const std::string dtype = lex.ident();
  lex.expect(']');
  TensorType t;
  t.shape = Shape(std::move(dims));
  if (dtype == "float32") {
    t.dtype = DType::kFloat32;
  } else if (dtype == "int32") {
    t.dtype = DType::kInt32;
  } else if (dtype == "int64") {
    t.dtype = DType::kInt64;
  } else if (dtype == "uint8") {
    t.dtype = DType::kUInt8;
  } else {
    DUET_THROW("unknown dtype in relay text: " << dtype);
  }
  return t;
}

AttrMap parse_attrs(Lexer& lex) {
  AttrMap attrs;
  if (!lex.accept('{')) return attrs;
  if (lex.accept('}')) return attrs;
  for (;;) {
    const std::string key = lex.ident();
    lex.expect('=');
    if (lex.peek() == '"') {
      attrs.set(key, lex.quoted_string());
    } else if (lex.accept('[')) {
      std::vector<int64_t> items;
      while (!lex.accept(']')) {
        bool is_float = false;
        items.push_back(static_cast<int64_t>(lex.number(&is_float)));
      }
      attrs.set(key, std::move(items));
    } else {
      bool is_float = false;
      const double v = lex.number(&is_float);
      if (is_float) {
        attrs.set(key, v);
      } else {
        attrs.set(key, static_cast<int64_t>(v));
      }
    }
    if (lex.accept('}')) break;
    lex.expect(',');
  }
  return attrs;
}

std::string parse_var(Lexer& lex) {
  lex.expect('%');
  return lex.ident();
}

}  // namespace

Module parse_module(const std::string& text,
                    const std::map<std::string, Tensor>* const_table) {
  Lexer lex(text);
  Module m;

  lex.expect_word("def");
  lex.expect('@');
  m.name = lex.ident();
  lex.expect('(');
  if (!lex.accept(')')) {
    for (;;) {
      Param p;
      p.var = parse_var(lex);
      lex.expect(':');
      p.type = parse_type(lex);
      m.params.push_back(std::move(p));
      if (lex.accept(')')) break;
      lex.expect(',');
    }
  }
  lex.expect('{');

  for (;;) {
    if (lex.peek() == '(') break;  // result tuple
    Binding b;
    b.var = parse_var(lex);
    lex.expect('=');
    const std::string head = lex.ident();
    if (head == "constant") {
      b.kind = Binding::Kind::kConstant;
      b.constant.type = parse_type(lex);
      b.type = b.constant.type;
      if (const_table != nullptr) {
        auto it = const_table->find(b.var);
        if (it != const_table->end()) {
          DUET_CHECK(it->second.shape() == b.constant.type.shape)
              << "const table shape mismatch for %" << b.var;
          b.constant.value = it->second;
        }
      }
      if (!b.constant.value.defined()) {
        b.constant.value = Tensor::zeros(b.constant.type.shape, b.constant.type.dtype);
      }
    } else {
      b.kind = Binding::Kind::kCall;
      b.call.op = op_from_name(head);
      lex.expect('(');
      if (!lex.accept(')')) {
        for (;;) {
          b.call.args.push_back(parse_var(lex));
          if (lex.accept(')')) break;
          lex.expect(',');
        }
      }
      b.call.attrs = parse_attrs(lex);
    }
    lex.expect(';');
    m.bindings.push_back(std::move(b));
  }

  lex.expect('(');
  for (;;) {
    m.outputs.push_back(parse_var(lex));
    if (lex.accept(')')) break;
    lex.expect(',');
  }
  lex.expect('}');

  // Every output must name a param or a binding.
  for (const VarName& out : m.outputs) {
    bool bound = m.find(out) != nullptr;
    for (const Param& p : m.params) bound |= p.var == out;
    DUET_CHECK(bound) << "output %" << out << " is unbound";
  }
  return m;
}

}  // namespace duet::relay
