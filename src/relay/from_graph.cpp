// Graph -> Module translation: emits partitioned subgraphs back as a
// sequence of Relay statements (paper §V), ready to be printed or fed to the
// compiler of another system.

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "relay/relay.hpp"

namespace duet::relay {
namespace {

// Variable names must be grammar-safe; node names may contain anything, so
// sanitize while keeping them readable and unique.
std::string var_for(const Node& n) {
  std::string s = n.name.empty() ? strprintf("v%d", n.id) : n.name;
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.' &&
        c != '-') {
      c = '_';
    }
  }
  return strprintf("%s_%d", s.c_str(), n.id);
}

}  // namespace

Module from_graph(const Graph& graph) {
  Module m;
  m.name = graph.name().empty() ? "main" : graph.name();
  for (char& c : m.name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }

  std::vector<VarName> names(graph.num_nodes());
  for (const Node& n : graph.nodes()) {
    names[static_cast<size_t>(n.id)] = var_for(n);
    if (n.is_input()) {
      m.params.push_back({names[static_cast<size_t>(n.id)],
                          TensorType{n.out_shape, n.out_dtype}});
      continue;
    }
    Binding b;
    b.var = names[static_cast<size_t>(n.id)];
    b.type = TensorType{n.out_shape, n.out_dtype};
    if (n.is_constant()) {
      b.kind = Binding::Kind::kConstant;
      b.constant.type = b.type;
      b.constant.value = n.value;
    } else {
      b.kind = Binding::Kind::kCall;
      b.call.op = n.op;
      b.call.attrs = n.attrs;
      for (NodeId in : n.inputs) {
        b.call.args.push_back(names[static_cast<size_t>(in)]);
      }
    }
    m.bindings.push_back(std::move(b));
  }

  for (NodeId out : graph.outputs()) {
    m.outputs.push_back(names[static_cast<size_t>(out)]);
  }
  return m;
}

}  // namespace duet::relay
