// Module -> adjacency-list Graph translation (paper §V: "we iterate the
// Relay IR using the visitor pattern and obtain the inputs/outputs of each
// operator to build a graph with adjacency-lists").

#include <map>

#include "common/error.hpp"
#include "relay/relay.hpp"

namespace duet::relay {

Graph to_graph(const Module& module) {
  Graph g(module.name);
  std::map<VarName, NodeId> env;

  for (const Param& p : module.params) {
    DUET_CHECK(env.find(p.var) == env.end()) << "duplicate param %" << p.var;
    env[p.var] = g.add_input(p.type.shape, p.var, p.type.dtype);
  }

  for (const Binding& b : module.bindings) {
    DUET_CHECK(env.find(b.var) == env.end()) << "rebinding %" << b.var;
    if (b.kind == Binding::Kind::kConstant) {
      DUET_CHECK(b.constant.value.defined()) << "constant %" << b.var << " has no value";
      env[b.var] = g.add_constant(b.constant.value, b.var);
      continue;
    }
    std::vector<NodeId> inputs;
    inputs.reserve(b.call.args.size());
    for (const VarName& arg : b.call.args) {
      auto it = env.find(arg);
      DUET_CHECK(it != env.end()) << "use of unbound var %" << arg;
      inputs.push_back(it->second);
    }
    env[b.var] = g.add_node(b.call.op, std::move(inputs), b.call.attrs, b.var);
  }

  for (const VarName& out : module.outputs) {
    auto it = env.find(out);
    DUET_CHECK(it != env.end()) << "unknown output var %" << out;
    g.mark_output(it->second);
  }
  g.validate();
  return g;
}

}  // namespace duet::relay
