#include <sstream>

#include "relay/relay.hpp"

namespace duet::relay {
namespace {

void print_attrs(std::ostringstream& os, const AttrMap& attrs) {
  const std::string s = attrs.to_string();
  if (!s.empty()) os << " {" << s << "}";
}

}  // namespace

std::string print_module(const Module& module) {
  std::ostringstream os;
  os << "def @" << module.name << "(";
  for (size_t i = 0; i < module.params.size(); ++i) {
    if (i) os << ", ";
    os << "%" << module.params[i].var << ": " << module.params[i].type.to_string();
  }
  os << ") {\n";
  for (const Binding& b : module.bindings) {
    os << "  %" << b.var << " = ";
    if (b.kind == Binding::Kind::kConstant) {
      os << "constant " << b.constant.type.to_string();
    } else {
      os << op_name(b.call.op) << "(";
      for (size_t i = 0; i < b.call.args.size(); ++i) {
        if (i) os << ", ";
        os << "%" << b.call.args[i];
      }
      os << ")";
      print_attrs(os, b.call.attrs);
    }
    os << ";\n";
  }
  os << "  (";
  for (size_t i = 0; i < module.outputs.size(); ++i) {
    if (i) os << ", ";
    os << "%" << module.outputs[i];
  }
  os << ")\n}\n";
  return os.str();
}

}  // namespace duet::relay
