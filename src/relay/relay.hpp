#pragma once

// Public facade of the Relay-like front-end: text printing/parsing and the
// visitor-based translation to/from the adjacency-list graph IR (paper §V).

#include "graph/graph.hpp"
#include "relay/expr.hpp"

namespace duet::relay {

// --- printing ----------------------------------------------------------------
std::string print_module(const Module& module);

// --- parsing -----------------------------------------------------------------
// Parses the textual form. Constants are materialized as zero tensors of
// their declared type unless `const_table` provides a value by var name.
Module parse_module(const std::string& text,
                    const std::map<std::string, Tensor>* const_table = nullptr);

// --- translation --------------------------------------------------------------
// Visitor over the module that builds the adjacency-list Graph.
Graph to_graph(const Module& module);
// Inverse: emits a sequence of Relay statements for a graph (e.g. a
// partitioned subgraph, ready to go back through the compiler).
Module from_graph(const Graph& graph);

}  // namespace duet::relay
