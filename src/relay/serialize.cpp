#include "relay/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace duet::relay {
namespace {

constexpr char kMagic[8] = {'D', 'U', 'E', 'T', 'W', 'T', '0', '1'};

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  DUET_CHECK(is.good()) << "truncated weight file";
  return value;
}

}  // namespace

void save_module(const Module& module, const std::string& path) {
  {
    std::ofstream text(path);
    DUET_CHECK(text.good()) << "cannot open " << path;
    text << print_module(module);
    DUET_CHECK(text.good()) << "write failed: " << path;
  }

  std::ofstream bin(path + ".weights", std::ios::binary);
  DUET_CHECK(bin.good()) << "cannot open " << path << ".weights";
  bin.write(kMagic, sizeof(kMagic));
  uint32_t count = 0;
  for (const Binding& b : module.bindings) {
    count += b.kind == Binding::Kind::kConstant;
  }
  write_pod(bin, count);
  for (const Binding& b : module.bindings) {
    if (b.kind != Binding::Kind::kConstant) continue;
    DUET_CHECK(b.constant.value.defined()) << "constant %" << b.var << " unbound";
    const Tensor& t = b.constant.value;
    DUET_CHECK_LE(b.var.size(), 65535u);
    write_pod(bin, static_cast<uint16_t>(b.var.size()));
    bin.write(b.var.data(), static_cast<std::streamsize>(b.var.size()));
    write_pod(bin, static_cast<uint8_t>(t.dtype()));
    write_pod(bin, static_cast<uint8_t>(t.shape().rank()));
    for (size_t d = 0; d < t.shape().rank(); ++d) {
      write_pod(bin, static_cast<int64_t>(t.shape().dim(d)));
    }
    bin.write(reinterpret_cast<const char*>(t.raw_data()),
              static_cast<std::streamsize>(t.byte_size()));
  }
  DUET_CHECK(bin.good()) << "write failed: " << path << ".weights";
}

Module load_module(const std::string& path) {
  std::ifstream text(path);
  DUET_CHECK(text.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << text.rdbuf();

  std::map<std::string, Tensor> table;
  std::ifstream bin(path + ".weights", std::ios::binary);
  if (bin.good()) {
    char magic[8];
    bin.read(magic, sizeof(magic));
    DUET_CHECK(bin.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
        << "bad weight file magic: " << path << ".weights";
    const uint32_t count = read_pod<uint32_t>(bin);
    for (uint32_t i = 0; i < count; ++i) {
      const uint16_t name_len = read_pod<uint16_t>(bin);
      std::string name(name_len, '\0');
      bin.read(name.data(), name_len);
      const auto dtype = static_cast<DType>(read_pod<uint8_t>(bin));
      const uint8_t rank = read_pod<uint8_t>(bin);
      std::vector<int64_t> dims;
      dims.reserve(rank);
      for (uint8_t d = 0; d < rank; ++d) dims.push_back(read_pod<int64_t>(bin));
      Tensor t(Shape(std::move(dims)), dtype);
      bin.read(reinterpret_cast<char*>(t.raw_data()),
               static_cast<std::streamsize>(t.byte_size()));
      DUET_CHECK(bin.good()) << "truncated weight payload for %" << name;
      table.emplace(std::move(name), std::move(t));
    }
  }

  return parse_module(buffer.str(), table.empty() ? nullptr : &table);
}

}  // namespace duet::relay
