#pragma once

// End-to-end latency evaluation of a placement: a deterministic discrete-
// event simulation of the two-device executor. Devices run their assigned
// subgraphs one at a time (paper footnote 2); a subgraph becomes ready when
// all producer subgraphs have finished plus, for cross-device edges and for
// host inputs consumed on the GPU, the PCIe transfer delay. This is the
// `measure_latency` the correction step of Algorithm 1 iterates against.

#include <vector>

#include "profile/profiler.hpp"
#include "sched/placement.hpp"

namespace duet {

struct ScheduleEvent {
  int subgraph = -1;
  DeviceKind device = DeviceKind::kCpu;
  double ready = 0.0;   // all dependencies (incl. transfers) satisfied
  double start = 0.0;   // device began executing
  double finish = 0.0;  // device completed
};

// Intra-device concurrency (paper footnote 2: "it is possible to further
// improve the performance by allowing multiple subgraphs to execute
// concurrently within one device"). lanes[d] > 1 models CUDA streams /
// split CPU core pools; the default (1, 1) is the paper's configuration.
struct LaneConfig {
  int lanes[kNumDeviceKinds] = {1, 1};

  int of(DeviceKind kind) const { return lanes[static_cast<int>(kind)]; }
  static LaneConfig single() { return {}; }
  static LaneConfig gpu_streams(int streams) {
    LaneConfig c;
    c.lanes[static_cast<int>(DeviceKind::kGpu)] = streams;
    return c;
  }
};

class LatencyEvaluator {
 public:
  LatencyEvaluator(const Partition& partition, const Graph& parent,
                   const std::vector<SubgraphProfile>& profiles,
                   const TransferParams& link,
                   const LaneConfig& lanes = LaneConfig::single());

  // Makespan of the placement using mean profiled subgraph times. If
  // `events` is non-null the per-subgraph schedule is written there (sorted
  // by start time) — this is also how Fig. 4-style timelines are produced.
  double evaluate(const Placement& placement,
                  std::vector<ScheduleEvent>* events = nullptr) const;

  // Number of evaluate() calls so far (scheduling-cost ablation).
  int64_t evaluations() const { return evaluations_; }

  const Partition& partition() const { return partition_; }
  const std::vector<SubgraphProfile>& profiles() const { return profiles_; }

  // Bytes flowing from subgraph `from` to subgraph `to` (0 if no edge).
  uint64_t edge_bytes(int from, int to) const;
  // Bytes of parent-graph inputs consumed by subgraph `to` (host-resident;
  // they must cross the link when `to` runs on the GPU).
  uint64_t host_input_bytes(int to) const;

 private:
  const Partition& partition_;
  std::vector<SubgraphProfile> profiles_;
  TransferParams link_;
  LaneConfig lanes_;
  double dispatch_overhead_;

  // Dependency structure, precomputed once.
  struct Dep {
    int producer = -1;
    uint64_t bytes = 0;
  };
  std::vector<std::vector<Dep>> deps_;        // per subgraph
  std::vector<uint64_t> input_bytes_;         // host inputs per subgraph
  std::vector<uint64_t> user_output_bytes_;   // user-facing outputs per subgraph
  mutable int64_t evaluations_ = 0;
};

}  // namespace duet
