#pragma once

// End-to-end latency evaluation of a placement: a deterministic discrete-
// event simulation of the two-device executor. Devices run their assigned
// subgraphs one at a time (paper footnote 2); a subgraph becomes ready when
// all producer subgraphs have finished plus, for cross-device edges and for
// host inputs consumed on the GPU, the PCIe transfer delay. This is the
// `measure_latency` the correction step of Algorithm 1 iterates against —
// schedulers call it thousands of times per search, so evaluate() is the
// optimized fast path (precomputed consumer adjacency, per-device ready
// heaps, a placement-keyed memo) and evaluate_reference() keeps the original
// O(n^2) scan as the executable specification the fast path is tested
// against: both produce bit-identical makespans and event sequences.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "profile/profiler.hpp"
#include "sched/placement.hpp"

namespace duet {

struct ScheduleEvent {
  int subgraph = -1;
  DeviceKind device = DeviceKind::kCpu;
  double ready = 0.0;   // all dependencies (incl. transfers) satisfied
  double start = 0.0;   // device began executing
  double finish = 0.0;  // device completed
};

// Intra-device concurrency (paper footnote 2: "it is possible to further
// improve the performance by allowing multiple subgraphs to execute
// concurrently within one device"). lanes[d] > 1 models CUDA streams /
// split CPU core pools; the default (1, 1) is the paper's configuration.
struct LaneConfig {
  int lanes[kNumDeviceKinds] = {1, 1};

  int of(DeviceKind kind) const { return lanes[static_cast<int>(kind)]; }
  static LaneConfig single() { return {}; }
  static LaneConfig gpu_streams(int streams) {
    LaneConfig c;
    c.lanes[static_cast<int>(DeviceKind::kGpu)] = streams;
    return c;
  }
};

class LatencyEvaluator {
 public:
  LatencyEvaluator(const Partition& partition, const Graph& parent,
                   const std::vector<SubgraphProfile>& profiles,
                   const TransferParams& link,
                   const LaneConfig& lanes = LaneConfig::single());

  // Makespan of the placement using mean profiled subgraph times. If
  // `events` is non-null the per-subgraph schedule is written there (sorted
  // by start time) — this is also how Fig. 4-style timelines are produced.
  // Revisited placements (annealing, correction sweeps) are served from the
  // memo when no events are requested.
  double evaluate(const Placement& placement,
                  std::vector<ScheduleEvent>* events = nullptr) const;

  // The pre-optimization implementation: per-step linear scan over all
  // subgraphs, no memo. Kept public so the equivalence tests and the
  // micro-benchmark can pit the two against each other.
  double evaluate_reference(const Placement& placement,
                            std::vector<ScheduleEvent>* events = nullptr) const;

  // Number of evaluate() calls so far (scheduling-cost ablation). Memo hits
  // count: a served evaluation is still an evaluation.
  int64_t evaluations() const { return evaluations_; }
  // How many of those were answered from the placement memo.
  int64_t memo_hits() const { return memo_hits_; }
  void set_memo_enabled(bool on) { memo_enabled_ = on; }

  const Partition& partition() const { return partition_; }
  const std::vector<SubgraphProfile>& profiles() const { return profiles_; }

  // Bytes flowing from subgraph `from` to subgraph `to` (0 if no edge).
  uint64_t edge_bytes(int from, int to) const;
  // Bytes of parent-graph inputs consumed by subgraph `to` (host-resident;
  // they must cross the link when `to` runs on the GPU).
  uint64_t host_input_bytes(int to) const;

 private:
  // The heap-based list scheduler behind evaluate(); identical event order
  // and arithmetic to evaluate_reference().
  double simulate(const Placement& placement,
                  std::vector<ScheduleEvent>* events) const;

  const Partition& partition_;
  std::vector<SubgraphProfile> profiles_;
  TransferParams link_;
  LaneConfig lanes_;
  double dispatch_overhead_;

  // Dependency structure, precomputed once.
  struct Dep {
    int producer = -1;
    uint64_t bytes = 0;
  };
  struct ConsumerEdge {
    int consumer = -1;
    uint64_t bytes = 0;
  };
  std::vector<std::vector<Dep>> deps_;            // per consumer
  std::vector<std::vector<ConsumerEdge>> consumers_;  // per producer, ascending
  std::vector<int> phase_;                        // tie-break key per subgraph
  std::vector<uint64_t> input_bytes_;             // host inputs per subgraph
  std::vector<uint64_t> user_output_bytes_;       // user-facing outputs per subgraph

  // Placement-keyed makespan memo: a bitset key when every subgraph index
  // fits one uint64 bit, a byte-string key otherwise.
  mutable std::unordered_map<uint64_t, double> memo_small_;
  mutable std::unordered_map<std::string, double> memo_large_;
  bool memo_enabled_ = true;

  mutable int64_t evaluations_ = 0;
  mutable int64_t memo_hits_ = 0;
};

}  // namespace duet
