#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace duet {

ScheduleResult RandomScheduler::schedule(const SchedulingContext& ctx) {
  DUET_CHECK(ctx.rng != nullptr) << "random scheduler needs an Rng";
  const size_t n = ctx.partition->subgraphs.size();
  ScheduleResult r;
  r.placement = Placement(n);
  for (size_t i = 0; i < n; ++i) {
    r.placement.set(static_cast<int>(i),
                    ctx.rng->coin() ? DeviceKind::kCpu : DeviceKind::kGpu);
  }
  const int64_t before = ctx.evaluator->evaluations();
  r.est_latency_s = ctx.evaluator->evaluate(r.placement);
  r.evaluations = ctx.evaluator->evaluations() - before;
  return r;
}

}  // namespace duet
