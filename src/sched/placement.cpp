#include "sched/placement.hpp"

#include <sstream>

#include "common/error.hpp"

namespace duet {

DeviceKind Placement::of(int subgraph_id) const {
  DUET_CHECK(subgraph_id >= 0 && static_cast<size_t>(subgraph_id) < device_.size())
      << "Placement::of: subgraph id " << subgraph_id
      << " outside placement of size " << device_.size();
  return device_[static_cast<size_t>(subgraph_id)];
}

void Placement::set(int subgraph_id, DeviceKind kind) {
  DUET_CHECK(subgraph_id >= 0 && static_cast<size_t>(subgraph_id) < device_.size())
      << "Placement::set: subgraph id " << subgraph_id
      << " outside placement of size " << device_.size();
  device_[static_cast<size_t>(subgraph_id)] = kind;
}

void Placement::flip(int subgraph_id) {
  set(subgraph_id, other_device(of(subgraph_id)));
}

std::vector<int> Placement::on(DeviceKind kind) const {
  std::vector<int> out;
  for (size_t i = 0; i < device_.size(); ++i) {
    if (device_[i] == kind) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool Placement::single_device() const {
  for (size_t i = 1; i < device_.size(); ++i) {
    if (device_[i] != device_[0]) return false;
  }
  return true;
}

std::string Placement::to_string() const {
  std::ostringstream os;
  for (int k = 0; k < kNumDeviceKinds; ++k) {
    const DeviceKind kind = static_cast<DeviceKind>(k);
    if (k) os << " ";
    os << (kind == DeviceKind::kCpu ? "CPU={" : "GPU={");
    bool first = true;
    for (int id : on(kind)) {
      if (!first) os << ",";
      first = false;
      os << id;
    }
    os << "}";
  }
  return os.str();
}

}  // namespace duet
