// Simulated-annealing scheduler: another profiling-based search baseline for
// the Fig. 13 comparison. Starts from the faster-device-per-subgraph
// placement and random-walks single-subgraph flips under a geometric cooling
// schedule, always tracking the best placement seen. Uses far more
// measure_latency evaluations than greedy-correction for the same result —
// quantifying the value of the structured Algorithm 1 search.

#include <cmath>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace duet {

ScheduleResult SimulatedAnnealingScheduler::schedule(const SchedulingContext& ctx) {
  DUET_CHECK(ctx.rng != nullptr) << "annealing needs an Rng";
  const std::vector<SubgraphProfile>& prof = *ctx.profiles;
  const size_t n = ctx.partition->subgraphs.size();
  const int64_t evals_before = ctx.evaluator->evaluations();

  Placement current(n);
  for (size_t i = 0; i < n; ++i) {
    current.set(static_cast<int>(i), prof[i].faster_device());
  }
  double current_cost = ctx.evaluator->evaluate(current);

  ScheduleResult r;
  r.placement = current;
  r.est_latency_s = current_cost;

  // Temperature starts at a fraction of the initial latency so early uphill
  // moves of a few percent are acceptable, then cools geometrically.
  double temperature = current_cost * 0.25;
  const double cooling = 0.97;

  for (int step = 0; step < steps_; ++step) {
    Placement candidate = current;
    candidate.flip(static_cast<int>(ctx.rng->uniform_int(0, static_cast<int64_t>(n) - 1)));
    const double cost = ctx.evaluator->evaluate(candidate);
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        ctx.rng->uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = candidate;
      current_cost = cost;
      if (cost < r.est_latency_s) {
        r.est_latency_s = cost;
        r.placement = candidate;
      }
    }
    temperature *= cooling;
  }

  r.evaluations = ctx.evaluator->evaluations() - evals_before;
  return r;
}

}  // namespace duet
