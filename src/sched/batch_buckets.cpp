#include "sched/batch_buckets.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace duet {

std::vector<BatchBucket> make_batch_buckets(std::vector<int64_t> boundaries,
                                            int64_t max_batch,
                                            size_t max_buckets) {
  DUET_CHECK_GE(max_batch, 1) << "max_batch must be at least 1";
  DUET_CHECK_GE(max_buckets, 1) << "need at least one bucket";

  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  // A bucket starting at b needs b in (1, max_batch]: b == 1 is the table's
  // implicit left edge and anything past max_batch is never served.
  boundaries.erase(
      std::remove_if(boundaries.begin(), boundaries.end(),
                     [&](int64_t b) { return b <= 1 || b > max_batch; }),
      boundaries.end());
  if (boundaries.size() > max_buckets - 1) boundaries.resize(max_buckets - 1);

  std::vector<BatchBucket> buckets;
  int64_t lo = 1;
  for (int64_t b : boundaries) {
    buckets.push_back({lo, b - 1});
    lo = b;
  }
  buckets.push_back({lo, max_batch});
  return buckets;
}

size_t bucket_for(const std::vector<BatchBucket>& buckets, int64_t batch) {
  DUET_CHECK(!buckets.empty()) << "empty bucket table";
  DUET_CHECK_GE(batch, 1) << "batch must be positive";
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].contains(batch)) return i;
  }
  return buckets.size() - 1;  // clamp overshoot to the top interval
}

std::string buckets_to_string(const std::vector<BatchBucket>& buckets) {
  std::string out;
  for (const BatchBucket& b : buckets) {
    out += "[" + std::to_string(b.lo) + "," + std::to_string(b.hi) + "]";
  }
  return out;
}

}  // namespace duet
