// Greedy-correction scheduling (paper Algorithm 1).
//
// Step 1 — place the critical path on the fastest device(s). Sequential-
//   phase subgraphs are on the critical path by construction: each gets its
//   faster device. In each multi-path phase the subgraph with the maximum
//   cost (cost = its faster-device time) joins the critical path and is
//   placed on that device.
// Step 2 — greedily place the remaining multi-path subgraphs, largest
//   first, onto whichever device minimizes the increase of the critical
//   path (evaluated with measure_latency).
// Step 3 — correction: iterative swap refinement (correction.cpp).

#include <algorithm>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace duet {

ScheduleResult GreedyCorrectionScheduler::schedule(const SchedulingContext& ctx) {
  const Partition& part = *ctx.partition;
  const std::vector<SubgraphProfile>& prof = *ctx.profiles;
  const size_t n = part.subgraphs.size();
  const int64_t evals_before = ctx.evaluator->evaluations();

  ScheduleResult r;
  r.placement = Placement(n);

  // --- Step 1: critical path -------------------------------------------------
  std::vector<bool> placed(n, false);
  for (const Phase& phase : part.phases) {
    if (phase.type == PhaseType::kSequential) {
      for (int sid : phase.subgraphs) {
        r.placement.set(sid, prof[static_cast<size_t>(sid)].faster_device());
        placed[static_cast<size_t>(sid)] = true;
      }
    } else {
      int heaviest = -1;
      double heaviest_cost = -1.0;
      for (int sid : phase.subgraphs) {
        const double cost = prof[static_cast<size_t>(sid)].best_time();
        if (cost > heaviest_cost) {
          heaviest_cost = cost;
          heaviest = sid;
        }
      }
      DUET_CHECK_GE(heaviest, 0);
      r.placement.set(heaviest, prof[static_cast<size_t>(heaviest)].faster_device());
      placed[static_cast<size_t>(heaviest)] = true;
    }
  }

  // --- Step 2: greedy fill ----------------------------------------------------
  std::vector<int> remaining;
  for (size_t i = 0; i < n; ++i) {
    if (!placed[i]) remaining.push_back(static_cast<int>(i));
  }
  std::sort(remaining.begin(), remaining.end(), [&](int a, int b) {
    return prof[static_cast<size_t>(a)].best_time() >
           prof[static_cast<size_t>(b)].best_time();
  });
  // Unplaced subgraphs start on their faster device so early evaluations see
  // a sane baseline; each is then committed in sorted order.
  for (int sid : remaining) {
    r.placement.set(sid, prof[static_cast<size_t>(sid)].faster_device());
  }
  for (int sid : remaining) {
    double best_latency = 0.0;
    DeviceKind best_kind = DeviceKind::kCpu;
    for (int k = 0; k < kNumDeviceKinds; ++k) {
      const DeviceKind kind = static_cast<DeviceKind>(k);
      r.placement.set(sid, kind);
      const double t = ctx.evaluator->evaluate(r.placement);
      if (k == 0 || t < best_latency) {
        best_latency = t;
        best_kind = kind;
      }
    }
    r.placement.set(sid, best_kind);
  }

  r.est_latency_s = ctx.evaluator->evaluate(r.placement);

  // --- Step 3: correction -----------------------------------------------------
  if (enable_correction_) {
    r.correction_rounds = correct_placement(ctx, r.placement, r.est_latency_s);
  }
  r.evaluations = ctx.evaluator->evaluations() - evals_before;
  return r;
}

}  // namespace duet
