#pragma once

// A Placement maps every subgraph of a Partition to a device. This is the
// object the scheduling algorithms search over and the executor consumes.

#include <string>
#include <vector>

#include "compiler/cost_model.hpp"
#include "partition/partitioner.hpp"

namespace duet {

class Placement {
 public:
  Placement() = default;
  explicit Placement(size_t num_subgraphs, DeviceKind fill = DeviceKind::kCpu)
      : device_(num_subgraphs, fill) {}

  size_t size() const { return device_.size(); }
  // All three throw duet::Error on a subgraph id outside [0, size()).
  DeviceKind of(int subgraph_id) const;
  void set(int subgraph_id, DeviceKind kind);
  void flip(int subgraph_id);

  bool operator==(const Placement& other) const { return device_ == other.device_; }
  bool operator!=(const Placement& other) const { return !(*this == other); }

  // Subgraph ids on `kind`, ascending.
  std::vector<int> on(DeviceKind kind) const;
  // True if every subgraph is on the same device.
  bool single_device() const;

  // e.g. "GPU={1,3,6} CPU={2,4,5}" (paper Fig. 8 notation).
  std::string to_string() const;

 private:
  std::vector<DeviceKind> device_;
};

}  // namespace duet
