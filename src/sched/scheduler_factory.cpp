#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace duet {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "random") return std::make_unique<RandomScheduler>();
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "random+correction") {
    return std::make_unique<RandomCorrectionScheduler>();
  }
  if (name == "greedy-correction") {
    return std::make_unique<GreedyCorrectionScheduler>(true);
  }
  if (name == "greedy-only") {
    return std::make_unique<GreedyCorrectionScheduler>(false);
  }
  if (name == "exhaustive") return std::make_unique<ExhaustiveScheduler>();
  if (name == "analytic-dp") return std::make_unique<AnalyticDpScheduler>();
  if (name == "annealing") return std::make_unique<SimulatedAnnealingScheduler>();
  if (name == "cpu-only") {
    return std::make_unique<SingleDeviceScheduler>(DeviceKind::kCpu);
  }
  if (name == "gpu-only") {
    return std::make_unique<SingleDeviceScheduler>(DeviceKind::kGpu);
  }
  DUET_THROW("unknown scheduler: " << name);
}

}  // namespace duet
