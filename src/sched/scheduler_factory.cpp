#include <algorithm>

#include "common/error.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {
namespace {

// Every scheduler handed out by the factory reports through telemetry: one
// span per schedule() call (named after the algorithm) plus global counters
// for candidate evaluations, correction rounds, and runs. The wrapper keeps
// name() transparent so callers and reports see the inner algorithm.
class InstrumentedScheduler : public Scheduler {
 public:
  explicit InstrumentedScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }

  ScheduleResult schedule(const SchedulingContext& ctx) override {
    telemetry::ScopedSpan span(
        telemetry::enabled() ? "schedule:" + inner_->name() : std::string(),
        "sched");
    ScheduleResult result = inner_->schedule(ctx);
    if (telemetry::enabled()) {
      telemetry::counter("sched.runs").add(1);
      telemetry::counter("sched.candidate_evaluations")
          .add(static_cast<uint64_t>(std::max<int64_t>(0, result.evaluations)));
      telemetry::counter("sched.correction_rounds")
          .add(static_cast<uint64_t>(std::max(0, result.correction_rounds)));
    }
    return result;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
};

std::unique_ptr<Scheduler> make_inner(const std::string& name) {
  if (name == "random") return std::make_unique<RandomScheduler>();
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  if (name == "random+correction") {
    return std::make_unique<RandomCorrectionScheduler>();
  }
  if (name == "greedy-correction") {
    return std::make_unique<GreedyCorrectionScheduler>(true);
  }
  if (name == "greedy-only") {
    return std::make_unique<GreedyCorrectionScheduler>(false);
  }
  if (name == "exhaustive") return std::make_unique<ExhaustiveScheduler>();
  if (name == "analytic-dp") return std::make_unique<AnalyticDpScheduler>();
  if (name == "annealing") return std::make_unique<SimulatedAnnealingScheduler>();
  if (name == "cpu-only") {
    return std::make_unique<SingleDeviceScheduler>(DeviceKind::kCpu);
  }
  if (name == "gpu-only") {
    return std::make_unique<SingleDeviceScheduler>(DeviceKind::kGpu);
  }
  DUET_THROW("unknown scheduler: " << name);
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  return std::make_unique<InstrumentedScheduler>(make_inner(name));
}

}  // namespace duet
