#pragma once

// Batch-bucket intervals for shape-bucketed plan selection (ISSUE 10). The
// symbolic crossover certificates (analysis/symbolic/crossover.hpp) name the
// batch sizes where a subgraph's CPU-vs-GPU preference flips; between two
// flips the preferred placement is constant, so one compiled plan per
// interval suffices. This file is the pure interval arithmetic: turn a
// sorted boundary list into a covering bucket table over [1, max_batch] and
// map a concrete batch to its bucket. The serving registry
// (serve/model_registry.hpp) attaches a placement to each bucket; the
// schedulers themselves stay batch-oblivious.

#include <cstdint>
#include <string>
#include <vector>

namespace duet {

// One contiguous batch interval [lo, hi] served by a single placement. The
// representative batch — where the scheduler actually ran — is `lo`: a
// boundary at B is the first batch of the new preference, so scheduling at
// the interval's left edge evaluates exactly the certified flip point.
struct BatchBucket {
  int64_t lo = 1;
  int64_t hi = 1;

  int64_t rep() const { return lo; }
  bool contains(int64_t batch) const { return batch >= lo && batch <= hi; }
};

// Builds the covering bucket table for [1, max_batch]: every boundary b in
// (1, max_batch] starts a new bucket at b. Boundaries outside that range are
// dropped, duplicates collapse, and when more than `max_buckets` intervals
// would result, the smallest boundaries win (low-batch flips separate the
// latency-critical single-request regime; the tail merges into one wide
// bucket). Always returns at least the single bucket [1, max_batch].
std::vector<BatchBucket> make_batch_buckets(std::vector<int64_t> boundaries,
                                            int64_t max_batch,
                                            size_t max_buckets = 4);

// Index into `buckets` of the interval containing `batch`. Batches above
// the table's top interval clamp to it (the serving runtime never coalesces
// past max_batch, but a defensive caller should not crash on an overshoot);
// batches below 1 are a caller bug and throw.
size_t bucket_for(const std::vector<BatchBucket>& buckets, int64_t batch);

// "[1,3][4,32]" — for reports and logs.
std::string buckets_to_string(const std::vector<BatchBucket>& buckets);

}  // namespace duet
