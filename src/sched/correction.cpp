// The correction step (paper §IV-C Step 3, Algorithm 1): Kernighan-Lin-style
// iterative refinement, but the objective is measured end-to-end latency
// rather than edge cut. For each multi-path phase: repeatedly find the
// swap-of-a-pair (or movement of a single subgraph — "one of the subgraphs
// could be empty") that maximally reduces measure_latency; apply it; stop
// after a full round yields no gain.

#include "common/error.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {
namespace {

// Best improving swap/move within one phase. Returns the gain (>= 0).
double best_phase_move(const SchedulingContext& ctx, const Phase& phase,
                       Placement& placement, double current) {
  std::vector<int> cpu_side;
  std::vector<int> gpu_side;
  for (int sid : phase.subgraphs) {
    (placement.of(sid) == DeviceKind::kCpu ? cpu_side : gpu_side).push_back(sid);
  }

  double best_latency = current;
  int best_i = -1;  // from CPU (or -1 = none)
  int best_j = -1;  // from GPU (or -1 = none)

  const auto try_candidate = [&](int i, int j) {
    Placement trial = placement;
    if (i >= 0) trial.set(i, DeviceKind::kGpu);
    if (j >= 0) trial.set(j, DeviceKind::kCpu);
    const double t = ctx.evaluator->evaluate(trial);
    if (t < best_latency) {
      best_latency = t;
      best_i = i;
      best_j = j;
    }
  };

  for (int i : cpu_side) try_candidate(i, -1);         // move CPU -> GPU
  for (int j : gpu_side) try_candidate(-1, j);         // move GPU -> CPU
  for (int i : cpu_side) {
    for (int j : gpu_side) try_candidate(i, j);        // swap the pair
  }

  if (best_latency < current) {
    if (best_i >= 0) placement.set(best_i, DeviceKind::kGpu);
    if (best_j >= 0) placement.set(best_j, DeviceKind::kCpu);
    return current - best_latency;
  }
  return 0.0;
}

}  // namespace

int correct_placement(const SchedulingContext& ctx, Placement& placement,
                      double& latency) {
  DUET_CHECK(ctx.partition != nullptr && ctx.evaluator != nullptr);
  int rounds = 0;
  // The paper runs the refinement per multi-path phase ("we perform the
  // third step for each multi-path layer").
  for (const Phase& phase : ctx.partition->phases) {
    if (phase.type != PhaseType::kMultiPath) continue;
    for (;;) {
      // One span per correction round: how long each refinement sweep of
      // this phase took and how many rounds ran before convergence.
      telemetry::ScopedSpan round_span(
          telemetry::enabled() ? "correction-round:" + std::to_string(rounds)
                               : std::string(),
          "sched",
          telemetry::enabled() ? "phase " + std::to_string(phase.index)
                               : std::string());
      const double gain = best_phase_move(ctx, phase, placement, latency);
      ++rounds;
      if (gain <= 0.0) break;
      latency -= gain;
    }
  }
  // Final sweep across sequential phases too: moving a sequential subgraph
  // is a "movement of an individual subgraph" in Algorithm 1's terms and
  // costs little to check.
  for (const Phase& phase : ctx.partition->phases) {
    if (phase.type != PhaseType::kSequential) continue;
    for (int sid : phase.subgraphs) {
      Placement trial = placement;
      trial.flip(sid);
      const double t = ctx.evaluator->evaluate(trial);
      if (t < latency) {
        placement = trial;
        latency = t;
      }
    }
  }
  return rounds;
}

ScheduleResult RandomCorrectionScheduler::schedule(const SchedulingContext& ctx) {
  ScheduleResult r = RandomScheduler().schedule(ctx);
  const int64_t before = ctx.evaluator->evaluations();
  r.correction_rounds = correct_placement(ctx, r.placement, r.est_latency_s);
  r.evaluations += ctx.evaluator->evaluations() - before;
  return r;
}

}  // namespace duet
