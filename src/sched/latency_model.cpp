#include "sched/latency_model.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <tuple>

#include "common/error.hpp"
#include "device/calibration.hpp"
#include "graph/shape_inference.hpp"
#include "telemetry/metrics.hpp"

namespace duet {

LatencyEvaluator::LatencyEvaluator(const Partition& partition, const Graph& parent,
                                   const std::vector<SubgraphProfile>& profiles,
                                   const TransferParams& link,
                                   const LaneConfig& lanes)
    : partition_(partition),
      profiles_(profiles),
      link_(link),
      lanes_(lanes),
      dispatch_overhead_(executor_dispatch_overhead()) {
  DUET_CHECK_GE(lanes_.of(DeviceKind::kCpu), 1);
  DUET_CHECK_GE(lanes_.of(DeviceKind::kGpu), 1);
  DUET_CHECK_EQ(profiles_.size(), partition_.subgraphs.size());
  const size_t n = partition_.subgraphs.size();
  deps_.resize(n);
  input_bytes_.assign(n, 0);
  phase_.resize(n);

  for (const Subgraph& sub : partition_.subgraphs) {
    phase_[static_cast<size_t>(sub.id)] = sub.phase;
    // Aggregate boundary inputs by producer subgraph.
    std::map<int, uint64_t> by_producer;
    for (const Subgraph::BoundaryInput& b : sub.boundary_inputs) {
      const Node& p = parent.node(b.parent_producer);
      const uint64_t bytes = node_output_bytes(p);
      if (p.is_input()) {
        input_bytes_[static_cast<size_t>(sub.id)] += bytes;
        continue;
      }
      const int producer = partition_.producer_subgraph(b.parent_producer);
      DUET_CHECK_GE(producer, 0) << "boundary producer not owned by any subgraph";
      by_producer[producer] += bytes;
    }
    for (const auto& [producer, bytes] : by_producer) {
      deps_[static_cast<size_t>(sub.id)].push_back({producer, bytes});
    }
  }

  // Reverse adjacency: for each producer, who it releases. Built in
  // ascending consumer order so the fast path applies the same sequence of
  // ready[j] = max(...) updates as the reference's ascending-j sweep.
  consumers_.resize(n);
  for (size_t j = 0; j < n; ++j) {
    for (const Dep& d : deps_[j]) {
      consumers_[static_cast<size_t>(d.producer)].push_back(
          {static_cast<int>(j), d.bytes});
    }
  }

  // Bytes each subgraph returns to the user (parent graph outputs it owns).
  user_output_bytes_.assign(n, 0);
  for (NodeId out : parent.outputs()) {
    const int owner = partition_.producer_subgraph(out);
    DUET_CHECK_GE(owner, 0) << "parent output not owned by any subgraph";
    user_output_bytes_[static_cast<size_t>(owner)] +=
        node_output_bytes(parent.node(out));
  }
}

uint64_t LatencyEvaluator::edge_bytes(int from, int to) const {
  for (const Dep& d : deps_[static_cast<size_t>(to)]) {
    if (d.producer == from) return d.bytes;
  }
  return 0;
}

uint64_t LatencyEvaluator::host_input_bytes(int to) const {
  return input_bytes_[static_cast<size_t>(to)];
}

double LatencyEvaluator::evaluate(const Placement& placement,
                                  std::vector<ScheduleEvent>* events) const {
  ++evaluations_;
  // Global candidate-evaluation count across every scheduler instance (the
  // per-instance evaluations_ feeds the scheduling-cost ablation).
  static telemetry::Counter& evals = telemetry::counter("sched.evaluations");
  evals.add(1);
  const size_t n = partition_.subgraphs.size();
  DUET_CHECK_EQ(placement.size(), n);

  // Memo lookup: a placement fully determines the (deterministic) schedule,
  // so revisited candidates — annealing flips, correction sweeps — cost one
  // hash probe. Event requests always run the simulation.
  const bool memoize = memo_enabled_ && events == nullptr;
  uint64_t small_key = 0;
  std::string large_key;
  if (memoize) {
    static telemetry::Counter& memo_hits = telemetry::counter("sched.eval.memo_hits");
    if (n <= 64) {
      for (size_t i = 0; i < n; ++i) {
        if (placement.of(static_cast<int>(i)) == DeviceKind::kGpu) {
          small_key |= 1ull << i;
        }
      }
      auto it = memo_small_.find(small_key);
      if (it != memo_small_.end()) {
        ++memo_hits_;
        memo_hits.add(1);
        return it->second;
      }
    } else {
      // Past 64 subgraphs the placement no longer fits the bitset key and the
      // memo degrades to string keys. Count every such lookup so the cliff is
      // visible in telemetry (the memo-bitset-fallback lint rule points here).
      static telemetry::Counter& memo_large =
          telemetry::counter("sched.eval.memo_large_key");
      memo_large.add(1);
      large_key.resize(n);
      for (size_t i = 0; i < n; ++i) {
        large_key[i] =
            placement.of(static_cast<int>(i)) == DeviceKind::kGpu ? '1' : '0';
      }
      auto it = memo_large_.find(large_key);
      if (it != memo_large_.end()) {
        ++memo_hits_;
        memo_hits.add(1);
        return it->second;
      }
    }
  }

  const double makespan = simulate(placement, events);
  if (memoize) {
    if (n <= 64) {
      memo_small_.emplace(small_key, makespan);
    } else {
      memo_large_.emplace(std::move(large_key), makespan);
    }
  }
  return makespan;
}

double LatencyEvaluator::simulate(const Placement& placement,
                                  std::vector<ScheduleEvent>* events) const {
  const size_t n = partition_.subgraphs.size();

  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  std::vector<int> pending(n, 0);
  std::vector<int> dev_of(n, 0);

  // One free-time entry per execution lane (footnote-2 streams); the top is
  // the device's earliest lane. Lane times only grow, which is what makes
  // the lazy deferred→eager migration below sound.
  using MinHeapD = std::priority_queue<double, std::vector<double>, std::greater<>>;
  MinHeapD lane_free[kNumDeviceKinds];
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    for (int l = 0; l < lanes_.lanes[d]; ++l) lane_free[d].push(0.0);
  }

  // Two ready-queues per device. An "eager" item has ready <= the device's
  // earliest lane: its feasible start is the lane time, so ordering within
  // the queue is purely (phase, id). A "deferred" item has ready > lane: its
  // feasible start is its own ready, so it is keyed (ready, phase, id) and
  // migrates to eager once the lane time catches up. The lexicographic
  // minimum over both devices' queue heads is exactly the reference's
  // min-(start, phase, id) scan.
  using EagerKey = std::pair<int, int>;                    // (phase, id)
  using DeferredKey = std::tuple<double, int, int>;        // (ready, phase, id)
  std::priority_queue<EagerKey, std::vector<EagerKey>, std::greater<>>
      eager[kNumDeviceKinds];
  std::priority_queue<DeferredKey, std::vector<DeferredKey>, std::greater<>>
      deferred[kNumDeviceKinds];

  const auto enqueue = [&](int i) {
    const int d = dev_of[static_cast<size_t>(i)];
    const size_t ui = static_cast<size_t>(i);
    if (ready[ui] <= lane_free[d].top()) {
      eager[d].push({phase_[ui], i});
    } else {
      deferred[d].push({ready[ui], phase_[ui], i});
    }
  };

  for (size_t i = 0; i < n; ++i) {
    pending[i] = static_cast<int>(deps_[i].size());
    const DeviceKind dev = placement.of(static_cast<int>(i));
    dev_of[i] = static_cast<int>(dev);
    // Host inputs must reach the GPU over the link before it can start.
    if (dev == DeviceKind::kGpu && input_bytes_[i] > 0) {
      ready[i] = transfer_time_seconds(input_bytes_[i], link_);
    }
    if (pending[i] == 0) enqueue(static_cast<int>(i));
  }

  std::vector<ScheduleEvent> schedule;
  if (events != nullptr) schedule.reserve(n);

  size_t completed = 0;
  while (completed < n) {
    int best = -1;
    int best_dev = -1;
    int best_phase = 0;
    bool best_eager = false;
    double best_start = std::numeric_limits<double>::infinity();
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      // Lane time grew since these were deferred? They are eager now.
      while (!deferred[d].empty() &&
             std::get<0>(deferred[d].top()) <= lane_free[d].top()) {
        const DeferredKey k = deferred[d].top();
        deferred[d].pop();
        eager[d].push({std::get<1>(k), std::get<2>(k)});
      }
      double start = 0.0;
      int phase = 0;
      int id = -1;
      bool from_eager = false;
      if (!eager[d].empty()) {
        start = lane_free[d].top();
        phase = eager[d].top().first;
        id = eager[d].top().second;
        from_eager = true;
      } else if (!deferred[d].empty()) {
        std::tie(start, phase, id) = deferred[d].top();
      } else {
        continue;
      }
      if (best < 0 || start < best_start ||
          (start == best_start &&
           (phase < best_phase || (phase == best_phase && id < best)))) {
        best = id;
        best_dev = d;
        best_phase = phase;
        best_start = start;
        best_eager = from_eager;
      }
    }
    DUET_CHECK_GE(best, 0) << "deadlock: no runnable subgraph (cyclic partition?)";
    if (best_eager) {
      eager[best_dev].pop();
    } else {
      deferred[best_dev].pop();
    }

    const size_t i = static_cast<size_t>(best);
    const DeviceKind dev = static_cast<DeviceKind>(best_dev);
    const double exec = profiles_[i].time_on(dev) + dispatch_overhead_;
    const double end = best_start + exec;
    finish[i] = end;
    lane_free[best_dev].pop();
    lane_free[best_dev].push(end);
    ++completed;
    if (events != nullptr) schedule.push_back({best, dev, ready[i], best_start, end});

    // Release consumers (ascending order, matching the reference sweep).
    for (const ConsumerEdge& e : consumers_[i]) {
      const size_t j = static_cast<size_t>(e.consumer);
      double avail = end;
      if (dev_of[j] != best_dev) {
        avail += transfer_time_seconds(e.bytes, link_);
      }
      ready[j] = std::max(ready[j], avail);
      if (--pending[j] == 0) enqueue(e.consumer);
    }
  }

  double makespan = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double end = finish[i];
    // User-facing results produced on the GPU come back to the host.
    if (user_output_bytes_[i] > 0 &&
        placement.of(static_cast<int>(i)) == DeviceKind::kGpu) {
      end += transfer_time_seconds(user_output_bytes_[i], link_);
    }
    makespan = std::max(makespan, end);
  }

  if (events != nullptr) {
    std::sort(schedule.begin(), schedule.end(),
              [](const ScheduleEvent& a, const ScheduleEvent& b) {
                return a.start < b.start;
              });
    *events = std::move(schedule);
  }
  return makespan;
}

double LatencyEvaluator::evaluate_reference(const Placement& placement,
                                            std::vector<ScheduleEvent>* events) const {
  ++evaluations_;
  static telemetry::Counter& evals = telemetry::counter("sched.evaluations");
  evals.add(1);
  const size_t n = partition_.subgraphs.size();
  DUET_CHECK_EQ(placement.size(), n);

  std::vector<double> ready(n, 0.0);
  std::vector<double> finish(n, 0.0);
  std::vector<int> pending(n, 0);
  std::vector<bool> done(n, false);
  std::vector<bool> dep_ready(n, false);

  for (size_t i = 0; i < n; ++i) {
    pending[i] = static_cast<int>(deps_[i].size());
    const DeviceKind dev = placement.of(static_cast<int>(i));
    // Host inputs must reach the GPU over the link before it can start.
    if (dev == DeviceKind::kGpu && input_bytes_[i] > 0) {
      ready[i] = transfer_time_seconds(input_bytes_[i], link_);
    }
    dep_ready[i] = pending[i] == 0;
  }

  // One free-time entry per execution lane (footnote-2 streams).
  std::vector<std::vector<double>> lane_free(kNumDeviceKinds);
  for (int d = 0; d < kNumDeviceKinds; ++d) {
    lane_free[d].assign(static_cast<size_t>(lanes_.lanes[d]), 0.0);
  }
  const auto earliest_lane = [&](DeviceKind dev) {
    size_t best_lane = 0;
    const auto& lanes = lane_free[static_cast<int>(dev)];
    for (size_t l = 1; l < lanes.size(); ++l) {
      if (lanes[l] < lanes[best_lane]) best_lane = l;
    }
    return best_lane;
  };

  std::vector<ScheduleEvent> schedule;
  schedule.reserve(n);

  size_t completed = 0;
  while (completed < n) {
    // Pick the runnable subgraph with the earliest feasible start; break
    // ties by phase then id (the executor's FIFO order).
    int best = -1;
    double best_start = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || !dep_ready[i]) continue;
      const DeviceKind dev = placement.of(static_cast<int>(i));
      const double start =
          std::max(ready[i], lane_free[static_cast<int>(dev)][earliest_lane(dev)]);
      const bool better =
          start < best_start ||
          (start == best_start && best >= 0 &&
           (partition_.subgraphs[i].phase < partition_.subgraphs[static_cast<size_t>(best)].phase ||
            (partition_.subgraphs[i].phase ==
                 partition_.subgraphs[static_cast<size_t>(best)].phase &&
             static_cast<int>(i) < best)));
      if (better || best < 0) {
        best = static_cast<int>(i);
        best_start = start;
      }
    }
    DUET_CHECK_GE(best, 0) << "deadlock: no runnable subgraph (cyclic partition?)";

    const size_t i = static_cast<size_t>(best);
    const DeviceKind dev = placement.of(best);
    const double exec = profiles_[i].time_on(dev) + dispatch_overhead_;
    const double end = best_start + exec;
    finish[i] = end;
    done[i] = true;
    lane_free[static_cast<int>(dev)][earliest_lane(dev)] = end;
    ++completed;
    schedule.push_back({best, dev, ready[i], best_start, end});

    // Release consumers.
    for (size_t j = 0; j < n; ++j) {
      if (done[j] || dep_ready[j]) continue;
      for (const Dep& d : deps_[j]) {
        if (d.producer != best) continue;
        double avail = end;
        if (placement.of(static_cast<int>(j)) != dev) {
          avail += transfer_time_seconds(d.bytes, link_);
        }
        ready[j] = std::max(ready[j], avail);
        if (--pending[j] == 0) dep_ready[j] = true;
      }
    }
  }

  double makespan = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double end = finish[i];
    // User-facing results produced on the GPU come back to the host.
    if (user_output_bytes_[i] > 0 &&
        placement.of(static_cast<int>(i)) == DeviceKind::kGpu) {
      end += transfer_time_seconds(user_output_bytes_[i], link_);
    }
    makespan = std::max(makespan, end);
  }

  if (events != nullptr) {
    std::sort(schedule.begin(), schedule.end(),
              [](const ScheduleEvent& a, const ScheduleEvent& b) {
                return a.start < b.start;
              });
    *events = std::move(schedule);
  }
  return makespan;
}

}  // namespace duet
