// Analytic stage-wise placement (the alternative the paper discusses in
// §IV-C: "it is possible to analytically decide the placement strategy based
// on the profiled subgraph computation and communication cost, similar to
// the dynamic programming based method [24]").
//
// The algorithm walks phases in order and, for each phase, enumerates every
// branch->device assignment (2^k, k = branches in the phase), scoring it
// *analytically*: per-device serial load, plus transfer terms computed from
// profiled boundary byte counts and the link model — no measure_latency
// calls. Earlier phases are frozen when a later phase is scored (stage-wise
// DP with the boundary placement as the carried state).
//
// The paper prefers greedy-correction because analytic communication terms
// carry estimation error; keeping this scheduler around lets the ablation
// quantify that argument (it is near — but not always at — the optimum).

#include <limits>

#include "common/error.hpp"
#include "device/calibration.hpp"
#include "sched/scheduler.hpp"

namespace duet {

ScheduleResult AnalyticDpScheduler::schedule(const SchedulingContext& ctx) {
  const Partition& part = *ctx.partition;
  const std::vector<SubgraphProfile>& prof = *ctx.profiles;
  const LatencyEvaluator& eval = *ctx.evaluator;
  const size_t n = part.subgraphs.size();
  const TransferParams link = pcie3_x16();
  const double dispatch = executor_dispatch_overhead();

  ScheduleResult r;
  r.placement = Placement(n);

  // Analytic cost of running subgraph `sid` on `dev`, given already-frozen
  // producer placements: compute + dispatch + incoming transfers.
  const auto analytic_cost = [&](int sid, DeviceKind dev) {
    double t = prof[static_cast<size_t>(sid)].time_on(dev) + dispatch;
    if (dev == DeviceKind::kGpu && eval.host_input_bytes(sid) > 0) {
      t += transfer_time_seconds(eval.host_input_bytes(sid), link);
    }
    for (size_t p = 0; p < n; ++p) {
      const uint64_t bytes = eval.edge_bytes(static_cast<int>(p), sid);
      if (bytes == 0) continue;
      if (part.subgraph(static_cast<int>(p)).phase >=
          part.subgraph(sid).phase) {
        continue;  // same-phase edges cannot exist; later-phase never
      }
      if (r.placement.of(static_cast<int>(p)) != dev) {
        t += transfer_time_seconds(bytes, link);
      }
    }
    return t;
  };

  for (const Phase& phase : part.phases) {
    const size_t k = phase.subgraphs.size();
    DUET_CHECK_LE(k, 20u) << "phase too wide for exact stage enumeration";
    double best_stage = std::numeric_limits<double>::infinity();
    uint64_t best_mask = 0;
    for (uint64_t mask = 0; mask < (1ull << k); ++mask) {
      // Stage makespan: per-device serial load of this phase's subgraphs.
      double load[kNumDeviceKinds] = {0.0, 0.0};
      for (size_t i = 0; i < k; ++i) {
        const DeviceKind dev =
            (mask >> i) & 1 ? DeviceKind::kGpu : DeviceKind::kCpu;
        load[static_cast<int>(dev)] += analytic_cost(phase.subgraphs[i], dev);
      }
      const double stage = std::max(load[0], load[1]);
      if (stage < best_stage) {
        best_stage = stage;
        best_mask = mask;
      }
    }
    for (size_t i = 0; i < k; ++i) {
      r.placement.set(phase.subgraphs[i], (best_mask >> i) & 1
                                              ? DeviceKind::kGpu
                                              : DeviceKind::kCpu);
    }
  }

  // Report the *measured* latency of the analytic placement (one evaluation,
  // for comparability; the search itself used none).
  const int64_t before = ctx.evaluator->evaluations();
  r.est_latency_s = ctx.evaluator->evaluate(r.placement);
  r.evaluations = ctx.evaluator->evaluations() - before;
  return r;
}

}  // namespace duet
