#pragma once

// Subgraph scheduling algorithms (paper §IV-C and §VI-C):
//   random            — each subgraph to a random device
//   round-robin       — alternate CPU / GPU by subgraph order
//   random+correction — random init, then the iterative correction step
//   greedy-correction — Algorithm 1 (critical path, greedy fill, correction)
//   exhaustive        — all 2^N placements (the "Ideal" bar of Fig. 13)
//   analytic-dp       — stage-wise analytic placement (§IV-C's alternative)
//   annealing         — simulated annealing over single flips
//   cpu-only/gpu-only — single-device baselines

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "sched/latency_model.hpp"

namespace duet {

struct SchedulingContext {
  const Partition* partition = nullptr;
  const std::vector<SubgraphProfile>* profiles = nullptr;
  LatencyEvaluator* evaluator = nullptr;
  Rng* rng = nullptr;  // only stochastic schedulers need it
};

struct ScheduleResult {
  Placement placement;
  double est_latency_s = 0.0;
  int correction_rounds = 0;    // swap rounds performed (0 if no correction)
  int64_t evaluations = 0;      // measure_latency calls consumed
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual ScheduleResult schedule(const SchedulingContext& ctx) = 0;
};

class RandomScheduler : public Scheduler {
 public:
  std::string name() const override { return "random"; }
  ScheduleResult schedule(const SchedulingContext& ctx) override;
};

class RoundRobinScheduler : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  ScheduleResult schedule(const SchedulingContext& ctx) override;
};

class RandomCorrectionScheduler : public Scheduler {
 public:
  std::string name() const override { return "random+correction"; }
  ScheduleResult schedule(const SchedulingContext& ctx) override;
};

class GreedyCorrectionScheduler : public Scheduler {
 public:
  // `enable_correction=false` gives the greedy-only ablation.
  explicit GreedyCorrectionScheduler(bool enable_correction = true)
      : enable_correction_(enable_correction) {}
  std::string name() const override {
    return enable_correction_ ? "greedy-correction" : "greedy-only";
  }
  ScheduleResult schedule(const SchedulingContext& ctx) override;

 private:
  bool enable_correction_;
};

class ExhaustiveScheduler : public Scheduler {
 public:
  // Refuses above this many subgraphs (2^N blowup), matching the paper's
  // remark that enumeration "may not always be feasible".
  static constexpr int kMaxSubgraphs = 20;
  std::string name() const override { return "exhaustive"; }
  ScheduleResult schedule(const SchedulingContext& ctx) override;
};

// Simulated annealing over single-subgraph flips — an unstructured search
// baseline that needs many more evaluations than Algorithm 1.
class SimulatedAnnealingScheduler : public Scheduler {
 public:
  explicit SimulatedAnnealingScheduler(int steps = 200) : steps_(steps) {}
  std::string name() const override { return "annealing"; }
  ScheduleResult schedule(const SchedulingContext& ctx) override;

 private:
  int steps_;
};

// Analytic stage-wise DP (no measure_latency in the search loop); the
// paper's discussed alternative to profiling-based correction.
class AnalyticDpScheduler : public Scheduler {
 public:
  std::string name() const override { return "analytic-dp"; }
  ScheduleResult schedule(const SchedulingContext& ctx) override;
};

class SingleDeviceScheduler : public Scheduler {
 public:
  explicit SingleDeviceScheduler(DeviceKind kind) : kind_(kind) {}
  std::string name() const override {
    return kind_ == DeviceKind::kCpu ? "cpu-only" : "gpu-only";
  }
  ScheduleResult schedule(const SchedulingContext& ctx) override;

 private:
  DeviceKind kind_;
};

// The correction step (Algorithm 1, Step 3), shared by the correction-based
// schedulers: for each multi-path phase, greedily apply the best
// swap-or-move while it reduces measured latency. Returns rounds performed
// and updates `placement` / `latency` in place.
int correct_placement(const SchedulingContext& ctx, Placement& placement,
                      double& latency);

// Name-based factory: "random", "round-robin", "random+correction",
// "greedy-correction", "greedy-only", "exhaustive", "analytic-dp",
// "annealing", "cpu-only", "gpu-only".
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace duet
