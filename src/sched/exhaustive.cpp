// Exhaustive enumeration of all 2^N placements — the "Ideal" reference of
// the paper's Fig. 13, used to verify that greedy-correction finds the
// optimal schedule when N is small enough to enumerate.

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace duet {

ScheduleResult ExhaustiveScheduler::schedule(const SchedulingContext& ctx) {
  const size_t n = ctx.partition->subgraphs.size();
  if (static_cast<int>(n) > kMaxSubgraphs) {
    DUET_THROW("exhaustive scheduler: " << n << " subgraphs would enumerate 2^"
               << n << " placements (cap is " << kMaxSubgraphs
               << "); use --scheduler greedy-correction or annealing, or "
                  "coarsen the partition (e.g. --nested with a larger bound)");
  }
  const int64_t evals_before = ctx.evaluator->evaluations();

  ScheduleResult r;
  r.placement = Placement(n);
  r.est_latency_s = ctx.evaluator->evaluate(r.placement);

  Placement trial(n);
  const uint64_t total = 1ull << n;
  for (uint64_t mask = 1; mask < total; ++mask) {
    for (size_t i = 0; i < n; ++i) {
      trial.set(static_cast<int>(i), (mask >> i) & 1 ? DeviceKind::kGpu
                                                     : DeviceKind::kCpu);
    }
    const double t = ctx.evaluator->evaluate(trial);
    if (t < r.est_latency_s) {
      r.est_latency_s = t;
      r.placement = trial;
    }
  }
  r.evaluations = ctx.evaluator->evaluations() - evals_before;
  return r;
}

ScheduleResult SingleDeviceScheduler::schedule(const SchedulingContext& ctx) {
  const size_t n = ctx.partition->subgraphs.size();
  ScheduleResult r;
  r.placement = Placement(n, kind_);
  const int64_t before = ctx.evaluator->evaluations();
  r.est_latency_s = ctx.evaluator->evaluate(r.placement);
  r.evaluations = ctx.evaluator->evaluations() - before;
  return r;
}

}  // namespace duet
