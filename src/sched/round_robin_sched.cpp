#include "sched/scheduler.hpp"

namespace duet {

ScheduleResult RoundRobinScheduler::schedule(const SchedulingContext& ctx) {
  const size_t n = ctx.partition->subgraphs.size();
  ScheduleResult r;
  r.placement = Placement(n);
  for (size_t i = 0; i < n; ++i) {
    r.placement.set(static_cast<int>(i),
                    i % 2 == 0 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  const int64_t before = ctx.evaluator->evaluations();
  r.est_latency_s = ctx.evaluator->evaluate(r.placement);
  r.evaluations = ctx.evaluator->evaluations() - before;
  return r;
}

}  // namespace duet
