#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace duet::telemetry {
namespace {

std::atomic<bool> g_enabled{false};

using Clock = std::chrono::steady_clock;

Clock::time_point process_start() {
  static const Clock::time_point start = Clock::now();
  return start;
}

// Per-thread span buffer. Registered globally so the collector can drain
// buffers of threads that have since exited; the shared_ptr keeps a buffer
// alive past its thread. The buffer's mutex is only contended while a drain
// is in flight, so the record path is an uncontended lock + push_back.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Span> spans;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<uint32_t> next_thread_id{0};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive main
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry().mutex);
    registry().buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local int tl_depth = 0;

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   process_start())
      .count();
}

uint32_t thread_id() {
  thread_local const uint32_t id =
      registry().next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanCollector& SpanCollector::instance() {
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

void SpanCollector::record(Span span) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(std::move(span));
}

std::vector<Span> SpanCollector::drain() {
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(registry().mutex);
  for (const auto& buffer : registry().buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), std::make_move_iterator(buffer->spans.begin()),
               std::make_move_iterator(buffer->spans.end()));
    buffer->spans.clear();
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_us < b.start_us;
  });
  return out;
}

void SpanCollector::clear() {
  std::lock_guard<std::mutex> lock(registry().mutex);
  for (const auto& buffer : registry().buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->spans.clear();
  }
}

size_t SpanCollector::pending() const {
  size_t total = 0;
  std::lock_guard<std::mutex> lock(registry().mutex);
  for (const auto& buffer : registry().buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->spans.size();
  }
  return total;
}

ScopedSpan::ScopedSpan(std::string name, std::string category,
                       std::string detail) {
  if (!enabled()) return;
  active_ = true;
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.detail = std::move(detail);
  span_.tid = thread_id();
  span_.depth = tl_depth++;
  span_.start_us = now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --tl_depth;
  span_.dur_us = now_us() - span_.start_us;
  SpanCollector::instance().record(std::move(span_));
}

}  // namespace duet::telemetry
