#pragma once

// Wall-clock span tracer — the first pillar of the observability layer.
//
// Telemetry is compiled in everywhere but runtime-toggleable: every record
// path starts with a single relaxed atomic load (`telemetry::enabled()`), so
// the disabled mode costs one predictable branch and the benchmark numbers
// are unaffected. When enabled, RAII `ScopedSpan`s append to a per-thread
// buffer (each buffer has its own mutex, contended only while the collector
// drains), carrying a small sequential thread id and the nesting depth of
// the span on its thread. `SpanCollector::drain()` moves everything recorded
// so far out, ready for `telemetry::export_chrome_trace` (trace_export.hpp).
//
// The tracer deliberately knows nothing about the rest of the library; the
// metrics registry (metrics.hpp) and the Chrome-trace writer
// (chrome_trace.hpp) complete the layer, and sit below duet_common so even
// the logger can feed them.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace duet::telemetry {

// Process-global toggle. Off by default so library users (and bench/) never
// pay for instrumentation they did not ask for.
bool enabled();
void set_enabled(bool on);

// RAII toggle for tests and CLI entry points.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on) : previous_(enabled()) { set_enabled(on); }
  ~ScopedTelemetry() { set_enabled(previous_); }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool previous_;
};

// Microseconds of wall clock since process start (steady, monotonic).
double now_us();

// Small sequential id of the calling thread (assigned on first use).
uint32_t thread_id();

// One completed wall-clock span.
struct Span {
  std::string name;
  std::string category;  // "compiler", "profile", "sched", "plan", "exec", ...
  std::string detail;    // free-form annotation (device, pass, model, ...)
  uint32_t tid = 0;
  int depth = 0;  // nesting depth on its thread at record time
  double start_us = 0.0;
  double dur_us = 0.0;
};

// Global sink for completed spans. Thread-safe; spans arrive in per-thread
// order (cross-thread order is by timestamp only).
class SpanCollector {
 public:
  static SpanCollector& instance();

  // Appends to the calling thread's buffer. Called by ~ScopedSpan.
  void record(Span span);

  // Moves out everything recorded so far, across all threads, sorted by
  // start time.
  std::vector<Span> drain();

  // Drops everything recorded so far.
  void clear();

  // Total spans currently buffered (for tests).
  size_t pending() const;

 private:
  SpanCollector() = default;
};

// RAII scoped span: captures the start time at construction and records the
// completed span at destruction. A span constructed while telemetry is
// disabled records nothing (and skips the clock reads).
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category, std::string detail = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  Span span_;
};

}  // namespace duet::telemetry
