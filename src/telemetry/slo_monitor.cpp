#include "telemetry/slo_monitor.hpp"

#include <algorithm>
#include <cmath>

namespace duet::telemetry {

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

// --- LogHistogram ------------------------------------------------------------

int LogHistogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // underflow bucket (also catches NaN)
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;            // v in [2^octave, 2^(octave+1))
  if (octave < kMinExponent) return 0;
  if (octave > kMaxExponent) return kNumBuckets - 1;
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBucketsPerOctave);
  sub = std::min(kSubBucketsPerOctave - 1, std::max(0, sub));
  return 1 + (octave - kMinExponent) * kSubBucketsPerOctave + sub;
}

double LogHistogram::bucket_lower(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExponent + 1);
  const int octave = (index - 1) / kSubBucketsPerOctave + kMinExponent;
  const int sub = (index - 1) % kSubBucketsPerOctave;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBucketsPerOctave,
                    octave);
}

double LogHistogram::bucket_upper(int index) {
  if (index <= 0) return std::ldexp(1.0, kMinExponent);
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExponent + 2);
  const int octave = (index - 1) / kSubBucketsPerOctave + kMinExponent;
  const int sub = (index - 1) % kSubBucketsPerOctave;
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / kSubBucketsPerOctave, octave);
}

void LogHistogram::observe(double v) {
  buckets_[static_cast<size_t>(bucket_index(v))]++;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double LogHistogram::observed_min() const { return count_ ? min_ : 0.0; }
double LogHistogram::observed_max() const { return count_ ? max_ : 0.0; }

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = clamp01(q) * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[static_cast<size_t>(i)] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets_[static_cast<size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      const double within =
          clamp01((target - static_cast<double>(before)) /
                  static_cast<double>(buckets_[static_cast<size_t>(i)]));
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double v = lo + (hi - lo) * within;
      return std::min(max_, std::max(min_, v));
    }
  }
  return max_;
}

// --- SloMonitor --------------------------------------------------------------

SloMonitor::SloMonitor(double window_s, int buckets)
    : window_s_(window_s > 0.0 ? window_s : 10.0),
      bucket_s_(window_s_ / std::max(1, buckets)),
      ring_(static_cast<size_t>(std::max(1, buckets))) {}

SloMonitor::Bucket& SloMonitor::advance(double now_us) {
  const int64_t epoch =
      static_cast<int64_t>(std::floor(now_us / (bucket_s_ * 1e6)));
  Bucket& bucket =
      ring_[static_cast<size_t>(epoch % static_cast<int64_t>(ring_.size()))];
  if (bucket.epoch != epoch) {
    bucket = Bucket{};  // this slot's previous window rotated out
    bucket.epoch = epoch;
  }
  return bucket;
}

void SloMonitor::record_offered(double now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  advance(now_us).offered++;
}

void SloMonitor::record_completed(double now_us, double latency_us,
                                  bool breach) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = advance(now_us);
  bucket.completed++;
  bucket.latency_us.observe(latency_us);
  if (breach) bucket.breaches++;
}

void SloMonitor::record_shed(double now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = advance(now_us);
  bucket.shed++;
  bucket.breaches++;  // a shed request definitionally missed its deadline
}

void SloMonitor::record_rejected(double now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  advance(now_us).rejected++;
}

void SloMonitor::record_queue_wait(double now_us, double wait_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  advance(now_us).queue_wait_us.observe(wait_us);
}

void SloMonitor::record_queue_depth(double now_us, double depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = advance(now_us);
  bucket.depth_sum += depth;
  bucket.depth_samples++;
}

void SloMonitor::record_plan_version(double now_us, uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = advance(now_us);
  bucket.plan_version = std::max(bucket.plan_version, version);
}

SloSnapshot SloMonitor::snapshot(double now_us) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t current =
      static_cast<int64_t>(std::floor(now_us / (bucket_s_ * 1e6)));
  const int64_t oldest = current - static_cast<int64_t>(ring_.size()) + 1;

  SloSnapshot snap;
  LogHistogram latency;
  LogHistogram queue_wait;
  double depth_sum = 0.0;
  uint64_t depth_samples = 0;
  size_t live = 0;
  for (const Bucket& bucket : ring_) {
    if (bucket.epoch < oldest || bucket.epoch > current) continue;
    ++live;
    snap.offered += bucket.offered;
    snap.completed += bucket.completed;
    snap.shed += bucket.shed;
    snap.rejected += bucket.rejected;
    snap.breaches += bucket.breaches;
    snap.plan_version = std::max(snap.plan_version, bucket.plan_version);
    latency.merge(bucket.latency_us);
    queue_wait.merge(bucket.queue_wait_us);
    depth_sum += bucket.depth_sum;
    depth_samples += bucket.depth_samples;
  }
  snap.window_s = static_cast<double>(live) * bucket_s_;
  if (snap.offered > 0) {
    snap.shed_rate =
        static_cast<double>(snap.shed) / static_cast<double>(snap.offered);
    snap.reject_rate =
        static_cast<double>(snap.rejected) / static_cast<double>(snap.offered);
  }
  snap.latency_p50_us = latency.percentile(0.50);
  snap.latency_p95_us = latency.percentile(0.95);
  snap.latency_p99_us = latency.percentile(0.99);
  snap.queue_wait_p95_us = queue_wait.percentile(0.95);
  if (depth_samples > 0) {
    snap.mean_queue_depth = depth_sum / static_cast<double>(depth_samples);
  }
  return snap;
}

void SloMonitor::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Bucket& bucket : ring_) bucket = Bucket{};
}

}  // namespace duet::telemetry
