#pragma once

// Causal request tracing — the thread-local half of the PR-8 observability
// layer. A trace id is minted at admission (DuetServer::submit), carried
// inside the queued request, and re-established on the worker thread with a
// `TraceScope` before the executor runs. Anything recorded inside the scope
// (flight-recorder launches/transfers, timeline events) tags itself with
// `current_trace_id()`, so one request's cross-thread path can be stitched
// back together as Chrome flow events in a post-mortem dump.
//
// The context is a single thread_local integer: establishing a scope is two
// stores, reading it is one load, and nothing here allocates or locks — safe
// inside the flight recorder's always-on hot path.

#include <cstdint>

namespace duet::telemetry {

namespace detail {
inline thread_local uint64_t tl_trace_id = 0;
}  // namespace detail

// Trace id active on the calling thread; 0 = no request context.
inline uint64_t current_trace_id() { return detail::tl_trace_id; }

// RAII trace context: sets the calling thread's trace id for the scope's
// lifetime and restores the previous id on exit (scopes nest).
class TraceScope {
 public:
  explicit TraceScope(uint64_t id) : previous_(detail::tl_trace_id) {
    detail::tl_trace_id = id;
  }
  ~TraceScope() { detail::tl_trace_id = previous_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint64_t previous_;
};

}  // namespace duet::telemetry
