#include "telemetry/chrome_trace.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace duet::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

ChromeTraceWriter::Arg ChromeTraceWriter::Arg::str(std::string key,
                                                   const std::string& value) {
  std::string quoted;
  const std::string escaped = json_escape(value);
  quoted.reserve(escaped.size() + 2);
  quoted += '"';
  quoted += escaped;
  quoted += '"';
  return {std::move(key), std::move(quoted)};
}

ChromeTraceWriter::Arg ChromeTraceWriter::Arg::num(std::string key,
                                                   double value) {
  return {std::move(key), json_number(value)};
}

ChromeTraceWriter::Arg ChromeTraceWriter::Arg::integer(std::string key,
                                                       int64_t value) {
  return {std::move(key), std::to_string(value)};
}

namespace {

std::string metadata_event(const std::string& kind, int pid, int tid,
                           const std::string& name) {
  std::ostringstream os;
  os << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
     << "\"}}";
  return os.str();
}

}  // namespace

void ChromeTraceWriter::set_process_name(int pid, const std::string& name) {
  metadata_.push_back(metadata_event("process_name", pid, 0, name));
}

void ChromeTraceWriter::set_thread_name(int pid, int tid,
                                        const std::string& name) {
  metadata_.push_back(metadata_event("thread_name", pid, tid, name));
}

void ChromeTraceWriter::add_complete(const std::string& name,
                                     const std::string& cat, int pid, int tid,
                                     double ts_us, double dur_us,
                                     const std::vector<Arg>& args) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name.empty() ? "span" : name)
     << "\",\"cat\":\"" << json_escape(cat) << "\",\"ph\":\"X\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":" << json_number(ts_us)
     << ",\"dur\":" << json_number(dur_us);
  if (!args.empty()) {
    os << ",\"args\":{";
    bool first = true;
    for (const Arg& arg : args) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(arg.key) << "\":" << arg.json_value;
    }
    os << "}";
  }
  os << "}";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_instant(const std::string& name,
                                    const std::string& cat, int pid, int tid,
                                    double ts_us,
                                    const std::vector<Arg>& args) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name.empty() ? "instant" : name)
     << "\",\"cat\":\"" << json_escape(cat) << "\",\"ph\":\"i\",\"s\":\"t\""
     << ",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << json_number(ts_us);
  if (!args.empty()) {
    os << ",\"args\":{";
    bool first = true;
    for (const Arg& arg : args) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(arg.key) << "\":" << arg.json_value;
    }
    os << "}";
  }
  os << "}";
  events_.push_back(os.str());
}

void ChromeTraceWriter::add_flow(const std::string& name,
                                 const std::string& cat, int pid, int tid,
                                 double ts_us, uint64_t id, char phase) {
  const char ph = (phase == 's' || phase == 't' || phase == 'f') ? phase : 't';
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name.empty() ? "flow" : name)
     << "\",\"cat\":\"" << json_escape(cat) << "\",\"ph\":\"" << ph
     << "\",\"id\":" << id << ",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << json_number(ts_us);
  if (ph != 's') os << ",\"bp\":\"e\"";
  os << "}";
  events_.push_back(os.str());
}

std::string ChromeTraceWriter::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const std::string& e : metadata_) {
    if (!first) os << ",";
    first = false;
    os << e;
  }
  for (const std::string& e : events_) {
    if (!first) os << ",";
    first = false;
    os << e;
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

// --- minimal JSON validator ---------------------------------------------------

namespace {

struct JsonParser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_string() {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() ||
                std::isxdigit(static_cast<unsigned char>(text[pos])) == 0) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number() {
    const size_t start = pos;
    consume('-');
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
    if (consume('.')) {
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
        ++pos;
      }
    }
    if (pos == start) return fail("expected number");
    return true;
  }

  bool parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!consume(*p)) return fail("bad literal");
    }
    return true;
  }

  bool parse_value(int depth) {
    if (depth > 256) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        skip_ws();
        if (!parse_string()) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        if (!parse_value(depth + 1)) return false;
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        if (!parse_value(depth + 1)) return false;
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '"') return parse_string();
    if (c == 't') return parse_literal("true");
    if (c == 'f') return parse_literal("false");
    if (c == 'n') return parse_literal("null");
    return parse_number();
  }
};

}  // namespace

bool validate_json(const std::string& text, std::string* error) {
  JsonParser parser{text, 0, {}};
  const bool ok = parser.parse_value(0) &&
                  (parser.skip_ws(), parser.pos == text.size() ||
                                         parser.fail("trailing characters"));
  if (!ok && error != nullptr) *error = parser.error;
  return ok;
}

}  // namespace duet::telemetry
