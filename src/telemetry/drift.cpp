#include "telemetry/drift.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "device/calibration.hpp"
#include "telemetry/chrome_trace.hpp"

namespace duet {

double DriftReport::mean_abs_rel_err() const {
  if (entries.empty()) return 0.0;
  double total = 0.0;
  for (const DriftEntry& e : entries) total += std::fabs(e.rel_err());
  return total / static_cast<double>(entries.size());
}

double DriftReport::max_abs_rel_err() const {
  double worst = 0.0;
  for (const DriftEntry& e : entries) {
    worst = std::max(worst, std::fabs(e.rel_err()));
  }
  return worst;
}

std::string DriftReport::to_string() const {
  std::ostringstream os;
  os << "drift " << model << " (" << source << " observation)\n";
  os << strprintf("  %-4s %-16s %-4s %12s %12s %9s\n", "sub", "label", "dev",
                  "estimated", "observed", "skew");
  for (const DriftEntry& e : entries) {
    os << strprintf("  %-4d %-16s %-4s %12s %12s %+8.1f%%\n", e.subgraph,
                    e.label.c_str(), device_kind_name(e.device),
                    human_time(e.est_s).c_str(), human_time(e.observed_s).c_str(),
                    e.rel_err() * 100.0);
  }
  os << strprintf("  %-26s %12s %12s %+8.1f%%\n", "end-to-end",
                  human_time(est_total_s).c_str(),
                  human_time(observed_total_s).c_str(), total_rel_err() * 100.0);
  os << strprintf("  mean |skew| %.1f%%  max |skew| %.1f%%\n",
                  mean_abs_rel_err() * 100.0, max_abs_rel_err() * 100.0);
  return os.str();
}

std::string DriftReport::to_json() const {
  using telemetry::json_escape;
  using telemetry::json_number;
  std::ostringstream os;
  os << "{\"model\":\"" << json_escape(model) << "\",\"source\":\""
     << json_escape(source) << "\",\"subgraphs\":[";
  bool first = true;
  for (const DriftEntry& e : entries) {
    if (!first) os << ",";
    first = false;
    os << "{\"subgraph\":" << e.subgraph << ",\"label\":\""
       << json_escape(e.label) << "\",\"device\":\""
       << device_kind_name(e.device)
       << "\",\"est_s\":" << json_number(e.est_s)
       << ",\"observed_s\":" << json_number(e.observed_s)
       << ",\"rel_err\":" << json_number(e.rel_err())
       << ",\"traces\":" << e.trace_count << "}";
  }
  os << "],\"totals\":{\"est_s\":" << json_number(est_total_s)
     << ",\"observed_s\":" << json_number(observed_total_s)
     << ",\"rel_err\":" << json_number(total_rel_err())
     << ",\"mean_abs_rel_err\":" << json_number(mean_abs_rel_err())
     << ",\"max_abs_rel_err\":" << json_number(max_abs_rel_err()) << "}}";
  return os.str();
}

DriftReport compute_drift(const std::string& model, const std::string& source,
                          const Partition& partition, const Placement& placement,
                          const std::vector<SubgraphProfile>& profiles,
                          const Timeline& observed, double est_total_s,
                          double observed_total_s) {
  const size_t n = partition.subgraphs.size();
  DUET_CHECK_EQ(placement.size(), n);
  DUET_CHECK_EQ(profiles.size(), n);

  DriftReport report;
  report.model = model;
  report.source = source;
  report.est_total_s = est_total_s;
  report.observed_total_s = observed_total_s;

  std::vector<double> observed_s(n, 0.0);
  std::vector<std::set<uint64_t>> traces(n);
  for (const TimelineEvent& e : observed.events()) {
    if (e.kind != TimelineEvent::Kind::kExec) continue;
    if (e.subgraph < 0 || static_cast<size_t>(e.subgraph) >= n) continue;
    observed_s[static_cast<size_t>(e.subgraph)] += e.duration();
    if (e.trace_id != 0) traces[static_cast<size_t>(e.subgraph)].insert(e.trace_id);
  }

  report.entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DriftEntry entry;
    entry.subgraph = static_cast<int>(i);
    entry.device = placement.of(static_cast<int>(i));
    entry.label = partition.subgraphs[i].label;
    // The executors charge the dispatch overhead on top of the kernel time,
    // so the estimate must include it for an apples-to-apples join.
    entry.est_s = profiles[i].time_on(entry.device) + executor_dispatch_overhead();
    entry.observed_s = observed_s[i];
    entry.trace_count = traces[i].size();
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace duet
