#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/telemetry.hpp"

namespace duet::telemetry {
namespace {

constexpr size_t kDefaultRingCapacity = 4096;

// One per-thread ring. Single writer (its owning thread); readers only via
// the freeze handshake. `head` counts lifetime records — slot = head %
// capacity — so overwrites are head - capacity. `active` is the writer's
// half of the Dekker handshake with the dumper's `g_frozen`.
struct Ring {
  explicit Ring(size_t capacity) : slots(capacity) {}
  std::vector<FlightEvent> slots;
  std::atomic<uint64_t> head{0};
  std::atomic<uint32_t> active{0};
  uint32_t tid = 0;
};

struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
  size_t capacity = kDefaultRingCapacity;
};

RingRegistry& ring_registry() {
  static RingRegistry* r = new RingRegistry();  // leaked: threads outlive main
  return *r;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    std::lock_guard<std::mutex> lock(ring_registry().mutex);
    auto r = std::make_shared<Ring>(ring_registry().capacity);
    r->tid = thread_id();
    ring_registry().rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::atomic<bool> g_recording{true};  // always-on by default
std::atomic<bool> g_frozen{false};
std::mutex g_dump_mutex;

}  // namespace

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kEnqueue:
      return "enqueue";
    case FlightKind::kReject:
      return "reject";
    case FlightKind::kPickup:
      return "pickup";
    case FlightKind::kShed:
      return "shed";
    case FlightKind::kLaunch:
      return "launch";
    case FlightKind::kTransfer:
      return "transfer";
    case FlightKind::kSwap:
      return "swap";
    case FlightKind::kComplete:
      return "complete";
    case FlightKind::kCoalesce:
      return "coalesce";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

bool FlightRecorder::recording_enabled() const {
  return g_recording.load(std::memory_order_relaxed);
}

void FlightRecorder::set_recording_enabled(bool on) {
  g_recording.store(on, std::memory_order_relaxed);
}

void FlightRecorder::record(FlightKind kind, uint64_t trace_id, uint64_t arg0,
                            uint64_t arg1, uint8_t device) {
  if (!g_recording.load(std::memory_order_relaxed)) return;
  Ring& ring = local_ring();
  // Dekker handshake with freeze(): publish "writing" before checking
  // frozen, both seq_cst, so either the dumper sees active and waits, or we
  // see frozen and abort — never a concurrent slot read/write.
  ring.active.store(1, std::memory_order_seq_cst);
  if (g_frozen.load(std::memory_order_seq_cst)) {
    ring.active.store(0, std::memory_order_release);
    return;
  }
  const uint64_t head = ring.head.load(std::memory_order_relaxed);
  FlightEvent& slot = ring.slots[head % ring.slots.size()];
  slot.t_us = now_us();
  slot.trace_id = trace_id;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  slot.tid = ring.tid;
  slot.kind = kind;
  slot.device = device;
  ring.head.store(head + 1, std::memory_order_release);
  ring.active.store(0, std::memory_order_release);
}

bool FlightRecorder::frozen() const {
  return g_frozen.load(std::memory_order_seq_cst);
}

void FlightRecorder::freeze() {
  g_frozen.store(true, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(ring_registry().mutex);
  for (const auto& ring : ring_registry().rings) {
    // Spin until any in-flight record on this ring retires; each wait is at
    // most one slot write long.
    while (ring->active.load(std::memory_order_seq_cst) != 0) {
    }
  }
}

void FlightRecorder::unfreeze() {
  g_frozen.store(false, std::memory_order_seq_cst);
}

std::vector<FlightEvent> FlightRecorder::collect(double window_ms) const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(ring_registry().mutex);
    for (const auto& ring : ring_registry().rings) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t capacity = ring->slots.size();
      const uint64_t first = head > capacity ? head - capacity : 0;
      for (uint64_t i = first; i < head; ++i) {
        out.push_back(ring->slots[i % capacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.t_us < b.t_us;
            });
  if (window_ms > 0.0 && !out.empty()) {
    const double cutoff = out.back().t_us - window_ms * 1000.0;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [cutoff](const FlightEvent& e) {
                               return e.t_us < cutoff;
                             }),
              out.end());
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(ring_registry().mutex);
  for (const auto& ring : ring_registry().rings) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t FlightRecorder::overwritten() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(ring_registry().mutex);
  for (const auto& ring : ring_registry().rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t capacity = ring->slots.size();
    if (head > capacity) total += head - capacity;
  }
  return total;
}

size_t FlightRecorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(ring_registry().mutex);
  return ring_registry().capacity;
}

void FlightRecorder::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(ring_registry().mutex);
  ring_registry().capacity = capacity == 0 ? 1 : capacity;
  for (const auto& ring : ring_registry().rings) {
    ring->slots.assign(ring_registry().capacity, FlightEvent{});
    ring->head.store(0, std::memory_order_release);
  }
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(ring_registry().mutex);
  for (const auto& ring : ring_registry().rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

// --- serialization -----------------------------------------------------------

void summarize_flight_events(const std::vector<FlightEvent>& events,
                             FlightDumpSummary* summary) {
  summary->events = events.size();
  if (!events.empty()) {
    summary->window_start_us = events.front().t_us;
    summary->window_end_us = events.back().t_us;
  }
  std::vector<uint32_t> tids;
  // Per trace id: which lifecycle kinds survived in the window.
  std::map<uint64_t, uint32_t> kinds_seen;
  for (const FlightEvent& e : events) {
    summary->kind_counts[static_cast<int>(e.kind)]++;
    tids.push_back(e.tid);
    if (e.trace_id != 0) {
      kinds_seen[e.trace_id] |= 1u << static_cast<int>(e.kind);
    }
  }
  std::sort(tids.begin(), tids.end());
  summary->threads = std::unique(tids.begin(), tids.end()) - tids.begin();
  constexpr uint32_t kFullPath =
      (1u << static_cast<int>(FlightKind::kEnqueue)) |
      (1u << static_cast<int>(FlightKind::kPickup)) |
      (1u << static_cast<int>(FlightKind::kLaunch)) |
      (1u << static_cast<int>(FlightKind::kComplete));
  summary->complete_paths = 0;
  for (const auto& [id, mask] : kinds_seen) {
    (void)id;
    if ((mask & kFullPath) == kFullPath) summary->complete_paths++;
  }
}

std::string flight_trace_json(const std::vector<FlightEvent>& events) {
  constexpr int kFlightPid = 30;
  ChromeTraceWriter writer;
  writer.set_process_name(kFlightPid, "flight-recorder");
  std::vector<uint32_t> tids;
  for (const FlightEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const uint32_t tid : tids) {
    writer.set_thread_name(kFlightPid, static_cast<int>(tid),
                           "thread " + std::to_string(tid));
  }

  // Events in one request's arc, in time order (events are pre-sorted).
  std::map<uint64_t, std::vector<size_t>> arcs;
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    std::vector<ChromeTraceWriter::Arg> args;
    if (e.trace_id != 0) {
      args.push_back(ChromeTraceWriter::Arg::integer(
          "trace_id", static_cast<int64_t>(e.trace_id)));
      arcs[e.trace_id].push_back(i);
    }
    args.push_back(ChromeTraceWriter::Arg::integer(
        "arg0", static_cast<int64_t>(e.arg0)));
    args.push_back(ChromeTraceWriter::Arg::integer(
        "arg1", static_cast<int64_t>(e.arg1)));
    if (e.device != 255) {
      args.push_back(ChromeTraceWriter::Arg::integer("device", e.device));
    }
    // A thin slice per event: flow arrows need an enclosing slice to bind
    // to, and slices carry the args for inspection.
    writer.add_complete(flight_kind_name(e.kind), "flight", kFlightPid,
                        static_cast<int>(e.tid), e.t_us, 1.0, args);
  }

  for (const auto& [trace_id, indices] : arcs) {
    if (indices.size() < 2) continue;  // an arc needs two ends
    for (size_t j = 0; j < indices.size(); ++j) {
      const FlightEvent& e = events[indices[j]];
      const char phase =
          j == 0 ? 's' : (j + 1 == indices.size() ? 'f' : 't');
      // ts inside the slice (slice start + half its 1us duration) so the
      // arrow binds to the slice we just emitted for this event.
      writer.add_flow("request", "flight", kFlightPid,
                      static_cast<int>(e.tid), e.t_us + 0.5, trace_id, phase);
    }
  }
  return writer.to_json();
}

std::string flight_summary_json(const FlightDumpSummary& summary,
                                const std::vector<FlightEvent>& events) {
  std::ostringstream os;
  os << "{\"reason\":\"" << json_escape(summary.reason) << "\"";
  os << ",\"events\":" << summary.events;
  os << ",\"threads\":" << summary.threads;
  os << ",\"overwritten\":" << summary.overwritten;
  os << ",\"window_start_us\":" << json_number(summary.window_start_us);
  os << ",\"window_end_us\":" << json_number(summary.window_end_us);
  os << ",\"complete_paths\":" << summary.complete_paths;
  os << ",\"kind_counts\":{";
  for (int k = 0; k < kNumFlightKinds; ++k) {
    if (k) os << ",";
    os << "\"" << flight_kind_name(static_cast<FlightKind>(k))
       << "\":" << summary.kind_counts[k];
  }
  os << "}";
  // One reconstructed path as a worked example for the post-mortem reader:
  // the first trace id whose full lifecycle survived.
  std::map<uint64_t, uint32_t> kinds_seen;
  for (const FlightEvent& e : events) {
    if (e.trace_id != 0) {
      kinds_seen[e.trace_id] |= 1u << static_cast<int>(e.kind);
    }
  }
  constexpr uint32_t kFullPath =
      (1u << static_cast<int>(FlightKind::kEnqueue)) |
      (1u << static_cast<int>(FlightKind::kPickup)) |
      (1u << static_cast<int>(FlightKind::kLaunch)) |
      (1u << static_cast<int>(FlightKind::kComplete));
  uint64_t example = 0;
  for (const auto& [id, mask] : kinds_seen) {
    if ((mask & kFullPath) == kFullPath) {
      example = id;
      break;
    }
  }
  os << ",\"example_path\":[";
  if (example != 0) {
    bool first = true;
    for (const FlightEvent& e : events) {
      if (e.trace_id != example) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"kind\":\"" << flight_kind_name(e.kind)
         << "\",\"t_us\":" << json_number(e.t_us) << ",\"tid\":" << e.tid
         << "}";
    }
  }
  os << "]}";
  return os.str();
}

FlightDumpSummary FlightRecorder::dump(const std::string& dir,
                                       const std::string& reason,
                                       double window_ms) {
  std::lock_guard<std::mutex> serialize(g_dump_mutex);
  freeze();
  FlightDumpSummary summary;
  summary.reason = reason;
  std::vector<FlightEvent> events = collect(window_ms);
  summary.overwritten = overwritten();
  summarize_flight_events(events, &summary);

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string trace = flight_trace_json(events);
  const std::string summary_text = flight_summary_json(summary, events);
  std::string error;
  if (validate_json(trace, &error) && validate_json(summary_text, &error)) {
    const std::filesystem::path base(dir);
    summary.trace_path = (base / "flight_trace.json").string();
    summary.summary_path = (base / "flight_summary.json").string();
    std::ofstream(summary.trace_path) << trace;
    std::ofstream(summary.summary_path) << summary_text;
  }
  unfreeze();
  return summary;
}

// --- dump trigger ------------------------------------------------------------

DumpTrigger::DumpTrigger(DumpTriggerConfig config)
    : config_(std::move(config)) {}

bool DumpTrigger::fire_locked() {
  if (fired_) return false;
  fired_ = true;
  return true;
}

bool DumpTrigger::on_deadline_miss(double now_us) {
  if (config_.miss_burst == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  miss_times_us_.push_back(now_us);
  const double cutoff = now_us - config_.miss_window_ms * 1000.0;
  while (!miss_times_us_.empty() && miss_times_us_.front() < cutoff) {
    miss_times_us_.pop_front();
  }
  if (miss_times_us_.size() >= config_.miss_burst) return fire_locked();
  return false;
}

bool DumpTrigger::on_outcome(bool shed) {
  if (config_.shed_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.push_back(shed);
  if (shed) ++outcomes_shed_;
  while (outcomes_.size() > config_.rate_window) {
    if (outcomes_.front()) --outcomes_shed_;
    outcomes_.pop_front();
  }
  if (outcomes_.size() >= std::min<size_t>(config_.rate_window, 8) &&
      static_cast<double>(outcomes_shed_) /
              static_cast<double>(outcomes_.size()) >=
          config_.shed_rate) {
    return fire_locked();
  }
  return false;
}

bool DumpTrigger::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

void DumpTrigger::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  miss_times_us_.clear();
  outcomes_.clear();
  outcomes_shed_ = 0;
  fired_ = false;
}

// --- fatal-signal dump -------------------------------------------------------

namespace {

std::mutex g_signal_mutex;
std::string g_signal_dir;
bool g_signal_installed = false;

void fatal_signal_handler(int sig) {
  // Best effort: the process is dying; freeze so the rings stop moving,
  // attempt the dump, then fall through to the default disposition.
  FlightRecorder::instance().freeze();
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(g_signal_mutex);
    dir = g_signal_dir;
  }
  if (!dir.empty()) {
    FlightRecorder::instance().dump(dir,
                                    "signal:" + std::to_string(sig));
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_signal_dump(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_signal_mutex);
  g_signal_dir = dir;
  if (!g_signal_installed) {
    g_signal_installed = true;
    std::signal(SIGSEGV, &fatal_signal_handler);
    std::signal(SIGABRT, &fatal_signal_handler);
    std::signal(SIGBUS, &fatal_signal_handler);
  }
}

std::string signal_dump_dir() {
  std::lock_guard<std::mutex> lock(g_signal_mutex);
  return g_signal_dir;
}

}  // namespace duet::telemetry
