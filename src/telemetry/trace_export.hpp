#pragma once

// Merged Chrome-trace export: the wall-clock spans recorded by the telemetry
// tracer (compiler passes, profiling, scheduling, plan build, threaded
// execution) and the modeled virtual-time timeline of a SimExecutor run,
// side by side in one document. Virtual devices keep the pids
// Timeline::to_chrome_trace has always used (0 = CPU, 1 = GPU, 2 = PCIe
// link); wall-clock spans live under their own process with one Chrome tid
// per recorded thread.

#include <string>
#include <vector>

#include "runtime/timeline.hpp"
#include "telemetry/telemetry.hpp"

namespace duet::telemetry {

// Chrome pid hosting the wall-clock spans.
inline constexpr int kWallClockPid = 10;

// `modeled` may be null (wall-clock spans only).
std::string export_chrome_trace(const std::vector<Span>& spans,
                                const Timeline* modeled);

class ChromeTraceWriter;

// Shared with Timeline::to_chrome_trace so there is exactly one encoding of
// timeline events, merged or standalone.
namespace detail {
void set_virtual_process_names(ChromeTraceWriter& writer);
void append_timeline_events(ChromeTraceWriter& writer, const Timeline& timeline);
}  // namespace detail

}  // namespace duet::telemetry
