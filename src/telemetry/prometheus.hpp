#pragma once

// Prometheus text-format exposition over the metrics registry — the fourth
// piece of the PR-8 observability layer. The registry's dotted metric names
// are sanitized into the Prometheus grammar ([a-zA-Z_:][a-zA-Z0-9_:]*,
// dots and dashes become underscores) and prefixed "duet_"; counters map to
// `counter`, gauges to `gauge`, and fixed-bucket histograms to the full
// `histogram` family (cumulative `_bucket{le="..."}` series ending in
// le="+Inf", plus `_sum` and `_count`), so a scrape of the written file is
// directly ingestible. `duet_cli serve-bench --metrics-out <path>` writes
// one exposition after the run; the obs-smoke CI job validates the grammar.

#include <string>

namespace duet::telemetry {

class MetricsRegistry;

// "duet_" + sanitized name. Exposed for tests and label construction.
std::string prometheus_name(const std::string& name);

// Full exposition of every metric currently registered (with # HELP/# TYPE
// headers, sorted by name within each kind).
std::string to_prometheus_text(const MetricsRegistry& registry);

}  // namespace duet::telemetry
