#pragma once

// Shared Chrome trace-event JSON writer (the single escaping/format path for
// every trace the repo emits — Timeline::to_chrome_trace and the telemetry
// exporters both build on it), plus the small JSON helpers the observability
// layer uses and a minimal well-formedness validator so exported documents
// can be checked without an external parser.
//
// Output follows the Trace Event Format ("X" complete events plus "M"
// process/thread-name metadata), loadable in chrome://tracing and Perfetto.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace duet::telemetry {

// Backslash-escapes quotes, backslashes, and control characters.
std::string json_escape(const std::string& s);

// Shortest-ish decimal form of a finite double ("%.6g"; never NaN/Inf —
// those serialize as 0 to keep the document valid JSON).
std::string json_number(double v);

class ChromeTraceWriter {
 public:
  // One pre-encoded argument: `json_value` must already be valid JSON.
  struct Arg {
    std::string key;
    std::string json_value;

    static Arg str(std::string key, const std::string& value);
    static Arg num(std::string key, double value);
    static Arg integer(std::string key, int64_t value);
  };

  // Metadata naming a pid / (pid, tid) row in the viewer.
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  // One complete ("X") event. Timestamps and durations in microseconds.
  void add_complete(const std::string& name, const std::string& cat, int pid,
                    int tid, double ts_us, double dur_us,
                    const std::vector<Arg>& args = {});

  // One instant ("i") event, thread-scoped.
  void add_instant(const std::string& name, const std::string& cat, int pid,
                   int tid, double ts_us, const std::vector<Arg>& args = {});

  // One flow event: phase must be 's' (start), 't' (step) or 'f' (finish);
  // events sharing `id` (and name/cat) render as one connected arrow chain
  // across threads. Each flow event binds to the slice enclosing its
  // timestamp on (pid, tid); 't'/'f' carry bp:"e" so they attach to the
  // enclosing slice rather than requiring an exact start match.
  void add_flow(const std::string& name, const std::string& cat, int pid,
                int tid, double ts_us, uint64_t id, char phase);

  size_t event_count() const { return metadata_.size() + events_.size(); }

  // {"traceEvents":[...],"displayTimeUnit":"ms"}
  std::string to_json() const;

 private:
  std::vector<std::string> metadata_;  // pre-encoded "M" events
  std::vector<std::string> events_;    // pre-encoded "X" events
};

// Minimal recursive-descent JSON well-formedness check (objects, arrays,
// strings with escapes, numbers, true/false/null). Returns true when `text`
// is a single valid JSON value; otherwise false with a position-carrying
// message in *error (when non-null).
bool validate_json(const std::string& text, std::string* error = nullptr);

}  // namespace duet::telemetry
