#pragma once

// Sliding-window SLO monitor — the operator-facing (and controller-facing)
// view of serving health. Where the metrics registry accumulates since
// process start, the monitor answers "what happened in the last W seconds":
// windowed latency quantiles, queue wait, queue depth, shed/reject rates,
// SLO breaches, and the plan version that produced them.
//
// Two building blocks:
//  * `LogHistogram` — HDR-style log-scale histogram: buckets are
//    sub-divided powers of two (kSubBucketsPerOctave per octave), so
//    relative error is bounded (~9%) across nine decades without choosing
//    bounds up front. Merging is bucket-wise addition, which is what makes
//    windowing cheap.
//  * `SloWindow` — a ring of B buckets each covering window/B seconds.
//    Recording rotates stale buckets forward (zeroing them) and adds to the
//    current one; a snapshot merges the live buckets. The window therefore
//    "forgets" with bucket granularity, like every production SLO pipeline.
//
// The monitor serializes internally with one mutex: records are a few
// array increments under an uncontended lock, far below the executor run
// they annotate, and snapshot() is called off the hot path.

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace duet::telemetry {

// Log-scale histogram over positive values (microseconds by convention).
class LogHistogram {
 public:
  static constexpr int kSubBucketsPerOctave = 4;
  static constexpr int kMinExponent = -1;  // ~0.5 and below
  static constexpr int kMaxExponent = 37;  // ~1.4e11 us ≈ 38 h
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent + 1) * kSubBucketsPerOctave + 2;

  void observe(double v);
  void merge(const LogHistogram& other);
  void clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double observed_min() const;
  double observed_max() const;
  // q in [0,1]; 0 with no observations. Linear interpolation inside the
  // containing bucket, clamped to the observed min/max.
  double percentile(double q) const;

  static int bucket_index(double v);
  static double bucket_lower(int index);
  static double bucket_upper(int index);

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Point-in-time view of the last window. Latencies in microseconds.
struct SloSnapshot {
  double window_s = 0.0;     // span actually covered by live buckets
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t breaches = 0;     // completions over the SLO latency + sheds
  double shed_rate = 0.0;    // shed / offered in window
  double reject_rate = 0.0;  // rejected / offered in window
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double queue_wait_p95_us = 0.0;
  double mean_queue_depth = 0.0;
  uint64_t plan_version = 0;  // latest version observed in window
};

class SloMonitor {
 public:
  // `window_s` of history split into `buckets` ring slots.
  explicit SloMonitor(double window_s = 10.0, int buckets = 10);

  // All record calls take the caller's clock (microseconds, monotonic —
  // telemetry::now_us() in production, synthetic in tests).
  void record_offered(double now_us);
  void record_completed(double now_us, double latency_us, bool breach);
  void record_shed(double now_us);
  void record_rejected(double now_us);
  void record_queue_wait(double now_us, double wait_us);
  void record_queue_depth(double now_us, double depth);
  void record_plan_version(double now_us, uint64_t version);

  SloSnapshot snapshot(double now_us) const;

  double window_s() const { return window_s_; }
  void clear();

 private:
  struct Bucket {
    int64_t epoch = -1;  // which window slot this bucket currently holds
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t rejected = 0;
    uint64_t breaches = 0;
    double depth_sum = 0.0;
    uint64_t depth_samples = 0;
    uint64_t plan_version = 0;
    LogHistogram latency_us;
    LogHistogram queue_wait_us;
  };

  // Rotates the ring to `now_us` and returns the current bucket. Caller
  // holds mutex_.
  Bucket& advance(double now_us);

  double window_s_;
  double bucket_s_;
  mutable std::mutex mutex_;
  mutable std::vector<Bucket> ring_;
};

}  // namespace duet::telemetry
