#pragma once

// Metrics registry — the second pillar of the observability layer: named
// counters, gauges, and fixed-bucket histograms, all safe for concurrent
// recording. Like the span tracer, every record path is guarded by the
// single relaxed `telemetry::enabled()` check so disabled-mode overhead is
// one atomic load.
//
// Metrics are registered on first use and live for the process; `reset()`
// zeroes values but never invalidates references, so call sites may cache
//   static telemetry::Counter& c = telemetry::counter("executor.launches");
// Hot paths should additionally pre-check `enabled()` to skip the registry
// lookup entirely.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace duet::telemetry {

// Monotonic event count (kernel launches, transfer bytes, fallbacks, ...).
class Counter {
 public:
  void add(uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write or high-watermark value (arena peaks, plan sizes, ...).
class Gauge {
 public:
  void set(double v);
  // Keeps the maximum of all observations since the last reset.
  void record_max(double v);
  double value() const;
  void reset();

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with atomic bucket counts. Percentiles are linearly
// interpolated within the containing bucket (and clamped to the observed
// min/max), which is exact enough for p50/p95/p99 reporting at our scale.
class Histogram {
 public:
  // `bounds` are ascending bucket upper limits; an overflow bucket catches
  // everything above the last bound. Empty bounds = default_time_bounds().
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double observed_min() const;
  double observed_max() const;
  double mean() const;
  // q in [0, 1]; 0 with no observations.
  double percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // Point-in-time copy of all bucket counts (bounds().size() + 1 entries,
  // the last being the overflow bucket). Feeds the Prometheus exporter.
  std::vector<uint64_t> bucket_counts() const;
  void reset();

  // Log-spaced bounds from 1us to ~100s — the default for duration metrics
  // recorded in microseconds.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Point-in-time histogram summary for reports.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Register-on-first-use. Returned references are valid for the process
  // lifetime. Requesting an existing name with a different metric kind
  // throws duet-style std::runtime_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  // Zeroes every metric value; registrations (and references) survive.
  void reset();

  // Sorted name -> value views for reports.
  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramStats>> histograms() const;
  // Raw histogram references (process-lifetime stable, like all registry
  // references) for exporters that need bucket-level detail.
  std::vector<std::pair<std::string, const Histogram*>> histogram_series()
      const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
};

// Convenience accessors onto the global registry.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

}  // namespace duet::telemetry
