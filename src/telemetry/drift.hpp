#pragma once

// Predicted-vs-observed drift reporting — the third pillar of the
// observability layer. DUET's scheduler trusts the profiler's per-subgraph
// latencies (paper §IV-B) and the latency model built on them (§IV-C); this
// joins those estimates against what an executor actually recorded (the
// SimExecutor's virtual-time timeline or the ThreadedExecutor's wall-clock
// one) and quantifies the skew per subgraph and per model. Large drift means
// the cost model is lying to the scheduler — the central risk of any
// model-driven placement.

#include <string>
#include <vector>

#include "profile/profiler.hpp"
#include "runtime/timeline.hpp"
#include "sched/placement.hpp"

namespace duet {

struct DriftEntry {
  int subgraph = -1;
  DeviceKind device = DeviceKind::kCpu;
  std::string label;
  double est_s = 0.0;       // profiled mean on the placed device + dispatch
  double observed_s = 0.0;  // summed executor exec spans for the subgraph
  // Distinct serving trace ids contributing exec events (0 outside serving:
  // engine-driven runs carry no request context).
  uint64_t trace_count = 0;

  double abs_err_s() const { return observed_s - est_s; }
  // Signed relative error; +0.5 means the subgraph ran 50% slower than the
  // scheduler assumed.
  double rel_err() const { return est_s > 0.0 ? abs_err_s() / est_s : 0.0; }
};

struct DriftReport {
  std::string model;
  std::string source;  // "sim" (virtual time) or "threaded" (wall clock)
  std::vector<DriftEntry> entries;
  double est_total_s = 0.0;       // scheduler's end-to-end estimate
  double observed_total_s = 0.0;  // executor's end-to-end latency

  double total_rel_err() const {
    return est_total_s > 0.0 ? (observed_total_s - est_total_s) / est_total_s
                             : 0.0;
  }
  double mean_abs_rel_err() const;
  double max_abs_rel_err() const;

  // Fixed-width per-subgraph skew table.
  std::string to_string() const;
  // {"model":...,"source":...,"subgraphs":[...],"totals":{...}}
  std::string to_json() const;
};

// Joins the scheduler's estimates (profile mean on the placed device plus
// the executor dispatch overhead) against the exec events of `observed`.
// Subgraphs with no exec event report observed_s = 0 (e.g. a fallback run).
DriftReport compute_drift(const std::string& model, const std::string& source,
                          const Partition& partition, const Placement& placement,
                          const std::vector<SubgraphProfile>& profiles,
                          const Timeline& observed, double est_total_s,
                          double observed_total_s);

}  // namespace duet
