#include "telemetry/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace duet::telemetry {

namespace {

// %.17g round-trips doubles; Prometheus accepts full float syntax.
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "duet_";
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const auto& [name, value] : registry.counters()) {
    const std::string prom = prometheus_name(name);
    os << "# HELP " << prom << " duet counter " << name << "\n";
    os << "# TYPE " << prom << " counter\n";
    os << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string prom = prometheus_name(name);
    os << "# HELP " << prom << " duet gauge " << name << "\n";
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " " << prom_number(value) << "\n";
  }
  for (const auto& [name, histogram] : registry.histogram_series()) {
    const std::string prom = prometheus_name(name);
    os << "# HELP " << prom << " duet histogram " << name << "\n";
    os << "# TYPE " << prom << " histogram\n";
    const std::vector<uint64_t> buckets = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < bounds.size(); ++b) {
      cumulative += buckets[b];
      os << prom << "_bucket{le=\"" << prom_number(bounds[b]) << "\"} "
         << cumulative << "\n";
    }
    cumulative += buckets.empty() ? 0 : buckets.back();
    os << prom << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << prom << "_sum " << prom_number(histogram->sum()) << "\n";
    os << prom << "_count " << histogram->count() << "\n";
  }
  return os.str();
}

}  // namespace duet::telemetry
