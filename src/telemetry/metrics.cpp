#include "telemetry/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "telemetry/chrome_trace.hpp"

namespace duet::telemetry {
namespace {

// CAS-loop fetch_add / fetch_max for pre-C++20-style atomic doubles.
void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur > v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set(double v) {
  if (!enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::record_max(double v) {
  if (!enabled()) return;
  atomic_max(value_, v);
}

double Gauge::value() const { return value_.load(std::memory_order_relaxed); }

void Gauge::reset() { value_.store(0.0, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_time_bounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::runtime_error("histogram bounds must be strictly ascending");
    }
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (before == 0) {
    // First observation seeds min/max; races with concurrent observers are
    // resolved by the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }
double Histogram::observed_min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}
double Histogram::observed_max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}
double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const double in_bucket =
        static_cast<double>(buckets_[b].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      // Linear interpolation inside [lo, hi), clamped to the observed range
      // so the first and last buckets do not over-report.
      double lo = b == 0 ? observed_min() : bounds_[b - 1];
      double hi = b < bounds_.size() ? bounds_[b] : observed_max();
      lo = std::max(lo, observed_min());
      hi = std::min(hi, observed_max());
      if (hi <= lo) return lo;
      const double frac = (rank - cumulative) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return observed_max();
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_time_bounds() {
  // 1us .. ~100s, four buckets per decade.
  std::vector<double> bounds;
  double decade = 1.0;  // microseconds
  for (int d = 0; d < 8; ++d) {
    for (double step : {1.0, 1.8, 3.2, 5.6}) bounds.push_back(decade * step);
    decade *= 10.0;
  }
  return bounds;
}

namespace {

struct RegistryState {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();  // leaked: see telemetry.cpp
  return *s;
}

HistogramStats summarize(const Histogram& h) {
  HistogramStats s;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.observed_min();
  s.max = h.observed_max();
  s.mean = h.mean();
  s.p50 = h.percentile(0.50);
  s.p95 = h.percentile(0.95);
  s.p99 = h.percentile(0.99);
  return s;
}

void check_unique(const RegistryState& s, const std::string& name,
                  const char* kind) {
  const bool clash =
      (s.counters.count(name) != 0 && std::string(kind) != "counter") ||
      (s.gauges.count(name) != 0 && std::string(kind) != "gauge") ||
      (s.histograms.count(name) != 0 && std::string(kind) != "histogram");
  if (clash) {
    throw std::runtime_error("metric \"" + name +
                             "\" already registered as a different kind");
  }
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  check_unique(s, name, "counter");
  auto& slot = s.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  check_unique(s, name, "gauge");
  auto& slot = s.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  check_unique(s, name, "histogram");
  auto it = s.histograms.find(name);
  if (it == s.histograms.end()) {
    // Construct before inserting: a throwing constructor (bad bounds) must
    // not leave a null entry behind for reset()/to_json() to trip over.
    auto made = std::make_unique<Histogram>(std::move(bounds));
    it = s.histograms.emplace(name, std::move(made)).first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, c] : s.counters) c->reset();
  for (auto& [name, g] : s.gauges) g->reset();
  for (auto& [name, h] : s.histograms) h->reset();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::counters() const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(s.counters.size());
  for (const auto& [name, c] : s.counters) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(s.gauges.size());
  for (const auto& [name, g] : s.gauges) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramStats>> MetricsRegistry::histograms()
    const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<std::pair<std::string, HistogramStats>> out;
  out.reserve(s.histograms.size());
  for (const auto& [name, h] : s.histograms) {
    out.emplace_back(name, summarize(*h));
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histogram_series() const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(s.histograms.size());
  for (const auto& [name, h] : s.histograms) out.emplace_back(name, h.get());
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << json_number(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum) << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"mean\":" << json_number(h.mean)
       << ",\"p50\":" << json_number(h.p50)
       << ",\"p95\":" << json_number(h.p95)
       << ",\"p99\":" << json_number(h.p99) << "}";
  }
  os << "}}";
  return os.str();
}

Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

}  // namespace duet::telemetry
