#pragma once

// Flight recorder — always-on incident capture for the serving runtime.
//
// PR-3's span tracer is opt-in and post-hoc: by the time an operator turns
// it on, the deadline-miss storm that paged them is gone. The flight
// recorder is the opposite contract: it is ON by default, bounded, and
// cheap enough to leave on under production load (the overhead gate in
// bench/serve_obs.cpp holds it to <= 5% p99 on the serving benchmark).
//
// Design: each recording thread owns a fixed-capacity ring of compact POD
// `FlightEvent`s (40 bytes each). The writer never locks and never blocks —
// a record is a slot write plus an atomic head bump, overwriting the oldest
// event when the ring wraps. Rings are registered globally (same pattern as
// the span tracer's per-thread buffers) so a dump can walk threads that
// have since exited.
//
// Dump protocol: `freeze()` stops all writers, then `dump()` collects the
// surviving window across rings and writes two validated artifacts — a
// Chrome trace whose flow events stitch each request's cross-thread path
// into one connected arc, and a JSON summary (event counts, window bounds,
// reconstructed request paths, trigger reason). Freezing uses a Dekker
// handshake (writer: active=1 then check frozen; dumper: frozen=1 then spin
// on active, both seq_cst) so the dump never reads a slot mid-write and the
// writer never takes a lock — TSan-clean without a mutex on the hot path.
//
// Triggers: `DumpTrigger` turns raw signals (deadline misses, shed
// outcomes) into a fire-once decision — a miss burst within a window or a
// shed-rate threshold over recent outcomes. `install_signal_dump()` adds a
// best-effort fatal-signal handler (freeze + dump + re-raise) for crashes.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace duet::telemetry {

enum class FlightKind : uint8_t {
  kEnqueue = 0,   // request accepted into the queue (admission)
  kReject,        // request refused at admission (queue full / draining)
  kPickup,        // worker popped the request
  kShed,          // deadline expired before execution; dropped unexecuted
  kLaunch,        // one subgraph launched on a device
  kTransfer,      // one cross-device transfer
  kSwap,          // plan swap (recalibration)
  kComplete,      // response resolved back to the caller
  kCoalesce,      // batched pickup merged multiple requests (fleet serving)
};
inline constexpr int kNumFlightKinds = 9;

const char* flight_kind_name(FlightKind kind);

// Compact fixed-size binary event. Meaning of arg0/arg1 by kind:
//   kEnqueue/kReject: arg0 = queue depth at admission
//   kPickup/kShed:    arg0 = queue wait in microseconds
//   kLaunch:          arg0 = subgraph index, arg1 = modeled duration ns
//   kTransfer:        arg0 = subgraph index, arg1 = bytes
//   kSwap:            arg0 = new plan version
//   kComplete:        arg0 = plan version, arg1 = latency in microseconds
//   kCoalesce:        arg0 = batch size, arg1 = registry model index
struct FlightEvent {
  double t_us = 0.0;
  uint64_t trace_id = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint32_t tid = 0;
  FlightKind kind = FlightKind::kEnqueue;
  uint8_t device = 255;  // DeviceKind index; 255 = not device-bound
  uint16_t pad = 0;
};
static_assert(sizeof(FlightEvent) == 40, "flight events must stay compact");

// What a dump produced (also serialized into the summary JSON).
struct FlightDumpSummary {
  std::string reason;
  double window_start_us = 0.0;
  double window_end_us = 0.0;
  size_t events = 0;
  size_t threads = 0;
  uint64_t overwritten = 0;  // lifetime events lost to ring wrap, all rings
  uint64_t kind_counts[kNumFlightKinds] = {};
  // Trace ids whose surviving events form a full request path
  // (enqueue -> pickup -> launch -> complete).
  size_t complete_paths = 0;
  std::string trace_path;    // written Chrome trace file
  std::string summary_path;  // written summary JSON file
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  // Always-on by default. The off switch exists for the overhead benchmark
  // (recorder on vs off) and for tests; production leaves it on.
  bool recording_enabled() const;
  void set_recording_enabled(bool on);

  // Hot path: wait-free slot write + head bump on the calling thread's
  // ring. Drops the event (cheaply) while frozen or disabled. trace id is
  // taken from the argument, not the thread context, so callers that
  // already hold it skip the TLS read.
  void record(FlightKind kind, uint64_t trace_id, uint64_t arg0 = 0,
              uint64_t arg1 = 0, uint8_t device = 255);

  bool frozen() const;
  // Stops all writers and waits until in-flight records finished (Dekker
  // handshake; see file comment). Idempotent.
  void freeze();
  void unfreeze();

  // Surviving events across all rings, oldest first. window_ms > 0 keeps
  // only events within that many milliseconds of the newest one. Callers
  // should freeze() first; collect() does not stop writers by itself.
  std::vector<FlightEvent> collect(double window_ms = 0.0) const;

  // Freezes, collects the last `window_ms`, writes `<dir>/flight_trace.json`
  // (Chrome trace with per-request flow arcs) and `<dir>/flight_summary.json`
  // (both validated before write), unfreezes, and returns what happened.
  // Creates `dir` if needed. Thread-safe; concurrent dumps serialize.
  FlightDumpSummary dump(const std::string& dir, const std::string& reason,
                         double window_ms = 0.0);

  // Lifetime totals across all rings (recorded includes overwritten).
  uint64_t recorded() const;
  uint64_t overwritten() const;

  size_t ring_capacity() const;
  // Re-allocates every registered ring and resets heads. Only safe while no
  // other thread records (tests / process start).
  void set_ring_capacity(size_t capacity);
  // Resets every ring's contents and head. Same safety caveat as above.
  void clear();

 private:
  FlightRecorder() = default;
};

// Pure serialization helpers (unit-testable without touching the global
// recorder). `flight_trace_json` renders events as Chrome complete events
// plus per-trace-id flow arcs; `flight_summary_json` renders the summary.
std::string flight_trace_json(const std::vector<FlightEvent>& events);
std::string flight_summary_json(const FlightDumpSummary& summary,
                                const std::vector<FlightEvent>& events);
// Fills kind_counts / complete_paths / window bounds from `events`.
void summarize_flight_events(const std::vector<FlightEvent>& events,
                             FlightDumpSummary* summary);

// Fire-once dump policy fed by the serving runtime.
struct DumpTriggerConfig {
  // Fire when this many deadline misses (sheds or late completions) land
  // within `miss_window_ms`. 0 disables the burst trigger.
  uint32_t miss_burst = 0;
  double miss_window_ms = 100.0;
  // Fire when the shed fraction over the last `rate_window` outcomes
  // reaches this. 0 disables the rate trigger.
  double shed_rate = 0.0;
  uint32_t rate_window = 64;
};

class DumpTrigger {
 public:
  explicit DumpTrigger(DumpTriggerConfig config = {});

  // Record a deadline miss at `now_us`; true when the burst trigger fires
  // (first time only).
  bool on_deadline_miss(double now_us);
  // Record a request outcome; true when the shed-rate trigger fires (first
  // time only).
  bool on_outcome(bool shed);

  bool fired() const;
  void reset();

 private:
  bool fire_locked();

  DumpTriggerConfig config_;
  mutable std::mutex mutex_;
  std::deque<double> miss_times_us_;
  std::deque<bool> outcomes_;
  size_t outcomes_shed_ = 0;
  bool fired_ = false;
};

// Best-effort fatal-signal dump (SIGSEGV / SIGABRT / SIGBUS): freezes the
// rings, attempts a dump into `dir`, then re-raises with the default
// handler. Not fully async-signal-safe — acceptable for a post-mortem of a
// process that is dying anyway. Idempotent; later calls retarget `dir`.
void install_signal_dump(const std::string& dir);
// Directory the signal handler would dump into ("" when not installed).
std::string signal_dump_dir();

}  // namespace duet::telemetry
