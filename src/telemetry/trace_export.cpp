#include "telemetry/trace_export.hpp"

#include <map>
#include <set>

#include "telemetry/chrome_trace.hpp"

namespace duet::telemetry {

namespace detail {

void set_virtual_process_names(ChromeTraceWriter& writer) {
  writer.set_process_name(0, "CPU (modeled)");
  writer.set_process_name(1, "GPU (modeled)");
  writer.set_process_name(2, "PCIe link (modeled)");
}

void append_timeline_events(ChromeTraceWriter& writer,
                            const Timeline& timeline) {
  for (const TimelineEvent& e : timeline.events()) {
    const bool exec = e.kind == TimelineEvent::Kind::kExec;
    // pids: 0 = CPU, 1 = GPU, 2 = PCIe link (the historical layout).
    const int pid = exec ? static_cast<int>(e.device) : 2;
    writer.add_complete(e.label, exec ? "exec" : "transfer", pid, 0,
                        e.start * 1e6, e.duration() * 1e6,
                        {ChromeTraceWriter::Arg::integer("subgraph", e.subgraph)});
  }
}

}  // namespace detail

std::string export_chrome_trace(const std::vector<Span>& spans,
                                const Timeline* modeled) {
  ChromeTraceWriter writer;
  writer.set_process_name(kWallClockPid, "duet (wall clock)");
  std::set<uint32_t> named_threads;
  for (const Span& s : spans) {
    if (named_threads.insert(s.tid).second) {
      writer.set_thread_name(kWallClockPid, static_cast<int>(s.tid),
                             "thread-" + std::to_string(s.tid));
    }
  }
  if (modeled != nullptr) detail::set_virtual_process_names(writer);

  for (const Span& s : spans) {
    std::vector<ChromeTraceWriter::Arg> args;
    args.push_back(ChromeTraceWriter::Arg::integer("depth", s.depth));
    if (!s.detail.empty()) {
      args.push_back(ChromeTraceWriter::Arg::str("detail", s.detail));
    }
    writer.add_complete(s.name, s.category, kWallClockPid,
                        static_cast<int>(s.tid), s.start_us, s.dur_us, args);
  }
  if (modeled != nullptr) detail::append_timeline_events(writer, *modeled);
  return writer.to_json();
}

}  // namespace duet::telemetry
