#include "tuning/cost_surface.hpp"

#include <cmath>
#include <sstream>

namespace duet::tuning {
namespace {

// FNV-1a — stable across platforms, unlike std::hash.
uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double log2_ratio(double a, double b) { return std::log2(a / b); }

}  // namespace

std::string task_key(const Node& node, DeviceKind kind) {
  std::ostringstream os;
  os << op_name(node.op) << "|" << node.out_shape.to_string() << "|"
     << device_kind_name(kind);
  return os.str();
}

KernelSchedule task_optimum(const std::string& task, DeviceKind kind) {
  const ScheduleSpace space = ScheduleSpace::for_device(kind);
  const uint64_t h = fnv1a(task);
  // Hash-pick each knob; biased toward the middle of the tile range (the
  // plausible regime) by averaging two hash draws.
  const auto pick = [&](const std::vector<int>& range, int shift) {
    const uint64_t a = (h >> shift) % range.size();
    const uint64_t b = (h >> (shift + 17)) % range.size();
    return range[(a + b) / 2];
  };
  KernelSchedule opt;
  opt.tile_m = pick(space.tiles(), 0);
  opt.tile_n = pick(space.tiles(), 7);
  opt.tile_k = pick(space.tiles(), 14);
  opt.vector_width = pick(space.vector_widths(), 21);
  opt.unroll = pick(space.unrolls(), 28);
  opt.parallel_outer = kind == DeviceKind::kCpu ? true : ((h >> 35) & 1);

  // The optimum must not sit on an interaction cliff, or it would not be the
  // optimum (schedule_efficiency applies the same cliffs to every schedule).
  while (opt.vector_width > opt.tile_k) opt.vector_width /= 2;
  if (opt.vector_width == 0) opt.vector_width = 1;
  if (kind == DeviceKind::kGpu) {
    while (opt.tile_m * opt.tile_n > 128 * 128) {
      if (opt.tile_m >= opt.tile_n) {
        opt.tile_m /= 2;
      } else {
        opt.tile_n /= 2;
      }
    }
  }
  return opt;
}

double schedule_efficiency(const std::string& task, const KernelSchedule& s,
                           DeviceKind kind) {
  const KernelSchedule opt = task_optimum(task, kind);

  // Smooth decay with log-space tile distance from the optimum.
  const double d2 = std::pow(log2_ratio(s.tile_m, opt.tile_m), 2) +
                    std::pow(log2_ratio(s.tile_n, opt.tile_n), 2) +
                    std::pow(log2_ratio(s.tile_k, opt.tile_k), 2) +
                    0.5 * std::pow(log2_ratio(s.vector_width, opt.vector_width), 2) +
                    0.25 * std::pow(log2_ratio(s.unroll, opt.unroll), 2);
  double eff = std::exp(-0.08 * d2);

  // Interaction cliffs.
  if (s.vector_width > s.tile_k) eff *= 0.7;  // lanes starve past the k-tile
  if (kind == DeviceKind::kCpu && !s.parallel_outer) eff *= 0.25;  // 1 of 22 cores
  if (kind == DeviceKind::kGpu && s.tile_m * s.tile_n > 128 * 128) {
    eff *= 0.6;  // register/shared-memory spill
  }
  if (s.parallel_outer != opt.parallel_outer) eff *= 0.85;

  return std::max(0.05, std::min(1.0, eff));
}

}  // namespace duet::tuning
