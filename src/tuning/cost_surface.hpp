#pragma once

// Deterministic synthetic hardware response for the tuning simulation: maps
// (task, schedule) to the fraction of the calibrated (converged-tuning)
// efficiency that the schedule achieves, in (0, 1]. The surface is built so
// search algorithms face the realities of real tuning:
//
//   * a task-specific hidden optimum (hashed from the task key), so no fixed
//     schedule is best everywhere;
//   * smooth log-distance decay around the optimum (tile mismatch hurts
//     gradually, like cache/occupancy effects);
//   * hard interaction cliffs (vector width > tile_k is wasted; serial outer
//     loop throws away the CPU's cores; oversized GPU tiles spill);
//   * deterministic "measurement" — noise is added by the tuner, not here.

#include <string>

#include "compiler/cost_model.hpp"
#include "tuning/schedule_space.hpp"

namespace duet::tuning {

// Stable identifier of a tuning task: op + relevant shape dims + device.
std::string task_key(const Node& node, DeviceKind kind);

// Achieved fraction of calibrated efficiency, in (0, 1]. A schedule equal to
// the task's hidden optimum scores 1.0.
double schedule_efficiency(const std::string& task, const KernelSchedule& schedule,
                           DeviceKind kind);

// The hidden optimum itself (exposed for tests and for seeding "expert"
// databases).
KernelSchedule task_optimum(const std::string& task, DeviceKind kind);

}  // namespace duet::tuning
