#include "tuning/tuner.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace duet::tuning {

void TuningDatabase::update(TuningRecord record) {
  auto it = records_.find(record.task);
  if (it == records_.end() || record.efficiency > it->second.efficiency) {
    records_[record.task] = std::move(record);
  } else {
    it->second.trials += record.trials;
  }
}

const TuningRecord* TuningDatabase::lookup(const std::string& task) const {
  auto it = records_.find(task);
  return it == records_.end() ? nullptr : &it->second;
}

double TuningDatabase::efficiency_or(const std::string& task, double fallback) const {
  const TuningRecord* rec = lookup(task);
  return rec != nullptr ? rec->efficiency : fallback;
}

void TuningDatabase::save(const std::string& path) const {
  std::ofstream out(path);
  DUET_CHECK(out.good()) << "cannot open " << path;
  out << std::setprecision(17);
  for (const auto& [task, r] : records_) {
    out << task << "\t" << r.schedule.tile_m << " " << r.schedule.tile_n << " "
        << r.schedule.tile_k << " " << r.schedule.vector_width << " "
        << r.schedule.unroll << " " << (r.schedule.parallel_outer ? 1 : 0) << " "
        << r.efficiency << " " << r.trials << "\n";
  }
  DUET_CHECK(out.good()) << "write failed: " << path;
}

TuningDatabase TuningDatabase::load(const std::string& path) {
  std::ifstream in(path);
  DUET_CHECK(in.good()) << "cannot open " << path;
  TuningDatabase db;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    DUET_CHECK(tab != std::string::npos) << "malformed tuning record: " << line;
    TuningRecord r;
    r.task = line.substr(0, tab);
    std::istringstream rest(line.substr(tab + 1));
    int par = 0;
    rest >> r.schedule.tile_m >> r.schedule.tile_n >> r.schedule.tile_k >>
        r.schedule.vector_width >> r.schedule.unroll >> par >> r.efficiency >>
        r.trials;
    DUET_CHECK(!rest.fail()) << "malformed tuning record: " << line;
    r.schedule.parallel_outer = par != 0;
    db.records_[r.task] = std::move(r);
  }
  return db;
}

TuningDatabase TuningDatabase::oracle(const Graph& graph, DeviceKind kind) {
  TuningDatabase db;
  for (const Node& node : graph.nodes()) {
    if (node.is_input() || node.is_constant()) continue;
    TuningRecord r;
    r.task = task_key(node, kind);
    r.schedule = task_optimum(r.task, kind);
    r.efficiency = schedule_efficiency(r.task, r.schedule, kind);
    r.trials = 0;
    db.update(std::move(r));
  }
  return db;
}

double AutoTuner::measure(const std::string& task, const KernelSchedule& s,
                          DeviceKind kind, Rng& rng) const {
  double total = 0.0;
  for (int i = 0; i < std::max(1, options_.measure_repeats); ++i) {
    // Noise divides throughput (a slow run under-reports efficiency).
    total += schedule_efficiency(task, s, kind) /
             rng.lognormal_factor(options_.noise_sigma);
  }
  return total / std::max(1, options_.measure_repeats);
}

TuningRecord AutoTuner::tune_task(const std::string& task, DeviceKind kind,
                                  Rng& rng) const {
  const ScheduleSpace space = ScheduleSpace::for_device(kind);
  TuningRecord best;
  best.task = task;
  best.trials = options_.trials;
  double best_measured = -1.0;

  const auto consider = [&](const KernelSchedule& s) {
    const double measured = measure(task, s, kind, rng);
    if (measured > best_measured) {
      best_measured = measured;
      best.schedule = s;
    }
  };

  if (options_.strategy == TuningOptions::Strategy::kRandom) {
    for (int t = 0; t < options_.trials; ++t) consider(space.sample(rng));
  } else {
    // (mu + lambda) evolutionary search: random population, then mutate the
    // incumbent via knob-space neighbors.
    int budget = options_.trials;
    for (int p = 0; p < options_.population && budget > 0; ++p, --budget) {
      consider(space.sample(rng));
    }
    while (budget > 0) {
      std::vector<KernelSchedule> moves = space.neighbors(best.schedule);
      rng.shuffle(moves);
      const int step = std::min<int>(budget, std::max<int>(1, static_cast<int>(moves.size()) / 4));
      for (int m = 0; m < step; ++m) consider(moves[static_cast<size_t>(m)]);
      budget -= step;
    }
  }

  // Record the *true* (noise-free) efficiency of the selected schedule: the
  // deployed kernel runs at its real speed regardless of what the noisy
  // measurement claimed.
  best.efficiency = schedule_efficiency(task, best.schedule, kind);
  return best;
}

std::function<double(const Node&, int)> make_schedule_quality_hook(
    const TuningDatabase& db, double untuned_fallback) {
  return [&db, untuned_fallback](const Node& node, int device_kind) {
    return db.efficiency_or(
        task_key(node, static_cast<DeviceKind>(device_kind)), untuned_fallback);
  };
}

void AutoTuner::tune_graph(const Graph& graph, DeviceKind kind,
                           TuningDatabase& db) const {
  Rng rng(options_.seed);
  std::map<std::string, bool> seen;
  for (const Node& node : graph.nodes()) {
    if (node.is_input() || node.is_constant()) continue;
    const std::string task = task_key(node, kind);
    if (seen[task]) continue;
    seen[task] = true;
    db.update(tune_task(task, kind, rng));
  }
}

}  // namespace duet::tuning
