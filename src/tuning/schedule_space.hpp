#pragma once

// Simulated kernel-schedule search space — the low-level half of the TVM
// substrate (paper Fig. 1, layer 4: "tiling size, vectorization ...").
//
// A KernelSchedule is the knob vector AutoTVM would search per task (tensor
// operator x shape x device): tile sizes, vector width, unroll factor,
// outer-loop parallelization. The *calibrated* device efficiencies in
// device/calibration.cpp represent converged, well-tuned schedules; the
// tuner (tuner.hpp) reproduces the convergence toward them from arbitrary
// schedules over a deterministic, non-convex cost surface
// (cost_surface.hpp), so tuning-time/quality trade-offs can be studied
// without the real hardware.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "compiler/cost_model.hpp"
#include "graph/graph.hpp"

namespace duet::tuning {

struct KernelSchedule {
  int tile_m = 32;
  int tile_n = 32;
  int tile_k = 32;
  int vector_width = 8;   // lanes
  int unroll = 2;
  bool parallel_outer = true;

  bool operator==(const KernelSchedule& other) const;
  std::string to_string() const;
};

// The discrete knob ranges AutoTVM-style search enumerates. All knobs are
// powers of two within device-plausible bounds.
class ScheduleSpace {
 public:
  static ScheduleSpace for_device(DeviceKind kind);

  // Number of distinct schedules.
  uint64_t size() const;
  // The i-th schedule (row-major over the knob ranges).
  KernelSchedule at(uint64_t index) const;
  // Uniformly random schedule.
  KernelSchedule sample(Rng& rng) const;
  // All neighbors of `s` at Hamming distance 1 in knob space (used by the
  // evolutionary mutator).
  std::vector<KernelSchedule> neighbors(const KernelSchedule& s) const;

  const std::vector<int>& tiles() const { return tiles_; }
  const std::vector<int>& vector_widths() const { return vector_widths_; }
  const std::vector<int>& unrolls() const { return unrolls_; }

 private:
  std::vector<int> tiles_;          // shared range for tile_m/n/k
  std::vector<int> vector_widths_;
  std::vector<int> unrolls_;
};

}  // namespace duet::tuning
