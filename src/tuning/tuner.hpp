#pragma once

// AutoTVM-style schedule tuner + tuning database.
//
// For every tuning task (distinct op/shape/device triple) in a graph, the
// tuner searches the ScheduleSpace for a schedule maximizing measured
// efficiency. "Measurement" is the deterministic cost surface plus
// log-normal noise with repeats — the same trade-off real tuners face
// (more repeats = less noise = fewer wasted trials). Results accumulate in
// a TuningDatabase that the compiler's cost model consumes: a node whose
// task is present runs at `calibrated_efficiency x record.efficiency`, so an
// untuned or badly tuned database makes code slower than the paper's
// converged-TVM calibration, and a converged database approaches it.

#include <functional>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "tuning/cost_surface.hpp"
#include "tuning/schedule_space.hpp"

namespace duet::tuning {

struct TuningRecord {
  std::string task;
  KernelSchedule schedule;
  double efficiency = 1.0;  // achieved fraction of calibrated throughput
  int trials = 0;
};

class TuningDatabase {
 public:
  void update(TuningRecord record);  // keeps the better of old/new
  const TuningRecord* lookup(const std::string& task) const;
  // Efficiency multiplier for the cost model; `fallback` when untuned.
  double efficiency_or(const std::string& task, double fallback) const;

  size_t size() const { return records_.size(); }
  const std::map<std::string, TuningRecord>& records() const { return records_; }

  // Text format: one "task<TAB>tile_m tile_n tile_k vec unroll par eff trials"
  // line per record.
  void save(const std::string& path) const;
  static TuningDatabase load(const std::string& path);

  // An oracle database holding every task's hidden optimum (what infinite
  // tuning would find) — useful as an upper bound in studies.
  static TuningDatabase oracle(const Graph& graph, DeviceKind kind);

 private:
  std::map<std::string, TuningRecord> records_;
};

struct TuningOptions {
  enum class Strategy { kRandom, kEvolutionary } strategy = Strategy::kEvolutionary;
  int trials = 64;          // measurements per task
  int measure_repeats = 3;  // repeats averaged per measurement
  double noise_sigma = 0.08;
  uint64_t seed = 1;
  // Evolutionary knobs.
  int population = 8;
};

// Adapter binding a TuningDatabase to CompileOptions::schedule_quality. A
// task missing from the database runs at `untuned_fallback` of calibrated
// throughput (TVM's default schedule templates before tuning). The database
// must outlive every CompileOptions holding the hook.
std::function<double(const Node&, int)> make_schedule_quality_hook(
    const TuningDatabase& db, double untuned_fallback = 0.45);

class AutoTuner {
 public:
  explicit AutoTuner(TuningOptions options = {}) : options_(options) {}

  // Tunes one task; returns the best record found.
  TuningRecord tune_task(const std::string& task, DeviceKind kind, Rng& rng) const;

  // Tunes every distinct task in `graph` for `kind`, merging into `db`.
  void tune_graph(const Graph& graph, DeviceKind kind, TuningDatabase& db) const;

 private:
  // One noisy measurement of a schedule (averaged repeats).
  double measure(const std::string& task, const KernelSchedule& s, DeviceKind kind,
                 Rng& rng) const;

  TuningOptions options_;
};

}  // namespace duet::tuning
