#include "tuning/schedule_space.hpp"

#include <sstream>

#include "common/error.hpp"

namespace duet::tuning {

bool KernelSchedule::operator==(const KernelSchedule& other) const {
  return tile_m == other.tile_m && tile_n == other.tile_n &&
         tile_k == other.tile_k && vector_width == other.vector_width &&
         unroll == other.unroll && parallel_outer == other.parallel_outer;
}

std::string KernelSchedule::to_string() const {
  std::ostringstream os;
  os << "tile(" << tile_m << "," << tile_n << "," << tile_k << ") vec"
     << vector_width << " unroll" << unroll
     << (parallel_outer ? " par" : " seq");
  return os.str();
}

ScheduleSpace ScheduleSpace::for_device(DeviceKind kind) {
  ScheduleSpace s;
  if (kind == DeviceKind::kCpu) {
    s.tiles_ = {4, 8, 16, 32, 64, 128};
    s.vector_widths_ = {1, 4, 8, 16};  // scalar .. AVX-512 lanes
    s.unrolls_ = {1, 2, 4, 8};
  } else {
    s.tiles_ = {8, 16, 32, 64, 128, 256};  // thread-block tiles
    s.vector_widths_ = {1, 2, 4, 8};       // vectorized loads
    s.unrolls_ = {1, 2, 4, 8};
  }
  return s;
}

uint64_t ScheduleSpace::size() const {
  const uint64_t t = tiles_.size();
  return t * t * t * vector_widths_.size() * unrolls_.size() * 2;
}

KernelSchedule ScheduleSpace::at(uint64_t index) const {
  DUET_CHECK_LT(index, size());
  const uint64_t t = tiles_.size();
  KernelSchedule s;
  s.parallel_outer = index % 2;
  index /= 2;
  s.unroll = unrolls_[index % unrolls_.size()];
  index /= unrolls_.size();
  s.vector_width = vector_widths_[index % vector_widths_.size()];
  index /= vector_widths_.size();
  s.tile_k = tiles_[index % t];
  index /= t;
  s.tile_n = tiles_[index % t];
  index /= t;
  s.tile_m = tiles_[index % t];
  return s;
}

KernelSchedule ScheduleSpace::sample(Rng& rng) const {
  return at(static_cast<uint64_t>(
      rng.uniform_int(0, static_cast<int64_t>(size()) - 1)));
}

std::vector<KernelSchedule> ScheduleSpace::neighbors(const KernelSchedule& s) const {
  std::vector<KernelSchedule> out;
  const auto vary = [&](auto setter, const std::vector<int>& range, int current) {
    for (int v : range) {
      if (v == current) continue;
      KernelSchedule next = s;
      setter(next, v);
      out.push_back(next);
    }
  };
  vary([](KernelSchedule& k, int v) { k.tile_m = v; }, tiles_, s.tile_m);
  vary([](KernelSchedule& k, int v) { k.tile_n = v; }, tiles_, s.tile_n);
  vary([](KernelSchedule& k, int v) { k.tile_k = v; }, tiles_, s.tile_k);
  vary([](KernelSchedule& k, int v) { k.vector_width = v; }, vector_widths_,
       s.vector_width);
  vary([](KernelSchedule& k, int v) { k.unroll = v; }, unrolls_, s.unroll);
  KernelSchedule flipped = s;
  flipped.parallel_outer = !s.parallel_outer;
  out.push_back(flipped);
  return out;
}

}  // namespace duet::tuning
