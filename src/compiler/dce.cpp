// Dead code elimination: drops nodes that cannot reach any graph output.
// kInput nodes are preserved regardless so a compiled graph keeps the same
// feed signature as its source.

#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"
#include "graph/traversal.hpp"

namespace duet {

Graph eliminate_dead_code(const Graph& g) {
  const std::vector<bool> live = live_nodes(g);
  Graph out(g.name());
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  for (const Node& node : g.nodes()) {
    if (!live[static_cast<size_t>(node.id)] && !node.is_input()) continue;
    remap[static_cast<size_t>(node.id)] = copy_node_into(node, out, remap);
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
