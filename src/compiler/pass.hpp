#pragma once

// The graph-level optimization pipeline (paper Fig. 1, layers 2-3). Passes
// are pure Graph -> Graph rewrites; the PassManager runs a configured
// sequence. This models the TVM/Relay graph-level stage: operator fusion,
// constant folding, CSE, DCE, and layout transform.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace duet {

// What the "compiler" is asked to do. framework_mode models the PyTorch/
// TensorFlow baselines of the paper: no graph-level optimization and
// per-operator interpreter dispatch overhead at runtime.
struct CompileOptions {
  bool enable_fusion = true;
  bool enable_constant_fold = true;
  bool enable_cse = true;
  bool enable_dce = true;
  bool enable_layout_transform = true;
  bool framework_mode = false;

  // Low-level schedule quality hook. When set, the cost model multiplies a
  // node's achieved utilization by this factor (in (0, 1]); the tuning
  // subsystem (src/tuning) provides an adapter bound to a TuningDatabase.
  // Unset means "converged tuning" — the calibration's assumption.
  std::function<double(const Node& node, int device_kind)> schedule_quality;

  static CompileOptions compiler_defaults() { return {}; }
  static CompileOptions framework() {
    CompileOptions o;
    o.enable_fusion = false;
    o.enable_constant_fold = false;
    o.enable_cse = false;
    o.enable_dce = false;
    o.enable_layout_transform = false;
    o.framework_mode = true;
    return o;
  }
};

using Pass = std::function<Graph(const Graph&)>;

struct NamedPass {
  std::string name;
  Pass run;
};

class PassManager {
 public:
  // Builds the standard pipeline for `options`.
  static PassManager standard(const CompileOptions& options);

  void add(std::string name, Pass pass);
  const std::vector<NamedPass>& passes() const { return passes_; }

  // Runs all passes in order. In checked mode (verification_enabled(), the
  // default) the full GraphVerifier runs on the input and after every pass
  // and a violation throws VerifyError attributed to the offending pass;
  // otherwise only the cheap structural Graph::validate() runs.
  Graph run(Graph graph) const;

 private:
  std::vector<NamedPass> passes_;
};

// --- individual passes --------------------------------------------------------
// Fuses unary activation epilogues into Dense/Conv2d/BatchNorm producers and
// collapses chains of >= 2 fusible unary ops into kElementwiseChain nodes.
Graph fuse_operators(const Graph& graph);
// Folds inference-mode batch norms into their producing convolutions
// (TVM's fold_scale_axis); numerically exact.
Graph fold_batch_norm(const Graph& graph);
// Evaluates nodes whose inputs are all constants.
Graph fold_constants(const Graph& graph);
// Removes nodes unreachable from the outputs (inputs are always kept so the
// graph signature is stable).
Graph eliminate_dead_code(const Graph& graph);
// Merges structurally identical nodes.
Graph eliminate_common_subexpressions(const Graph& graph);
// Tags convolution nodes with an optimized layout; semantics unchanged, the
// cost model rewards tagged nodes (models TVM's NCHWc transform).
Graph transform_layout(const Graph& graph);
// Removes identity nodes, collapses reshape-of-reshape chains, and drops
// no-op reshapes/flattens.
Graph simplify_shape_ops(const Graph& graph);

}  // namespace duet
