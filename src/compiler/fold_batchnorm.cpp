// Batch-norm folding (TVM's fold_scale_axis): an inference-mode batch norm
// whose scale/shift are constants and whose producer is a convolution with
// constant weights folds into the convolution:
//
//   w'[o,c,kh,kw] = w[o,c,kh,kw] * scale[o]
//   b'[o]         = b[o] * scale[o] + shift[o]
//
// Numerically exact, removes one full feature-map round trip through memory
// per conv — the difference between our model's CPU ResNet cost and the
// paper's measured 14.9 ms is mostly this pass.

#include <cstring>

#include "common/error.hpp"
#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"

namespace duet {

Graph fold_batch_norm(const Graph& g) {
  const size_t n = g.num_nodes();

  std::vector<bool> is_output(n, false);
  for (NodeId out : g.outputs()) is_output[static_cast<size_t>(out)] = true;

  // bn node id -> producing conv id, for foldable pairs.
  std::vector<NodeId> fold_into(n, kInvalidNode);
  for (const Node& node : g.nodes()) {
    if (node.op != OpType::kBatchNorm) continue;
    const NodeId conv_id = node.inputs[0];
    const Node& conv = g.node(conv_id);
    if (conv.op != OpType::kConv2d) continue;
    if (g.consumers(conv_id).size() != 1) continue;  // conv value used elsewhere
    if (is_output[static_cast<size_t>(conv_id)]) continue;
    if (!conv.attrs.get_string_or("epilogue", "").empty()) continue;
    // Everything that gets rescaled must be constant.
    if (!g.node(conv.inputs[1]).is_constant()) continue;
    if (conv.inputs.size() > 2 && !g.node(conv.inputs[2]).is_constant()) continue;
    if (!g.node(node.inputs[1]).is_constant()) continue;
    if (!g.node(node.inputs[2]).is_constant()) continue;
    fold_into[static_cast<size_t>(node.id)] = conv_id;
  }

  // Convs consumed by a foldable BN are emitted at the BN site instead.
  std::vector<bool> conv_folded(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (fold_into[i] != kInvalidNode) {
      conv_folded[static_cast<size_t>(fold_into[i])] = true;
    }
  }

  Graph out(g.name());
  std::vector<NodeId> remap(n, kInvalidNode);
  for (const Node& node : g.nodes()) {
    const size_t id = static_cast<size_t>(node.id);
    if (conv_folded[id]) continue;

    if (fold_into[id] != kInvalidNode) {
      const Node& conv = g.node(fold_into[id]);
      const Tensor& w = g.node(conv.inputs[1]).value;
      const Tensor& scale = g.node(node.inputs[1]).value;
      const Tensor& shift = g.node(node.inputs[2]).value;
      const int64_t oc = w.shape().dim(0);
      const int64_t per_filter = w.numel() / oc;

      Tensor w2 = w.clone();
      float* pw = w2.data<float>();
      const float* ps = scale.data<float>();
      for (int64_t o = 0; o < oc; ++o) {
        for (int64_t i = 0; i < per_filter; ++i) pw[o * per_filter + i] *= ps[o];
      }
      Tensor b2(Shape{oc});
      float* pb = b2.data<float>();
      const float* pf = shift.data<float>();
      if (conv.inputs.size() > 2) {
        const Tensor& b = g.node(conv.inputs[2]).value;
        const float* pob = b.data<float>();
        for (int64_t o = 0; o < oc; ++o) pb[o] = pob[o] * ps[o] + pf[o];
      } else {
        std::memcpy(pb, pf, sizeof(float) * static_cast<size_t>(oc));
      }

      const NodeId wn = out.add_constant(std::move(w2), conv.name + ".w.bnfold");
      const NodeId bn_bias = out.add_constant(std::move(b2), conv.name + ".b.bnfold");
      const NodeId x = remap[static_cast<size_t>(conv.inputs[0])];
      DUET_CHECK(x != kInvalidNode);
      const NodeId fused = out.add_node(OpType::kConv2d, {x, wn, bn_bias},
                                        conv.attrs, conv.name + "+bn");
      remap[static_cast<size_t>(conv.id)] = fused;
      remap[id] = fused;
      continue;
    }

    remap[id] = copy_node_into(node, out, remap);
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
