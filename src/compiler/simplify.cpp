// Shape-op simplification: removes pure-metadata churn the front-end tends
// to emit —
//   * identity nodes forward their input;
//   * reshape(reshape(x)) collapses to one reshape with the final dims;
//   * reshape/flatten whose output shape equals its input shape vanishes.
// All rewrites are exact (these ops only relabel the buffer).

#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"

namespace duet {
namespace {

bool is_shape_only(OpType op) {
  return op == OpType::kReshape || op == OpType::kFlatten;
}

}  // namespace

Graph simplify_shape_ops(const Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<bool> is_output(n, false);
  for (NodeId out : g.outputs()) is_output[static_cast<size_t>(out)] = true;

  Graph out(g.name());
  std::vector<NodeId> remap(n, kInvalidNode);
  for (const Node& node : g.nodes()) {
    const size_t id = static_cast<size_t>(node.id);

    if (node.op == OpType::kIdentity) {
      remap[id] = remap[static_cast<size_t>(node.inputs[0])];
      continue;
    }

    if (is_shape_only(node.op)) {
      // Walk through any chain of shape-only producers: only the ultimate
      // data source and this node's final dims matter. (Bypassing an
      // intermediate as an *input* is safe even if that intermediate is a
      // graph output — it still remaps to its own emitted node.)
      NodeId source = node.inputs[0];
      while (is_shape_only(g.node(source).op)) source = g.node(source).inputs[0];
      const NodeId src = remap[static_cast<size_t>(source)];
      if (g.node(source).out_shape == node.out_shape) {
        remap[id] = src;  // pure no-op relabeling
        continue;
      }
      if (source != node.inputs[0]) {
        AttrMap attrs;
        attrs.set("dims", node.out_shape.dims());
        remap[id] = out.add_node(OpType::kReshape, {src}, std::move(attrs),
                                 node.name + ".collapsed");
        continue;
      }
    }

    remap[id] = copy_node_into(node, out, remap);
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
