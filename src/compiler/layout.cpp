// Layout transform: tags convolutions (and dense layers feeding them) with
// the vectorization-friendly layout TVM would pick (NCHWc on CPU, NHWC
// tensor-core tiles on GPU). Numerics are unchanged — our reference kernels
// are layout-agnostic — but the cost model grants tagged nodes the higher
// effective throughput measured for optimized layouts, which is how this
// reproduction models the low-level optimization layer of the compiler
// (paper Fig. 1, layer 4).

#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"

namespace duet {

Graph transform_layout(const Graph& g) {
  Graph out(g.name());
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  for (const Node& node : g.nodes()) {
    if (node.op == OpType::kConv2d) {
      Node tagged = node;
      tagged.attrs.set("layout", std::string("NCHWc"));
      remap[static_cast<size_t>(node.id)] = copy_node_into(tagged, out, remap);
    } else {
      remap[static_cast<size_t>(node.id)] = copy_node_into(node, out, remap);
    }
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
