#pragma once

// Analytic device performance model. This is the substitution for the
// paper's physical Titan V + Xeon testbed (see DESIGN.md §1): per-node time
// is a roofline term max(compute, memory) plus kernel-launch overhead, with
// per-operator-class effective throughput calibrated so that the Table II
// subgraph costs of the paper are reproduced (RNNs launch-overhead-bound and
// slow on GPU at batch 1; convolutions massively faster on GPU).

#include <cstdint>
#include <string>

#include "compiler/pass.hpp"
#include "graph/graph.hpp"

namespace duet {

enum class DeviceKind : uint8_t { kCpu = 0, kGpu = 1 };
inline constexpr int kNumDeviceKinds = 2;

const char* device_kind_name(DeviceKind kind);
DeviceKind other_device(DeviceKind kind);

// Effective-throughput description of one operator class on one device.
// utilization = eff * clamp(flops_per_launch / ref_flops, clamp_lo, clamp_hi)
// The clamp models occupancy: tiny kernels cannot fill a GPU; very large
// ones saturate it.
struct OpClassCost {
  double eff = 0.1;               // fraction of peak at the reference size
  double ref_flops = 1e6;         // flops per launch where `eff` was measured
  double clamp_lo = 1.0;          // lower clamp on the size scaling
  double clamp_hi = 1.0;          // upper clamp on the size scaling
};

struct DeviceCostParams {
  DeviceKind kind = DeviceKind::kCpu;
  std::string name = "cpu";
  double peak_gflops = 1000.0;       // dense fp32 peak
  double mem_bw_gbps = 100.0;        // streaming memory bandwidth
  double launch_overhead_s = 1e-6;   // per kernel launch / dispatch
  double framework_dispatch_s = 0;   // extra per-op cost in framework mode
  double framework_eff = 1.0;        // kernel-quality penalty in framework mode
  double layout_bonus = 1.0;         // conv speedup when layout-transformed
  double batch_gain = 0.0;           // occupancy gain per extra batch element
  double max_batch_gain = 1.0;       // cap on the batch multiplier

  OpClassCost dense;
  OpClassCost conv;
  OpClassCost rnn;
  OpClassCost attention;
  OpClassCost elementwise;
  OpClassCost fallback;
};

// Interconnect (PCIe) model: time = latency + bytes / bandwidth. Matches the
// linear latency-vs-size shape of the paper's Fig. 5 microbenchmark.
struct TransferParams {
  double latency_s = 10e-6;
  double bandwidth_gbps = 12.0;  // PCIe 3.0 x16 effective
};

double transfer_time_seconds(uint64_t bytes, const TransferParams& link);

// The raw analytic quantities the roofline formula consumes for one node.
// node_time_seconds fills this from the concrete graph; the symbolic layer
// (analysis/symbolic) fills it by specializing SymExpr costs at a binding.
// Both feed node_time_from_quantities, so the two paths cannot drift.
struct NodeCostQuantities {
  OpType op = OpType::kIdentity;
  bool metadata = true;       // terminals/reshape/flatten/identity: zero time
  double flops = 0.0;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  int64_t launches = 0;
  int64_t batch = 1;          // max(1, out dim 0)
  bool layout_tagged = false; // conv rewarded by the layout pass
};

// True for ops the cost model treats as free metadata/movement.
bool is_metadata_op(OpType op);

// Extracts the quantities for one concrete node.
NodeCostQuantities node_cost_quantities(const Graph& graph, const Node& node);

// Roofline evaluation shared by the concrete and symbolic paths. `node` is
// optional and only consulted by options.schedule_quality (the symbolic
// crossover solver has no Node and passes nullptr).
double node_time_from_quantities(const NodeCostQuantities& q,
                                 const DeviceCostParams& params,
                                 const CompileOptions& options,
                                 const Node* node = nullptr);

// Modeled execution time of one node. Returns 0 for pure-metadata ops
// (reshape/flatten/identity) and terminals.
double node_time_seconds(const Graph& graph, const Node& node,
                         const DeviceCostParams& params,
                         const CompileOptions& options);

}  // namespace duet
