#pragma once

// Shared helper for graph-rewriting passes: copies a node into a destination
// graph, remapping its inputs through `remap`. Terminals keep their payloads
// (constant tensors are shared, not deep-copied).

#include <vector>

#include "graph/graph.hpp"

namespace duet {

// Returns the new id. `remap[old_input]` must already be valid for all
// inputs of `n`.
NodeId copy_node_into(const Node& n, Graph& dst, const std::vector<NodeId>& remap);

// Remaps and marks all of `src`'s outputs on `dst`.
void copy_outputs(const Graph& src, Graph& dst, const std::vector<NodeId>& remap);

}  // namespace duet
