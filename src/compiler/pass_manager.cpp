#include <utility>

#include "analysis/graph_verifier.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {

NodeId copy_node_into(const Node& n, Graph& dst, const std::vector<NodeId>& remap) {
  if (n.is_input()) {
    const NodeId id = dst.add_input(n.out_shape, n.name, n.out_dtype);
    if (n.value.defined()) dst.mutable_node(id).value = n.value;
    return id;
  }
  if (n.is_constant()) {
    return dst.add_constant(n.value, n.name);
  }
  std::vector<NodeId> inputs;
  inputs.reserve(n.inputs.size());
  for (NodeId in : n.inputs) {
    DUET_CHECK(remap[static_cast<size_t>(in)] != kInvalidNode)
        << "dangling remap for input " << in << " of node " << n.id;
    inputs.push_back(remap[static_cast<size_t>(in)]);
  }
  return dst.add_node(n.op, std::move(inputs), n.attrs, n.name);
}

void copy_outputs(const Graph& src, Graph& dst, const std::vector<NodeId>& remap) {
  for (NodeId out : src.outputs()) {
    const NodeId mapped = remap[static_cast<size_t>(out)];
    DUET_CHECK(mapped != kInvalidNode) << "graph output " << out << " was removed";
    dst.mark_output(mapped);
  }
}

PassManager PassManager::standard(const CompileOptions& options) {
  PassManager pm;
  if (options.enable_constant_fold) pm.add("constant_fold", fold_constants);
  if (options.enable_fusion) pm.add("simplify_shape_ops", simplify_shape_ops);
  if (options.enable_fusion) pm.add("fold_batch_norm", fold_batch_norm);
  if (options.enable_fusion) pm.add("fusion", fuse_operators);
  if (options.enable_cse) pm.add("cse", eliminate_common_subexpressions);
  if (options.enable_dce) pm.add("dce", eliminate_dead_code);
  if (options.enable_layout_transform) pm.add("layout", transform_layout);
  return pm;
}

void PassManager::add(std::string name, Pass pass) {
  passes_.push_back({std::move(name), std::move(pass)});
}

Graph PassManager::run(Graph graph) const {
  // Checked mode: the full GraphVerifier runs on the input and after every
  // pass, so a rewrite that breaks an IR invariant is reported against the
  // pass that broke it (rule + node id) instead of surfacing as downstream
  // garbage. Opted out (set_verification_enabled(false)) it degrades to the
  // cheap structural Graph::validate().
  const bool checked = verification_enabled();
  if (checked) {
    VerifyResult r = verify_graph(graph);
    r.attribute("<input>");
    r.throw_if_failed("graph handed to the pass pipeline is malformed");
  }
  static telemetry::Counter& pass_runs = telemetry::counter("compiler.pass_runs");
  for (const NamedPass& p : passes_) {
    const size_t before = graph.num_nodes();
    {
      // Pass-attributed span: where compile time actually goes, per rewrite.
      telemetry::ScopedSpan span(
          telemetry::enabled() ? "pass:" + p.name : std::string(), "compiler",
          telemetry::enabled() ? graph.name() : std::string());
      graph = p.run(graph);
      pass_runs.add(1);
    }
    if (checked) {
      VerifyResult r = verify_graph(graph);
      r.attribute("pass " + p.name);
      r.throw_if_failed("pass " + p.name + " broke IR invariants");
    } else {
      graph.validate();
    }
    DUET_LOG_DEBUG << "pass " << p.name << ": " << before << " -> "
                   << graph.num_nodes() << " nodes";
  }
  return graph;
}

}  // namespace duet
