// Operator fusion (paper §III-B "Opportunities", third point): the pass that
// makes coarse-grained partitioning worthwhile, because subgraphs that stay
// big keep their fusion opportunities. Two rewrites are performed:
//
//   1. Epilogue fusion: a unary activation whose producer is a Dense /
//      Conv2d / BatchNorm with no other consumer is folded into the
//      producer's "epilogue" attribute (TVM's conv2d+relu style fusion).
//      Cascades fold too (dense -> relu -> identity becomes one node).
//   2. Chain fusion: maximal chains of >= 2 fusible unary ops elsewhere in
//      the graph collapse into a single kElementwiseChain kernel.
//
// Both eliminate intermediate tensor materialization; the cost model charges
// fused nodes correspondingly less memory traffic and fewer kernel launches.

#include "common/error.hpp"
#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"

namespace duet {
namespace {

bool chainable(OpType op) {
  switch (op) {
    case OpType::kReLU:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kGelu:
    case OpType::kIdentity:
      return true;
    default:
      return false;
  }
}

bool epilogue_host(OpType op) {
  return op == OpType::kDense || op == OpType::kConv2d || op == OpType::kBatchNorm;
}

}  // namespace

Graph fuse_operators(const Graph& g) {
  const size_t n = g.num_nodes();

  // A node whose value escapes (graph output) must stay materialized; fusing
  // its consumer would silently change what the output refers to.
  std::vector<bool> is_output(n, false);
  for (NodeId out : g.outputs()) is_output[static_cast<size_t>(out)] = true;

  // Phase 1: decide epilogue fusions. fused_into[u] is the (transitive) host
  // node absorbing unary node u, or kInvalidNode.
  std::vector<NodeId> fused_into(n, kInvalidNode);
  std::vector<std::string> extra_epilogue(n);
  for (const Node& node : g.nodes()) {
    if (!chainable(node.op) || node.inputs.size() != 1) continue;
    const NodeId p = node.inputs[0];
    if (g.consumers(p).size() != 1) continue;  // intermediate value still needed
    if (is_output[static_cast<size_t>(p)]) continue;
    const NodeId root =
        fused_into[static_cast<size_t>(p)] != kInvalidNode
            ? fused_into[static_cast<size_t>(p)]
            : p;
    if (!epilogue_host(g.node(root).op)) continue;
    fused_into[static_cast<size_t>(node.id)] = root;
    std::string& ep = extra_epilogue[static_cast<size_t>(root)];
    if (!ep.empty()) ep += ",";
    ep += op_name(node.op);
  }

  // Phase 2: decide elementwise chains among the remaining unary nodes.
  // chain_head[u] points to the first member of u's chain; members[head]
  // lists the ops in order.
  std::vector<NodeId> chain_head(n, kInvalidNode);
  std::vector<std::vector<std::string>> chain_ops(n);
  for (const Node& node : g.nodes()) {
    if (!chainable(node.op) || fused_into[static_cast<size_t>(node.id)] != kInvalidNode)
      continue;
    const NodeId p = node.inputs[0];
    const bool extend = chainable(g.node(p).op) &&
                        fused_into[static_cast<size_t>(p)] == kInvalidNode &&
                        chain_head[static_cast<size_t>(p)] != kInvalidNode &&
                        g.consumers(p).size() == 1 &&
                        !is_output[static_cast<size_t>(p)];
    const NodeId head = extend ? chain_head[static_cast<size_t>(p)] : node.id;
    chain_head[static_cast<size_t>(node.id)] = head;
    chain_ops[static_cast<size_t>(head)].push_back(op_name(node.op));
  }

  // Phase 3: rebuild.
  Graph out(g.name());
  std::vector<NodeId> remap(n, kInvalidNode);
  for (const Node& node : g.nodes()) {
    const size_t id = static_cast<size_t>(node.id);
    // Epilogue-fused unary: alias its host's new node.
    if (fused_into[id] != kInvalidNode) {
      remap[id] = remap[static_cast<size_t>(fused_into[id])];
      continue;
    }
    // Member of a multi-op chain: the head emits the fused node; every
    // member (including the head) aliases it so downstream edges resolve.
    const NodeId head = chain_head[id];
    if (head != kInvalidNode && chain_ops[static_cast<size_t>(head)].size() >= 2) {
      if (node.id == head) {
        AttrMap attrs;
        std::string joined;
        for (const std::string& opn : chain_ops[static_cast<size_t>(head)]) {
          if (!joined.empty()) joined += ",";
          joined += opn;
        }
        attrs.set("chain", joined);
        const NodeId src = remap[static_cast<size_t>(node.inputs[0])];
        remap[id] = out.add_node(OpType::kElementwiseChain, {src}, std::move(attrs),
                                 node.name + ".chain");
      } else {
        remap[id] = remap[static_cast<size_t>(head)];
      }
      continue;
    }
    // Ordinary copy; hosts pick up their accumulated epilogue.
    if (!extra_epilogue[id].empty()) {
      Node host = node;  // copy, then extend the epilogue attribute
      const std::string existing = host.attrs.get_string_or("epilogue", "");
      host.attrs.set("epilogue", existing.empty()
                                     ? extra_epilogue[id]
                                     : existing + "," + extra_epilogue[id]);
      remap[id] = copy_node_into(host, out, remap);
    } else {
      remap[id] = copy_node_into(node, out, remap);
    }
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
