#pragma once

// Lowering / "codegen": turns an (optimized) graph into a CompiledSubgraph —
// the per-device executable artifact the devices run and the profiler
// measures. In TVM terms this is the back-end stage; here the "generated
// code" is the ordered kernel list with modeled per-kernel costs, while
// numerical execution reuses the reference kernels so results stay checkable.

#include <vector>

#include "compiler/cost_model.hpp"
#include "compiler/pass.hpp"
#include "graph/graph.hpp"

namespace duet {

struct CompiledKernel {
  NodeId node = kInvalidNode;  // node in the *optimized* graph
  double flops = 0.0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  int64_t launches = 0;
  double est_time_s = 0.0;  // modeled time on the target device
};

class CompiledSubgraph {
 public:
  CompiledSubgraph() = default;
  CompiledSubgraph(Graph graph, DeviceKind device, CompileOptions options,
                   std::vector<CompiledKernel> kernels);

  const Graph& graph() const { return graph_; }
  DeviceKind device() const { return device_; }
  const CompileOptions& options() const { return options_; }
  const std::vector<CompiledKernel>& kernels() const { return kernels_; }

  // Sum of modeled kernel times.
  double est_total_time_s() const { return est_total_; }
  // Payload sizes of the graph's inputs / outputs (communication analysis).
  uint64_t input_bytes() const;
  uint64_t output_bytes() const;

  // Executes numerically (reference kernels) and returns outputs.
  std::vector<Tensor> run(const std::map<NodeId, Tensor>& feeds) const;

 private:
  Graph graph_;
  DeviceKind device_ = DeviceKind::kCpu;
  CompileOptions options_;
  std::vector<CompiledKernel> kernels_;
  double est_total_ = 0.0;
};

// Full pipeline: graph-level passes (per `options`) then per-node cost
// assignment for `device`.
CompiledSubgraph compile_for_device(const Graph& graph, DeviceKind device,
                                    const CompileOptions& options,
                                    const DeviceCostParams& params);

}  // namespace duet
