#include "compiler/lowering.hpp"

#include "common/error.hpp"
#include "compiler/compile_cache.hpp"
#include "graph/fingerprint.hpp"
#include "graph/shape_inference.hpp"

namespace duet {
namespace {

CompiledSubgraph compile_uncached(const Graph& graph, DeviceKind device,
                                  const CompileOptions& options,
                                  const DeviceCostParams& params) {
  Graph optimized = PassManager::standard(options).run(graph);
  std::vector<CompiledKernel> kernels;
  kernels.reserve(optimized.num_nodes());
  for (const Node& node : optimized.nodes()) {
    if (node.is_input() || node.is_constant()) continue;
    CompiledKernel k;
    k.node = node.id;
    k.flops = node_flops(optimized, node);
    const NodeBytes b = node_bytes(optimized, node);
    k.bytes_read = b.read;
    k.bytes_written = b.written;
    k.launches = node_kernel_launches(optimized, node);
    k.est_time_s = node_time_seconds(optimized, node, params, options);
    kernels.push_back(k);
  }
  return CompiledSubgraph(std::move(optimized), device, options, std::move(kernels));
}

}  // namespace

CompiledSubgraph::CompiledSubgraph(Graph graph, DeviceKind device,
                                   CompileOptions options,
                                   std::vector<CompiledKernel> kernels)
    : graph_(std::move(graph)),
      device_(device),
      options_(options),
      kernels_(std::move(kernels)) {
  for (const CompiledKernel& k : kernels_) est_total_ += k.est_time_s;
}

uint64_t CompiledSubgraph::input_bytes() const {
  uint64_t total = 0;
  for (NodeId id : graph_.input_ids()) {
    total += node_output_bytes(graph_.node(id));
  }
  return total;
}

uint64_t CompiledSubgraph::output_bytes() const {
  uint64_t total = 0;
  for (NodeId id : graph_.outputs()) {
    total += node_output_bytes(graph_.node(id));
  }
  return total;
}

std::vector<Tensor> CompiledSubgraph::run(const std::map<NodeId, Tensor>& feeds) const {
  return evaluate_graph(graph_, feeds);
}

CompiledSubgraph compile_for_device(const Graph& graph, DeviceKind device,
                                    const CompileOptions& options,
                                    const DeviceCostParams& params) {
  DUET_CHECK(params.kind == device) << "cost params are for the wrong device";
  CompileCache& cache = CompileCache::instance();
  const uint64_t options_key = compile_options_key(options);
  if (!cache.enabled() || options_key == kUncacheableOptionsKey) {
    cache.count_bypass();
    return compile_uncached(graph, device, options, params);
  }
  // Keyed by the value-inclusive fingerprint: the artifact embeds constant
  // tensors, so structure alone is not a safe identity for numeric reuse.
  // Node names fold in on top — the artifact embeds those too, and the plan
  // matches feeds against the compiled graph's input names.
  const GraphFingerprint fp = fingerprint_graph(graph);
  const uint64_t key = hash_mix(
      CompileCache::make_key(fp, device, options_key, device_params_key(params)),
      fingerprint_names(graph));
  if (std::shared_ptr<const CompiledSubgraph> hit = cache.lookup(key)) {
    return *hit;
  }
  auto compiled = std::make_shared<const CompiledSubgraph>(
      compile_uncached(graph, device, options, params));
  cache.insert(key, compiled);
  return *compiled;
}

}  // namespace duet
