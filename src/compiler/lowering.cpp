#include "compiler/lowering.hpp"

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace duet {

CompiledSubgraph::CompiledSubgraph(Graph graph, DeviceKind device,
                                   CompileOptions options,
                                   std::vector<CompiledKernel> kernels)
    : graph_(std::move(graph)),
      device_(device),
      options_(options),
      kernels_(std::move(kernels)) {
  for (const CompiledKernel& k : kernels_) est_total_ += k.est_time_s;
}

uint64_t CompiledSubgraph::input_bytes() const {
  uint64_t total = 0;
  for (NodeId id : graph_.input_ids()) {
    total += node_output_bytes(graph_.node(id));
  }
  return total;
}

uint64_t CompiledSubgraph::output_bytes() const {
  uint64_t total = 0;
  for (NodeId id : graph_.outputs()) {
    total += node_output_bytes(graph_.node(id));
  }
  return total;
}

std::vector<Tensor> CompiledSubgraph::run(const std::map<NodeId, Tensor>& feeds) const {
  return evaluate_graph(graph_, feeds);
}

CompiledSubgraph compile_for_device(const Graph& graph, DeviceKind device,
                                    const CompileOptions& options,
                                    const DeviceCostParams& params) {
  DUET_CHECK(params.kind == device) << "cost params are for the wrong device";
  Graph optimized = PassManager::standard(options).run(graph);
  std::vector<CompiledKernel> kernels;
  kernels.reserve(optimized.num_nodes());
  for (const Node& node : optimized.nodes()) {
    if (node.is_input() || node.is_constant()) continue;
    CompiledKernel k;
    k.node = node.id;
    k.flops = node_flops(optimized, node);
    const NodeBytes b = node_bytes(optimized, node);
    k.bytes_read = b.read;
    k.bytes_written = b.written;
    k.launches = node_kernel_launches(optimized, node);
    k.est_time_s = node_time_seconds(optimized, node, params, options);
    kernels.push_back(k);
  }
  return CompiledSubgraph(std::move(optimized), device, options, std::move(kernels));
}

}  // namespace duet
