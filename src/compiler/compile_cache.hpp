#pragma once

// Content-addressed cache of CompiledSubgraph artifacts. compile_for_device
// consults it transparently, so every caller — the profiler (subgraph ×
// device), ExecutionPlan::build (which used to recompile what the profiler
// had just compiled), the single-device baselines — shares one artifact per
// equivalence class.
//
// The key is the *value-inclusive* graph fingerprint (a CompiledSubgraph
// embeds its constant tensors, so structurally identical subgraphs with
// different weights must not share an entry) plus the node-name hash (the
// artifact also embeds names, and ExecutionPlan::build matches feeds against
// the compiled graph's input names) mixed with the target device,
// a CompileOptions key, and a DeviceCostParams key (the hardware-sensitivity
// sweeps recompile under varied params — stale costs would be silently
// wrong). Options carrying a schedule_quality hook are uncacheable: the
// std::function has no identity to hash, so those compiles bypass.
//
// Entries are shared_ptr<const CompiledSubgraph>; a hit returns a by-value
// copy, which is cheap because Graph/Tensor copies alias their buffers.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "compiler/lowering.hpp"
#include "graph/fingerprint.hpp"

namespace duet {

// Sentinel options key: this compile cannot be cached (schedule_quality set).
inline constexpr uint64_t kUncacheableOptionsKey = ~0ull;

uint64_t compile_options_key(const CompileOptions& options);
uint64_t device_params_key(const DeviceCostParams& params);

class CompileCache {
 public:
  static CompileCache& instance();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bypasses = 0;
    size_t entries = 0;
  };

  static uint64_t make_key(const GraphFingerprint& fp, DeviceKind device,
                           uint64_t options_key, uint64_t params_key);

  // nullptr on miss (counts it; a following insert completes the miss).
  std::shared_ptr<const CompiledSubgraph> lookup(uint64_t key);
  void insert(uint64_t key, std::shared_ptr<const CompiledSubgraph> value);
  void count_bypass();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void clear();
  Stats stats() const;
  void reset_stats();

 private:
  CompileCache() = default;

  // Unbounded growth guard for long bench sweeps: on reaching the cap the
  // whole map is dropped (epoch reset) — correctness never depends on a hit.
  static constexpr size_t kMaxEntries = 4096;

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<const CompiledSubgraph>> map_;
  Stats stats_;
  std::atomic<bool> enabled_{true};
};

}  // namespace duet
