// Common subexpression elimination: structurally identical compute nodes
// (same op, same remapped operands, same attributes) collapse to one. This
// also re-merges the replicated placeholders the partitioner creates for
// shared nodes (paper §IV-A) when a subgraph is compiled standalone.

#include <map>
#include <sstream>

#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"

namespace duet {
namespace {

std::string node_key(const Node& node, const std::vector<NodeId>& remap) {
  std::ostringstream os;
  os << op_name(node.op) << "(";
  for (NodeId in : node.inputs) os << remap[static_cast<size_t>(in)] << ",";
  os << "){" << node.attrs.to_string() << "}";
  return os.str();
}

}  // namespace

Graph eliminate_common_subexpressions(const Graph& g) {
  Graph out(g.name());
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  std::map<std::string, NodeId> seen;
  for (const Node& node : g.nodes()) {
    const size_t id = static_cast<size_t>(node.id);
    if (node.is_input() || node.is_constant()) {
      remap[id] = copy_node_into(node, out, remap);
      continue;
    }
    const std::string key = node_key(node, remap);
    auto it = seen.find(key);
    if (it != seen.end()) {
      remap[id] = it->second;
      continue;
    }
    remap[id] = copy_node_into(node, out, remap);
    seen.emplace(key, remap[id]);
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
