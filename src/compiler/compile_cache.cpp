#include "compiler/compile_cache.hpp"

#include <cstring>

#include "telemetry/metrics.hpp"

namespace duet {
namespace {

uint64_t hash_double(uint64_t h, double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return hash_mix(h, bits);
}

uint64_t hash_op_class(uint64_t h, const OpClassCost& c) {
  h = hash_double(h, c.eff);
  h = hash_double(h, c.ref_flops);
  h = hash_double(h, c.clamp_lo);
  return hash_double(h, c.clamp_hi);
}

}  // namespace

uint64_t compile_options_key(const CompileOptions& options) {
  if (options.schedule_quality) return kUncacheableOptionsKey;
  uint64_t bits = 0;
  bits |= options.enable_fusion ? 1u : 0u;
  bits |= options.enable_constant_fold ? 2u : 0u;
  bits |= options.enable_cse ? 4u : 0u;
  bits |= options.enable_dce ? 8u : 0u;
  bits |= options.enable_layout_transform ? 16u : 0u;
  bits |= options.framework_mode ? 32u : 0u;
  return hash_mix(0x434F4D50494C4F50ull, bits);
}

uint64_t device_params_key(const DeviceCostParams& params) {
  uint64_t h = hash_mix(0x4445564943455053ull, static_cast<uint64_t>(params.kind));
  h = hash_bytes(params.name.data(), params.name.size(), h);
  h = hash_double(h, params.peak_gflops);
  h = hash_double(h, params.mem_bw_gbps);
  h = hash_double(h, params.launch_overhead_s);
  h = hash_double(h, params.framework_dispatch_s);
  h = hash_double(h, params.framework_eff);
  h = hash_double(h, params.layout_bonus);
  h = hash_double(h, params.batch_gain);
  h = hash_double(h, params.max_batch_gain);
  h = hash_op_class(h, params.dense);
  h = hash_op_class(h, params.conv);
  h = hash_op_class(h, params.rnn);
  h = hash_op_class(h, params.attention);
  h = hash_op_class(h, params.elementwise);
  return hash_op_class(h, params.fallback);
}

CompileCache& CompileCache::instance() {
  static CompileCache cache;
  return cache;
}

uint64_t CompileCache::make_key(const GraphFingerprint& fp, DeviceKind device,
                                uint64_t options_key, uint64_t params_key) {
  uint64_t h = hash_mix(fp.structural, fp.values);
  h = hash_mix(h, static_cast<uint64_t>(device));
  h = hash_mix(h, options_key);
  return hash_mix(h, params_key);
}

std::shared_ptr<const CompiledSubgraph> CompileCache::lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    static telemetry::Counter& misses = telemetry::counter("compile.cache.misses");
    misses.add(1);
    return nullptr;
  }
  ++stats_.hits;
  static telemetry::Counter& hits = telemetry::counter("compile.cache.hits");
  hits.add(1);
  return it->second;
}

void CompileCache::insert(uint64_t key,
                          std::shared_ptr<const CompiledSubgraph> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.size() >= kMaxEntries) map_.clear();
  map_[key] = std::move(value);
}

void CompileCache::count_bypass() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.bypasses;
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = map_.size();
  return s;
}

void CompileCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Stats{};
}

}  // namespace duet
