// Constant folding: any compute node whose operands are all constants is
// evaluated at compile time and replaced by a constant carrying the result.
// Typical win in the model zoo: weight-preprocessing chains (transposes,
// folded batch-norm scale computations).

#include "compiler/pass.hpp"
#include "compiler/rewrite.hpp"

namespace duet {

Graph fold_constants(const Graph& g) {
  Graph out(g.name());
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  for (const Node& node : g.nodes()) {
    const size_t id = static_cast<size_t>(node.id);
    if (node.is_input() || node.is_constant()) {
      remap[id] = copy_node_into(node, out, remap);
      continue;
    }
    bool all_const = !node.inputs.empty();
    for (NodeId in : node.inputs) {
      if (!out.node(remap[static_cast<size_t>(in)]).is_constant()) {
        all_const = false;
        break;
      }
    }
    if (all_const) {
      std::vector<Tensor> inputs;
      inputs.reserve(node.inputs.size());
      for (NodeId in : node.inputs) {
        inputs.push_back(out.node(remap[static_cast<size_t>(in)]).value);
      }
      remap[id] = out.add_constant(evaluate_node(node, inputs), node.name + ".folded");
    } else {
      remap[id] = copy_node_into(node, out, remap);
    }
  }
  copy_outputs(g, out, remap);
  return out;
}

}  // namespace duet
