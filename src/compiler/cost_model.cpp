#include "compiler/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace duet {
namespace {

const OpClassCost& class_of(const DeviceCostParams& p, OpType op) {
  switch (op) {
    case OpType::kDense:
    case OpType::kMatMul:
    case OpType::kBatchMatMul:
      return p.dense;
    case OpType::kConv2d:
      return p.conv;
    case OpType::kLSTM:
    case OpType::kGRU:
      return p.rnn;
    case OpType::kMultiHeadAttention:
      return p.attention;
    default:
      return p.elementwise;
  }
}

int64_t node_batch(const Node& node) {
  if (node.out_shape.rank() == 0) return 1;
  return std::max<int64_t>(1, node.out_shape.dim(0));
}

}  // namespace

bool is_metadata_op(OpType op) {
  switch (op) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kIdentity:
      return true;
    default:
      return false;
  }
}

const char* device_kind_name(DeviceKind kind) {
  return kind == DeviceKind::kCpu ? "cpu" : "gpu";
}

DeviceKind other_device(DeviceKind kind) {
  return kind == DeviceKind::kCpu ? DeviceKind::kGpu : DeviceKind::kCpu;
}

double transfer_time_seconds(uint64_t bytes, const TransferParams& link) {
  return link.latency_s + static_cast<double>(bytes) / (link.bandwidth_gbps * 1e9);
}

NodeCostQuantities node_cost_quantities(const Graph& graph, const Node& node) {
  NodeCostQuantities q;
  q.op = node.op;
  q.metadata = is_metadata_op(node.op);
  if (q.metadata) return q;
  q.flops = node_flops(graph, node);
  const NodeBytes bytes = node_bytes(graph, node);
  q.read_bytes = bytes.read;
  q.written_bytes = bytes.written;
  q.launches = node_kernel_launches(graph, node);
  q.batch = node_batch(node);
  q.layout_tagged = node.op == OpType::kConv2d && node.attrs.has("layout");
  return q;
}

double node_time_from_quantities(const NodeCostQuantities& q,
                                 const DeviceCostParams& params,
                                 const CompileOptions& options,
                                 const Node* node) {
  if (q.metadata) return 0.0;

  const OpClassCost& cls = class_of(params, q.op);

  // Occupancy scaling with per-launch kernel size.
  const double flops_per_launch =
      q.launches > 0 ? q.flops / static_cast<double>(q.launches) : q.flops;
  double util = cls.eff;
  if (cls.ref_flops > 0.0 && cls.clamp_hi > cls.clamp_lo) {
    util *= std::clamp(flops_per_launch / cls.ref_flops, cls.clamp_lo, cls.clamp_hi);
  }

  // Occupancy scaling with batch size (how the paper's Fig. 17 batch sweep
  // behaves: GPUs keep gaining throughput as the batch grows).
  const double batch = static_cast<double>(q.batch);
  util *= std::min(params.max_batch_gain, 1.0 + params.batch_gain * (batch - 1.0));

  // Low-level layout optimization (the compiler's layout pass tags convs).
  if (q.layout_tagged) util *= params.layout_bonus;

  if (options.framework_mode) util *= params.framework_eff;
  if (options.schedule_quality && node != nullptr) {
    util *= options.schedule_quality(*node, static_cast<int>(params.kind));
  }
  DUET_CHECK_GT(util, 0.0) << "non-positive utilization for " << op_name(q.op);

  const double compute_s = q.flops / (params.peak_gflops * 1e9 * util);
  const double memory_s = static_cast<double>(q.read_bytes + q.written_bytes) /
                          (params.mem_bw_gbps * 1e9);

  double t = static_cast<double>(q.launches) * params.launch_overhead_s +
             std::max(compute_s, memory_s);
  if (options.framework_mode) t += params.framework_dispatch_s;
  return t;
}

double node_time_seconds(const Graph& graph, const Node& node,
                         const DeviceCostParams& params,
                         const CompileOptions& options) {
  return node_time_from_quantities(node_cost_quantities(graph, node), params,
                                   options, &node);
}

}  // namespace duet
