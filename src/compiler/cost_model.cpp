#include "compiler/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/shape_inference.hpp"

namespace duet {
namespace {

const OpClassCost& class_of(const DeviceCostParams& p, OpType op) {
  switch (op) {
    case OpType::kDense:
    case OpType::kMatMul:
    case OpType::kBatchMatMul:
      return p.dense;
    case OpType::kConv2d:
      return p.conv;
    case OpType::kLSTM:
    case OpType::kGRU:
      return p.rnn;
    case OpType::kMultiHeadAttention:
      return p.attention;
    default:
      return p.elementwise;
  }
}

int64_t node_batch(const Node& node) {
  if (node.out_shape.rank() == 0) return 1;
  return std::max<int64_t>(1, node.out_shape.dim(0));
}

bool is_metadata_op(OpType op) {
  switch (op) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kIdentity:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* device_kind_name(DeviceKind kind) {
  return kind == DeviceKind::kCpu ? "cpu" : "gpu";
}

DeviceKind other_device(DeviceKind kind) {
  return kind == DeviceKind::kCpu ? DeviceKind::kGpu : DeviceKind::kCpu;
}

double transfer_time_seconds(uint64_t bytes, const TransferParams& link) {
  return link.latency_s + static_cast<double>(bytes) / (link.bandwidth_gbps * 1e9);
}

double node_time_seconds(const Graph& graph, const Node& node,
                         const DeviceCostParams& params,
                         const CompileOptions& options) {
  if (is_metadata_op(node.op)) return 0.0;

  const double flops = node_flops(graph, node);
  const NodeBytes bytes = node_bytes(graph, node);
  const int64_t launches = node_kernel_launches(graph, node);

  const OpClassCost& cls = class_of(params, node.op);

  // Occupancy scaling with per-launch kernel size.
  const double flops_per_launch =
      launches > 0 ? flops / static_cast<double>(launches) : flops;
  double util = cls.eff;
  if (cls.ref_flops > 0.0 && cls.clamp_hi > cls.clamp_lo) {
    util *= std::clamp(flops_per_launch / cls.ref_flops, cls.clamp_lo, cls.clamp_hi);
  }

  // Occupancy scaling with batch size (how the paper's Fig. 17 batch sweep
  // behaves: GPUs keep gaining throughput as the batch grows).
  const double batch = static_cast<double>(node_batch(node));
  util *= std::min(params.max_batch_gain, 1.0 + params.batch_gain * (batch - 1.0));

  // Low-level layout optimization (the compiler's layout pass tags convs).
  if (node.op == OpType::kConv2d && node.attrs.has("layout")) {
    util *= params.layout_bonus;
  }

  if (options.framework_mode) util *= params.framework_eff;
  if (options.schedule_quality) {
    util *= options.schedule_quality(node, static_cast<int>(params.kind));
  }
  DUET_CHECK_GT(util, 0.0) << "non-positive utilization for " << op_name(node.op);

  const double compute_s = flops / (params.peak_gflops * 1e9 * util);
  const double memory_s = static_cast<double>(bytes.read + bytes.written) /
                          (params.mem_bw_gbps * 1e9);

  double t = static_cast<double>(launches) * params.launch_overhead_s +
             std::max(compute_s, memory_s);
  if (options.framework_mode) t += params.framework_dispatch_s;
  return t;
}

}  // namespace duet
