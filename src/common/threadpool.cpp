#include "common/threadpool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace duet {
namespace {

// Set while a worker thread of some pool executes a task; parallel_for from
// inside that pool must not block the worker on queued sub-tasks.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    current_pool = this;
    task();
    current_pool = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DUET_CHECK(!stop_) << "submit on stopped ThreadPool";
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_task_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn,
                              size_t inline_below) {
  if (n == 0) return;
  const size_t workers = workers_.size();
  // Below the grain, task dispatch overhead exceeds the work itself. Nested
  // calls from this pool's own workers always run inline (deadlock safety).
  if (workers <= 1 || n < inline_below || current_pool == this) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(workers, n);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, n);
    if (begin >= end) break;
    futures.push_back(submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace duet
