#include "common/rng.hpp"

#include <cmath>

namespace duet {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::lognormal_factor(double sigma) {
  // Median of exp(N(0, sigma)) is exactly 1, so the factor only fattens the
  // upper tail without biasing the median latency.
  return std::exp(normal(0.0, sigma));
}

bool Rng::coin(double p_true) { return uniform() < p_true; }

void Rng::fill_normal(std::vector<float>& out, float stddev) {
  std::normal_distribution<float> dist(0.0f, stddev);
  for (float& x : out) x = dist(engine_);
}

}  // namespace duet
