#pragma once

// Deterministic random number generation. All stochastic components of DUET
// (weight init, latency noise, random scheduling baselines) draw from an
// explicitly seeded Rng so experiments are reproducible run-to-run.

#include <cstdint>
#include <random>
#include <vector>

namespace duet {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);
  // Normal with the given mean / stddev.
  double normal(double mean = 0.0, double stddev = 1.0);
  // Log-normal noise factor with median 1.0; `sigma` controls tail weight.
  // Used to model run-to-run latency variation (P99 / P99.9 experiments).
  double lognormal_factor(double sigma);
  // Bernoulli trial.
  bool coin(double p_true = 0.5);

  // Fills `out` with i.i.d. normal(0, stddev) — weight initialization.
  void fill_normal(std::vector<float>& out, float stddev);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(uniform_int(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace duet
