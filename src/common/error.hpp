#pragma once

// Error handling for DUET.
//
// Invariant violations and user-facing precondition failures throw
// duet::Error (derived from std::runtime_error) carrying the failing
// expression and source location. DUET_CHECK is always active — the cost of
// a predictable branch is negligible next to any tensor kernel, and silent
// corruption in a scheduler is far more expensive than a throw.

#include <sstream>
#include <stdexcept>
#include <string>

namespace duet {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

// Stream-style message builder so call sites can write
//   DUET_CHECK(a == b) << "a=" << a;
class CheckFailure {
 public:
  CheckFailure(const char* expr, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: `" << expr << "` ";
  }

  [[noreturn]] ~CheckFailure() noexcept(false) { throw Error(stream_.str()); }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Dummy sink used on the success path; all streaming is a no-op.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Converts the streamed CheckFailure chain to void so the ternary in
// DUET_CHECK type-checks. `&` binds looser than `<<`, so all streaming into
// the failure message happens first (the glog voidify idiom).
struct Voidify {
  void operator&(CheckFailure&) {}
  void operator&(CheckFailure&&) {}
};

}  // namespace detail
}  // namespace duet

// Expression-shaped so it is safe as the sole statement of an unbraced `if`
// (no dangling-else) while still supporting `DUET_CHECK(x) << "context"`.
// The CheckFailure temporary throws from its destructor at the end of the
// full expression, after the message is complete.
#define DUET_CHECK(cond)                    \
  (cond) ? (void)0                          \
         : ::duet::detail::Voidify() &      \
               ::duet::detail::CheckFailure(#cond, __FILE__, __LINE__)

#define DUET_CHECK_EQ(a, b) DUET_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DUET_CHECK_NE(a, b) DUET_CHECK((a) != (b))
#define DUET_CHECK_LT(a, b) DUET_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DUET_CHECK_LE(a, b) DUET_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DUET_CHECK_GT(a, b) DUET_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DUET_CHECK_GE(a, b) DUET_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define DUET_THROW(msg)                                    \
  do {                                                     \
    std::ostringstream duet_throw_os_;                     \
    duet_throw_os_ << __FILE__ << ":" << __LINE__ << ": "; \
    duet_throw_os_ << msg;                                 \
    throw ::duet::Error(duet_throw_os_.str());             \
  } while (0)
