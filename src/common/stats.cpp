#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace duet {

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " p50=" << p50 << " p99=" << p99
     << " p99.9=" << p999 << " min=" << min << " max=" << max;
  return os.str();
}

void LatencyRecorder::add(double sample) { samples_.push_back(sample); }

void LatencyRecorder::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

void LatencyRecorder::clear() { samples_.clear(); }

SummaryStats LatencyRecorder::summarize() const {
  SummaryStats s;
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.mean = mean_of(sorted);
  s.stddev = stddev_of(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  s.p999 = percentile_sorted(sorted, 0.999);
  return s;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  DUET_CHECK(!sorted.empty()) << "percentile of empty sample set";
  DUET_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  if (sorted.size() == 1) return sorted[0];
  // Tiny samples (n < 5) use the nearest-rank convention: the value at
  // rank ceil(q*n). Linear interpolation there would manufacture a "p99"
  // between two points neither of which is a 99th percentile of anything —
  // e.g. {0, 10} used to report p99 = 9.9. Nearest-rank reports an actual
  // observation and is the standard convention for small n.
  if (sorted.size() < 5) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    const size_t index = rank == 0 ? 0 : rank - 1;
    return sorted[std::min(index, sorted.size() - 1)];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double stddev_of(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean_of(samples);
  double acc = 0.0;
  for (double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace duet
