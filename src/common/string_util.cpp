#include "common/string_util.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace duet {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string human_count(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  return strprintf("%.2f%s", v, suffix);
}

std::string human_bytes(uint64_t bytes) {
  double v = static_cast<double>(bytes);
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return strprintf("%.1f %s", v, units[u]);
}

std::string human_time(double seconds) {
  if (seconds < 1e-6) return strprintf("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return strprintf("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return strprintf("%.3f ms", seconds * 1e3);
  return strprintf("%.3f s", seconds);
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args_copy);
  return out;
}

}  // namespace duet
