#pragma once

// Minimal leveled logger. Thread-safe; writes to stderr. Level is a process
// global so benches can silence the library (`Logger::set_level`).

#include <mutex>
#include <sstream>
#include <string>

namespace duet {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  // Emits one formatted line (timestamped, tagged) if `level` is enabled.
  // Warn/error messages also feed the telemetry counters "log.warnings" /
  // "log.errors" (when telemetry is on), regardless of the print threshold.
  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

// Parses a DUET_LOG_LEVEL-style spec: a name ("debug", "info", "warn",
// "error", "off", case-insensitive) or a numeric level 0-4. Returns
// `fallback` for anything unrecognized. The process default comes from the
// DUET_LOG_LEVEL environment variable, read once at first logger use.
LogLevel parse_log_level(const std::string& spec, LogLevel fallback);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace duet

#define DUET_LOG(level) ::duet::detail::LogMessage(::duet::LogLevel::level)
#define DUET_LOG_DEBUG DUET_LOG(kDebug)
#define DUET_LOG_INFO DUET_LOG(kInfo)
#define DUET_LOG_WARN DUET_LOG(kWarn)
#define DUET_LOG_ERROR DUET_LOG(kError)
