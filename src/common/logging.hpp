#pragma once

// Minimal leveled logger. Thread-safe; writes to stderr. Level is a process
// global so benches can silence the library (`Logger::set_level`).

#include <mutex>
#include <sstream>
#include <string>

namespace duet {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  // Emits one formatted line (timestamped, tagged) if `level` is enabled.
  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace duet

#define DUET_LOG(level) ::duet::detail::LogMessage(::duet::LogLevel::level)
#define DUET_LOG_DEBUG DUET_LOG(kDebug)
#define DUET_LOG_INFO DUET_LOG(kInfo)
#define DUET_LOG_WARN DUET_LOG(kWarn)
#define DUET_LOG_ERROR DUET_LOG(kError)
