#pragma once

// Small string helpers shared by the IR printer, DOT exporter, and the
// table-printing benchmark harnesses.

#include <cstdint>
#include <string>
#include <vector>

namespace duet {

std::vector<std::string> split(const std::string& s, char sep);
std::string join(const std::vector<std::string>& parts, const std::string& sep);
std::string trim(const std::string& s);
bool starts_with(const std::string& s, const std::string& prefix);

// 1234567 -> "1.23M", 2048 -> "2.05K"; used in reports.
std::string human_count(double v);
// Bytes with binary units: 1536 -> "1.5 KiB".
std::string human_bytes(uint64_t bytes);
// Seconds to a human latency string: 0.00234 -> "2.340 ms".
std::string human_time(double seconds);

// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace duet
