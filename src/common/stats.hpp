#pragma once

// Latency statistics used throughout the evaluation harness: mean, stddev,
// and the P50/P99/P99.9 percentiles the paper reports (Fig. 12).

#include <cstddef>
#include <string>
#include <vector>

namespace duet {

struct SummaryStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  std::string to_string() const;
};

// Accumulates samples and produces SummaryStats. Keeps every sample (the
// paper uses 5000 runs per configuration, which is tiny) so percentiles are
// exact rather than sketched.
class LatencyRecorder {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);
  void clear();

  size_t count() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  SummaryStats summarize() const;

 private:
  std::vector<double> samples_;
};

// Linear-interpolated percentile of `sorted` (must be ascending, non-empty).
// `q` in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

// Convenience: copies, sorts, interpolates.
double percentile(std::vector<double> samples, double q);

double mean_of(const std::vector<double>& samples);
double stddev_of(const std::vector<double>& samples);

}  // namespace duet
