#pragma once

// Latency statistics used throughout the evaluation harness: mean, stddev,
// and the P50/P99/P99.9 percentiles the paper reports (Fig. 12).

#include <cstddef>
#include <string>
#include <vector>

namespace duet {

struct SummaryStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  std::string to_string() const;
};

// Accumulates samples and produces SummaryStats. Keeps every sample (the
// paper uses 5000 runs per configuration, which is tiny) so percentiles are
// exact rather than sketched.
class LatencyRecorder {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);
  void clear();

  size_t count() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  SummaryStats summarize() const;

 private:
  std::vector<double> samples_;
};

// Percentile of `sorted` (must be ascending, non-empty), `q` in [0, 1].
// n >= 5: linear interpolation between the bracketing order statistics.
// n < 5: nearest-rank (the value at rank ceil(q*n)) — tiny samples return
// an actual observation instead of extrapolating a fictitious tail (p99 of
// two points is the larger point, not 99% of the way between them).
double percentile_sorted(const std::vector<double>& sorted, double q);

// Convenience: copies, sorts, then applies percentile_sorted.
double percentile(std::vector<double> samples, double q);

double mean_of(const std::vector<double>& samples);
double stddev_of(const std::vector<double>& samples);

}  // namespace duet
