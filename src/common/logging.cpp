#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {
namespace {

int initial_level() {
  const char* env = std::getenv("DUET_LOG_LEVEL");
  const LogLevel fallback = LogLevel::kWarn;
  if (env == nullptr) return static_cast<int>(fallback);
  return static_cast<int>(parse_log_level(env, fallback));
}

std::atomic<int>& level_atom() {
  static std::atomic<int> g_level{initial_level()};
  return g_level;
}

std::mutex g_write_mutex;

}  // namespace

LogLevel parse_log_level(const std::string& spec, LogLevel fallback) {
  std::string s;
  s.reserve(spec.size());
  for (char c : spec) {
    s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none" || s == "silent") return LogLevel::kOff;
  if (s.size() == 1 && s[0] >= '0' && s[0] <= '4') {
    return static_cast<LogLevel>(s[0] - '0');
  }
  return fallback;
}

void Logger::set_level(LogLevel level) {
  level_atom().store(static_cast<int>(level));
}

LogLevel Logger::level() { return static_cast<LogLevel>(level_atom().load()); }

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::write(LogLevel level, const std::string& message) {
  // Telemetry sees every warn/error, even those the print threshold drops —
  // the counters answer "did anything go wrong", not "what got printed".
  if (telemetry::enabled()) {
    if (level == LogLevel::kWarn) {
      static telemetry::Counter& warnings = telemetry::counter("log.warnings");
      warnings.add(1);
    } else if (level == LogLevel::kError) {
      static telemetry::Counter& errors = telemetry::counter("log.errors");
      errors.add(1);
    }
  }
  if (static_cast<int>(level) < level_atom().load()) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%9.4f] [%-5s] %s\n", t, level_name(level), message.c_str());
}

}  // namespace duet
