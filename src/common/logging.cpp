#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace duet {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

}  // namespace

void Logger::set_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load()); }

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%9.4f] [%-5s] %s\n", t, level_name(level), message.c_str());
}

}  // namespace duet
