#pragma once

// Wall-clock stopwatch for the real-threaded executor and micro-benchmarks.

#include <chrono>

namespace duet {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds since construction / last reset.
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace duet
