#pragma once

// Fixed-size work-queue thread pool used by (a) the CPU device to execute
// kernels with intra-op parallelism and (b) the threaded executor's device
// workers. Follows the classic condition-variable + queue design; tasks are
// type-erased std::function objects.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace duet {

class ThreadPool {
 public:
  // `num_threads == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  // Default `inline_below` for parallel_for: per-element work is assumed
  // tiny (a GEMM row), so small n runs inline rather than paying dispatch.
  static constexpr size_t kDefaultInlineThreshold = 256;

  // Runs fn(i) for i in [0, n) across the pool and blocks until all complete.
  // Work is divided into contiguous chunks (one per worker) to keep
  // cache-friendly iteration order; falls back to inline execution for n
  // smaller than `inline_below` or for a single-thread pool. Callers whose
  // per-element work is coarse (a whole batched GEMM, a subgraph compile)
  // pass a small `inline_below` so even a handful of elements fans out.
  // Re-entrant calls from a worker of this same pool run inline: blocking a
  // worker on sub-tasks that sit behind queued work could deadlock the pool.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                    size_t inline_below = kDefaultInlineThreshold);

  // Blocks until the queue is empty and all in-flight tasks finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

// Process-wide pool shared by CPU kernels (lazily constructed).
ThreadPool& global_thread_pool();

}  // namespace duet
