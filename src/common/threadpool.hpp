#pragma once

// Fixed-size work-queue thread pool used by (a) the CPU device to execute
// kernels with intra-op parallelism and (b) the threaded executor's device
// workers. Follows the classic condition-variable + queue design; tasks are
// type-erased std::function objects.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace duet {

class ThreadPool {
 public:
  // `num_threads == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [0, n) across the pool and blocks until all complete.
  // Work is divided into contiguous chunks (one per worker) to keep
  // cache-friendly iteration order; falls back to inline execution for n
  // smaller than a chunking threshold or for a single-thread pool.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  // Blocks until the queue is empty and all in-flight tasks finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

// Process-wide pool shared by CPU kernels (lazily constructed).
ThreadPool& global_thread_pool();

}  // namespace duet
