#pragma once

// Compiler-aware profiler (paper §IV-B). For each subgraph it builds a
// micro-benchmark: the subgraph is treated as a standalone model, pushed
// through the full compilation pipeline for each device (so the measured
// numbers reflect post-fusion, post-layout code — the point of being
// "compiler-aware"), then timed for a configurable number of runs. The
// records keep latency statistics and boundary I/O sizes, which the
// scheduler uses for placement and communication analysis. Profiling is an
// offline, one-time cost — and a cached one: statistics are content-
// addressed by the subgraph's *structural* fingerprint (modeled time never
// depends on constant payloads), so each structural equivalence class
// compiles and profiles once, and a warm ProfileCache (optionally persisted
// to disk) skips the measurement loop entirely.

#include <vector>

#include "common/stats.hpp"
#include "device/device.hpp"
#include "graph/fingerprint.hpp"
#include "partition/partitioner.hpp"

namespace duet {

struct DeviceProfile {
  // The artifact the timing loop ran. Only populated when this run actually
  // compiled (a ProfileCache stats hit skips compilation), and for a
  // duplicate structural class member it aliases the class representative's
  // compile — so it is valid for modeled timing, never for numerics. The
  // ExecutionPlan compiles its own artifacts (through the CompileCache).
  CompiledSubgraph compiled;
  SummaryStats stats;   // modeled latency over `runs` noisy executions
  double mean_s = 0.0;  // convenience alias of stats.mean
};

struct SubgraphProfile {
  int subgraph_id = -1;
  DeviceProfile per_device[kNumDeviceKinds];  // indexed by DeviceKind
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;

  const DeviceProfile& on(DeviceKind kind) const {
    return per_device[static_cast<int>(kind)];
  }
  double time_on(DeviceKind kind) const { return on(kind).mean_s; }
  DeviceKind faster_device() const {
    return time_on(DeviceKind::kCpu) <= time_on(DeviceKind::kGpu)
               ? DeviceKind::kCpu
               : DeviceKind::kGpu;
  }
  double best_time() const { return time_on(faster_device()); }
};

struct ProfileOptions {
  int runs = 500;          // paper: "a fixed, small number (e.g., 500)"
  bool with_noise = true;  // measured runs vary; means stay stable
  CompileOptions compile = CompileOptions::compiler_defaults();
};

class Profiler {
 public:
  explicit Profiler(DevicePair& devices) : devices_(devices) {}

  // Profiles every subgraph of the partition on both devices.
  std::vector<SubgraphProfile> profile_partition(
      const Partition& partition, const Graph& parent,
      const ProfileOptions& options = {}) const;

  // Profiles one standalone graph on one device.
  DeviceProfile profile_graph(const Graph& graph, DeviceKind kind,
                              const ProfileOptions& options = {}) const;

 private:
  // Shared measurement path: one ProfileCache lookup, then (on miss) one
  // compile — `precompiled` short-circuits it when the partition fan-out
  // already built the artifact — and the serial timing loop.
  DeviceProfile profile_one(const Graph& graph, const GraphFingerprint& fp,
                            DeviceKind kind, const ProfileOptions& options,
                            const CompiledSubgraph* precompiled) const;

  DevicePair& devices_;
};

}  // namespace duet
