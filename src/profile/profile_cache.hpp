#pragma once

// Content-addressed cache of profiling statistics. Profiling is modeled-time
// only, and the model depends exclusively on the compiled kernels' shapes,
// flops and launch counts — never on constant payloads — so stats are keyed
// by the *structural* graph fingerprint: every member of a structural
// equivalence class (the repeated RNN cells / residual blocks of the zoo)
// profiles once.
//
// The key also folds in the device, its cost params, the noise sigma, and
// the full ProfileOptions (runs, with_noise, compile options): any knob that
// changes the measured distribution changes the key.
//
// Persistence: `open_disk(path, calibration_key)` loads a versioned text
// file into the in-memory map so repeated duet_cli / bench runs skip
// profiling entirely; `flush()` writes the map back. The header carries a
// format version and the calibration fingerprint — on any mismatch the file
// is ignored (cache invalidated) and overwritten at the next flush.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/stats.hpp"
#include "device/device.hpp"
#include "graph/fingerprint.hpp"
#include "profile/profiler.hpp"

namespace duet {

// Everything that shapes one profiling measurement, folded into one key.
uint64_t profile_stats_key(const GraphFingerprint& fp, DeviceKind device,
                           const ProfileOptions& options,
                           const DeviceCostParams& params, double noise_sigma);

// Fingerprint of the whole calibrated testbed (both devices' params + noise
// sigmas + link). Recalibration invalidates every persisted profile.
uint64_t calibration_fingerprint(const DevicePair& devices);

class ProfileCache {
 public:
  static ProfileCache& instance();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t disk_loaded = 0;  // entries read from the last open_disk
    size_t entries = 0;
  };

  bool lookup(uint64_t key, SummaryStats* out);
  void insert(uint64_t key, const SummaryStats& stats);
  // Counter-neutral probe: lets the profiler plan its compile fan-out
  // without perturbing the hit/miss statistics the tests assert on.
  bool contains(uint64_t key) const;

  // Loads `path` into memory. Returns the number of entries accepted; a
  // missing file, wrong version, or wrong calibration key loads nothing
  // (and flush() will then rewrite the file under the new calibration).
  size_t open_disk(const std::string& path, uint64_t calibration_key);
  // Writes the in-memory map to the opened path (no-op when none is open).
  void flush();
  void close_disk();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void clear();
  Stats stats() const;
  void reset_stats();

 private:
  ProfileCache() = default;

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, SummaryStats> map_;
  Stats stats_;
  std::atomic<bool> enabled_{true};
  std::string disk_path_;
  uint64_t calibration_key_ = 0;
};

}  // namespace duet
