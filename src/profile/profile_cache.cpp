#include "profile/profile_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "compiler/compile_cache.hpp"
#include "telemetry/metrics.hpp"

namespace duet {
namespace {

constexpr const char* kMagic = "duet-profile-cache";
constexpr int kFormatVersion = 1;

uint64_t hash_double(uint64_t h, double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return hash_mix(h, bits);
}

}  // namespace

uint64_t profile_stats_key(const GraphFingerprint& fp, DeviceKind device,
                           const ProfileOptions& options,
                           const DeviceCostParams& params, double noise_sigma) {
  uint64_t h = hash_mix(0x50524F4649434143ull, fp.structural);
  h = hash_mix(h, static_cast<uint64_t>(device));
  h = hash_mix(h, static_cast<uint64_t>(options.runs));
  h = hash_mix(h, options.with_noise ? 1u : 0u);
  h = hash_mix(h, compile_options_key(options.compile));
  h = hash_mix(h, device_params_key(params));
  return hash_double(h, options.with_noise ? noise_sigma : 0.0);
}

uint64_t calibration_fingerprint(const DevicePair& devices) {
  uint64_t h = hash_mix(0x43414C4942524154ull, kFormatVersion);
  h = hash_mix(h, device_params_key(devices.cpu->params()));
  h = hash_double(h, devices.cpu->noise_sigma());
  h = hash_mix(h, device_params_key(devices.gpu->params()));
  h = hash_double(h, devices.gpu->noise_sigma());
  h = hash_double(h, devices.link->params().latency_s);
  return hash_double(h, devices.link->params().bandwidth_gbps);
}

ProfileCache& ProfileCache::instance() {
  static ProfileCache cache;
  return cache;
}

bool ProfileCache::lookup(uint64_t key, SummaryStats* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    static telemetry::Counter& misses = telemetry::counter("profile.cache.misses");
    misses.add(1);
    return false;
  }
  ++stats_.hits;
  static telemetry::Counter& hits = telemetry::counter("profile.cache.hits");
  hits.add(1);
  if (out != nullptr) *out = it->second;
  return true;
}

void ProfileCache::insert(uint64_t key, const SummaryStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  map_[key] = stats;
}

bool ProfileCache::contains(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.count(key) > 0;
}

size_t ProfileCache::open_disk(const std::string& path, uint64_t calibration_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_path_ = path;
  calibration_key_ = calibration_key;
  stats_.disk_loaded = 0;

  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  char magic[32] = {0};
  int version = 0;
  uint64_t calib = 0;
  size_t accepted = 0;
  if (std::fscanf(f, "%31s v%d calib %" SCNx64 "\n", magic, &version, &calib) == 3 &&
      std::strcmp(magic, kMagic) == 0 && version == kFormatVersion &&
      calib == calibration_key) {
    uint64_t key = 0;
    SummaryStats s;
    unsigned long long count = 0;
    while (std::fscanf(f, "%" SCNx64 " %llu %lg %lg %lg %lg %lg %lg %lg %lg\n",
                       &key, &count, &s.mean, &s.stddev, &s.min, &s.max, &s.p50,
                       &s.p90, &s.p99, &s.p999) == 10) {
      s.count = static_cast<size_t>(count);
      map_[key] = s;
      ++accepted;
    }
  }
  std::fclose(f);
  stats_.disk_loaded = accepted;
  return accepted;
}

void ProfileCache::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (disk_path_.empty()) return;
  const std::filesystem::path path(disk_path_);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::FILE* f = std::fopen(disk_path_.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "%s v%d calib %" PRIx64 "\n", kMagic, kFormatVersion,
               calibration_key_);
  for (const auto& [key, s] : map_) {
    std::fprintf(f, "%" PRIx64 " %llu %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                 key, static_cast<unsigned long long>(s.count), s.mean, s.stddev,
                 s.min, s.max, s.p50, s.p90, s.p99, s.p999);
  }
  std::fclose(f);
}

void ProfileCache::close_disk() {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_path_.clear();
  calibration_key_ = 0;
}

void ProfileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

ProfileCache::Stats ProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = map_.size();
  return s;
}

void ProfileCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t loaded = stats_.disk_loaded;
  stats_ = Stats{};
  stats_.disk_loaded = loaded;
}

}  // namespace duet
