#include "profile/profiler.hpp"

#include "common/error.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {

DeviceProfile Profiler::profile_graph(const Graph& graph, DeviceKind kind,
                                      const ProfileOptions& options) const {
  telemetry::ScopedSpan span(
      telemetry::enabled() ? "profile:" + graph.name() : std::string(),
      "profile", device_kind_name(kind));
  Device& dev = devices_.device(kind);
  DeviceProfile prof;
  prof.compiled = compile_for_device(graph, kind, options.compile, dev.params());
  LatencyRecorder recorder;
  DUET_CHECK_GT(options.runs, 0);
  for (int i = 0; i < options.runs; ++i) {
    recorder.add(dev.modeled_time(prof.compiled, options.with_noise));
  }
  prof.stats = recorder.summarize();
  prof.mean_s = prof.stats.mean;
  static telemetry::Counter& runs = telemetry::counter("profile.runs");
  static telemetry::Counter& graphs = telemetry::counter("profile.graphs");
  runs.add(static_cast<uint64_t>(options.runs));
  graphs.add(1);
  return prof;
}

std::vector<SubgraphProfile> Profiler::profile_partition(
    const Partition& partition, const Graph& parent,
    const ProfileOptions& options) const {
  telemetry::ScopedSpan span("profile-partition", "profile", parent.name());
  std::vector<SubgraphProfile> out;
  out.reserve(partition.subgraphs.size());
  for (const Subgraph& sub : partition.subgraphs) {
    SubgraphProfile p;
    p.subgraph_id = sub.id;
    p.per_device[static_cast<int>(DeviceKind::kCpu)] =
        profile_graph(sub.graph, DeviceKind::kCpu, options);
    p.per_device[static_cast<int>(DeviceKind::kGpu)] =
        profile_graph(sub.graph, DeviceKind::kGpu, options);
    p.input_bytes = sub.input_bytes(parent);
    p.output_bytes = sub.output_bytes(parent);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace duet
