#include "profile/profiler.hpp"

#include <future>
#include <map>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "device/calibration.hpp"
#include "device/interconnect.hpp"
#include "profile/profile_cache.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace duet {

DeviceProfile Profiler::profile_one(const Graph& graph, const GraphFingerprint& fp,
                                    DeviceKind kind, const ProfileOptions& options,
                                    const CompiledSubgraph* precompiled) const {
  telemetry::ScopedSpan span(
      telemetry::enabled() ? "profile:" + graph.name() : std::string(),
      "profile", device_kind_name(kind));
  Device& dev = devices_.device(kind);
  DUET_CHECK_GT(options.runs, 0);
  DeviceProfile prof;
  ProfileCache& cache = ProfileCache::instance();
  const uint64_t key =
      profile_stats_key(fp, kind, options, dev.params(), dev.noise_sigma());
  if (cache.enabled() && cache.lookup(key, &prof.stats)) {
    prof.mean_s = prof.stats.mean;
    return prof;
  }
  if (precompiled != nullptr) {
    prof.compiled = *precompiled;
  } else {
    prof.compiled = compile_for_device(graph, kind, options.compile, dev.params());
    static telemetry::Counter& compiles = telemetry::counter("profile.compiles");
    compiles.add(1);
  }
  LatencyRecorder recorder;
  for (int i = 0; i < options.runs; ++i) {
    recorder.add(dev.modeled_time(prof.compiled, options.with_noise));
  }
  prof.stats = recorder.summarize();
  prof.mean_s = prof.stats.mean;
  if (cache.enabled()) cache.insert(key, prof.stats);
  static telemetry::Counter& runs = telemetry::counter("profile.runs");
  static telemetry::Counter& graphs = telemetry::counter("profile.graphs");
  runs.add(static_cast<uint64_t>(options.runs));
  graphs.add(1);
  return prof;
}

DeviceProfile Profiler::profile_graph(const Graph& graph, DeviceKind kind,
                                      const ProfileOptions& options) const {
  return profile_one(graph, fingerprint_graph(graph), kind, options, nullptr);
}

std::vector<SubgraphProfile> Profiler::profile_partition(
    const Partition& partition, const Graph& parent,
    const ProfileOptions& options) const {
  telemetry::ScopedSpan span("profile-partition", "profile", parent.name());
  const size_t n = partition.subgraphs.size();
  ProfileCache& cache = ProfileCache::instance();

  // Cache disabled (--no-cache): the pre-cache behavior, every subgraph
  // compiled and measured independently.
  if (!cache.enabled()) {
    std::vector<SubgraphProfile> out;
    out.reserve(n);
    for (const Subgraph& sub : partition.subgraphs) {
      SubgraphProfile p;
      p.subgraph_id = sub.id;
      p.per_device[static_cast<int>(DeviceKind::kCpu)] =
          profile_graph(sub.graph, DeviceKind::kCpu, options);
      p.per_device[static_cast<int>(DeviceKind::kGpu)] =
          profile_graph(sub.graph, DeviceKind::kGpu, options);
      p.input_bytes = sub.input_bytes(parent);
      p.output_bytes = sub.output_bytes(parent);
      out.push_back(std::move(p));
    }
    return out;
  }

  std::vector<GraphFingerprint> fps(n);
  for (size_t i = 0; i < n; ++i) {
    fps[i] = fingerprint_graph(partition.subgraphs[i].graph);
  }

  // Structural equivalence classes; the first member is the representative.
  std::map<uint64_t, size_t> class_rep;
  for (size_t i = 0; i < n; ++i) {
    class_rep.emplace(fps[i].structural, i);
  }

  // Compile the representatives whose stats are not already cached, fanned
  // out over subgraphs×devices on the shared pool. Only the compiles run in
  // parallel: the timing loop stays serial (below, in deterministic class
  // order) because each device's noise rng is stateful.
  struct Task {
    size_t rep;
    DeviceKind dev;
  };
  std::vector<Task> tasks;
  for (const auto& [sfp, rep] : class_rep) {
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      const DeviceKind dev = static_cast<DeviceKind>(d);
      const uint64_t key = profile_stats_key(fps[rep], dev, options,
                                             devices_.device(dev).params(),
                                             devices_.device(dev).noise_sigma());
      if (!cache.contains(key)) tasks.push_back({rep, dev});
    }
  }
  std::map<std::pair<uint64_t, int>, CompiledSubgraph> artifacts;
  if (!tasks.empty()) {
    std::mutex artifacts_mutex;
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (const Task& t : tasks) {
      futures.push_back(global_thread_pool().submit([&, t] {
        CompiledSubgraph compiled =
            compile_for_device(partition.subgraphs[t.rep].graph, t.dev,
                               options.compile, devices_.device(t.dev).params());
        std::lock_guard<std::mutex> lock(artifacts_mutex);
        artifacts.emplace(
            std::make_pair(fps[t.rep].structural, static_cast<int>(t.dev)),
            std::move(compiled));
      }));
    }
    for (auto& f : futures) f.get();
    static telemetry::Counter& compiles = telemetry::counter("profile.compiles");
    compiles.add(tasks.size());
  }

  // Serial measurement + assembly. Duplicate class members copy the
  // representative's profile directly (no cache traffic), so one run of this
  // loop measures each class at most once per device.
  std::vector<SubgraphProfile> out(n);
  for (size_t i = 0; i < n; ++i) {
    const Subgraph& sub = partition.subgraphs[i];
    SubgraphProfile& p = out[i];
    p.subgraph_id = sub.id;
    const size_t rep = class_rep.at(fps[i].structural);
    if (rep == i) {
      for (int d = 0; d < kNumDeviceKinds; ++d) {
        const DeviceKind dev = static_cast<DeviceKind>(d);
        auto it = artifacts.find(std::make_pair(fps[i].structural, d));
        p.per_device[d] =
            profile_one(sub.graph, fps[i], dev, options,
                        it != artifacts.end() ? &it->second : nullptr);
      }
    } else {
      for (int d = 0; d < kNumDeviceKinds; ++d) {
        p.per_device[d] = out[rep].per_device[d];
      }
    }
    p.input_bytes = sub.input_bytes(parent);
    p.output_bytes = sub.output_bytes(parent);
  }
  return out;
}

}  // namespace duet
