#include "graph/shape_inference.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace duet {
namespace {

const Shape& in_shape(const Graph& g, const Node& n, size_t i) {
  DUET_CHECK_LT(i, n.inputs.size()) << op_name(n.op) << " missing input " << i;
  return g.node(n.inputs[i]).out_shape;
}

int64_t pool_out(int64_t in, int64_t k, int64_t s, int64_t p) {
  return (in + 2 * p - k) / s + 1;
}

}  // namespace

InferredType infer_node_type(const Graph& g, const Node& n) {
  InferredType t;
  t.dtype = op_produces_int(n.op) ? DType::kInt32 : DType::kFloat32;
  switch (n.op) {
    case OpType::kInput:
    case OpType::kConstant:
      DUET_THROW("terminals carry explicit shapes; no inference");
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kMul: {
      const Shape& a = in_shape(g, n, 0);
      const Shape& b = in_shape(g, n, 1);
      DUET_CHECK(a == b) << op_name(n.op) << ": " << a.to_string() << " vs "
                         << b.to_string();
      t.shape = a;
      return t;
    }
    case OpType::kReLU:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kGelu:
    case OpType::kAddScalar:
    case OpType::kMulScalar:
    case OpType::kIdentity:
    case OpType::kSoftmax:
    case OpType::kElementwiseChain:
      t.shape = in_shape(g, n, 0);
      return t;
    case OpType::kBiasAdd: {
      const Shape& x = in_shape(g, n, 0);
      const Shape& b = in_shape(g, n, 1);
      DUET_CHECK_EQ(b.rank(), 1u);
      DUET_CHECK_EQ(b.dim(0), x.dim(x.rank() - 1));
      t.shape = x;
      return t;
    }
    case OpType::kLayerNorm: {
      t.shape = in_shape(g, n, 0);
      return t;
    }
    case OpType::kMatMul: {
      const Shape& a = in_shape(g, n, 0);
      const Shape& b = in_shape(g, n, 1);
      DUET_CHECK_EQ(a.rank(), 2u);
      DUET_CHECK_EQ(b.rank(), 2u);
      DUET_CHECK_EQ(a.dim(1), b.dim(0)) << "matmul K mismatch";
      t.shape = Shape{a.dim(0), b.dim(1)};
      return t;
    }
    case OpType::kBatchMatMul: {
      const Shape& a = in_shape(g, n, 0);
      const Shape& b = in_shape(g, n, 1);
      DUET_CHECK_EQ(a.rank(), 3u);
      const int64_t nb = b.rank() == 2 ? b.dim(1) : b.dim(2);
      t.shape = Shape{a.dim(0), a.dim(1), nb};
      return t;
    }
    case OpType::kDense: {
      const Shape& x = in_shape(g, n, 0);
      const Shape& w = in_shape(g, n, 1);
      DUET_CHECK_EQ(x.rank(), 2u) << "dense input must be [batch, in]";
      DUET_CHECK_EQ(w.rank(), 2u);
      DUET_CHECK_EQ(x.dim(1), w.dim(0)) << "dense in-features mismatch";
      t.shape = Shape{x.dim(0), w.dim(1)};
      return t;
    }
    case OpType::kConv2d: {
      const Shape& x = in_shape(g, n, 0);
      const Shape& w = in_shape(g, n, 1);
      DUET_CHECK_EQ(x.rank(), 4u);
      DUET_CHECK_EQ(w.rank(), 4u);
      DUET_CHECK_EQ(x.dim(1), w.dim(1)) << "conv2d channels";
      const int64_t s = n.attrs.get_int_or("stride", 1);
      const int64_t p = n.attrs.get_int_or("padding", 0);
      const int64_t oh = pool_out(x.dim(2), w.dim(2), s, p);
      const int64_t ow = pool_out(x.dim(3), w.dim(3), s, p);
      DUET_CHECK(oh > 0 && ow > 0) << "conv2d output collapsed";
      t.shape = Shape{x.dim(0), w.dim(0), oh, ow};
      return t;
    }
    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d: {
      const Shape& x = in_shape(g, n, 0);
      DUET_CHECK_EQ(x.rank(), 4u);
      const int64_t k = n.attrs.get_int("kernel");
      const int64_t s = n.attrs.get_int_or("stride", k);
      const int64_t p = n.attrs.get_int_or("padding", 0);
      t.shape = Shape{x.dim(0), x.dim(1), pool_out(x.dim(2), k, s, p),
                      pool_out(x.dim(3), k, s, p)};
      return t;
    }
    case OpType::kGlobalAvgPool: {
      const Shape& x = in_shape(g, n, 0);
      DUET_CHECK_EQ(x.rank(), 4u);
      t.shape = Shape{x.dim(0), x.dim(1)};
      return t;
    }
    case OpType::kBatchNorm: {
      t.shape = in_shape(g, n, 0);
      return t;
    }
    case OpType::kLSTM:
    case OpType::kGRU: {
      const Shape& x = in_shape(g, n, 0);
      const Shape& whh = in_shape(g, n, 2);
      DUET_CHECK_EQ(x.rank(), 3u) << "rnn input must be [batch, seq, input]";
      t.shape = Shape{x.dim(0), x.dim(1), whh.dim(0)};
      return t;
    }
    case OpType::kEmbedding: {
      const Shape& idx = in_shape(g, n, 0);
      const Shape& table = in_shape(g, n, 1);
      DUET_CHECK_EQ(idx.rank(), 2u);
      DUET_CHECK_EQ(table.rank(), 2u);
      t.shape = Shape{idx.dim(0), idx.dim(1), table.dim(1)};
      return t;
    }
    case OpType::kReduceSum:
    case OpType::kReduceMean:
    case OpType::kReduceMax: {
      const Shape& x = in_shape(g, n, 0);
      const int64_t axis = n.attrs.get_int("axis");
      DUET_CHECK(axis >= 0 && static_cast<size_t>(axis) < x.rank());
      std::vector<int64_t> dims;
      for (size_t i = 0; i < x.rank(); ++i) {
        if (static_cast<int64_t>(i) != axis) dims.push_back(x.dim(i));
      }
      if (dims.empty()) dims.push_back(1);
      t.shape = Shape(std::move(dims));
      return t;
    }
    case OpType::kArgMax: {
      const Shape& x = in_shape(g, n, 0);
      std::vector<int64_t> dims(x.dims().begin(), x.dims().end() - 1);
      if (dims.empty()) dims.push_back(1);
      t.shape = Shape(std::move(dims));
      return t;
    }
    case OpType::kConcat: {
      DUET_CHECK_GE(n.inputs.size(), 1u);
      const int64_t axis = n.attrs.get_int("axis");
      Shape first = in_shape(g, n, 0);
      DUET_CHECK(axis >= 0 && static_cast<size_t>(axis) < first.rank());
      int64_t total = 0;
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        const Shape& part = in_shape(g, n, i);
        DUET_CHECK_EQ(part.rank(), first.rank()) << "concat rank mismatch";
        for (size_t d = 0; d < first.rank(); ++d) {
          if (static_cast<int64_t>(d) == axis) continue;
          DUET_CHECK_EQ(part.dim(d), first.dim(d))
              << "concat non-axis dim mismatch at input " << i;
        }
        total += part.dim(static_cast<size_t>(axis));
      }
      t.shape = first.with_dim(static_cast<size_t>(axis), total);
      return t;
    }
    case OpType::kReshape: {
      const Shape& x = in_shape(g, n, 0);
      Shape target(n.attrs.get_ints("dims"));
      DUET_CHECK_EQ(target.numel(), x.numel()) << "reshape numel mismatch";
      t.shape = target;
      return t;
    }
    case OpType::kFlatten: {
      const Shape& x = in_shape(g, n, 0);
      DUET_CHECK_GE(x.rank(), 1u);
      t.shape = Shape{x.dim(0), x.numel() / x.dim(0)};
      return t;
    }
    case OpType::kTranspose2d: {
      const Shape& x = in_shape(g, n, 0);
      DUET_CHECK_EQ(x.rank(), 2u);
      t.shape = Shape{x.dim(1), x.dim(0)};
      return t;
    }
    case OpType::kSliceRows: {
      const Shape& x = in_shape(g, n, 0);
      const int64_t begin = n.attrs.get_int("begin");
      const int64_t end = n.attrs.get_int("end");
      DUET_CHECK(begin >= 0 && begin < end && end <= x.dim(0));
      t.shape = x.with_dim(0, end - begin);
      return t;
    }
    case OpType::kSeqLast: {
      const Shape& x = in_shape(g, n, 0);
      DUET_CHECK_EQ(x.rank(), 3u);
      t.shape = Shape{x.dim(0), x.dim(2)};
      return t;
    }
    case OpType::kMultiHeadAttention: {
      const Shape& x = in_shape(g, n, 0);
      DUET_CHECK_EQ(x.rank(), 3u);
      const int64_t heads = n.attrs.get_int("heads");
      DUET_CHECK_EQ(x.dim(2) % heads, 0);
      t.shape = x;
      return t;
    }
  }
  DUET_THROW("infer_node_type: unhandled op " << op_name(n.op));
}

double node_flops(const Graph& g, const Node& n) {
  const auto numel_out = static_cast<double>(n.out_shape.numel());
  switch (n.op) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kIdentity:
      return 0.0;
    case OpType::kMatMul: {
      const Shape& a = in_shape(g, n, 0);
      const Shape& b = in_shape(g, n, 1);
      return 2.0 * static_cast<double>(a.dim(0)) * static_cast<double>(a.dim(1)) *
             static_cast<double>(b.dim(1));
    }
    case OpType::kDense: {
      const Shape& x = in_shape(g, n, 0);
      const Shape& w = in_shape(g, n, 1);
      return 2.0 * static_cast<double>(x.dim(0)) * static_cast<double>(w.dim(0)) *
             static_cast<double>(w.dim(1));
    }
    case OpType::kBatchMatMul: {
      const Shape& a = in_shape(g, n, 0);
      return 2.0 * static_cast<double>(a.numel()) *
             static_cast<double>(n.out_shape.dim(2));
    }
    case OpType::kConv2d: {
      const Shape& w = in_shape(g, n, 1);
      // out elements * (2 * C * kh * kw)
      return numel_out * 2.0 * static_cast<double>(w.dim(1)) *
             static_cast<double>(w.dim(2)) * static_cast<double>(w.dim(3));
    }
    case OpType::kLSTM: {
      const Shape& x = in_shape(g, n, 0);
      const int64_t hidden = n.out_shape.dim(2);
      const int64_t input = x.dim(2);
      // Per step: two GEMMs into 4H gates + gate nonlinearities.
      const double per_step =
          2.0 * static_cast<double>(x.dim(0)) * 4.0 * static_cast<double>(hidden) *
              static_cast<double>(input + hidden) +
          10.0 * static_cast<double>(x.dim(0)) * static_cast<double>(hidden);
      return per_step * static_cast<double>(x.dim(1));
    }
    case OpType::kGRU: {
      const Shape& x = in_shape(g, n, 0);
      const int64_t hidden = n.out_shape.dim(2);
      const int64_t input = x.dim(2);
      const double per_step =
          2.0 * static_cast<double>(x.dim(0)) * 3.0 * static_cast<double>(hidden) *
              static_cast<double>(input + hidden) +
          8.0 * static_cast<double>(x.dim(0)) * static_cast<double>(hidden);
      return per_step * static_cast<double>(x.dim(1));
    }
    case OpType::kMultiHeadAttention: {
      const Shape& x = in_shape(g, n, 0);
      const double b = static_cast<double>(x.dim(0));
      const double s = static_cast<double>(x.dim(1));
      const double m = static_cast<double>(x.dim(2));
      // qkv + out projections + 2 * (S x S x M) score/context matmuls.
      return 2.0 * b * s * m * 3.0 * m + 2.0 * b * s * m * m + 4.0 * b * s * s * m;
    }
    case OpType::kEmbedding:
      return 0.0;  // pure gather
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
      return 5.0 * numel_out;
    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d: {
      const int64_t k = n.attrs.get_int("kernel");
      return numel_out * static_cast<double>(k * k);
    }
    case OpType::kGlobalAvgPool: {
      const Shape& x = in_shape(g, n, 0);
      return static_cast<double>(x.numel());
    }
    case OpType::kBatchNorm:
      return 2.0 * numel_out;
    case OpType::kReduceSum:
    case OpType::kReduceMean:
    case OpType::kReduceMax:
    case OpType::kArgMax: {
      const Shape& x = in_shape(g, n, 0);
      return static_cast<double>(x.numel());
    }
    case OpType::kGelu:
      return 8.0 * numel_out;
    case OpType::kSigmoid:
    case OpType::kTanh:
      return 4.0 * numel_out;
    case OpType::kElementwiseChain: {
      const auto chain = n.attrs.get_string_or("chain", "");
      const double ops =
          1.0 + static_cast<double>(std::count(chain.begin(), chain.end(), ','));
      return 4.0 * ops * numel_out;
    }
    default:
      return numel_out;  // remaining elementwise / movement ops
  }
}

int64_t node_kernel_launches(const Graph& g, const Node& n) {
  switch (n.op) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kIdentity:
      return 0;
    case OpType::kLSTM:
    case OpType::kGRU: {
      // Two GEMM launches + one fused pointwise launch per timestep; the
      // timestep loop cannot batch because of the recurrent dependence.
      const Shape& x = in_shape(g, n, 0);
      return 3 * x.dim(1);
    }
    case OpType::kMultiHeadAttention:
      return 6;  // qkv, split, scores, softmax, context, out-proj
    case OpType::kConv2d:
      return 2;  // im2col + gemm style lowering
    case OpType::kBatchMatMul:
      return 1;
    default:
      return 1;
  }
}

NodeBytes node_bytes(const Graph& g, const Node& n) {
  NodeBytes b;
  if (n.op == OpType::kEmbedding) {
    // A gather touches only the selected rows, not the whole table.
    const Node& idx = g.node(n.inputs[0]);
    b.read = static_cast<uint64_t>(idx.out_shape.numel()) * dtype_size(idx.out_dtype) +
             node_output_bytes(n);
    b.written = node_output_bytes(n);
    return b;
  }
  for (NodeId in : n.inputs) {
    const Node& p = g.node(in);
    b.read += static_cast<uint64_t>(p.out_shape.numel()) * dtype_size(p.out_dtype);
  }
  b.written = node_output_bytes(n);
  return b;
}

uint64_t node_output_bytes(const Node& n) {
  return static_cast<uint64_t>(n.out_shape.numel()) * dtype_size(n.out_dtype);
}

}  // namespace duet
