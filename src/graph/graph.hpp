#pragma once

// Adjacency-list dataflow graph IR (paper §V): each node is a tensor
// operator, each edge a producer→consumer dependency. Node ids are dense
// indices into the node table; the consumer adjacency lists are maintained
// incrementally as nodes are added.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "tensor/tensor.hpp"

namespace duet {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Node {
  NodeId id = kInvalidNode;
  OpType op = OpType::kInput;
  std::string name;               // unique human-readable label
  std::vector<NodeId> inputs;     // producer node ids, positional
  AttrMap attrs;
  Shape out_shape;
  DType out_dtype = DType::kFloat32;
  Tensor value;  // defined only for kConstant / pre-bound kInput

  bool is_constant() const { return op == OpType::kConstant; }
  bool is_input() const { return op == OpType::kInput; }
  std::string to_string() const;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Adds a node; fills in id, out_shape, out_dtype (via shape inference) and
  // a generated name if empty. Input ids must already exist.
  NodeId add_node(OpType op, std::vector<NodeId> inputs, AttrMap attrs = {},
                  std::string name = {});
  // Terminals.
  NodeId add_input(Shape shape, std::string name = {}, DType dtype = DType::kFloat32);
  NodeId add_constant(Tensor value, std::string name = {});

  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  Node& mutable_node(NodeId id);
  const std::vector<Node>& nodes() const { return nodes_; }

  // Consumers of node `id` (adjacency list).
  const std::vector<NodeId>& consumers(NodeId id) const;

  // Graph outputs; order defines the output tuple.
  void mark_output(NodeId id);
  const std::vector<NodeId>& outputs() const { return outputs_; }

  // All kInput nodes, in insertion order.
  std::vector<NodeId> input_ids() const;
  // All kConstant nodes.
  std::vector<NodeId> constant_ids() const;

  // Sum of constant (weight) bytes.
  uint64_t param_bytes() const;

  // Throws if any edge is dangling, any id is inconsistent, or any output is
  // unknown. Acyclicity holds by construction (inputs must pre-exist) and is
  // re-checked here.
  void validate() const;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> consumers_;
  std::vector<NodeId> outputs_;
};

// Executes one node on already-computed input tensors using the reference
// CPU kernels. This is the single source of operator semantics, shared by
// the interpreter, both devices, and the constant-folding pass.
Tensor evaluate_node(const Node& node, const std::vector<Tensor>& inputs);

// Reference interpreter: evaluates the whole graph in topological order.
// `feeds` maps kInput node ids to tensors; constants evaluate to their bound
// value. Returns the output tuple in graph output order.
std::vector<Tensor> evaluate_graph(const Graph& graph,
                                   const std::map<NodeId, Tensor>& feeds);

}  // namespace duet
