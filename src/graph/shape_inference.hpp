#pragma once

// Static analysis over single nodes: output shape/dtype inference, FLOP
// estimation, kernel-launch counting, and I/O byte sizes. These feed the
// compiler cost model and the device performance models.

#include "graph/graph.hpp"

namespace duet {

struct InferredType {
  Shape shape;
  DType dtype = DType::kFloat32;
};

// Infers the output type of `node`, whose inputs' types are read from
// `graph` (inputs must already be added). Throws on rank/shape errors, which
// is how graph construction bugs surface early.
InferredType infer_node_type(const Graph& graph, const Node& node);

// Floating-point operations executed by the node (multiply-add counted as 2).
double node_flops(const Graph& graph, const Node& node);

// Number of device kernel launches the node costs on a GPU-style device.
// Sequential ops (LSTM/GRU) launch per-timestep kernels, which is exactly why
// the paper finds RNNs slow on GPU at batch 1.
int64_t node_kernel_launches(const Graph& graph, const Node& node);

// Bytes read from / written to memory by the node (tensor traffic only).
struct NodeBytes {
  uint64_t read = 0;
  uint64_t written = 0;
};
NodeBytes node_bytes(const Graph& graph, const Node& node);

// Output tensor payload in bytes.
uint64_t node_output_bytes(const Node& node);

}  // namespace duet
