#include "graph/dot.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace duet {

std::string to_dot(const Graph& graph, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white];\n";

  // Group nodes by cluster label when provided.
  std::map<int, std::vector<NodeId>> clusters;
  std::vector<NodeId> loose;
  for (const Node& n : graph.nodes()) {
    if (n.is_constant() && !options.show_constants) continue;
    const int c = options.cluster ? options.cluster(n.id) : -1;
    if (c >= 0) {
      clusters[c].push_back(n.id);
    } else {
      loose.push_back(n.id);
    }
  }

  const auto emit_node = [&](NodeId id) {
    const Node& n = graph.node(id);
    os << "  n" << id << " [label=\"" << n.name << "\\n"
       << op_name(n.op) << " " << n.out_shape.to_string() << "\"";
    if (options.color) {
      const std::string c = options.color(id);
      if (!c.empty()) os << ", fillcolor=\"" << c << "\"";
    }
    os << "];\n";
  };

  for (const auto& [label, members] : clusters) {
    os << "  subgraph cluster_" << label << " {\n"
       << "    label=\"subgraph " << label << "\";\n";
    for (NodeId id : members) emit_node(id);
    os << "  }\n";
  }
  for (NodeId id : loose) emit_node(id);

  for (const Node& n : graph.nodes()) {
    if (n.is_constant() && !options.show_constants) continue;
    for (NodeId in : n.inputs) {
      const Node& p = graph.node(in);
      if (p.is_constant() && !options.show_constants) continue;
      os << "  n" << in << " -> n" << n.id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_dot_file(const Graph& graph, const std::string& path,
                    const DotOptions& options) {
  std::ofstream out(path);
  DUET_CHECK(out.good()) << "cannot open " << path;
  out << to_dot(graph, options);
  DUET_CHECK(out.good()) << "write failed: " << path;
}

}  // namespace duet
