#include "graph/builder.hpp"

#include <cmath>

#include "common/error.hpp"

namespace duet {

Graph GraphBuilder::finish(std::vector<NodeId> outputs) {
  for (NodeId out : outputs) graph_.mark_output(out);
  graph_.validate();
  return std::move(graph_);
}

NodeId GraphBuilder::input(Shape shape, const std::string& name, DType dtype) {
  return graph_.add_input(std::move(shape), name, dtype);
}

NodeId GraphBuilder::constant(Tensor value, const std::string& name) {
  return graph_.add_constant(std::move(value), name);
}

NodeId GraphBuilder::weight(Shape shape, const std::string& name) {
  DUET_CHECK_GE(shape.rank(), 1u);
  const int64_t fan_in = shape.dim(0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(std::max<int64_t>(fan_in, 1)));
  return graph_.add_constant(Tensor::randn(shape, rng_, stddev), name);
}

int64_t GraphBuilder::last_dim(NodeId x) const {
  const Shape& s = graph_.node(x).out_shape;
  DUET_CHECK_GE(s.rank(), 1u);
  return s.dim(s.rank() - 1);
}

NodeId GraphBuilder::dense(NodeId x, int64_t out_features, const std::string& act,
                           const std::string& name) {
  const int64_t in_features = last_dim(x);
  const NodeId w = weight(Shape{in_features, out_features},
                          name.empty() ? "" : name + ".w");
  const NodeId b = constant(Tensor::zeros(Shape{out_features}),
                            name.empty() ? "" : name + ".b");
  AttrMap attrs;
  if (!act.empty()) attrs.set("epilogue", act);
  return graph_.add_node(OpType::kDense, {x, w, b}, std::move(attrs), name);
}

NodeId GraphBuilder::conv2d(NodeId x, int64_t out_channels, int kernel, int stride,
                            int padding, const std::string& name) {
  const Shape& xs = graph_.node(x).out_shape;
  DUET_CHECK_EQ(xs.rank(), 4u) << "conv2d input must be NCHW";
  const int64_t in_channels = xs.dim(1);
  Tensor w(Shape{out_channels, in_channels, kernel, kernel});
  {
    const float stddev = std::sqrt(
        2.0f / static_cast<float>(in_channels * kernel * kernel));
    std::vector<float> tmp(static_cast<size_t>(w.numel()));
    rng_.fill_normal(tmp, stddev);
    std::copy(tmp.begin(), tmp.end(), w.data<float>());
  }
  const NodeId wn = constant(std::move(w), name.empty() ? "" : name + ".w");
  const NodeId bn = constant(Tensor::zeros(Shape{out_channels}),
                             name.empty() ? "" : name + ".b");
  AttrMap attrs;
  attrs.set("stride", static_cast<int64_t>(stride));
  attrs.set("padding", static_cast<int64_t>(padding));
  return graph_.add_node(OpType::kConv2d, {x, wn, bn}, std::move(attrs), name);
}

NodeId GraphBuilder::batch_norm(NodeId x, const std::string& name) {
  const Shape& xs = graph_.node(x).out_shape;
  DUET_CHECK_EQ(xs.rank(), 4u);
  const int64_t c = xs.dim(1);
  const NodeId scale = constant(Tensor::full(Shape{c}, 1.0f),
                                name.empty() ? "" : name + ".scale");
  const NodeId shift = constant(Tensor::zeros(Shape{c}),
                                name.empty() ? "" : name + ".shift");
  return graph_.add_node(OpType::kBatchNorm, {x, scale, shift}, {}, name);
}

NodeId GraphBuilder::lstm(NodeId x, int64_t hidden, const std::string& name) {
  const int64_t input = last_dim(x);
  const NodeId w_ih = weight(Shape{input, 4 * hidden},
                             name.empty() ? "" : name + ".w_ih");
  const NodeId w_hh = weight(Shape{hidden, 4 * hidden},
                             name.empty() ? "" : name + ".w_hh");
  const NodeId bias = constant(Tensor::zeros(Shape{4 * hidden}),
                               name.empty() ? "" : name + ".bias");
  return graph_.add_node(OpType::kLSTM, {x, w_ih, w_hh, bias}, {}, name);
}

NodeId GraphBuilder::gru(NodeId x, int64_t hidden, const std::string& name) {
  const int64_t input = last_dim(x);
  const NodeId w_ih = weight(Shape{input, 3 * hidden},
                             name.empty() ? "" : name + ".w_ih");
  const NodeId w_hh = weight(Shape{hidden, 3 * hidden},
                             name.empty() ? "" : name + ".w_hh");
  const NodeId bias = constant(Tensor::zeros(Shape{3 * hidden}),
                               name.empty() ? "" : name + ".bias");
  return graph_.add_node(OpType::kGRU, {x, w_ih, w_hh, bias}, {}, name);
}

NodeId GraphBuilder::embedding(NodeId indices, int64_t vocab, int64_t dim,
                               const std::string& name) {
  Tensor table(Shape{vocab, dim});
  std::vector<float> tmp(static_cast<size_t>(table.numel()));
  rng_.fill_normal(tmp, 0.05f);
  std::copy(tmp.begin(), tmp.end(), table.data<float>());
  const NodeId t = constant(std::move(table), name.empty() ? "" : name + ".table");
  return graph_.add_node(OpType::kEmbedding, {indices, t}, {}, name);
}

NodeId GraphBuilder::attention(NodeId x, int64_t heads, const std::string& name) {
  const int64_t model = last_dim(x);
  const NodeId wqkv = weight(Shape{model, 3 * model},
                             name.empty() ? "" : name + ".wqkv");
  const NodeId wo = weight(Shape{model, model}, name.empty() ? "" : name + ".wo");
  AttrMap attrs;
  attrs.set("heads", heads);
  return graph_.add_node(OpType::kMultiHeadAttention, {x, wqkv, wo},
                         std::move(attrs), name);
}

NodeId GraphBuilder::layer_norm(NodeId x, const std::string& name) {
  const int64_t features = last_dim(x);
  const NodeId gamma = constant(Tensor::full(Shape{features}, 1.0f),
                                name.empty() ? "" : name + ".gamma");
  const NodeId beta = constant(Tensor::zeros(Shape{features}),
                               name.empty() ? "" : name + ".beta");
  return graph_.add_node(OpType::kLayerNorm, {x, gamma, beta}, {}, name);
}

NodeId GraphBuilder::add(NodeId a, NodeId b) {
  return graph_.add_node(OpType::kAdd, {a, b});
}

NodeId GraphBuilder::mul(NodeId a, NodeId b) {
  return graph_.add_node(OpType::kMul, {a, b});
}

NodeId GraphBuilder::relu(NodeId x) { return graph_.add_node(OpType::kReLU, {x}); }

NodeId GraphBuilder::sigmoid(NodeId x) {
  return graph_.add_node(OpType::kSigmoid, {x});
}

NodeId GraphBuilder::tanh(NodeId x) { return graph_.add_node(OpType::kTanh, {x}); }

NodeId GraphBuilder::gelu(NodeId x) { return graph_.add_node(OpType::kGelu, {x}); }

NodeId GraphBuilder::softmax(NodeId x) {
  return graph_.add_node(OpType::kSoftmax, {x});
}

NodeId GraphBuilder::matmul(NodeId a, NodeId b) {
  return graph_.add_node(OpType::kMatMul, {a, b});
}

NodeId GraphBuilder::concat(std::vector<NodeId> parts, int axis) {
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(axis));
  return graph_.add_node(OpType::kConcat, std::move(parts), std::move(attrs));
}

NodeId GraphBuilder::flatten(NodeId x) {
  return graph_.add_node(OpType::kFlatten, {x});
}

NodeId GraphBuilder::reshape(NodeId x, Shape dims) {
  AttrMap attrs;
  attrs.set("dims", dims.dims());
  return graph_.add_node(OpType::kReshape, {x}, std::move(attrs));
}

NodeId GraphBuilder::max_pool2d(NodeId x, int kernel, int stride, int padding) {
  AttrMap attrs;
  attrs.set("kernel", static_cast<int64_t>(kernel));
  attrs.set("stride", static_cast<int64_t>(stride));
  attrs.set("padding", static_cast<int64_t>(padding));
  return graph_.add_node(OpType::kMaxPool2d, {x}, std::move(attrs));
}

NodeId GraphBuilder::global_avg_pool(NodeId x) {
  return graph_.add_node(OpType::kGlobalAvgPool, {x});
}

NodeId GraphBuilder::reduce_mean(NodeId x, int axis) {
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(axis));
  return graph_.add_node(OpType::kReduceMean, {x}, std::move(attrs));
}

NodeId GraphBuilder::slice_rows(NodeId x, int64_t begin, int64_t end) {
  AttrMap attrs;
  attrs.set("begin", begin);
  attrs.set("end", end);
  return graph_.add_node(OpType::kSliceRows, {x}, std::move(attrs));
}

NodeId GraphBuilder::seq_mean(NodeId x) { return reduce_mean(x, 1); }

NodeId GraphBuilder::last_timestep(NodeId x) {
  return graph_.add_node(OpType::kSeqLast, {x});
}

}  // namespace duet
