#pragma once

// Graph traversals and structural analyses used by the partitioner and the
// schedulers: topological order, ALAP/ASAP levels, reachability, and
// cost-weighted critical path.

#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace duet {

// Topological order of all nodes (node ids are already topological by
// construction; this returns them filtered/ordered explicitly and validates
// the invariant as a defense against graph surgery bugs).
std::vector<NodeId> topo_order(const Graph& graph);

// Longest-path depth of each node counting only non-trivial compute nodes
// (inputs/constants are level 0 and do not advance depth).
std::vector<int> node_levels(const Graph& graph);

// True iff `from` can reach `to` along dataflow edges.
bool reaches(const Graph& graph, NodeId from, NodeId to);

// Set of nodes reachable from any graph output walking backwards (the live
// set; DCE removes the rest).
std::vector<bool> live_nodes(const Graph& graph);

// Critical path under a per-node cost function: returns the path (node ids,
// source to sink) maximizing total cost, and the total.
struct CriticalPath {
  std::vector<NodeId> nodes;
  double total_cost = 0.0;
};
CriticalPath critical_path(const Graph& graph,
                           const std::function<double(NodeId)>& cost);

}  // namespace duet
