#include "graph/traversal.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace duet {

std::vector<NodeId> topo_order(const Graph& graph) {
  std::vector<NodeId> order;
  order.reserve(graph.num_nodes());
  for (const Node& n : graph.nodes()) {
    for (NodeId in : n.inputs) {
      DUET_CHECK_LT(in, n.id) << "topological invariant broken at node " << n.id;
    }
    order.push_back(n.id);
  }
  return order;
}

std::vector<int> node_levels(const Graph& graph) {
  std::vector<int> level(graph.num_nodes(), 0);
  for (const Node& n : graph.nodes()) {
    if (n.is_input() || n.is_constant()) continue;
    int best = 0;
    for (NodeId in : n.inputs) {
      const Node& p = graph.node(in);
      const int contribution =
          (p.is_input() || p.is_constant()) ? 0 : level[static_cast<size_t>(in)] + 1;
      best = std::max(best, contribution);
    }
    level[static_cast<size_t>(n.id)] = best;
  }
  return level;
}

bool reaches(const Graph& graph, NodeId from, NodeId to) {
  if (from == to) return true;
  if (from > to) return false;  // edges only point id-forward
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<NodeId> stack{from};
  seen[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (NodeId next : graph.consumers(cur)) {
      if (next == to) return true;
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        if (next < to) stack.push_back(next);
      }
    }
  }
  return false;
}

std::vector<bool> live_nodes(const Graph& graph) {
  std::vector<bool> live(graph.num_nodes(), false);
  std::vector<NodeId> stack(graph.outputs().begin(), graph.outputs().end());
  for (NodeId out : stack) live[static_cast<size_t>(out)] = true;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (NodeId in : graph.node(cur).inputs) {
      if (!live[static_cast<size_t>(in)]) {
        live[static_cast<size_t>(in)] = true;
        stack.push_back(in);
      }
    }
  }
  return live;
}

CriticalPath critical_path(const Graph& graph,
                           const std::function<double(NodeId)>& cost) {
  const size_t n = graph.num_nodes();
  std::vector<double> best(n, 0.0);
  std::vector<NodeId> prev(n, kInvalidNode);
  for (const Node& node : graph.nodes()) {
    double incoming = 0.0;
    NodeId argmax = kInvalidNode;
    for (NodeId in : node.inputs) {
      if (best[static_cast<size_t>(in)] > incoming) {
        incoming = best[static_cast<size_t>(in)];
        argmax = in;
      } else if (argmax == kInvalidNode) {
        argmax = in;
      }
    }
    best[static_cast<size_t>(node.id)] = incoming + cost(node.id);
    prev[static_cast<size_t>(node.id)] = argmax;
  }

  CriticalPath cp;
  NodeId sink = kInvalidNode;
  for (const Node& node : graph.nodes()) {
    if (best[static_cast<size_t>(node.id)] > cp.total_cost || sink == kInvalidNode) {
      cp.total_cost = best[static_cast<size_t>(node.id)];
      sink = node.id;
    }
  }
  for (NodeId cur = sink; cur != kInvalidNode; cur = prev[static_cast<size_t>(cur)]) {
    cp.nodes.push_back(cur);
  }
  std::reverse(cp.nodes.begin(), cp.nodes.end());
  return cp;
}

}  // namespace duet
