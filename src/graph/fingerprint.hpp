#pragma once

// Canonical content-addressed fingerprints for graphs. Two fingerprints are
// computed in one traversal:
//
//  * `structural` — topology, op types, attributes, shapes and dtypes. Node
//    names and node ids do NOT participate, so isomorphic relabelings of the
//    same computation hash identically. This keys everything whose result
//    depends only on the *shape* of the computation: modeled per-kernel
//    costs, and therefore profiling statistics.
//  * `values` — `structural` plus the payload bytes of every constant.
//    This keys numerically-executable artifacts (CompiledSubgraph embeds the
//    weight tensors), where two structurally identical subgraphs with
//    different weights must not share a cache entry.
//
// Hashing walks nodes in stored order (topological by construction: inputs
// must pre-exist) and memoizes a hash per node; a node's hash mixes its op,
// attrs, output shape/dtype and the hashes of its inputs *positionally*, so
// add(a, a) and add(a, b) differ. kInput nodes mix in their ordinal in
// input_ids() order — the graph's signature — instead of their name.

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace duet {

struct GraphFingerprint {
  uint64_t structural = 0;
  uint64_t values = 0;

  bool operator==(const GraphFingerprint& o) const {
    return structural == o.structural && values == o.values;
  }
};

GraphFingerprint fingerprint_graph(const Graph& graph);

// Positional hash of every node name (in stored order) plus the output list.
// Names are deliberately excluded from the two fingerprints above, but a
// CompiledSubgraph embeds them (the plan matches feeds by input name), so the
// compile cache folds this in on top of `values`: renamed twins miss the
// compile cache yet still share profiling stats.
uint64_t fingerprint_names(const Graph& graph);

// 64-bit combine / bytes hash shared by the cache-key builders.
uint64_t hash_mix(uint64_t h, uint64_t v);
uint64_t hash_bytes(const void* data, size_t n, uint64_t seed = 0);

// 16-hex-digit rendering (disk-cache keys, diagnostics).
std::string fingerprint_hex(uint64_t fp);

}  // namespace duet
