#pragma once

// Operator vocabulary of the graph IR. Each node in the dataflow DAG carries
// an OpType plus an attribute map; shape inference, FLOP counting, kernel
// launch counting (for the GPU cost model) and single-node evaluation all
// dispatch on OpType.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.hpp"

namespace duet {

enum class OpType : uint8_t {
  // Graph terminals.
  kInput,
  kConstant,
  // Elementwise.
  kAdd,
  kSub,
  kMul,
  kReLU,
  kSigmoid,
  kTanh,
  kGelu,
  kAddScalar,
  kMulScalar,
  kBiasAdd,
  kIdentity,
  // Dense algebra.
  kMatMul,
  kBatchMatMul,
  kDense,  // inputs: x, W, optional bias; supports fused activation epilogue
  // Convolutional.
  kConv2d,  // inputs: x, w, optional bias; attrs: stride, padding
  kMaxPool2d,
  kAvgPool2d,
  kGlobalAvgPool,
  kBatchNorm,  // inputs: x, scale, shift (inference-mode folded)
  // Sequence.
  kLSTM,  // inputs: x, w_ih, w_hh, bias; output: [batch, seq, hidden]
  kGRU,
  kEmbedding,  // inputs: indices(int32), table
  // Normalization / reduction.
  kSoftmax,
  kLayerNorm,  // inputs: x, gamma, beta
  kReduceSum,
  kReduceMean,
  kReduceMax,
  kArgMax,
  // Shape / movement.
  kConcat,   // attr: axis
  kReshape,  // attr: dims
  kFlatten,
  kTranspose2d,
  kSliceRows,  // attrs: begin, end
  kSeqLast,    // [batch, seq, f] -> [batch, f], last timestep
  // Attention block.
  kMultiHeadAttention,  // inputs: x, wqkv, wo; attr: heads
  // Produced by the fusion pass: a chain of unary elementwise ops collapsed
  // into one kernel. attr "chain" holds comma-separated op names.
  kElementwiseChain,
};

const char* op_name(OpType op);
// Inverse of op_name; throws on unknown names (used by the Relay parser).
OpType op_from_name(const std::string& name);

// Attribute value: int, float, string, or int list.
using Attr = std::variant<int64_t, double, std::string, std::vector<int64_t>>;

class AttrMap {
 public:
  void set(const std::string& key, Attr value) { attrs_[key] = std::move(value); }
  bool has(const std::string& key) const { return attrs_.count(key) > 0; }

  int64_t get_int(const std::string& key) const;
  int64_t get_int_or(const std::string& key, int64_t fallback) const;
  double get_float(const std::string& key) const;
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key, const std::string& fallback) const;
  std::vector<int64_t> get_ints(const std::string& key) const;

  const std::map<std::string, Attr>& raw() const { return attrs_; }
  bool operator==(const AttrMap& other) const { return attrs_ == other.attrs_; }

  std::string to_string() const;

 private:
  std::map<std::string, Attr> attrs_;
};

// True for ops whose output dtype is int32 (index-producing ops).
bool op_produces_int(OpType op);

// True for unary elementwise ops that the fusion pass may collapse into an
// epilogue / chain.
bool is_fusible_unary(OpType op);

// True for binary elementwise ops (same-shape operands).
bool is_binary_elementwise(OpType op);

}  // namespace duet
