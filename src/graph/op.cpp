#include "graph/op.hpp"

#include <array>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace duet {
namespace {

struct OpNameEntry {
  OpType op;
  const char* name;
};

constexpr std::array kOpNames = {
    OpNameEntry{OpType::kInput, "input"},
    OpNameEntry{OpType::kConstant, "constant"},
    OpNameEntry{OpType::kAdd, "add"},
    OpNameEntry{OpType::kSub, "sub"},
    OpNameEntry{OpType::kMul, "mul"},
    OpNameEntry{OpType::kReLU, "relu"},
    OpNameEntry{OpType::kSigmoid, "sigmoid"},
    OpNameEntry{OpType::kTanh, "tanh"},
    OpNameEntry{OpType::kGelu, "gelu"},
    OpNameEntry{OpType::kAddScalar, "add_scalar"},
    OpNameEntry{OpType::kMulScalar, "mul_scalar"},
    OpNameEntry{OpType::kBiasAdd, "bias_add"},
    OpNameEntry{OpType::kIdentity, "identity"},
    OpNameEntry{OpType::kMatMul, "matmul"},
    OpNameEntry{OpType::kBatchMatMul, "batch_matmul"},
    OpNameEntry{OpType::kDense, "dense"},
    OpNameEntry{OpType::kConv2d, "conv2d"},
    OpNameEntry{OpType::kMaxPool2d, "max_pool2d"},
    OpNameEntry{OpType::kAvgPool2d, "avg_pool2d"},
    OpNameEntry{OpType::kGlobalAvgPool, "global_avg_pool"},
    OpNameEntry{OpType::kBatchNorm, "batch_norm"},
    OpNameEntry{OpType::kLSTM, "lstm"},
    OpNameEntry{OpType::kGRU, "gru"},
    OpNameEntry{OpType::kEmbedding, "embedding"},
    OpNameEntry{OpType::kSoftmax, "softmax"},
    OpNameEntry{OpType::kLayerNorm, "layer_norm"},
    OpNameEntry{OpType::kReduceSum, "reduce_sum"},
    OpNameEntry{OpType::kReduceMean, "reduce_mean"},
    OpNameEntry{OpType::kReduceMax, "reduce_max"},
    OpNameEntry{OpType::kArgMax, "argmax"},
    OpNameEntry{OpType::kConcat, "concat"},
    OpNameEntry{OpType::kReshape, "reshape"},
    OpNameEntry{OpType::kFlatten, "flatten"},
    OpNameEntry{OpType::kTranspose2d, "transpose2d"},
    OpNameEntry{OpType::kSliceRows, "slice_rows"},
    OpNameEntry{OpType::kSeqLast, "seq_last"},
    OpNameEntry{OpType::kMultiHeadAttention, "multi_head_attention"},
    OpNameEntry{OpType::kElementwiseChain, "elementwise_chain"},
};

}  // namespace

const char* op_name(OpType op) {
  for (const auto& e : kOpNames) {
    if (e.op == op) return e.name;
  }
  return "?";
}

OpType op_from_name(const std::string& name) {
  for (const auto& e : kOpNames) {
    if (name == e.name) return e.op;
  }
  DUET_THROW("unknown op name: " << name);
}

int64_t AttrMap::get_int(const std::string& key) const {
  auto it = attrs_.find(key);
  DUET_CHECK(it != attrs_.end()) << "missing int attr: " << key;
  const int64_t* v = std::get_if<int64_t>(&it->second);
  DUET_CHECK(v != nullptr) << "attr " << key << " is not int";
  return *v;
}

int64_t AttrMap::get_int_or(const std::string& key, int64_t fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  const int64_t* v = std::get_if<int64_t>(&it->second);
  DUET_CHECK(v != nullptr) << "attr " << key << " is not int";
  return *v;
}

double AttrMap::get_float(const std::string& key) const {
  auto it = attrs_.find(key);
  DUET_CHECK(it != attrs_.end()) << "missing float attr: " << key;
  if (const double* v = std::get_if<double>(&it->second)) return *v;
  if (const int64_t* v = std::get_if<int64_t>(&it->second)) {
    return static_cast<double>(*v);
  }
  DUET_THROW("attr " << key << " is not numeric");
}

std::string AttrMap::get_string(const std::string& key) const {
  auto it = attrs_.find(key);
  DUET_CHECK(it != attrs_.end()) << "missing string attr: " << key;
  const std::string* v = std::get_if<std::string>(&it->second);
  DUET_CHECK(v != nullptr) << "attr " << key << " is not string";
  return *v;
}

std::string AttrMap::get_string_or(const std::string& key,
                                   const std::string& fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  const std::string* v = std::get_if<std::string>(&it->second);
  DUET_CHECK(v != nullptr) << "attr " << key << " is not string";
  return *v;
}

std::vector<int64_t> AttrMap::get_ints(const std::string& key) const {
  auto it = attrs_.find(key);
  DUET_CHECK(it != attrs_.end()) << "missing int-list attr: " << key;
  const auto* v = std::get_if<std::vector<int64_t>>(&it->second);
  DUET_CHECK(v != nullptr) << "attr " << key << " is not int list";
  return *v;
}

std::string AttrMap::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [key, value] : attrs_) {
    if (!first) os << ", ";
    first = false;
    os << key << "=";
    if (const auto* i = std::get_if<int64_t>(&value)) {
      os << *i;
    } else if (const auto* d = std::get_if<double>(&value)) {
      os << *d;
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      os << '"' << *s << '"';
    } else if (const auto* l = std::get_if<std::vector<int64_t>>(&value)) {
      os << "[";
      for (size_t j = 0; j < l->size(); ++j) {
        if (j) os << " ";
        os << (*l)[j];
      }
      os << "]";
    }
  }
  return os.str();
}

bool op_produces_int(OpType op) { return op == OpType::kArgMax; }

bool is_fusible_unary(OpType op) {
  switch (op) {
    case OpType::kReLU:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kGelu:
    case OpType::kAddScalar:
    case OpType::kMulScalar:
    case OpType::kIdentity:
      return true;
    default:
      return false;
  }
}

bool is_binary_elementwise(OpType op) {
  switch (op) {
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kMul:
      return true;
    default:
      return false;
  }
}

}  // namespace duet
