#pragma once

// Fluent construction API on top of Graph. The model zoo uses this to build
// networks the way a framework front-end would; weights are initialized from
// a seeded Rng so every run of an experiment sees identical parameters.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace duet {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string graph_name, uint64_t seed = 42)
      : graph_(std::move(graph_name)), rng_(seed) {}

  Graph& graph() { return graph_; }
  Rng& rng() { return rng_; }

  // Finalizes: marks `outputs` (if not already marked), validates, moves out.
  Graph finish(std::vector<NodeId> outputs);

  // --- terminals -------------------------------------------------------------
  NodeId input(Shape shape, const std::string& name = {},
               DType dtype = DType::kFloat32);
  NodeId constant(Tensor value, const std::string& name = {});
  // Xavier-ish random weight: stddev = sqrt(2 / fan_in).
  NodeId weight(Shape shape, const std::string& name = {});

  // --- layers ----------------------------------------------------------------
  NodeId dense(NodeId x, int64_t out_features, const std::string& act = "",
               const std::string& name = {});
  NodeId conv2d(NodeId x, int64_t out_channels, int kernel, int stride, int padding,
                const std::string& name = {});
  NodeId batch_norm(NodeId x, const std::string& name = {});
  NodeId lstm(NodeId x, int64_t hidden, const std::string& name = {});
  NodeId gru(NodeId x, int64_t hidden, const std::string& name = {});
  NodeId embedding(NodeId indices, int64_t vocab, int64_t dim,
                   const std::string& name = {});
  NodeId attention(NodeId x, int64_t heads, const std::string& name = {});
  NodeId layer_norm(NodeId x, const std::string& name = {});

  // --- ops ---------------------------------------------------------------------
  NodeId add(NodeId a, NodeId b);
  NodeId mul(NodeId a, NodeId b);
  NodeId relu(NodeId x);
  NodeId sigmoid(NodeId x);
  NodeId tanh(NodeId x);
  NodeId gelu(NodeId x);
  NodeId softmax(NodeId x);
  NodeId matmul(NodeId a, NodeId b);
  NodeId concat(std::vector<NodeId> parts, int axis);
  NodeId flatten(NodeId x);
  NodeId reshape(NodeId x, Shape dims);
  NodeId max_pool2d(NodeId x, int kernel, int stride, int padding);
  NodeId global_avg_pool(NodeId x);
  NodeId reduce_mean(NodeId x, int axis);
  NodeId slice_rows(NodeId x, int64_t begin, int64_t end);
  // Mean over the sequence axis of [batch, seq, features] -> [batch, features].
  NodeId seq_mean(NodeId x);
  // Last timestep of [batch, seq, features] -> [batch, features].
  NodeId last_timestep(NodeId x);

 private:
  int64_t last_dim(NodeId x) const;

  Graph graph_;
  Rng rng_;
};

}  // namespace duet
