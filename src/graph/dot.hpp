#pragma once

// Graphviz DOT export for debugging partitions and schedules. Nodes can be
// colored by an arbitrary labeling (e.g. subgraph id or device assignment).

#include <functional>
#include <string>

#include "graph/graph.hpp"

namespace duet {

struct DotOptions {
  bool show_constants = false;
  // Optional cluster label per node (nodes with equal non-negative labels are
  // grouped); -1 means unclustered.
  std::function<int(NodeId)> cluster;
  // Optional fill color per node (graphviz color string), empty = default.
  std::function<std::string(NodeId)> color;
};

std::string to_dot(const Graph& graph, const DotOptions& options = {});

// Writes `dot` text to `path`; throws on I/O failure.
void write_dot_file(const Graph& graph, const std::string& path,
                    const DotOptions& options = {});

}  // namespace duet
