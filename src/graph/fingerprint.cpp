#include "graph/fingerprint.hpp"

#include <cstring>

#include "common/error.hpp"

namespace duet {
namespace {

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;

uint64_t splitmix(uint64_t x) {
  x += kGolden;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t hash_string(const std::string& s, uint64_t h) {
  h = hash_mix(h, s.size());
  return hash_bytes(s.data(), s.size(), h);
}

uint64_t hash_shape(const Shape& shape, uint64_t h) {
  h = hash_mix(h, shape.rank());
  for (size_t i = 0; i < shape.rank(); ++i) {
    h = hash_mix(h, static_cast<uint64_t>(shape.dim(i)));
  }
  return h;
}

uint64_t hash_attr(const Attr& attr, uint64_t h) {
  h = hash_mix(h, attr.index());
  switch (attr.index()) {
    case 0:
      return hash_mix(h, static_cast<uint64_t>(std::get<int64_t>(attr)));
    case 1: {
      uint64_t bits = 0;
      const double d = std::get<double>(attr);
      std::memcpy(&bits, &d, sizeof(bits));
      return hash_mix(h, bits);
    }
    case 2:
      return hash_string(std::get<std::string>(attr), h);
    default: {
      const auto& v = std::get<std::vector<int64_t>>(attr);
      h = hash_mix(h, v.size());
      for (int64_t x : v) h = hash_mix(h, static_cast<uint64_t>(x));
      return h;
    }
  }
}

uint64_t hash_tensor_payload(const Tensor& t, uint64_t h) {
  if (!t.defined()) return hash_mix(h, 0);
  h = hash_mix(h, t.byte_size());
  return hash_bytes(t.raw_data(), t.byte_size(), h);
}

}  // namespace

uint64_t hash_mix(uint64_t h, uint64_t v) {
  // boost::hash_combine's 64-bit shape with a splitmix-strengthened operand:
  // order-sensitive (positional inputs matter) and avalanche-complete.
  return (h ^ (splitmix(v) + kGolden + (h << 6) + (h >> 2))) * 0x100000001B3ull;
}

uint64_t hash_bytes(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ hash_mix(0, n);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, 8);
    h = hash_mix(h, word);
  }
  if (i < n) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, n - i);
    h = hash_mix(h, word);
  }
  return h;
}

std::string fingerprint_hex(uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

uint64_t fingerprint_names(const Graph& graph) {
  uint64_t h = hash_mix(0x4E414D4548415348ull, graph.num_nodes());
  for (const Node& node : graph.nodes()) h = hash_string(node.name, h);
  return h;
}

GraphFingerprint fingerprint_graph(const Graph& graph) {
  const size_t n = graph.num_nodes();
  // Per-node canonical hashes, structural and value-inclusive. nodes_ is
  // topological by construction (inputs must pre-exist), so every input hash
  // is final before its consumer needs it.
  std::vector<uint64_t> hs(n, 0);
  std::vector<uint64_t> hv(n, 0);

  // kInput identity = ordinal in the graph signature, not name or id.
  std::vector<int> input_ordinal(n, -1);
  {
    int ord = 0;
    for (NodeId id : graph.input_ids()) {
      input_ordinal[static_cast<size_t>(id)] = ord++;
    }
  }

  for (const Node& node : graph.nodes()) {
    const size_t i = static_cast<size_t>(node.id);
    uint64_t h = hash_mix(0x5343484544554554ull, static_cast<uint64_t>(node.op));
    if (node.is_input()) {
      h = hash_mix(h, static_cast<uint64_t>(input_ordinal[i]));
    }
    for (const auto& [key, attr] : node.attrs.raw()) {
      h = hash_string(key, h);
      h = hash_attr(attr, h);
    }
    h = hash_shape(node.out_shape, h);
    h = hash_mix(h, static_cast<uint64_t>(node.out_dtype));
    uint64_t v = h;
    for (NodeId in : node.inputs) {
      DUET_CHECK_GE(in, 0);
      DUET_CHECK_LT(static_cast<size_t>(in), i) << "graph is not topological";
      h = hash_mix(h, hs[static_cast<size_t>(in)]);
      v = hash_mix(v, hv[static_cast<size_t>(in)]);
    }
    if (node.is_constant()) {
      v = hash_tensor_payload(node.value, v);
    }
    hs[i] = h;
    hv[i] = v;
  }

  // Fold every node in commutatively (a graph may carry nodes outside the
  // output cone — no DCE in framework mode — and they still become kernels),
  // then the outputs positionally: the output tuple order is semantic.
  uint64_t acc_s = 0;
  uint64_t acc_v = 0;
  for (size_t i = 0; i < n; ++i) {
    acc_s += splitmix(hs[i]);
    acc_v += splitmix(hv[i]);
  }
  GraphFingerprint fp;
  fp.structural = hash_mix(hash_mix(0, n), acc_s);
  fp.values = hash_mix(hash_mix(0, n), acc_v);
  fp.structural = hash_mix(fp.structural, graph.outputs().size());
  fp.values = hash_mix(fp.values, graph.outputs().size());
  for (NodeId out : graph.outputs()) {
    fp.structural = hash_mix(fp.structural, hs[static_cast<size_t>(out)]);
    fp.values = hash_mix(fp.values, hv[static_cast<size_t>(out)]);
  }
  return fp;
}

}  // namespace duet
