#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "graph/shape_inference.hpp"
#include "tensor/kernels.hpp"

namespace duet {

std::string Node::to_string() const {
  std::ostringstream os;
  os << "%" << id << " = " << op_name(op) << "(";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i) os << ", ";
    os << "%" << inputs[i];
  }
  os << ")";
  const std::string attrs_str = attrs.to_string();
  if (!attrs_str.empty()) os << " {" << attrs_str << "}";
  os << " : " << out_shape.to_string() << " " << dtype_name(out_dtype);
  if (!name.empty()) os << "  // " << name;
  return os.str();
}

NodeId Graph::add_node(OpType op, std::vector<NodeId> inputs, AttrMap attrs,
                       std::string name) {
  DUET_CHECK(op != OpType::kInput && op != OpType::kConstant)
      << "use add_input / add_constant for terminals";
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId in : inputs) {
    DUET_CHECK(in >= 0 && in < id) << "add_node input " << in
                                   << " does not precede node " << id;
  }
  Node n;
  n.id = id;
  n.op = op;
  n.inputs = std::move(inputs);
  n.attrs = std::move(attrs);
  n.name = name.empty() ? strprintf("%s_%d", op_name(op), id) : std::move(name);
  nodes_.push_back(std::move(n));
  consumers_.emplace_back();
  Node& added = nodes_.back();
  const InferredType t = infer_node_type(*this, added);
  added.out_shape = t.shape;
  added.out_dtype = t.dtype;
  for (NodeId in : added.inputs) consumers_[static_cast<size_t>(in)].push_back(id);
  return id;
}

NodeId Graph::add_input(Shape shape, std::string name, DType dtype) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.id = id;
  n.op = OpType::kInput;
  n.name = name.empty() ? strprintf("input_%d", id) : std::move(name);
  n.out_shape = std::move(shape);
  n.out_dtype = dtype;
  nodes_.push_back(std::move(n));
  consumers_.emplace_back();
  return id;
}

NodeId Graph::add_constant(Tensor value, std::string name) {
  DUET_CHECK(value.defined()) << "constant must carry a tensor";
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.id = id;
  n.op = OpType::kConstant;
  n.name = name.empty() ? strprintf("const_%d", id) : std::move(name);
  n.out_shape = value.shape();
  n.out_dtype = value.dtype();
  n.value = std::move(value);
  nodes_.push_back(std::move(n));
  consumers_.emplace_back();
  return id;
}

const Node& Graph::node(NodeId id) const {
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size())
      << "node id " << id << " out of range";
  return nodes_[static_cast<size_t>(id)];
}

Node& Graph::mutable_node(NodeId id) {
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

const std::vector<NodeId>& Graph::consumers(NodeId id) const {
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < consumers_.size());
  return consumers_[static_cast<size_t>(id)];
}

void Graph::mark_output(NodeId id) {
  DUET_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  outputs_.push_back(id);
}

std::vector<NodeId> Graph::input_ids() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.is_input()) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Graph::constant_ids() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.is_constant()) out.push_back(n.id);
  }
  return out;
}

uint64_t Graph::param_bytes() const {
  uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.is_constant()) total += n.value.byte_size();
  }
  return total;
}

void Graph::validate() const {
  DUET_CHECK_EQ(nodes_.size(), consumers_.size());
  for (const Node& n : nodes_) {
    DUET_CHECK_EQ(static_cast<size_t>(n.id), static_cast<size_t>(&n - nodes_.data()));
    for (NodeId in : n.inputs) {
      DUET_CHECK(in >= 0 && in < n.id)
          << "node " << n.id << " has non-topological input " << in;
    }
  }
  for (NodeId out : outputs_) {
    DUET_CHECK(out >= 0 && static_cast<size_t>(out) < nodes_.size())
        << "unknown output " << out;
  }
  DUET_CHECK(!outputs_.empty()) << "graph has no outputs";
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "graph \"" << name_ << "\" (" << nodes_.size() << " nodes)\n";
  for (const Node& n : nodes_) os << "  " << n.to_string() << "\n";
  os << "  outputs:";
  for (NodeId out : outputs_) os << " %" << out;
  os << "\n";
  return os.str();
}

namespace {

// Applies one named unary op; shared by kElementwiseChain and Dense/Conv
// activation epilogues produced by the fusion pass.
Tensor apply_unary(const std::string& name, const Tensor& x) {
  if (name == "relu") return kernels::relu(x);
  if (name == "sigmoid") return kernels::sigmoid(x);
  if (name == "tanh") return kernels::tanh_op(x);
  if (name == "gelu") return kernels::gelu(x);
  if (name == "identity") return x;
  DUET_THROW("unknown unary epilogue op: " << name);
}

Tensor apply_epilogue(const Node& node, Tensor value) {
  const std::string epilogue = node.attrs.get_string_or("epilogue", "");
  if (epilogue.empty()) return value;
  for (const std::string& stage : split(epilogue, ',')) {
    if (!stage.empty()) value = apply_unary(stage, value);
  }
  return value;
}

}  // namespace

Tensor evaluate_node(const Node& node, const std::vector<Tensor>& in) {
  using namespace kernels;
  const auto want = [&](size_t n) {
    DUET_CHECK(in.size() == n || (in.size() == n - 1 && n > 0))
        << op_name(node.op) << " expects " << n << " inputs, got " << in.size();
  };
  switch (node.op) {
    case OpType::kInput:
    case OpType::kConstant:
      DUET_CHECK(node.value.defined()) << "unbound terminal " << node.name;
      return node.value;
    case OpType::kAdd:
      return add(in.at(0), in.at(1));
    case OpType::kSub:
      return sub(in.at(0), in.at(1));
    case OpType::kMul:
      return mul(in.at(0), in.at(1));
    case OpType::kReLU:
      return relu(in.at(0));
    case OpType::kSigmoid:
      return sigmoid(in.at(0));
    case OpType::kTanh:
      return tanh_op(in.at(0));
    case OpType::kGelu:
      return gelu(in.at(0));
    case OpType::kAddScalar:
      return add_scalar(in.at(0), static_cast<float>(node.attrs.get_float("value")));
    case OpType::kMulScalar:
      return mul_scalar(in.at(0), static_cast<float>(node.attrs.get_float("value")));
    case OpType::kBiasAdd:
      return bias_add(in.at(0), in.at(1));
    case OpType::kIdentity:
      return in.at(0);
    case OpType::kMatMul:
      return matmul(in.at(0), in.at(1));
    case OpType::kBatchMatMul:
      return batch_matmul(in.at(0), in.at(1));
    case OpType::kDense: {
      want(3);
      const Tensor bias = in.size() > 2 ? in[2] : Tensor();
      return apply_epilogue(node, linear(in[0], in[1], bias));
    }
    case OpType::kConv2d: {
      want(3);
      const Tensor bias = in.size() > 2 ? in[2] : Tensor();
      return apply_epilogue(
          node, conv2d(in[0], in[1], bias,
                       static_cast<int>(node.attrs.get_int_or("stride", 1)),
                       static_cast<int>(node.attrs.get_int_or("padding", 0))));
    }
    case OpType::kMaxPool2d:
      return max_pool2d(in.at(0), static_cast<int>(node.attrs.get_int("kernel")),
                        static_cast<int>(node.attrs.get_int_or(
                            "stride", node.attrs.get_int("kernel"))),
                        static_cast<int>(node.attrs.get_int_or("padding", 0)));
    case OpType::kAvgPool2d:
      return avg_pool2d(in.at(0), static_cast<int>(node.attrs.get_int("kernel")),
                        static_cast<int>(node.attrs.get_int_or(
                            "stride", node.attrs.get_int("kernel"))),
                        static_cast<int>(node.attrs.get_int_or("padding", 0)));
    case OpType::kGlobalAvgPool:
      return global_avg_pool(in.at(0));
    case OpType::kBatchNorm:
      return apply_epilogue(node, batch_norm(in.at(0), in.at(1), in.at(2)));
    case OpType::kLSTM: {
      want(4);
      const Tensor bias = in.size() > 3 ? in[3] : Tensor();
      return lstm(in[0], in[1], in[2], bias);
    }
    case OpType::kGRU: {
      want(4);
      const Tensor bias = in.size() > 3 ? in[3] : Tensor();
      return gru(in[0], in[1], in[2], bias);
    }
    case OpType::kEmbedding:
      return embedding(in.at(0), in.at(1));
    case OpType::kSoftmax:
      return softmax_lastdim(in.at(0));
    case OpType::kLayerNorm:
      return layer_norm(in.at(0), in.at(1), in.at(2));
    case OpType::kReduceSum:
      return reduce_sum(in.at(0), static_cast<int>(node.attrs.get_int("axis")));
    case OpType::kReduceMean:
      return reduce_mean(in.at(0), static_cast<int>(node.attrs.get_int("axis")));
    case OpType::kReduceMax:
      return reduce_max(in.at(0), static_cast<int>(node.attrs.get_int("axis")));
    case OpType::kArgMax:
      return argmax_lastdim(in.at(0));
    case OpType::kConcat:
      return concat(in, static_cast<int>(node.attrs.get_int("axis")));
    case OpType::kReshape:
      return in.at(0).reshaped(Shape(node.attrs.get_ints("dims")));
    case OpType::kFlatten:
      return flatten(in.at(0));
    case OpType::kTranspose2d:
      return transpose2d(in.at(0));
    case OpType::kSliceRows:
      return slice_rows(in.at(0), node.attrs.get_int("begin"),
                        node.attrs.get_int("end"));
    case OpType::kSeqLast: {
      const Tensor& x = in.at(0);
      const int64_t batch = x.shape().dim(0);
      const int64_t seq = x.shape().dim(1);
      const int64_t f = x.shape().dim(2);
      Tensor out(Shape{batch, f});
      const float* px = x.data<float>();
      float* po = out.data<float>();
      for (int64_t b = 0; b < batch; ++b) {
        std::copy(px + (b * seq + seq - 1) * f, px + (b * seq + seq) * f, po + b * f);
      }
      return out;
    }
    case OpType::kMultiHeadAttention:
      return multi_head_attention(in.at(0), in.at(1), in.at(2),
                                  static_cast<int>(node.attrs.get_int("heads")));
    case OpType::kElementwiseChain: {
      Tensor v = in.at(0);
      for (const std::string& stage : split(node.attrs.get_string("chain"), ',')) {
        if (!stage.empty()) v = apply_unary(stage, v);
      }
      return v;
    }
  }
  DUET_THROW("evaluate_node: unhandled op " << op_name(node.op));
}

std::vector<Tensor> evaluate_graph(const Graph& graph,
                                   const std::map<NodeId, Tensor>& feeds) {
  std::vector<Tensor> values(graph.num_nodes());
  for (const Node& n : graph.nodes()) {
    if (n.is_input()) {
      auto it = feeds.find(n.id);
      if (it != feeds.end()) {
        DUET_CHECK(it->second.shape() == n.out_shape)
            << "feed shape mismatch for " << n.name << ": got "
            << it->second.shape().to_string() << ", want " << n.out_shape.to_string();
        values[static_cast<size_t>(n.id)] = it->second;
      } else {
        DUET_CHECK(n.value.defined()) << "missing feed for input " << n.name;
        values[static_cast<size_t>(n.id)] = n.value;
      }
      continue;
    }
    if (n.is_constant()) {
      values[static_cast<size_t>(n.id)] = n.value;
      continue;
    }
    std::vector<Tensor> inputs;
    inputs.reserve(n.inputs.size());
    for (NodeId in : n.inputs) inputs.push_back(values[static_cast<size_t>(in)]);
    values[static_cast<size_t>(n.id)] = evaluate_node(n, inputs);
  }
  std::vector<Tensor> outputs;
  outputs.reserve(graph.outputs().size());
  for (NodeId out : graph.outputs()) {
    outputs.push_back(values[static_cast<size_t>(out)]);
  }
  return outputs;
}

}  // namespace duet
