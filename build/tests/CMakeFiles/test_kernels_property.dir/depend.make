# Empty dependencies file for test_kernels_property.
# This may be replaced when dependencies are built.
