file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_property.dir/test_kernels_property.cpp.o"
  "CMakeFiles/test_kernels_property.dir/test_kernels_property.cpp.o.d"
  "test_kernels_property"
  "test_kernels_property.pdb"
  "test_kernels_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
