# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_property[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_latency_model[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_relay[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_tuning[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
