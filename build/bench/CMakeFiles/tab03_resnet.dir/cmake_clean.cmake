file(REMOVE_RECURSE
  "CMakeFiles/tab03_resnet.dir/tab03_resnet.cpp.o"
  "CMakeFiles/tab03_resnet.dir/tab03_resnet.cpp.o.d"
  "tab03_resnet"
  "tab03_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
