# Empty dependencies file for tab03_resnet.
# This may be replaced when dependencies are built.
