# Empty dependencies file for fig04_timeline.
# This may be replaced when dependencies are built.
