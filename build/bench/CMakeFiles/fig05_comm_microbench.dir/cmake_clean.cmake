file(REMOVE_RECURSE
  "CMakeFiles/fig05_comm_microbench.dir/fig05_comm_microbench.cpp.o"
  "CMakeFiles/fig05_comm_microbench.dir/fig05_comm_microbench.cpp.o.d"
  "fig05_comm_microbench"
  "fig05_comm_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_comm_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
