# Empty dependencies file for fig05_comm_microbench.
# This may be replaced when dependencies are built.
