# Empty dependencies file for fig16_ffn_depth.
# This may be replaced when dependencies are built.
