file(REMOVE_RECURSE
  "CMakeFiles/fig16_ffn_depth.dir/fig16_ffn_depth.cpp.o"
  "CMakeFiles/fig16_ffn_depth.dir/fig16_ffn_depth.cpp.o.d"
  "fig16_ffn_depth"
  "fig16_ffn_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ffn_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
