
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/throughput_pipeline.cpp" "bench/CMakeFiles/throughput_pipeline.dir/throughput_pipeline.cpp.o" "gcc" "bench/CMakeFiles/throughput_pipeline.dir/throughput_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
