# Empty dependencies file for throughput_pipeline.
# This may be replaced when dependencies are built.
