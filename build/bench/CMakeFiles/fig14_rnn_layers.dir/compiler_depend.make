# Empty compiler generated dependencies file for fig14_rnn_layers.
# This may be replaced when dependencies are built.
