file(REMOVE_RECURSE
  "CMakeFiles/fig14_rnn_layers.dir/fig14_rnn_layers.cpp.o"
  "CMakeFiles/fig14_rnn_layers.dir/fig14_rnn_layers.cpp.o.d"
  "fig14_rnn_layers"
  "fig14_rnn_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rnn_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
