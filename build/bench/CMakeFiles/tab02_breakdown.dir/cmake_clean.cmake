file(REMOVE_RECURSE
  "CMakeFiles/tab02_breakdown.dir/tab02_breakdown.cpp.o"
  "CMakeFiles/tab02_breakdown.dir/tab02_breakdown.cpp.o.d"
  "tab02_breakdown"
  "tab02_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
