# Empty dependencies file for tab02_breakdown.
# This may be replaced when dependencies are built.
