# Empty compiler generated dependencies file for sensitivity_hardware.
# This may be replaced when dependencies are built.
