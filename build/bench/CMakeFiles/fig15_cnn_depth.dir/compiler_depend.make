# Empty compiler generated dependencies file for fig15_cnn_depth.
# This may be replaced when dependencies are built.
