file(REMOVE_RECURSE
  "CMakeFiles/fig15_cnn_depth.dir/fig15_cnn_depth.cpp.o"
  "CMakeFiles/fig15_cnn_depth.dir/fig15_cnn_depth.cpp.o.d"
  "fig15_cnn_depth"
  "fig15_cnn_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cnn_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
