# Empty compiler generated dependencies file for fig13_schedulers.
# This may be replaced when dependencies are built.
