file(REMOVE_RECURSE
  "CMakeFiles/fig13_schedulers.dir/fig13_schedulers.cpp.o"
  "CMakeFiles/fig13_schedulers.dir/fig13_schedulers.cpp.o.d"
  "fig13_schedulers"
  "fig13_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
