# Empty dependencies file for duet_cli.
# This may be replaced when dependencies are built.
