file(REMOVE_RECURSE
  "CMakeFiles/duet_cli.dir/duet_cli.cpp.o"
  "CMakeFiles/duet_cli.dir/duet_cli.cpp.o.d"
  "duet_cli"
  "duet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
