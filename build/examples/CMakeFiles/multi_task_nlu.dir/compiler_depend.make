# Empty compiler generated dependencies file for multi_task_nlu.
# This may be replaced when dependencies are built.
