file(REMOVE_RECURSE
  "CMakeFiles/multi_task_nlu.dir/multi_task_nlu.cpp.o"
  "CMakeFiles/multi_task_nlu.dir/multi_task_nlu.cpp.o.d"
  "multi_task_nlu"
  "multi_task_nlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_task_nlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
