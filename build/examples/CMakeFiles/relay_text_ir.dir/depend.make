# Empty dependencies file for relay_text_ir.
# This may be replaced when dependencies are built.
