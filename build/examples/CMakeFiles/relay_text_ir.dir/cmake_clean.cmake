file(REMOVE_RECURSE
  "CMakeFiles/relay_text_ir.dir/relay_text_ir.cpp.o"
  "CMakeFiles/relay_text_ir.dir/relay_text_ir.cpp.o.d"
  "relay_text_ir"
  "relay_text_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relay_text_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
