
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/dlrm.cpp" "src/CMakeFiles/duet_models.dir/models/dlrm.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/dlrm.cpp.o.d"
  "/root/repo/src/models/inception.cpp" "src/CMakeFiles/duet_models.dir/models/inception.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/inception.cpp.o.d"
  "/root/repo/src/models/model_zoo.cpp" "src/CMakeFiles/duet_models.dir/models/model_zoo.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/model_zoo.cpp.o.d"
  "/root/repo/src/models/mtdnn.cpp" "src/CMakeFiles/duet_models.dir/models/mtdnn.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/mtdnn.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/duet_models.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/siamese.cpp" "src/CMakeFiles/duet_models.dir/models/siamese.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/siamese.cpp.o.d"
  "/root/repo/src/models/squeezenet.cpp" "src/CMakeFiles/duet_models.dir/models/squeezenet.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/squeezenet.cpp.o.d"
  "/root/repo/src/models/vgg.cpp" "src/CMakeFiles/duet_models.dir/models/vgg.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/vgg.cpp.o.d"
  "/root/repo/src/models/wide_deep.cpp" "src/CMakeFiles/duet_models.dir/models/wide_deep.cpp.o" "gcc" "src/CMakeFiles/duet_models.dir/models/wide_deep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
