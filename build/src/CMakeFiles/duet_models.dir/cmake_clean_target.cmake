file(REMOVE_RECURSE
  "libduet_models.a"
)
