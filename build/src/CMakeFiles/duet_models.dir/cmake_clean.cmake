file(REMOVE_RECURSE
  "CMakeFiles/duet_models.dir/models/dlrm.cpp.o"
  "CMakeFiles/duet_models.dir/models/dlrm.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/inception.cpp.o"
  "CMakeFiles/duet_models.dir/models/inception.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/model_zoo.cpp.o"
  "CMakeFiles/duet_models.dir/models/model_zoo.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/mtdnn.cpp.o"
  "CMakeFiles/duet_models.dir/models/mtdnn.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/resnet.cpp.o"
  "CMakeFiles/duet_models.dir/models/resnet.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/siamese.cpp.o"
  "CMakeFiles/duet_models.dir/models/siamese.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/squeezenet.cpp.o"
  "CMakeFiles/duet_models.dir/models/squeezenet.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/vgg.cpp.o"
  "CMakeFiles/duet_models.dir/models/vgg.cpp.o.d"
  "CMakeFiles/duet_models.dir/models/wide_deep.cpp.o"
  "CMakeFiles/duet_models.dir/models/wide_deep.cpp.o.d"
  "libduet_models.a"
  "libduet_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
