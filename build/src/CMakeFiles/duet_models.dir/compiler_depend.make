# Empty compiler generated dependencies file for duet_models.
# This may be replaced when dependencies are built.
