file(REMOVE_RECURSE
  "libduet_tuning.a"
)
