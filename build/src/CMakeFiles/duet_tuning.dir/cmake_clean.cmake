file(REMOVE_RECURSE
  "CMakeFiles/duet_tuning.dir/tuning/cost_surface.cpp.o"
  "CMakeFiles/duet_tuning.dir/tuning/cost_surface.cpp.o.d"
  "CMakeFiles/duet_tuning.dir/tuning/schedule_space.cpp.o"
  "CMakeFiles/duet_tuning.dir/tuning/schedule_space.cpp.o.d"
  "CMakeFiles/duet_tuning.dir/tuning/tuner.cpp.o"
  "CMakeFiles/duet_tuning.dir/tuning/tuner.cpp.o.d"
  "libduet_tuning.a"
  "libduet_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
