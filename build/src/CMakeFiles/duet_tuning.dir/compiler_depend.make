# Empty compiler generated dependencies file for duet_tuning.
# This may be replaced when dependencies are built.
