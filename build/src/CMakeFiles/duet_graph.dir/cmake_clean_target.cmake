file(REMOVE_RECURSE
  "libduet_graph.a"
)
