
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/duet_graph.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/duet_graph.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/duet_graph.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/duet_graph.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/duet_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/duet_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/op.cpp" "src/CMakeFiles/duet_graph.dir/graph/op.cpp.o" "gcc" "src/CMakeFiles/duet_graph.dir/graph/op.cpp.o.d"
  "/root/repo/src/graph/shape_inference.cpp" "src/CMakeFiles/duet_graph.dir/graph/shape_inference.cpp.o" "gcc" "src/CMakeFiles/duet_graph.dir/graph/shape_inference.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/CMakeFiles/duet_graph.dir/graph/traversal.cpp.o" "gcc" "src/CMakeFiles/duet_graph.dir/graph/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
