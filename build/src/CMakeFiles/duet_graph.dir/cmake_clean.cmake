file(REMOVE_RECURSE
  "CMakeFiles/duet_graph.dir/graph/builder.cpp.o"
  "CMakeFiles/duet_graph.dir/graph/builder.cpp.o.d"
  "CMakeFiles/duet_graph.dir/graph/dot.cpp.o"
  "CMakeFiles/duet_graph.dir/graph/dot.cpp.o.d"
  "CMakeFiles/duet_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/duet_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/duet_graph.dir/graph/op.cpp.o"
  "CMakeFiles/duet_graph.dir/graph/op.cpp.o.d"
  "CMakeFiles/duet_graph.dir/graph/shape_inference.cpp.o"
  "CMakeFiles/duet_graph.dir/graph/shape_inference.cpp.o.d"
  "CMakeFiles/duet_graph.dir/graph/traversal.cpp.o"
  "CMakeFiles/duet_graph.dir/graph/traversal.cpp.o.d"
  "libduet_graph.a"
  "libduet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
