# Empty dependencies file for duet_graph.
# This may be replaced when dependencies are built.
