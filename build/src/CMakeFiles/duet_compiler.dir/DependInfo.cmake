
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/constant_fold.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/constant_fold.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/constant_fold.cpp.o.d"
  "/root/repo/src/compiler/cost_model.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/cost_model.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/cost_model.cpp.o.d"
  "/root/repo/src/compiler/cse.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/cse.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/cse.cpp.o.d"
  "/root/repo/src/compiler/dce.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/dce.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/dce.cpp.o.d"
  "/root/repo/src/compiler/fold_batchnorm.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/fold_batchnorm.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/fold_batchnorm.cpp.o.d"
  "/root/repo/src/compiler/fusion.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/fusion.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/fusion.cpp.o.d"
  "/root/repo/src/compiler/layout.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/layout.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/layout.cpp.o.d"
  "/root/repo/src/compiler/lowering.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/lowering.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/lowering.cpp.o.d"
  "/root/repo/src/compiler/pass_manager.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/pass_manager.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/pass_manager.cpp.o.d"
  "/root/repo/src/compiler/simplify.cpp" "src/CMakeFiles/duet_compiler.dir/compiler/simplify.cpp.o" "gcc" "src/CMakeFiles/duet_compiler.dir/compiler/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
