file(REMOVE_RECURSE
  "libduet_compiler.a"
)
