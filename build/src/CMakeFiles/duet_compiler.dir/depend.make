# Empty dependencies file for duet_compiler.
# This may be replaced when dependencies are built.
