file(REMOVE_RECURSE
  "CMakeFiles/duet_compiler.dir/compiler/constant_fold.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/constant_fold.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/cost_model.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/cost_model.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/cse.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/cse.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/dce.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/dce.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/fold_batchnorm.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/fold_batchnorm.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/fusion.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/fusion.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/layout.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/layout.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/lowering.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/lowering.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/pass_manager.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/pass_manager.cpp.o.d"
  "CMakeFiles/duet_compiler.dir/compiler/simplify.cpp.o"
  "CMakeFiles/duet_compiler.dir/compiler/simplify.cpp.o.d"
  "libduet_compiler.a"
  "libduet_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
