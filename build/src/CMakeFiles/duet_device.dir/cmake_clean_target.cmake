file(REMOVE_RECURSE
  "libduet_device.a"
)
