# Empty compiler generated dependencies file for duet_device.
# This may be replaced when dependencies are built.
