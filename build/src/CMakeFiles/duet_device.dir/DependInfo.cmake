
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cpp" "src/CMakeFiles/duet_device.dir/device/calibration.cpp.o" "gcc" "src/CMakeFiles/duet_device.dir/device/calibration.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/duet_device.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/duet_device.dir/device/device.cpp.o.d"
  "/root/repo/src/device/interconnect.cpp" "src/CMakeFiles/duet_device.dir/device/interconnect.cpp.o" "gcc" "src/CMakeFiles/duet_device.dir/device/interconnect.cpp.o.d"
  "/root/repo/src/device/sim_clock.cpp" "src/CMakeFiles/duet_device.dir/device/sim_clock.cpp.o" "gcc" "src/CMakeFiles/duet_device.dir/device/sim_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
