file(REMOVE_RECURSE
  "CMakeFiles/duet_device.dir/device/calibration.cpp.o"
  "CMakeFiles/duet_device.dir/device/calibration.cpp.o.d"
  "CMakeFiles/duet_device.dir/device/device.cpp.o"
  "CMakeFiles/duet_device.dir/device/device.cpp.o.d"
  "CMakeFiles/duet_device.dir/device/interconnect.cpp.o"
  "CMakeFiles/duet_device.dir/device/interconnect.cpp.o.d"
  "CMakeFiles/duet_device.dir/device/sim_clock.cpp.o"
  "CMakeFiles/duet_device.dir/device/sim_clock.cpp.o.d"
  "libduet_device.a"
  "libduet_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
