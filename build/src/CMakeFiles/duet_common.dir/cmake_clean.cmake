file(REMOVE_RECURSE
  "CMakeFiles/duet_common.dir/common/logging.cpp.o"
  "CMakeFiles/duet_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/duet_common.dir/common/rng.cpp.o"
  "CMakeFiles/duet_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/duet_common.dir/common/stats.cpp.o"
  "CMakeFiles/duet_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/duet_common.dir/common/string_util.cpp.o"
  "CMakeFiles/duet_common.dir/common/string_util.cpp.o.d"
  "CMakeFiles/duet_common.dir/common/threadpool.cpp.o"
  "CMakeFiles/duet_common.dir/common/threadpool.cpp.o.d"
  "libduet_common.a"
  "libduet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
