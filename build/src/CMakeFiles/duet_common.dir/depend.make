# Empty dependencies file for duet_common.
# This may be replaced when dependencies are built.
