file(REMOVE_RECURSE
  "libduet_common.a"
)
