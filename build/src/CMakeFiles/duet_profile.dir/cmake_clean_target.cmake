file(REMOVE_RECURSE
  "libduet_profile.a"
)
