# Empty dependencies file for duet_profile.
# This may be replaced when dependencies are built.
