file(REMOVE_RECURSE
  "CMakeFiles/duet_profile.dir/profile/profiler.cpp.o"
  "CMakeFiles/duet_profile.dir/profile/profiler.cpp.o.d"
  "libduet_profile.a"
  "libduet_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
