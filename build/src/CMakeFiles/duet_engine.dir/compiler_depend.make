# Empty compiler generated dependencies file for duet_engine.
# This may be replaced when dependencies are built.
