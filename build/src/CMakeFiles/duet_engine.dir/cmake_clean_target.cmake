file(REMOVE_RECURSE
  "libduet_engine.a"
)
