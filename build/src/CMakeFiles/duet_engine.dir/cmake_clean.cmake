file(REMOVE_RECURSE
  "CMakeFiles/duet_engine.dir/duet/baseline.cpp.o"
  "CMakeFiles/duet_engine.dir/duet/baseline.cpp.o.d"
  "CMakeFiles/duet_engine.dir/duet/engine.cpp.o"
  "CMakeFiles/duet_engine.dir/duet/engine.cpp.o.d"
  "CMakeFiles/duet_engine.dir/duet/report.cpp.o"
  "CMakeFiles/duet_engine.dir/duet/report.cpp.o.d"
  "libduet_engine.a"
  "libduet_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
