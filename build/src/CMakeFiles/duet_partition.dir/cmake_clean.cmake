file(REMOVE_RECURSE
  "CMakeFiles/duet_partition.dir/partition/partitioner.cpp.o"
  "CMakeFiles/duet_partition.dir/partition/partitioner.cpp.o.d"
  "CMakeFiles/duet_partition.dir/partition/subgraph.cpp.o"
  "CMakeFiles/duet_partition.dir/partition/subgraph.cpp.o.d"
  "libduet_partition.a"
  "libduet_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
