file(REMOVE_RECURSE
  "libduet_partition.a"
)
