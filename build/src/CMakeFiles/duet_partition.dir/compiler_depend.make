# Empty compiler generated dependencies file for duet_partition.
# This may be replaced when dependencies are built.
