
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/analytic_dp.cpp" "src/CMakeFiles/duet_sched.dir/sched/analytic_dp.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/analytic_dp.cpp.o.d"
  "/root/repo/src/sched/annealing.cpp" "src/CMakeFiles/duet_sched.dir/sched/annealing.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/annealing.cpp.o.d"
  "/root/repo/src/sched/correction.cpp" "src/CMakeFiles/duet_sched.dir/sched/correction.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/correction.cpp.o.d"
  "/root/repo/src/sched/exhaustive.cpp" "src/CMakeFiles/duet_sched.dir/sched/exhaustive.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/exhaustive.cpp.o.d"
  "/root/repo/src/sched/greedy_correction.cpp" "src/CMakeFiles/duet_sched.dir/sched/greedy_correction.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/greedy_correction.cpp.o.d"
  "/root/repo/src/sched/latency_model.cpp" "src/CMakeFiles/duet_sched.dir/sched/latency_model.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/latency_model.cpp.o.d"
  "/root/repo/src/sched/placement.cpp" "src/CMakeFiles/duet_sched.dir/sched/placement.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/placement.cpp.o.d"
  "/root/repo/src/sched/random_sched.cpp" "src/CMakeFiles/duet_sched.dir/sched/random_sched.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/random_sched.cpp.o.d"
  "/root/repo/src/sched/round_robin_sched.cpp" "src/CMakeFiles/duet_sched.dir/sched/round_robin_sched.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/round_robin_sched.cpp.o.d"
  "/root/repo/src/sched/scheduler_factory.cpp" "src/CMakeFiles/duet_sched.dir/sched/scheduler_factory.cpp.o" "gcc" "src/CMakeFiles/duet_sched.dir/sched/scheduler_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
