# Empty dependencies file for duet_sched.
# This may be replaced when dependencies are built.
