file(REMOVE_RECURSE
  "libduet_sched.a"
)
