file(REMOVE_RECURSE
  "CMakeFiles/duet_sched.dir/sched/analytic_dp.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/analytic_dp.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/annealing.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/annealing.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/correction.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/correction.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/exhaustive.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/exhaustive.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/greedy_correction.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/greedy_correction.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/latency_model.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/latency_model.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/placement.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/placement.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/random_sched.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/random_sched.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/round_robin_sched.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/round_robin_sched.cpp.o.d"
  "CMakeFiles/duet_sched.dir/sched/scheduler_factory.cpp.o"
  "CMakeFiles/duet_sched.dir/sched/scheduler_factory.cpp.o.d"
  "libduet_sched.a"
  "libduet_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
