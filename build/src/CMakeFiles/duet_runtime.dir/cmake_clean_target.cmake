file(REMOVE_RECURSE
  "libduet_runtime.a"
)
