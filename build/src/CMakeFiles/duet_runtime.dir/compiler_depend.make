# Empty compiler generated dependencies file for duet_runtime.
# This may be replaced when dependencies are built.
