file(REMOVE_RECURSE
  "CMakeFiles/duet_runtime.dir/runtime/pipeline.cpp.o"
  "CMakeFiles/duet_runtime.dir/runtime/pipeline.cpp.o.d"
  "CMakeFiles/duet_runtime.dir/runtime/plan.cpp.o"
  "CMakeFiles/duet_runtime.dir/runtime/plan.cpp.o.d"
  "CMakeFiles/duet_runtime.dir/runtime/sim_executor.cpp.o"
  "CMakeFiles/duet_runtime.dir/runtime/sim_executor.cpp.o.d"
  "CMakeFiles/duet_runtime.dir/runtime/threaded_executor.cpp.o"
  "CMakeFiles/duet_runtime.dir/runtime/threaded_executor.cpp.o.d"
  "CMakeFiles/duet_runtime.dir/runtime/timeline.cpp.o"
  "CMakeFiles/duet_runtime.dir/runtime/timeline.cpp.o.d"
  "libduet_runtime.a"
  "libduet_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
