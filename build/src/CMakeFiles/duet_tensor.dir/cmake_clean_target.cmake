file(REMOVE_RECURSE
  "libduet_tensor.a"
)
