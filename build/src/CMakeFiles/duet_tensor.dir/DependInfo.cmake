
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/dtype.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/dtype.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/dtype.cpp.o.d"
  "/root/repo/src/tensor/kernels_attention.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_attention.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_attention.cpp.o.d"
  "/root/repo/src/tensor/kernels_conv.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_conv.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_conv.cpp.o.d"
  "/root/repo/src/tensor/kernels_elementwise.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_elementwise.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_elementwise.cpp.o.d"
  "/root/repo/src/tensor/kernels_matmul.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_matmul.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_matmul.cpp.o.d"
  "/root/repo/src/tensor/kernels_reduce.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_reduce.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_reduce.cpp.o.d"
  "/root/repo/src/tensor/kernels_rnn.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_rnn.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_rnn.cpp.o.d"
  "/root/repo/src/tensor/kernels_transform.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_transform.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/kernels_transform.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/duet_tensor.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/duet_tensor.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
