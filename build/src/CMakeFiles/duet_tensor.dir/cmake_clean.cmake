file(REMOVE_RECURSE
  "CMakeFiles/duet_tensor.dir/tensor/dtype.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/dtype.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_attention.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_attention.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_conv.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_conv.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_elementwise.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_elementwise.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_matmul.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_matmul.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_reduce.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_reduce.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_rnn.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_rnn.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_transform.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/kernels_transform.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/shape.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/shape.cpp.o.d"
  "CMakeFiles/duet_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/duet_tensor.dir/tensor/tensor.cpp.o.d"
  "libduet_tensor.a"
  "libduet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
