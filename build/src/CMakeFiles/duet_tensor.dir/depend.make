# Empty dependencies file for duet_tensor.
# This may be replaced when dependencies are built.
