
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relay/expr.cpp" "src/CMakeFiles/duet_relay.dir/relay/expr.cpp.o" "gcc" "src/CMakeFiles/duet_relay.dir/relay/expr.cpp.o.d"
  "/root/repo/src/relay/from_graph.cpp" "src/CMakeFiles/duet_relay.dir/relay/from_graph.cpp.o" "gcc" "src/CMakeFiles/duet_relay.dir/relay/from_graph.cpp.o.d"
  "/root/repo/src/relay/parser.cpp" "src/CMakeFiles/duet_relay.dir/relay/parser.cpp.o" "gcc" "src/CMakeFiles/duet_relay.dir/relay/parser.cpp.o.d"
  "/root/repo/src/relay/printer.cpp" "src/CMakeFiles/duet_relay.dir/relay/printer.cpp.o" "gcc" "src/CMakeFiles/duet_relay.dir/relay/printer.cpp.o.d"
  "/root/repo/src/relay/serialize.cpp" "src/CMakeFiles/duet_relay.dir/relay/serialize.cpp.o" "gcc" "src/CMakeFiles/duet_relay.dir/relay/serialize.cpp.o.d"
  "/root/repo/src/relay/to_graph.cpp" "src/CMakeFiles/duet_relay.dir/relay/to_graph.cpp.o" "gcc" "src/CMakeFiles/duet_relay.dir/relay/to_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/duet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/duet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
