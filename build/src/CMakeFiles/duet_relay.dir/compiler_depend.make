# Empty compiler generated dependencies file for duet_relay.
# This may be replaced when dependencies are built.
