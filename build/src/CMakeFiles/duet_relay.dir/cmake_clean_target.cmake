file(REMOVE_RECURSE
  "libduet_relay.a"
)
