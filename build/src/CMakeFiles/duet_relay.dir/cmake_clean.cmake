file(REMOVE_RECURSE
  "CMakeFiles/duet_relay.dir/relay/expr.cpp.o"
  "CMakeFiles/duet_relay.dir/relay/expr.cpp.o.d"
  "CMakeFiles/duet_relay.dir/relay/from_graph.cpp.o"
  "CMakeFiles/duet_relay.dir/relay/from_graph.cpp.o.d"
  "CMakeFiles/duet_relay.dir/relay/parser.cpp.o"
  "CMakeFiles/duet_relay.dir/relay/parser.cpp.o.d"
  "CMakeFiles/duet_relay.dir/relay/printer.cpp.o"
  "CMakeFiles/duet_relay.dir/relay/printer.cpp.o.d"
  "CMakeFiles/duet_relay.dir/relay/serialize.cpp.o"
  "CMakeFiles/duet_relay.dir/relay/serialize.cpp.o.d"
  "CMakeFiles/duet_relay.dir/relay/to_graph.cpp.o"
  "CMakeFiles/duet_relay.dir/relay/to_graph.cpp.o.d"
  "libduet_relay.a"
  "libduet_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duet_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
