// Online serving simulation: the deployment setting that motivates the
// paper (§II-A — inference must satisfy a latency SLA of a few ms per
// query). Queries arrive as a Poisson process at a configurable QPS and are
// served FIFO by one engine instance; response time = queueing + service.
// Compares DUET against TVM-GPU across offered loads and reports P99
// response time and SLA attainment.
//
//   $ ./examples/serving_simulator [qps...]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "duet/baseline.hpp"
#include "duet/engine.hpp"
#include "duet/report.hpp"
#include "models/model_zoo.hpp"

namespace {

using namespace duet;

// M/G/1 FIFO queue simulation driven by sampled service times.
SummaryStats simulate(double qps, int queries, Rng& rng,
                      const std::function<double()>& service_time) {
  LatencyRecorder responses;
  double clock = 0.0;       // arrival clock
  double server_free = 0.0; // completion time of the previous query
  for (int q = 0; q < queries; ++q) {
    clock += -std::log(1.0 - rng.uniform()) / qps;  // exponential gap
    const double start = std::max(clock, server_free);
    const double done = start + service_time();
    server_free = done;
    responses.add(done - clock);
  }
  return responses.summarize();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kQueries = 4000;
  constexpr double kSlaMs = 25.0;

  std::vector<double> loads{20, 40, 60, 80};
  if (argc > 1) {
    loads.clear();
    for (int i = 1; i < argc; ++i) loads.push_back(std::stod(argv[i]));
  }

  DuetEngine engine(models::build_wide_deep());
  Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());
  std::printf("Wide-and-Deep serving, SLA %.0f ms, %d queries per load point\n",
              kSlaMs, kQueries);
  std::printf("service means: DUET %.2f ms, TVM-GPU %.2f ms\n\n",
              engine.report().est_hetero_s * 1e3,
              engine.report().est_single_gpu_s * 1e3);

  TextTable table({"offered QPS", "DUET p50", "DUET p99", "TVM-GPU p50",
                   "TVM-GPU p99"});
  for (double qps : loads) {
    Rng arrivals_a(100);
    Rng arrivals_b(100);  // identical arrival process for both systems
    const SummaryStats duet = simulate(
        qps, kQueries, arrivals_a, [&] { return engine.latency(true); });
    const SummaryStats gpu = simulate(
        qps, kQueries, arrivals_b, [&] { return tvm_gpu.latency(true); });
    char c0[32], c1[32], c2[32], c3[32], c4[32];
    std::snprintf(c0, sizeof(c0), "%.0f", qps);
    std::snprintf(c1, sizeof(c1), "%.2f ms", duet.p50 * 1e3);
    std::snprintf(c2, sizeof(c2), "%.2f ms", duet.p99 * 1e3);
    std::snprintf(c3, sizeof(c3), "%.2f ms", gpu.p50 * 1e3);
    std::snprintf(c4, sizeof(c4), "%.2f ms", gpu.p99 * 1e3);
    table.add_row({c0, c1, c2, c3, c4});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nDUET's lower service time pushes the queueing knee to much higher "
      "load: at the QPS where TVM-GPU saturates (1/%.1fms ~= %.0f qps), DUET "
      "still has %.0f%% headroom.\n",
      engine.report().est_single_gpu_s * 1e3,
      1.0 / engine.report().est_single_gpu_s,
      100.0 * (engine.report().est_single_gpu_s / engine.report().est_hetero_s -
               1.0));
  return 0;
}
