// Recommender serving scenario (the paper's Wide-and-Deep motivation):
// serve click-through-rate queries under a latency SLA. Shows the
// per-subgraph cost/placement breakdown (Table II style), then serves a
// stream of queries and reports the latency distribution against the SLA.

#include <cstdio>

#include "common/stats.hpp"
#include "duet/baseline.hpp"
#include "duet/engine.hpp"
#include "duet/report.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;

  constexpr double kSlaMs = 5.0;
  constexpr int kQueries = 3000;

  DuetEngine engine(models::build_wide_deep());
  std::printf("Wide-and-Deep subgraph breakdown:\n%s\n",
              render_subgraph_breakdown(engine).c_str());

  Baseline tvm_gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());

  LatencyRecorder duet_rec;
  LatencyRecorder gpu_rec;
  for (int q = 0; q < kQueries; ++q) {
    duet_rec.add(engine.latency(/*with_noise=*/true));
    gpu_rec.add(tvm_gpu.latency(/*with_noise=*/true));
  }
  const SummaryStats d = duet_rec.summarize();
  const SummaryStats g = gpu_rec.summarize();

  const auto sla_hits = [&](const LatencyRecorder& rec) {
    int ok = 0;
    for (double s : rec.samples()) ok += s * 1e3 <= kSlaMs;
    return 100.0 * ok / static_cast<double>(rec.samples().size());
  };

  std::printf("served %d queries, SLA = %.1f ms\n", kQueries, kSlaMs);
  std::printf("  TVM-GPU: p50 %.2f ms  p99 %.2f ms  SLA attainment %.1f%%\n",
              g.p50 * 1e3, g.p99 * 1e3, sla_hits(gpu_rec));
  std::printf("  DUET:    p50 %.2f ms  p99 %.2f ms  SLA attainment %.1f%%\n",
              d.p50 * 1e3, d.p99 * 1e3, sla_hits(duet_rec));

  // One real query end-to-end (numeric).
  Rng rng(9);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult r = engine.infer(feeds);
  std::printf("sample query CTR score: %.4f (in %.2f ms)\n",
              r.outputs[0].data<float>()[0], r.latency_s * 1e3);
  return 0;
}
