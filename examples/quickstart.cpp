// Quickstart: build a model with the graph builder, hand it to DuetEngine,
// and run one inference. Uses the tiny Wide-and-Deep variant so the numeric
// kernels finish instantly on any host.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "duet/engine.hpp"
#include "duet/report.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;

  // 1. Build a model. Any Graph works; the zoo has ready-made ones.
  Graph model = models::build_wide_deep(models::WideDeepConfig::tiny());

  // 2. Hand it to DUET. This partitions, profiles both devices, schedules,
  //    and prepares the heterogeneous executor (or falls back).
  DuetEngine engine(std::move(model));
  std::printf("%s\n", engine.report()
                          .to_string(engine.model(), engine.partition())
                          .c_str());

  // 3. Run an inference.
  Rng rng(123);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult result = engine.infer(feeds);

  std::printf("modeled end-to-end latency: %.3f ms\n", result.latency_s * 1e3);
  std::printf("output[0] shape: %s, first value: %.6f\n",
              result.outputs[0].shape().to_string().c_str(),
              result.outputs[0].data<float>()[0]);

  // 4. The same plan can run on real threads (wall-clock measurement):
  ExecutionResult threaded = engine.infer_threaded(feeds);
  std::printf("threaded executor wall time: %.3f ms; outputs match: %s\n",
              threaded.latency_s * 1e3,
              Tensor::allclose(threaded.outputs[0], result.outputs[0]) ? "yes"
                                                                       : "NO");
  return 0;
}
