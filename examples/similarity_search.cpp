// Similarity ranking with the Siamese network (the paper's second
// workload): score one query against a set of candidate passages and rank
// them. The two LSTM branches run concurrently on CPU and GPU under DUET.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "duet/engine.hpp"
#include "models/model_zoo.hpp"

int main() {
  using namespace duet;

  models::SiameseConfig config = models::SiameseConfig::tiny();
  DuetEngine engine(models::build_siamese(config));
  std::printf("Siamese placement: %s (fallback: %s)\n",
              engine.report().schedule.placement.to_string().c_str(),
              engine.report().fell_back ? "yes" : "no");

  const std::vector<NodeId> inputs = engine.model().input_ids();
  Rng rng(31);
  const Tensor query = Tensor::randn(
      Shape{config.batch, config.seq_len, config.embed_dim}, rng);

  constexpr int kCandidates = 8;
  std::vector<std::pair<float, int>> ranking;
  double total_ms = 0.0;
  for (int c = 0; c < kCandidates; ++c) {
    const Tensor passage = Tensor::randn(
        Shape{config.batch, config.seq_len, config.embed_dim}, rng);
    std::map<NodeId, Tensor> feeds{{inputs[0], query}, {inputs[1], passage}};
    ExecutionResult r = engine.infer(feeds);
    ranking.emplace_back(r.outputs[0].data<float>()[0], c);
    total_ms += r.latency_s * 1e3;
  }

  std::sort(ranking.rbegin(), ranking.rend());
  std::printf("ranked %d candidates (avg %.2f ms/query):\n", kCandidates,
              total_ms / kCandidates);
  for (const auto& [score, id] : ranking) {
    std::printf("  passage %d  similarity %.4f\n", id, score);
  }
  return 0;
}
