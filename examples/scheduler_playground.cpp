// Scheduler playground: run every scheduling algorithm on a model of your
// choice and compare the resulting placements and estimated latencies —
// a programmatic version of the paper's Fig. 13 study.
//
//   $ ./examples/scheduler_playground [model-name]
//   model-name: wide-deep | siamese | mtdnn | resnet18 | ... (default wide-deep)

#include <cstdio>
#include <string>

#include "device/calibration.hpp"
#include "device/interconnect.hpp"
#include "duet/report.hpp"
#include "models/model_zoo.hpp"
#include "sched/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace duet;

  const std::string model_name = argc > 1 ? argv[1] : "wide-deep";
  Graph model = models::build_by_name(model_name);

  DevicePair devices = make_default_device_pair(99);
  Partition partition = partition_phased(model);
  std::printf("%s\n", partition.to_string(model).c_str());

  Profiler profiler(devices);
  const auto profiles = profiler.profile_partition(partition, model);
  LatencyEvaluator evaluator(partition, model, profiles, devices.link->params());

  TextTable table({"scheduler", "placement", "est latency", "evaluations"});
  for (const char* name :
       {"cpu-only", "gpu-only", "random", "round-robin", "random+correction",
        "greedy-only", "greedy-correction", "exhaustive"}) {
    if (std::string(name) == "exhaustive" && partition.subgraphs.size() > 16) {
      table.add_row({name, "(skipped: too many subgraphs)", "-", "-"});
      continue;
    }
    Rng rng(1);
    SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};
    ScheduleResult r = make_scheduler(name)->schedule(ctx);
    char lat[32];
    std::snprintf(lat, sizeof(lat), "%.3f ms", r.est_latency_s * 1e3);
    table.add_row({name, r.placement.to_string(), lat,
                   std::to_string(r.evaluations)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
