// Multi-task NLU with MT-DNN (the paper's third workload): one encoder
// pass feeds several task heads (classification per task) that DUET spreads
// across the CPU and GPU. Prints each task's predicted class and the
// timeline showing the heads overlapping.

#include <cstdio>

#include "duet/engine.hpp"
#include "models/model_zoo.hpp"
#include "tensor/kernels.hpp"

int main() {
  using namespace duet;

  models::MtDnnConfig config = models::MtDnnConfig::tiny();
  config.num_tasks = 4;
  DuetEngine engine(models::build_mtdnn(config));
  std::printf("MT-DNN: %zu subgraphs, placement %s\n",
              engine.partition().subgraphs.size(),
              engine.report().schedule.placement.to_string().c_str());

  Rng rng(17);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult r = engine.infer(feeds);

  for (size_t task = 0; task < r.outputs.size(); ++task) {
    const Tensor cls = kernels::argmax_lastdim(r.outputs[task]);
    std::printf("task %zu: predicted class %d (probs:", task,
                cls.data<int32_t>()[0]);
    for (int64_t i = 0; i < r.outputs[task].numel(); ++i) {
      std::printf(" %.3f", r.outputs[task].data<float>()[i]);
    }
    std::printf(")\n");
  }
  std::printf("\nexecution timeline:\n%s", r.timeline.render_ascii(72).c_str());
  std::printf("latency: %.3f ms\n", r.latency_s * 1e3);
  return 0;
}
