// Relay-like text IR round trip (paper §V): build a model, print its
// expression-oriented textual form, parse it back, translate to the
// adjacency-list graph, and check the graphs agree structurally. Also shows
// a partitioned subgraph re-emitted as a sequence of Relay statements.

#include <cstdio>

#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "relay/relay.hpp"

int main() {
  using namespace duet;

  Graph model = models::build_siamese(models::SiameseConfig::tiny());

  // Graph -> Relay text.
  relay::Module module = relay::from_graph(model);
  const std::string text = relay::print_module(module);
  std::printf("--- relay text (first 40 lines) ---\n");
  int lines = 0;
  for (size_t i = 0; i < text.size() && lines < 40; ++i) {
    std::putchar(text[i]);
    if (text[i] == '\n') ++lines;
  }

  // Text -> Module -> Graph.
  relay::Module parsed = relay::parse_module(text);
  Graph round_trip = relay::to_graph(parsed);
  std::printf("--- round trip: %zu nodes -> %zu nodes, outputs %zu -> %zu ---\n",
              model.num_nodes(), round_trip.num_nodes(), model.outputs().size(),
              round_trip.outputs().size());

  // A partitioned subgraph back as Relay statements.
  Partition partition = partition_phased(model);
  const Subgraph& branch = partition.subgraphs.front();
  std::printf("--- subgraph '%s' as relay statements ---\n%s",
              branch.label.c_str(),
              relay::print_module(relay::from_graph(branch.graph)).c_str());
  return 0;
}
