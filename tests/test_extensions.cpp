// Tests for the paper's discussed-but-deferred extensions implemented here:
// the analytic DP scheduler (§IV-C's alternative), intra-device lanes
// (footnote 2), nested partitioning (footnote 1), Chrome trace export, and
// the plan memory report.

#include <gtest/gtest.h>

#include <algorithm>

#include "device/calibration.hpp"
#include "duet/engine.hpp"
#include "models/model_zoo.hpp"
#include "runtime/executor.hpp"
#include "sched/scheduler.hpp"

namespace duet {
namespace {

struct ExtBench {
  Graph graph;
  DevicePair devices;
  Partition partition;
  std::vector<SubgraphProfile> profiles;
  std::unique_ptr<LatencyEvaluator> evaluator;
  Rng rng{5};

  explicit ExtBench(Graph g, PartitionOptions popts = {},
                    LaneConfig lanes = LaneConfig::single())
      : graph(std::move(g)),
        devices(make_default_device_pair(71)),
        partition(partition_phased(graph, popts)) {
    Profiler profiler(devices);
    ProfileOptions opts;
    opts.with_noise = false;
    opts.runs = 1;
    profiles = profiler.profile_partition(partition, graph, opts);
    evaluator = std::make_unique<LatencyEvaluator>(partition, graph, profiles,
                                                   devices.link->params(), lanes);
  }

  SchedulingContext ctx() {
    return SchedulingContext{&partition, &profiles, evaluator.get(), &rng};
  }
};

// --- analytic DP scheduler -----------------------------------------------------

TEST(AnalyticDp, CompetitiveWithGreedyCorrectionOnWideDeep) {
  ExtBench bench(models::build_wide_deep());
  auto ctx = bench.ctx();
  const ScheduleResult dp = make_scheduler("analytic-dp")->schedule(ctx);
  const ScheduleResult ideal = make_scheduler("exhaustive")->schedule(ctx);
  // Analytic placement is good (within 25% of optimal) but not guaranteed
  // optimal — the paper's reason to prefer measured-latency correction.
  EXPECT_LE(dp.est_latency_s, ideal.est_latency_s * 1.25);
  EXPECT_GE(dp.est_latency_s, ideal.est_latency_s * (1 - 1e-12));
}

TEST(AnalyticDp, UsesNoSearchEvaluations) {
  ExtBench bench(models::build_mtdnn());
  auto ctx = bench.ctx();
  const ScheduleResult dp = make_scheduler("analytic-dp")->schedule(ctx);
  EXPECT_EQ(dp.evaluations, 1);  // only the final report evaluation
}

TEST(AnalyticDp, BeatsSingleDeviceOnHeterogeneousModels) {
  for (Graph (*build)() : {+[] { return models::build_wide_deep(); },
                           +[] { return models::build_siamese(); }}) {
    ExtBench bench(build());
    auto ctx = bench.ctx();
    const double dp = make_scheduler("analytic-dp")->schedule(ctx).est_latency_s;
    const double cpu = make_scheduler("cpu-only")->schedule(ctx).est_latency_s;
    const double gpu = make_scheduler("gpu-only")->schedule(ctx).est_latency_s;
    EXPECT_LT(dp, cpu);
    EXPECT_LT(dp, gpu);
  }
}

// --- lanes (footnote 2) ---------------------------------------------------------

TEST(Lanes, GpuStreamsImproveGpuOnlyMultiPathLatency) {
  // MT-DNN: six independent heads on the GPU. With 1 stream they serialize;
  // with 4 streams they overlap, so gpu-only latency must drop.
  ExtBench serial{models::build_mtdnn()};
  ExtBench streams{models::build_mtdnn(), {}, LaneConfig::gpu_streams(4)};

  const size_t n = serial.partition.subgraphs.size();
  const double one = serial.evaluator->evaluate(Placement(n, DeviceKind::kGpu));
  const double four = streams.evaluator->evaluate(Placement(n, DeviceKind::kGpu));
  EXPECT_LT(four, one * 0.6);
}

TEST(Lanes, NoEffectOnPureChain) {
  GraphBuilder b("chain");
  NodeId x = b.input(Shape{1, 64});
  for (int i = 0; i < 4; ++i) x = b.dense(x, 64);
  Graph g = b.finish({x});
  ExtBench serial{Graph(g)};
  ExtBench streams{Graph(g), {}, LaneConfig::gpu_streams(8)};
  const size_t n = serial.partition.subgraphs.size();
  EXPECT_DOUBLE_EQ(serial.evaluator->evaluate(Placement(n, DeviceKind::kGpu)),
                   streams.evaluator->evaluate(Placement(n, DeviceKind::kGpu)));
}

TEST(Lanes, SimExecutorHonorsLanes) {
  Graph model = models::build_mtdnn(models::MtDnnConfig::tiny());
  DevicePair devices = make_default_device_pair(72);
  Partition partition = partition_phased(model);
  ExecutionPlan plan = ExecutionPlan::build(
      model, partition, Placement(partition.subgraphs.size(), DeviceKind::kGpu),
      devices, CompileOptions::compiler_defaults());
  SimExecutor one(devices);
  SimExecutor four(devices, LaneConfig::gpu_streams(4));
  const double serial = one.run_latency_only(plan, false);
  const double overlapped = four.run_latency_only(plan, false);
  EXPECT_LT(overlapped, serial);
}

TEST(Lanes, ConfigHelpers) {
  const LaneConfig c = LaneConfig::gpu_streams(3);
  EXPECT_EQ(c.of(DeviceKind::kGpu), 3);
  EXPECT_EQ(c.of(DeviceKind::kCpu), 1);
}

// --- nested partitioning (footnote 1) -------------------------------------------

TEST(NestedPartition, SplitsLongSequentialPhases) {
  PartitionOptions coarse;
  PartitionOptions nested;
  nested.granularity = PartitionOptions::Granularity::kNested;
  nested.nested_max_nodes = 8;

  Graph model = models::build_mtdnn();  // long sequential encoder
  Partition pc = partition_phased(model, coarse);
  Partition pn = partition_phased(model, nested);
  EXPECT_GT(pn.subgraphs.size(), pc.subgraphs.size());
  pn.validate(model);
  // Chunks respect the bound.
  for (const Subgraph& sub : pn.subgraphs) {
    if (sub.phase_type == PhaseType::kSequential) {
      EXPECT_LE(sub.parent_nodes.size(), 8u);
    }
  }
}

TEST(NestedPartition, ExecutionStillCorrect) {
  PartitionOptions nested;
  nested.granularity = PartitionOptions::Granularity::kNested;
  nested.nested_max_nodes = 4;
  Graph model = models::build_mtdnn(models::MtDnnConfig::tiny());
  DevicePair devices = make_default_device_pair(73);
  Partition partition = partition_phased(model, nested);
  // Alternate placement across the nested chunks.
  Placement placement(partition.subgraphs.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    placement.set(static_cast<int>(i),
                  i % 2 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  ExecutionPlan plan = ExecutionPlan::build(model, partition, placement, devices,
                                            CompileOptions::compiler_defaults());
  SimExecutor executor(devices);
  Rng rng(6);
  const auto feeds = models::make_random_feeds(model, rng);
  const auto expect = evaluate_graph(model, feeds);
  const auto result = executor.run(plan, feeds, false);
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(result.outputs[i], expect[i], 1e-3f, 1e-4f));
  }
}

TEST(NestedPartition, EngineOptionPlumbed) {
  DuetOptions opts;
  opts.partition.granularity = PartitionOptions::Granularity::kNested;
  opts.partition.nested_max_nodes = 6;
  DuetEngine engine(models::build_mtdnn(models::MtDnnConfig::tiny()), opts);
  for (const Subgraph& sub : engine.partition().subgraphs) {
    if (sub.phase_type == PhaseType::kSequential) {
      EXPECT_LE(sub.parent_nodes.size(), 6u);
    }
  }
}

// --- chrome trace ----------------------------------------------------------------

TEST(ChromeTrace, WellFormedJson) {
  Timeline tl;
  tl.add({TimelineEvent::Kind::kExec, 0, DeviceKind::kCpu, "rnn", 0.0, 1e-3});
  tl.add({TimelineEvent::Kind::kTransfer, 1, DeviceKind::kGpu, "xfer", 1e-3, 2e-3});
  const std::string json = tl.to_chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rnn\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Microsecond timestamps.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ChromeTrace, FromRealExecution) {
  DuetOptions opts;
  opts.enable_fallback = false;
  DuetEngine engine(models::build_wide_deep(models::WideDeepConfig::tiny()), opts);
  Rng rng(7);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  const auto result = engine.infer(feeds);
  const std::string json = result.timeline.to_chrome_trace();
  EXPECT_NE(json.find("phase0"), std::string::npos);
}

// --- memory report ------------------------------------------------------------------

TEST(MemoryReport, WeightsFollowPlacement) {
  Graph model = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(74);
  Partition partition = partition_phased(model);

  // All CPU: everything resident host-side.
  ExecutionPlan cpu_plan = ExecutionPlan::build(
      model, partition, Placement(partition.subgraphs.size(), DeviceKind::kCpu),
      devices, CompileOptions::compiler_defaults());
  const auto cpu_report = cpu_plan.memory_report();
  EXPECT_GT(cpu_report.total(DeviceKind::kCpu), 0u);
  EXPECT_EQ(cpu_report.total(DeviceKind::kGpu), 0u);

  // Split: both devices hold weights; totals exceed zero on each side.
  Placement split(partition.subgraphs.size(), DeviceKind::kCpu);
  split.set(3, DeviceKind::kGpu);
  ExecutionPlan split_plan = ExecutionPlan::build(model, partition, split, devices,
                                                  CompileOptions::compiler_defaults());
  const auto split_report = split_plan.memory_report();
  EXPECT_GT(split_report.weight_bytes[0], 0u);
  EXPECT_GT(split_report.weight_bytes[1], 0u);
  EXPECT_LT(split_report.weight_bytes[0], cpu_report.weight_bytes[0]);
}

}  // namespace
}  // namespace duet
