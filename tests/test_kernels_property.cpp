// Property-based / parameterized kernel tests: the optimized (blocked,
// parallelized) kernels must agree with straightforward triple-loop
// references across a sweep of shapes, strides and paddings.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/kernels.hpp"

namespace duet {
namespace {

// --- naive references ----------------------------------------------------------

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  Tensor c = Tensor::zeros(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.data<float>()[i * k + kk] * b.data<float>()[kk * n + j];
      }
      c.data<float>()[i * n + j] = acc;
    }
  }
  return c;
}

Tensor naive_conv2d(const Tensor& x, const Tensor& w, int stride, int pad) {
  const int64_t n = x.shape().dim(0), c = x.shape().dim(1), h = x.shape().dim(2),
                wd = x.shape().dim(3);
  const int64_t oc = w.shape().dim(0), kh = w.shape().dim(2), kw = w.shape().dim(3);
  const int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const int64_t ow = (wd + 2 * pad - kw) / stride + 1;
  Tensor y = Tensor::zeros(Shape{n, oc, oh, ow});
  for (int64_t ni = 0; ni < n; ++ni)
    for (int64_t o = 0; o < oc; ++o)
      for (int64_t yy = 0; yy < oh; ++yy)
        for (int64_t xx = 0; xx < ow; ++xx) {
          float acc = 0.0f;
          for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t ky = 0; ky < kh; ++ky)
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t iy = yy * stride - pad + ky;
                const int64_t ix = xx * stride - pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
                acc += x.data<float>()[((ni * c + ci) * h + iy) * wd + ix] *
                       w.data<float>()[((o * c + ci) * kh + ky) * kw + kx];
              }
          y.data<float>()[((ni * oc + o) * oh + yy) * ow + xx] = acc;
        }
  return y;
}

// --- matmul sweep -----------------------------------------------------------------

class MatMulSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MatMulSweep, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  const Tensor fast = kernels::matmul(a, b);
  const Tensor slow = naive_matmul(a, b);
  EXPECT_TRUE(Tensor::allclose(fast, slow, 1e-3f, 1e-3f))
      << "m=" << m << " k=" << k << " n=" << n
      << " max diff=" << Tensor::max_abs_diff(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 64, 1),
                      std::make_tuple(1, 1, 64), std::make_tuple(3, 5, 7),
                      std::make_tuple(17, 31, 13), std::make_tuple(64, 64, 64),
                      std::make_tuple(1, 300, 50), std::make_tuple(33, 1, 33),
                      std::make_tuple(100, 257, 3)));

// --- conv sweep --------------------------------------------------------------------

struct ConvCase {
  int64_t n, c, h, oc, k;
  int stride, pad;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, MatchesNaive) {
  const ConvCase p = GetParam();
  Rng rng(static_cast<uint64_t>(p.c * 31 + p.k * 7 + p.stride));
  const Tensor x = Tensor::randn(Shape{p.n, p.c, p.h, p.h}, rng);
  const Tensor w = Tensor::randn(Shape{p.oc, p.c, p.k, p.k}, rng);
  const Tensor fast = kernels::conv2d(x, w, Tensor(), p.stride, p.pad);
  const Tensor slow = naive_conv2d(x, w, p.stride, p.pad);
  EXPECT_TRUE(Tensor::allclose(fast, slow, 1e-3f, 1e-3f))
      << "max diff=" << Tensor::max_abs_diff(fast, slow);
}

TEST_P(ConvSweep, Im2colMatchesDirect) {
  const ConvCase p = GetParam();
  Rng rng(static_cast<uint64_t>(p.c * 17 + p.k * 3 + p.pad));
  const Tensor x = Tensor::randn(Shape{p.n, p.c, p.h, p.h}, rng);
  const Tensor w = Tensor::randn(Shape{p.oc, p.c, p.k, p.k}, rng);
  const Tensor bias = Tensor::randn(Shape{p.oc}, rng);
  const Tensor direct = kernels::conv2d_direct(x, w, bias, p.stride, p.pad);
  const Tensor im2col = kernels::conv2d_im2col(x, w, bias, p.stride, p.pad);
  EXPECT_TRUE(Tensor::allclose(im2col, direct, 1e-3f, 1e-3f))
      << "max diff=" << Tensor::max_abs_diff(im2col, direct);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 5, 1, 3, 1, 0}, ConvCase{1, 3, 8, 4, 3, 1, 1},
                      ConvCase{2, 2, 9, 3, 3, 2, 1}, ConvCase{1, 4, 7, 2, 1, 1, 0},
                      ConvCase{1, 2, 11, 5, 5, 2, 2},
                      ConvCase{1, 3, 12, 6, 7, 3, 3},
                      ConvCase{2, 1, 6, 2, 2, 2, 0},
                      ConvCase{1, 8, 14, 16, 3, 1, 1},   // im2col regime
                      ConvCase{1, 16, 10, 8, 3, 2, 1}));

// --- reduction properties --------------------------------------------------------

class ReduceAxisSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceAxisSweep, SumEqualsManualTotal) {
  const int axis = GetParam();
  Rng rng(20 + static_cast<uint64_t>(axis));
  const Tensor x = Tensor::randn(Shape{3, 4, 5}, rng);
  const Tensor r = kernels::reduce_sum(x, axis);
  // Total over all elements must be preserved by a full re-reduction.
  float total_direct = 0.0f;
  for (int64_t i = 0; i < x.numel(); ++i) total_direct += x.data<float>()[i];
  float total_reduced = 0.0f;
  for (int64_t i = 0; i < r.numel(); ++i) total_reduced += r.data<float>()[i];
  EXPECT_NEAR(total_direct, total_reduced, 1e-3);
}

TEST_P(ReduceAxisSweep, MeanTimesLenEqualsSum) {
  const int axis = GetParam();
  Rng rng(30 + static_cast<uint64_t>(axis));
  const Tensor x = Tensor::randn(Shape{3, 4, 5}, rng);
  const Tensor mean = kernels::reduce_mean(x, axis);
  const Tensor sum = kernels::reduce_sum(x, axis);
  const float len = static_cast<float>(x.shape().dim(static_cast<size_t>(axis)));
  for (int64_t i = 0; i < mean.numel(); ++i) {
    EXPECT_NEAR(mean.data<float>()[i] * len, sum.data<float>()[i], 1e-4);
  }
}

TEST_P(ReduceAxisSweep, MaxIsUpperBound) {
  const int axis = GetParam();
  Rng rng(40 + static_cast<uint64_t>(axis));
  const Tensor x = Tensor::randn(Shape{3, 4, 5}, rng);
  const Tensor mx = kernels::reduce_max(x, axis);
  const Tensor mean = kernels::reduce_mean(x, axis);
  for (int64_t i = 0; i < mx.numel(); ++i) {
    EXPECT_GE(mx.data<float>()[i], mean.data<float>()[i] - 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, ReduceAxisSweep, ::testing::Values(0, 1, 2));

// --- elementwise algebraic properties ----------------------------------------------

class ElementwisePropSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ElementwisePropSweep, ReluIdempotent) {
  Rng rng(50);
  const Tensor x = Tensor::randn(Shape{GetParam()}, rng);
  const Tensor once = kernels::relu(x);
  EXPECT_TRUE(Tensor::allclose(kernels::relu(once), once));
}

TEST_P(ElementwisePropSweep, AddCommutes) {
  Rng rng(51);
  const Tensor a = Tensor::randn(Shape{GetParam()}, rng);
  const Tensor b = Tensor::randn(Shape{GetParam()}, rng);
  EXPECT_TRUE(Tensor::allclose(kernels::add(a, b), kernels::add(b, a)));
}

TEST_P(ElementwisePropSweep, SigmoidBounded) {
  Rng rng(52);
  const Tensor x = Tensor::randn(Shape{GetParam()}, rng, 10.0f);
  const Tensor y = kernels::sigmoid(x);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_GE(y.data<float>()[i], 0.0f);
    EXPECT_LE(y.data<float>()[i], 1.0f);
  }
}

TEST_P(ElementwisePropSweep, SubOfSelfIsZero) {
  Rng rng(53);
  const Tensor a = Tensor::randn(Shape{GetParam()}, rng);
  const Tensor z = kernels::sub(a, a);
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.data<float>()[i], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementwisePropSweep,
                         ::testing::Values(1, 17, 256, 1000));

// --- LSTM bounded state property -----------------------------------------------------

TEST(RnnProperty, LstmHiddenStateBounded) {
  // |h| <= 1 elementwise because h = o * tanh(c), both factors in [-1, 1].
  Rng rng(60);
  const Tensor x = Tensor::randn(Shape{2, 10, 8}, rng, 3.0f);
  const Tensor w_ih = Tensor::randn(Shape{8, 32}, rng, 1.0f);
  const Tensor w_hh = Tensor::randn(Shape{8, 32}, rng, 1.0f);
  const Tensor out = kernels::lstm(x, w_ih, w_hh, Tensor::zeros(Shape{32}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_LE(std::fabs(out.data<float>()[i]), 1.0f + 1e-6f);
  }
}

TEST(RnnProperty, GruHiddenStateBounded) {
  Rng rng(61);
  const Tensor x = Tensor::randn(Shape{1, 12, 6}, rng, 3.0f);
  const Tensor w_ih = Tensor::randn(Shape{6, 18}, rng, 1.0f);
  const Tensor w_hh = Tensor::randn(Shape{6, 18}, rng, 1.0f);
  const Tensor out = kernels::gru(x, w_ih, w_hh, Tensor::zeros(Shape{18}));
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_LE(std::fabs(out.data<float>()[i]), 1.0f + 1e-6f);
  }
}

}  // namespace
}  // namespace duet
