// Tests for the auto-tuning subsystem: the search space, the synthetic cost
// surface's intended properties, search-strategy behaviour, database
// persistence, and the cost-model integration.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "device/calibration.hpp"
#include "duet/engine.hpp"
#include "models/model_zoo.hpp"
#include "tuning/tuner.hpp"

namespace duet {
namespace {

using namespace tuning;

// --- schedule space -------------------------------------------------------------

TEST(ScheduleSpaceTest, EnumerationCoversSizeWithoutDuplicates) {
  const ScheduleSpace space = ScheduleSpace::for_device(DeviceKind::kCpu);
  std::set<std::string> seen;
  for (uint64_t i = 0; i < space.size(); ++i) {
    seen.insert(space.at(i).to_string());
  }
  EXPECT_EQ(seen.size(), space.size());
  EXPECT_THROW(space.at(space.size()), Error);
}

TEST(ScheduleSpaceTest, SampleStaysInSpace) {
  const ScheduleSpace space = ScheduleSpace::for_device(DeviceKind::kGpu);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const KernelSchedule s = space.sample(rng);
    EXPECT_NE(std::find(space.tiles().begin(), space.tiles().end(), s.tile_m),
              space.tiles().end());
    EXPECT_NE(std::find(space.vector_widths().begin(), space.vector_widths().end(),
                        s.vector_width),
              space.vector_widths().end());
  }
}

TEST(ScheduleSpaceTest, NeighborsDifferInOneKnob) {
  const ScheduleSpace space = ScheduleSpace::for_device(DeviceKind::kCpu);
  const KernelSchedule s = space.at(42);
  for (const KernelSchedule& n : space.neighbors(s)) {
    int diffs = (n.tile_m != s.tile_m) + (n.tile_n != s.tile_n) +
                (n.tile_k != s.tile_k) + (n.vector_width != s.vector_width) +
                (n.unroll != s.unroll) + (n.parallel_outer != s.parallel_outer);
    EXPECT_EQ(diffs, 1);
  }
}

// --- cost surface ---------------------------------------------------------------

TEST(CostSurface, OptimumScoresBest) {
  const std::string task = "dense|[1, 1024]|cpu";
  const KernelSchedule opt = task_optimum(task, DeviceKind::kCpu);
  const double best = schedule_efficiency(task, opt, DeviceKind::kCpu);
  EXPECT_GT(best, 0.9);
  const ScheduleSpace space = ScheduleSpace::for_device(DeviceKind::kCpu);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(schedule_efficiency(task, space.sample(rng), DeviceKind::kCpu),
              best + 1e-12);
  }
}

TEST(CostSurface, DifferentTasksHaveDifferentOptima) {
  std::set<std::string> optima;
  for (const char* task : {"dense|[1, 64]|cpu", "dense|[1, 1024]|cpu",
                           "conv2d|[1, 64, 56, 56]|cpu", "lstm|[1, 100, 256]|cpu",
                           "matmul|[128, 128]|cpu"}) {
    optima.insert(task_optimum(task, DeviceKind::kCpu).to_string());
  }
  EXPECT_GE(optima.size(), 3u);  // hash collisions allowed, monoculture not
}

TEST(CostSurface, SerialCpuOuterLoopIsPenalized) {
  const std::string task = "dense|[1, 512]|cpu";
  KernelSchedule s = task_optimum(task, DeviceKind::kCpu);
  const double par = schedule_efficiency(task, s, DeviceKind::kCpu);
  s.parallel_outer = false;
  EXPECT_LT(schedule_efficiency(task, s, DeviceKind::kCpu), par * 0.4);
}

TEST(CostSurface, DeterministicAndBounded) {
  const std::string task = "conv2d|[1, 128, 28, 28]|gpu";
  const ScheduleSpace space = ScheduleSpace::for_device(DeviceKind::kGpu);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const KernelSchedule s = space.sample(rng);
    const double a = schedule_efficiency(task, s, DeviceKind::kGpu);
    const double b = schedule_efficiency(task, s, DeviceKind::kGpu);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

// --- tuner ----------------------------------------------------------------------

TEST(Tuner, MoreTrialsFindBetterSchedules) {
  const std::string task = "dense|[1, 2048]|gpu";
  double eff_small = 0.0;
  double eff_large = 0.0;
  // Average over seeds to wash out measurement luck.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    TuningOptions small;
    small.strategy = TuningOptions::Strategy::kRandom;
    small.trials = 4;
    small.seed = seed;
    TuningOptions large = small;
    large.trials = 256;
    Rng rng_a(seed);
    Rng rng_b(seed);
    eff_small += AutoTuner(small).tune_task(task, DeviceKind::kGpu, rng_a).efficiency;
    eff_large += AutoTuner(large).tune_task(task, DeviceKind::kGpu, rng_b).efficiency;
  }
  EXPECT_GT(eff_large, eff_small);
}

TEST(Tuner, EvolutionaryBeatsRandomAtEqualBudget) {
  double random_total = 0.0;
  double evo_total = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const std::string task = "lstm|[1, 100, 256]|cpu";
    TuningOptions random;
    random.strategy = TuningOptions::Strategy::kRandom;
    random.trials = 48;
    TuningOptions evo = random;
    evo.strategy = TuningOptions::Strategy::kEvolutionary;
    Rng rng_a(seed);
    Rng rng_b(seed);
    random_total +=
        AutoTuner(random).tune_task(task, DeviceKind::kCpu, rng_a).efficiency;
    evo_total += AutoTuner(evo).tune_task(task, DeviceKind::kCpu, rng_b).efficiency;
  }
  EXPECT_GE(evo_total, random_total * 0.98);  // at least comparable
}

TEST(Tuner, TuneGraphCoversAllTasks) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  TuningDatabase db;
  TuningOptions opts;
  opts.trials = 8;
  AutoTuner(opts).tune_graph(g, DeviceKind::kCpu, db);
  std::set<std::string> tasks;
  for (const Node& n : g.nodes()) {
    if (!n.is_input() && !n.is_constant()) {
      tasks.insert(task_key(n, DeviceKind::kCpu));
    }
  }
  EXPECT_EQ(db.size(), tasks.size());
}

TEST(Tuner, OracleIsUpperBound) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  const TuningDatabase oracle = TuningDatabase::oracle(g, DeviceKind::kGpu);
  TuningDatabase tuned;
  TuningOptions opts;
  opts.trials = 32;
  AutoTuner(opts).tune_graph(g, DeviceKind::kGpu, tuned);
  for (const auto& [task, rec] : tuned.records()) {
    const TuningRecord* best = oracle.lookup(task);
    ASSERT_NE(best, nullptr);
    EXPECT_LE(rec.efficiency, best->efficiency + 1e-12) << task;
  }
}

TEST(Tuner, DatabaseKeepsBetterRecord) {
  TuningDatabase db;
  TuningRecord a;
  a.task = "t";
  a.efficiency = 0.5;
  a.trials = 10;
  db.update(a);
  TuningRecord b = a;
  b.efficiency = 0.3;
  db.update(b);
  EXPECT_DOUBLE_EQ(db.lookup("t")->efficiency, 0.5);
  b.efficiency = 0.9;
  db.update(b);
  EXPECT_DOUBLE_EQ(db.lookup("t")->efficiency, 0.9);
}

TEST(Tuner, DatabaseSaveLoadRoundTrip) {
  Graph g = models::build_mtdnn(models::MtDnnConfig::tiny());
  TuningDatabase db;
  TuningOptions opts;
  opts.trials = 8;
  AutoTuner(opts).tune_graph(g, DeviceKind::kCpu, db);
  const std::string path = ::testing::TempDir() + "duet_tuning.db";
  db.save(path);
  const TuningDatabase loaded = TuningDatabase::load(path);
  ASSERT_EQ(loaded.size(), db.size());
  for (const auto& [task, rec] : db.records()) {
    const TuningRecord* l = loaded.lookup(task);
    ASSERT_NE(l, nullptr);
    EXPECT_DOUBLE_EQ(l->efficiency, rec.efficiency);
    EXPECT_TRUE(l->schedule == rec.schedule);
  }
  std::remove(path.c_str());
}

// --- cost-model integration ------------------------------------------------------

TEST(TuningIntegration, UntunedCodeIsSlower) {
  // Full-size model: its cost is compute-bound, where schedule quality
  // matters (tiny variants are launch/memory-bound and barely react).
  Graph g = models::build_wide_deep();
  const DeviceCostParams cpu = xeon_gold_6152();
  const CompiledSubgraph tuned = compile_for_device(
      g, DeviceKind::kCpu, CompileOptions::compiler_defaults(), cpu);

  TuningDatabase empty;
  CompileOptions untuned = CompileOptions::compiler_defaults();
  untuned.schedule_quality = make_schedule_quality_hook(empty, 0.45);
  const CompiledSubgraph fallback =
      compile_for_device(g, DeviceKind::kCpu, untuned, cpu);
  EXPECT_GT(fallback.est_total_time_s(), tuned.est_total_time_s() * 1.5);
}

TEST(TuningIntegration, TuningClosesTheGap) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  const DeviceCostParams gpu = titan_v();
  const CompiledSubgraph converged = compile_for_device(
      g, DeviceKind::kGpu, CompileOptions::compiler_defaults(), gpu);

  const auto latency_with_db = [&](const TuningDatabase& db) {
    CompileOptions opts = CompileOptions::compiler_defaults();
    opts.schedule_quality = make_schedule_quality_hook(db, 0.45);
    return compile_for_device(g, DeviceKind::kGpu, opts, gpu).est_total_time_s();
  };

  TuningDatabase empty;
  TuningDatabase small_db;
  TuningDatabase big_db;
  TuningOptions small;
  small.trials = 4;
  small.seed = 3;
  TuningOptions big;
  big.trials = 128;
  big.seed = 3;
  // Tune the *optimized* graph — tasks must match what the cost model sees.
  Graph optimized =
      PassManager::standard(CompileOptions::compiler_defaults()).run(g);
  AutoTuner(small).tune_graph(optimized, DeviceKind::kGpu, small_db);
  AutoTuner(big).tune_graph(optimized, DeviceKind::kGpu, big_db);

  const double none = latency_with_db(empty);
  const double few = latency_with_db(small_db);
  const double many = latency_with_db(big_db);
  EXPECT_LT(few, none);
  EXPECT_LE(many, few * 1.001);
  // Converged calibration is the limit.
  EXPECT_GE(many, converged.est_total_time_s() * (1 - 1e-9));
}

}  // namespace
}  // namespace duet
