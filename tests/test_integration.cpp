// Cross-cutting integration tests: engine determinism, option plumbing
// (including the tuning hook end to end), execution-plan structure, report
// rendering, logging, and profiler statistics.

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "common/timer.hpp"
#include "duet/duet.hpp"
#include "tuning/tuner.hpp"

namespace duet {
namespace {

// --- engine determinism ---------------------------------------------------------

TEST(Integration, SameSeedSameDecisionsAndLatency) {
  DuetOptions opts;
  opts.seed = 7;
  DuetEngine a(models::build_wide_deep(), opts);
  DuetEngine b(models::build_wide_deep(), opts);
  EXPECT_EQ(a.report().schedule.placement, b.report().schedule.placement);
  EXPECT_DOUBLE_EQ(a.report().est_hetero_s, b.report().est_hetero_s);
  EXPECT_DOUBLE_EQ(a.latency(false), b.latency(false));
  // Noisy streams are also seed-determined.
  EXPECT_DOUBLE_EQ(a.latency(true), b.latency(true));
}

TEST(Integration, DifferentSeedsSamePlacement) {
  // Placement is driven by stable profiled means, not by the noise seed.
  DuetOptions a_opts;
  a_opts.seed = 1;
  DuetOptions b_opts;
  b_opts.seed = 999;
  DuetEngine a(models::build_wide_deep(), a_opts);
  DuetEngine b(models::build_wide_deep(), b_opts);
  EXPECT_EQ(a.report().schedule.placement, b.report().schedule.placement);
}

// --- tuning hook through the engine ------------------------------------------------

TEST(Integration, UntunedEngineStillPlacesRnnOnCpu) {
  // With an empty tuning database (everything at 45% of calibrated
  // throughput) the absolute latencies change but the device *asymmetry*
  // remains, so DUET still maps RNN->CPU / CNN->GPU and still wins.
  tuning::TuningDatabase empty;
  DuetOptions opts;
  opts.compile.schedule_quality = tuning::make_schedule_quality_hook(empty, 0.45);
  DuetEngine engine(models::build_wide_deep(), opts);

  const DuetReport& r = engine.report();
  EXPECT_FALSE(r.fell_back);
  EXPECT_LT(r.est_hetero_s, r.est_single_gpu_s);
  for (const Subgraph& sub : engine.partition().subgraphs) {
    for (NodeId id : sub.parent_nodes) {
      if (engine.model().node(id).op == OpType::kLSTM) {
        EXPECT_EQ(r.schedule.placement.of(sub.id), DeviceKind::kCpu);
      }
      if (engine.model().node(id).op == OpType::kConv2d) {
        EXPECT_EQ(r.schedule.placement.of(sub.id), DeviceKind::kGpu);
      }
    }
  }
  // And the untuned engine is slower end-to-end than the converged one.
  DuetEngine tuned(models::build_wide_deep());
  EXPECT_GT(r.est_hetero_s, tuned.report().est_hetero_s);
}

// --- execution plan structure --------------------------------------------------------

TEST(Integration, PlanStructureMatchesPartition) {
  Graph model = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(91);
  Partition partition = partition_phased(model);
  Placement placement(partition.subgraphs.size(), DeviceKind::kCpu);
  placement.set(3, DeviceKind::kGpu);
  ExecutionPlan plan = ExecutionPlan::build(model, partition, placement, devices,
                                            CompileOptions::compiler_defaults());

  ASSERT_EQ(plan.subgraphs().size(), partition.subgraphs.size());
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    const Subgraph& sub = partition.subgraph(ps.id);
    EXPECT_EQ(ps.device, placement.of(ps.id));
    EXPECT_EQ(ps.feeds.size(), sub.boundary_inputs.size());
    EXPECT_EQ(ps.produces, sub.boundary_outputs);
    EXPECT_EQ(ps.compiled.device(), ps.device);
    // Feeds reference kInput nodes of the compiled graph.
    for (const PlannedSubgraph::Feed& f : ps.feeds) {
      EXPECT_TRUE(ps.compiled.graph().node(f.input_node).is_input());
    }
  }
  // consumers() is the inverse of dep_subgraphs.
  for (const PlannedSubgraph& ps : plan.subgraphs()) {
    for (int dep : ps.dep_subgraphs) {
      const auto& consumers = plan.consumers()[static_cast<size_t>(dep)];
      EXPECT_NE(std::find(consumers.begin(), consumers.end(), ps.id),
                consumers.end());
    }
  }
}

TEST(Integration, PlanRejectsMismatchedPlacement) {
  Graph model = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(92);
  Partition partition = partition_phased(model);
  Placement wrong(partition.subgraphs.size() + 2);
  EXPECT_THROW(ExecutionPlan::build(model, partition, wrong, devices,
                                    CompileOptions::compiler_defaults()),
               Error);
}

// --- report rendering ------------------------------------------------------------------

TEST(Integration, TextTableAutoSizesAndPads) {
  TextTable t({"a", "long-header"});
  t.add_row({"wide-cell-content", "x"});
  t.add_row({"y"});  // short row tolerated
  const std::string out = t.render();
  // All data lines equal width.
  std::vector<std::string> lines = split(trim(out), '\n');
  ASSERT_GE(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size());
  }
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
}

TEST(Integration, SpeedupFormatting) {
  EXPECT_EQ(speedup_str(2.0, 1.0), "x2.00");
  EXPECT_EQ(speedup_str(1.0, 2.0), "x0.50");
  EXPECT_EQ(speedup_str(1.0, 0.0), "x?");
}

// --- logging / timer ---------------------------------------------------------------------

TEST(Integration, LoggerLevelGate) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  DUET_LOG_DEBUG << "should be suppressed";  // must not crash
  Logger::set_level(before);
  EXPECT_STREQ(Logger::level_name(LogLevel::kWarn), "WARN");
}

TEST(Integration, WallTimerMonotone) {
  WallTimer timer;
  const double a = timer.elapsed();
  const double b = timer.elapsed();
  EXPECT_GE(b, a);
  timer.reset();
  EXPECT_LT(timer.elapsed(), 1.0);
}

// --- profiler statistics ---------------------------------------------------------------

TEST(Integration, ProfilerStatsAreOrdered) {
  Graph model = models::build_mtdnn(models::MtDnnConfig::tiny());
  DevicePair devices = make_default_device_pair(93);
  Partition partition = partition_phased(model);
  Profiler profiler(devices);
  ProfileOptions opts;
  opts.runs = 200;
  const auto profiles = profiler.profile_partition(partition, model, opts);
  for (const SubgraphProfile& p : profiles) {
    for (int d = 0; d < kNumDeviceKinds; ++d) {
      const SummaryStats& s = p.per_device[d].stats;
      EXPECT_EQ(s.count, 200u);
      EXPECT_LE(s.min, s.p50);
      EXPECT_LE(s.p50, s.p99);
      EXPECT_LE(s.p99, s.p999);
      EXPECT_LE(s.p999, s.max);
      EXPECT_GT(s.mean, 0.0);
    }
    EXPECT_GT(p.output_bytes, 0u);
  }
}

TEST(Integration, ProfilerRejectsZeroRuns) {
  Graph model = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(94);
  Profiler profiler(devices);
  ProfileOptions opts;
  opts.runs = 0;
  EXPECT_THROW(profiler.profile_graph(model, DeviceKind::kCpu, opts), Error);
}

// --- umbrella header sanity -------------------------------------------------------------

TEST(Integration, UmbrellaHeaderExposesEverything) {
  // Compiles against duet/duet.hpp only (this TU); touch one symbol from
  // each re-exported area.
  Graph g = models::build_by_name("siamese");
  relay::Module m = relay::from_graph(g);
  EXPECT_FALSE(m.bindings.empty());
  Baseline baseline(g, BaselineKind::kTvmCpu,
                    *[] {
                      static DevicePair devices = make_default_device_pair(95);
                      return &devices;
                    }());
  EXPECT_GT(baseline.latency(false), 0.0);
}

}  // namespace
}  // namespace duet
