// End-to-end tests of DuetEngine and the baselines: the full pipeline on
// every zoo model, the fallback decision, option plumbing, and report
// contents.

#include <gtest/gtest.h>

#include "duet/baseline.hpp"
#include "duet/engine.hpp"
#include "duet/report.hpp"
#include "models/model_zoo.hpp"

namespace duet {
namespace {

TEST(Engine, HeterogeneousModelsBeatSingleDevice) {
  for (Graph (*build)() : {+[] { return models::build_wide_deep(); },
                           +[] { return models::build_siamese(); },
                           +[] { return models::build_mtdnn(); }}) {
    DuetEngine engine(build());
    const DuetReport& r = engine.report();
    EXPECT_FALSE(r.fell_back) << engine.model().name();
    EXPECT_LT(r.est_hetero_s, r.est_single_cpu_s);
    EXPECT_LT(r.est_hetero_s, r.est_single_gpu_s);
  }
}

TEST(Engine, SequentialModelFallsBackToBestDevice) {
  models::ResNetConfig c;
  c.depth = 18;
  DuetEngine engine(models::build_resnet(c));
  const DuetReport& r = engine.report();
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.fallback_device, DeviceKind::kGpu);
  // Fallback latency equals the TVM-GPU baseline.
  Baseline gpu(engine.model(), BaselineKind::kTvmGpu, engine.devices());
  EXPECT_NEAR(engine.latency(false), gpu.latency(false), 1e-9);
}

TEST(Engine, FallbackCanBeDisabled) {
  models::ResNetConfig c;
  c.depth = 18;
  DuetOptions opts;
  opts.enable_fallback = false;
  DuetEngine engine(models::build_resnet(c), opts);
  EXPECT_FALSE(engine.report().fell_back);
  // Still executes correctly through the partitioned plan.
  Rng rng(3);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  const auto expect = evaluate_graph(engine.model(), feeds);
  ExecutionResult result = engine.infer(feeds);
  EXPECT_TRUE(Tensor::allclose(result.outputs[0], expect[0], 1e-3f, 1e-4f));
}

TEST(Engine, FallbackInferenceMatchesReference) {
  DuetEngine engine(models::build_resnet(models::ResNetConfig::tiny()));
  Rng rng(4);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  const auto expect = evaluate_graph(engine.model(), feeds);
  ExecutionResult result = engine.infer(feeds);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_TRUE(Tensor::allclose(result.outputs[0], expect[0], 1e-3f, 1e-4f));
  EXPECT_EQ(result.timeline.events().size(), 1u);  // one fallback span
}

TEST(Engine, SchedulerOptionIsRespected) {
  DuetOptions opts;
  opts.scheduler = "round-robin";
  opts.enable_fallback = false;
  DuetEngine engine(models::build_wide_deep(models::WideDeepConfig::tiny()), opts);
  const Placement& p = engine.report().schedule.placement;
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.of(static_cast<int>(i)),
              i % 2 == 0 ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
}

TEST(Engine, UnknownSchedulerThrows) {
  DuetOptions opts;
  opts.scheduler = "nope";
  EXPECT_THROW(
      DuetEngine(models::build_siamese(models::SiameseConfig::tiny()), opts),
      Error);
}

TEST(Engine, LatencyNoiseToggle) {
  DuetEngine engine(models::build_siamese(models::SiameseConfig::tiny()));
  const double a = engine.latency(false);
  const double b = engine.latency(false);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = engine.latency(true);
  const double d = engine.latency(true);
  EXPECT_NE(c, d);
}

TEST(Engine, ReportRendering) {
  DuetEngine engine(models::build_wide_deep(models::WideDeepConfig::tiny()));
  const std::string report =
      engine.report().to_string(engine.model(), engine.partition());
  EXPECT_NE(report.find("DUET report"), std::string::npos);
  EXPECT_NE(report.find("est TVM-CPU"), std::string::npos);
  const std::string table = render_subgraph_breakdown(engine);
  EXPECT_NE(table.find("CPU cost"), std::string::npos);
  EXPECT_NE(table.find("placed on"), std::string::npos);
}

TEST(Engine, ThreadedInferMatchesSim) {
  DuetOptions opts;
  opts.enable_fallback = false;
  DuetEngine engine(models::build_mtdnn(models::MtDnnConfig::tiny()), opts);
  Rng rng(5);
  const auto feeds = models::make_random_feeds(engine.model(), rng);
  ExecutionResult sim = engine.infer(feeds);
  ExecutionResult threaded = engine.infer_threaded(feeds);
  ASSERT_EQ(sim.outputs.size(), threaded.outputs.size());
  for (size_t i = 0; i < sim.outputs.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(sim.outputs[i], threaded.outputs[i]));
  }
}

// --- baselines ---------------------------------------------------------------------

TEST(BaselineTest, NamesAndDevices) {
  EXPECT_STREQ(baseline_name(BaselineKind::kTvmGpu), "TVM-GPU");
  EXPECT_STREQ(baseline_name(BaselineKind::kFrameworkCpu), "Framework-CPU");
  EXPECT_EQ(baseline_device(BaselineKind::kTvmCpu), DeviceKind::kCpu);
  EXPECT_EQ(baseline_device(BaselineKind::kFrameworkGpu), DeviceKind::kGpu);
}

TEST(BaselineTest, FrameworkSlowerThanCompiler) {
  Graph g = models::build_wide_deep();
  DevicePair devices = make_default_device_pair(61);
  Baseline fw(g, BaselineKind::kFrameworkCpu, devices);
  Baseline tvm(g, BaselineKind::kTvmCpu, devices);
  EXPECT_GT(fw.latency(false), tvm.latency(false) * 1.3);
}

TEST(BaselineTest, GpuPaysTransfers) {
  // Same graph compiled for GPU twice: once the raw kernel time, once the
  // baseline latency; the difference is the input/output PCIe cost.
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(62);
  Baseline gpu(g, BaselineKind::kTvmGpu, devices);
  const double kernels_only = gpu.compiled().est_total_time_s();
  EXPECT_GT(gpu.latency(false), kernels_only);
}

TEST(BaselineTest, InferMatchesReference) {
  Graph g = models::build_wide_deep(models::WideDeepConfig::tiny());
  DevicePair devices = make_default_device_pair(63);
  Rng rng(6);
  const auto feeds = models::make_random_feeds(g, rng);
  const auto expect = evaluate_graph(g, feeds);
  for (BaselineKind kind : {BaselineKind::kTvmCpu, BaselineKind::kTvmGpu,
                            BaselineKind::kFrameworkCpu,
                            BaselineKind::kFrameworkGpu}) {
    Baseline baseline(g, kind, devices);
    Baseline::Result r = baseline.infer(feeds, false);
    ASSERT_EQ(r.outputs.size(), 1u) << baseline_name(kind);
    EXPECT_TRUE(Tensor::allclose(r.outputs[0], expect[0], 1e-3f, 1e-4f))
        << baseline_name(kind);
  }
}

TEST(BaselineTest, MissingFeedThrows) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  DevicePair devices = make_default_device_pair(64);
  Baseline baseline(g, BaselineKind::kTvmCpu, devices);
  EXPECT_THROW(baseline.infer({}, false), Error);
}

}  // namespace
}  // namespace duet
