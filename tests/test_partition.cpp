// Tests for the coarse-grained multi-phase partitioner (§IV-A) and subgraph
// extraction: structural expectations per model, invariants, and numeric
// equivalence of stitched subgraph execution.

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"

namespace duet {
namespace {

int multipath_phases(const Partition& p) {
  int n = 0;
  for (const Phase& phase : p.phases) n += phase.type == PhaseType::kMultiPath;
  return n;
}

const Phase* first_multipath(const Partition& p) {
  for (const Phase& phase : p.phases) {
    if (phase.type == PhaseType::kMultiPath) return &phase;
  }
  return nullptr;
}

TEST(Partition, WideDeepHasFourBranchesAndJoin) {
  Graph g = models::build_wide_deep(models::WideDeepConfig::tiny());
  Partition p = partition_phased(g);
  ASSERT_EQ(p.phases.size(), 2u);
  EXPECT_EQ(p.phases[0].type, PhaseType::kMultiPath);
  EXPECT_EQ(p.phases[0].subgraphs.size(), 4u);  // wide, ffn, rnn, cnn
  EXPECT_EQ(p.phases[1].type, PhaseType::kSequential);
}

TEST(Partition, SiameseHasTwoBranches) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  Partition p = partition_phased(g);
  const Phase* mp = first_multipath(p);
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->subgraphs.size(), 2u);
}

TEST(Partition, MtdnnHeadsFormMultiPathPhase) {
  models::MtDnnConfig c = models::MtDnnConfig::tiny();
  c.num_tasks = 5;
  Graph g = models::build_mtdnn(c);
  Partition p = partition_phased(g);
  // Encoder = sequential phase, heads = one multi-path phase of 5 branches.
  ASSERT_GE(p.phases.size(), 2u);
  EXPECT_EQ(p.phases[0].type, PhaseType::kSequential);
  const Phase* mp = first_multipath(p);
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->subgraphs.size(), 5u);
}

TEST(Partition, PureChainIsSingleSequentialSubgraph) {
  GraphBuilder b("chain");
  NodeId x = b.input(Shape{1, 8});
  for (int i = 0; i < 5; ++i) x = b.dense(x, 8);
  Graph g = b.finish({x});
  Partition p = partition_phased(g);
  EXPECT_EQ(p.subgraphs.size(), 1u);
  EXPECT_EQ(p.phases[0].type, PhaseType::kSequential);
}

TEST(Partition, ResidualDiamondStaysSequential) {
  // x -> a -> add(a, x-chain) with a single parallel branch: no parallelism
  // worth exposing, so everything merges into one sequential subgraph.
  GraphBuilder b("res");
  const NodeId x = b.input(Shape{1, 8});
  const NodeId stem = b.dense(x, 8);
  const NodeId branch = b.dense(stem, 8);
  const NodeId join = b.add(stem, branch);
  Graph g = b.finish({join});
  Partition p = partition_phased(g);
  EXPECT_EQ(p.subgraphs.size(), 1u);
}

TEST(Partition, ParallelOutputsDetectedDespiteTopoOrder) {
  // Two chains that never join (multi-output model). The second chain is
  // built after the first; the virtual sink must keep them parallel.
  GraphBuilder b("two-tails");
  const NodeId x = b.input(Shape{1, 8});
  const NodeId stem = b.dense(x, 8);
  NodeId t1 = stem;
  for (int i = 0; i < 3; ++i) t1 = b.dense(t1, 8);
  NodeId t2 = stem;
  for (int i = 0; i < 3; ++i) t2 = b.dense(t2, 8);
  Graph g = b.finish({t1, t2});
  Partition p = partition_phased(g);
  const Phase* mp = first_multipath(p);
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(mp->subgraphs.size(), 2u);
}

TEST(Partition, SqueezeNetFireModulesAreMultiPath) {
  Graph g = models::build_squeezenet(models::SqueezeNetConfig::tiny());
  Partition p = partition_phased(g);
  EXPECT_GE(multipath_phases(p), 8);  // one per fire module
}

// --- invariants over the zoo (property test) ---------------------------------------

class PartitionInvariants : public ::testing::TestWithParam<const char*> {
 protected:
  Graph build() const {
    const std::string name = GetParam();
    if (name == "wide-deep")
      return models::build_wide_deep(models::WideDeepConfig::tiny());
    if (name == "siamese")
      return models::build_siamese(models::SiameseConfig::tiny());
    if (name == "mtdnn") return models::build_mtdnn(models::MtDnnConfig::tiny());
    if (name == "resnet")
      return models::build_resnet(models::ResNetConfig::tiny());
    if (name == "squeezenet")
      return models::build_squeezenet(models::SqueezeNetConfig::tiny());
    return models::build_vgg16(models::VggConfig::tiny());
  }
};

TEST_P(PartitionInvariants, EveryComputeNodeCoveredOnce) {
  Graph g = build();
  Partition p = partition_phased(g);
  std::set<NodeId> seen;
  for (const Subgraph& sub : p.subgraphs) {
    for (NodeId id : sub.parent_nodes) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " in two subgraphs";
    }
  }
  size_t compute = 0;
  for (const Node& n : g.nodes()) {
    compute += !n.is_input() && !n.is_constant();
  }
  EXPECT_EQ(seen.size(), compute);
}

TEST_P(PartitionInvariants, PhasesRespectDependencies) {
  Graph g = build();
  Partition p = partition_phased(g);
  p.validate(g);  // throws on violation
  for (const Subgraph& sub : p.subgraphs) {
    for (const Subgraph::BoundaryInput& bi : sub.boundary_inputs) {
      const Node& producer = g.node(bi.parent_producer);
      if (producer.is_input()) continue;
      const int owner = p.producer_subgraph(bi.parent_producer);
      EXPECT_LT(p.subgraph(owner).phase, sub.phase);
    }
  }
}

TEST_P(PartitionInvariants, MultiPathBranchesAreIndependent) {
  Graph g = build();
  Partition p = partition_phased(g);
  for (const Phase& phase : p.phases) {
    if (phase.type != PhaseType::kMultiPath) continue;
    for (int a : phase.subgraphs) {
      std::set<NodeId> members_a(p.subgraph(a).parent_nodes.begin(),
                                 p.subgraph(a).parent_nodes.end());
      for (int bb : phase.subgraphs) {
        if (a == bb) continue;
        // No boundary input of b may be produced inside a.
        for (const Subgraph::BoundaryInput& bi : p.subgraph(bb).boundary_inputs) {
          EXPECT_EQ(members_a.count(bi.parent_producer), 0u)
              << "phase-peer dependency " << a << " -> " << bb;
        }
      }
    }
  }
}

TEST_P(PartitionInvariants, StitchedExecutionMatchesWholeGraph) {
  Graph g = build();
  Partition p = partition_phased(g);
  Rng rng(13);
  const auto feeds = models::make_random_feeds(g, rng);
  const auto expect = evaluate_graph(g, feeds);

  // Execute subgraph by subgraph in id order, routing boundary tensors.
  std::map<NodeId, Tensor> values = feeds;
  for (const Subgraph& sub : p.subgraphs) {
    std::map<NodeId, Tensor> sub_feeds;
    for (const Subgraph::BoundaryInput& bi : sub.boundary_inputs) {
      ASSERT_TRUE(values.count(bi.parent_producer));
      sub_feeds[bi.placeholder] = values.at(bi.parent_producer);
    }
    const auto outs = evaluate_graph(sub.graph, sub_feeds);
    ASSERT_EQ(outs.size(), sub.boundary_outputs.size());
    for (size_t i = 0; i < outs.size(); ++i) {
      values[sub.boundary_outputs[i]] = outs[i];
    }
  }
  for (size_t i = 0; i < g.outputs().size(); ++i) {
    EXPECT_TRUE(
        Tensor::allclose(values.at(g.outputs()[i]), expect[i], 1e-4f, 1e-5f));
  }
}

TEST_P(PartitionInvariants, FineGranularityAlsoValid) {
  Graph g = build();
  PartitionOptions opts;
  opts.granularity = PartitionOptions::Granularity::kFine;
  Partition p = partition_phased(g, opts);
  p.validate(g);
  size_t compute = 0;
  for (const Node& n : g.nodes()) compute += !n.is_input() && !n.is_constant();
  EXPECT_EQ(p.subgraphs.size(), compute);  // one subgraph per op
}

INSTANTIATE_TEST_SUITE_P(Zoo, PartitionInvariants,
                         ::testing::Values("wide-deep", "siamese", "mtdnn",
                                           "resnet", "squeezenet", "vgg"));

// --- extraction details -----------------------------------------------------------

TEST(Extraction, SharedInputGetsReplicatedPlaceholders) {
  // Two branches consuming the same producer: each extracted branch gets its
  // own placeholder, both pointing at the same parent node (paper §IV-A).
  GraphBuilder b("shared");
  const NodeId x = b.input(Shape{1, 8});
  const NodeId stem = b.dense(x, 8, "", "stem");
  NodeId left = b.dense(stem, 8, "", "l1");
  left = b.dense(left, 8, "", "l2");
  NodeId right = b.dense(stem, 8, "", "r1");
  right = b.dense(right, 8, "", "r2");
  const NodeId join = b.concat({left, right}, 1);
  Graph g = b.finish({join});

  Partition p = partition_phased(g);
  const Phase* mp = first_multipath(p);
  ASSERT_NE(mp, nullptr);
  ASSERT_EQ(mp->subgraphs.size(), 2u);
  for (int sid : mp->subgraphs) {
    const Subgraph& sub = p.subgraph(sid);
    ASSERT_EQ(sub.boundary_inputs.size(), 1u);
    EXPECT_EQ(g.node(sub.boundary_inputs[0].parent_producer).name, "stem");
    // Placeholder lives in the subgraph as a kInput with matching shape.
    const Node& ph = sub.graph.node(sub.boundary_inputs[0].placeholder);
    EXPECT_TRUE(ph.is_input());
    EXPECT_EQ(ph.out_shape, g.node(sub.boundary_inputs[0].parent_producer).out_shape);
  }
}

TEST(Extraction, ConstantsCopiedNotBoundary) {
  GraphBuilder b("w");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 4);
  Graph g = b.finish({d});
  Subgraph sub = extract_subgraph(g, {d}, "only");
  // Only the activation input is a boundary; weights are internal constants.
  EXPECT_EQ(sub.boundary_inputs.size(), 1u);
  EXPECT_EQ(sub.graph.constant_ids().size(), 2u);
}

TEST(Extraction, RejectsTerminals) {
  GraphBuilder b("w");
  const NodeId x = b.input(Shape{1, 4});
  const NodeId d = b.dense(x, 4);
  Graph g = b.finish({d});
  EXPECT_THROW(extract_subgraph(g, {x}, "bad"), Error);
}

TEST(Extraction, IoBytesAccounting) {
  GraphBuilder b("w");
  const NodeId x = b.input(Shape{1, 100});
  const NodeId d = b.dense(x, 50);
  Graph g = b.finish({d});
  Subgraph sub = extract_subgraph(g, {d}, "only");
  EXPECT_EQ(sub.input_bytes(g), 100 * sizeof(float));
  EXPECT_EQ(sub.output_bytes(g), 50 * sizeof(float));
}

TEST(Extraction, SummaryMentionsDominantOp) {
  Graph g = models::build_wide_deep(models::WideDeepConfig::tiny());
  Partition p = partition_phased(g);
  bool lstm_seen = false;
  for (const Subgraph& sub : p.subgraphs) {
    if (sub.summary(g).find("lstm") != std::string::npos) lstm_seen = true;
  }
  EXPECT_TRUE(lstm_seen);
}

}  // namespace
}  // namespace duet
