// Unit tests for the kernel library against hand-computed values and
// mathematical identities.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/kernels.hpp"

namespace duet {
namespace {

using namespace kernels;

Tensor t2x2(float a, float b, float c, float d) {
  return Tensor::from_vector(Shape{2, 2}, {a, b, c, d});
}

// --- elementwise ----------------------------------------------------------------

TEST(Elementwise, AddSubMul) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor b = t2x2(10, 20, 30, 40);
  EXPECT_EQ(add(a, b).data<float>()[3], 44.0f);
  EXPECT_EQ(sub(b, a).data<float>()[0], 9.0f);
  EXPECT_EQ(mul(a, b).data<float>()[2], 90.0f);
}

TEST(Elementwise, ShapeMismatchThrows) {
  EXPECT_THROW(add(Tensor::zeros(Shape{2}), Tensor::zeros(Shape{3})), Error);
}

TEST(Elementwise, ReluClampsNegatives) {
  const Tensor x = Tensor::from_vector(Shape{4}, {-1, 0, 2, -3});
  const Tensor y = relu(x);
  EXPECT_EQ(y.data<float>()[0], 0.0f);
  EXPECT_EQ(y.data<float>()[2], 2.0f);
}

TEST(Elementwise, SigmoidKnownValues) {
  const Tensor y = sigmoid(Tensor::from_vector(Shape{2}, {0.0f, 100.0f}));
  EXPECT_FLOAT_EQ(y.data<float>()[0], 0.5f);
  EXPECT_NEAR(y.data<float>()[1], 1.0f, 1e-6);
}

TEST(Elementwise, TanhOddFunction) {
  const Tensor y = tanh_op(Tensor::from_vector(Shape{2}, {1.5f, -1.5f}));
  EXPECT_NEAR(y.data<float>()[0], -y.data<float>()[1], 1e-6);
}

TEST(Elementwise, GeluAnchors) {
  const Tensor y = gelu(Tensor::from_vector(Shape{3}, {0.0f, 10.0f, -10.0f}));
  EXPECT_FLOAT_EQ(y.data<float>()[0], 0.0f);
  EXPECT_NEAR(y.data<float>()[1], 10.0f, 1e-3);
  EXPECT_NEAR(y.data<float>()[2], 0.0f, 1e-3);
}

TEST(Elementwise, ScalarOps) {
  const Tensor x = Tensor::full(Shape{2}, 3.0f);
  EXPECT_EQ(add_scalar(x, 2.0f).data<float>()[0], 5.0f);
  EXPECT_EQ(mul_scalar(x, -2.0f).data<float>()[1], -6.0f);
}

TEST(Elementwise, BiasAddBroadcastsLastDim) {
  const Tensor x = Tensor::zeros(Shape{2, 3});
  const Tensor b = Tensor::from_vector(Shape{3}, {1, 2, 3});
  const Tensor y = bias_add(x, b);
  EXPECT_EQ(y.data<float>()[0], 1.0f);
  EXPECT_EQ(y.data<float>()[5], 3.0f);
  EXPECT_THROW(bias_add(x, Tensor::zeros(Shape{4})), Error);
}

// --- matmul ----------------------------------------------------------------------

TEST(MatMul, HandComputed) {
  const Tensor a = t2x2(1, 2, 3, 4);
  const Tensor b = t2x2(5, 6, 7, 8);
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.data<float>()[0], 19.0f);
  EXPECT_EQ(c.data<float>()[1], 22.0f);
  EXPECT_EQ(c.data<float>()[2], 43.0f);
  EXPECT_EQ(c.data<float>()[3], 50.0f);
}

TEST(MatMul, IdentityIsNoop) {
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{5, 5}, rng);
  Tensor eye = Tensor::zeros(Shape{5, 5});
  for (int i = 0; i < 5; ++i) eye.data<float>()[i * 5 + i] = 1.0f;
  EXPECT_TRUE(Tensor::allclose(matmul(a, eye), a));
}

TEST(MatMul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros(Shape{2, 3}), Tensor::zeros(Shape{4, 2})),
               Error);
}

TEST(MatMul, BatchSharedRhs) {
  Rng rng(2);
  const Tensor a = Tensor::randn(Shape{3, 2, 4}, rng);
  const Tensor b = Tensor::randn(Shape{4, 5}, rng);
  const Tensor c = batch_matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({3, 2, 5}));
  // Batch 1 must equal a standalone matmul of that slice.
  Tensor a1(Shape{2, 4});
  std::copy(a.data<float>() + 8, a.data<float>() + 16, a1.data<float>());
  const Tensor expect = matmul(a1, b);
  Tensor c1(Shape{2, 5});
  std::copy(c.data<float>() + 10, c.data<float>() + 20, c1.data<float>());
  EXPECT_TRUE(Tensor::allclose(c1, expect));
}

TEST(MatMul, LinearAddsBias) {
  const Tensor x = t2x2(1, 0, 0, 1);
  const Tensor w = t2x2(2, 0, 0, 2);
  const Tensor b = Tensor::from_vector(Shape{2}, {10, 20});
  const Tensor y = linear(x, w, b);
  EXPECT_EQ(y.data<float>()[0], 12.0f);
  EXPECT_EQ(y.data<float>()[3], 22.0f);
  const Tensor y2 = linear(x, w, Tensor());
  EXPECT_EQ(y2.data<float>()[0], 2.0f);
}

// --- conv / pool -------------------------------------------------------------------

TEST(Conv2d, HandComputed3x3) {
  // 1x1x3x3 input = 1..9, 1x1x2x2 kernel of ones, stride 1, no padding.
  Tensor x = Tensor::from_vector(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::full(Shape{1, 1, 2, 2}, 1.0f);
  const Tensor y = conv2d(x, w, Tensor(), 1, 0);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(y.data<float>()[0], 1 + 2 + 4 + 5);
  EXPECT_EQ(y.data<float>()[3], 5 + 6 + 8 + 9);
}

TEST(Conv2d, PaddingAndStride) {
  Tensor x = Tensor::full(Shape{1, 1, 4, 4}, 1.0f);
  Tensor w = Tensor::full(Shape{1, 1, 3, 3}, 1.0f);
  const Tensor y = conv2d(x, w, Tensor(), 2, 1);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  // Top-left window covers 4 valid pixels (others padded).
  EXPECT_EQ(y.data<float>()[0], 4.0f);
}

TEST(Conv2d, BiasApplied) {
  Tensor x = Tensor::zeros(Shape{1, 1, 2, 2});
  Tensor w = Tensor::full(Shape{2, 1, 1, 1}, 1.0f);
  Tensor b = Tensor::from_vector(Shape{2}, {3, -1});
  const Tensor y = conv2d(x, w, b, 1, 0);
  EXPECT_EQ(y.data<float>()[0], 3.0f);
  EXPECT_EQ(y.data<float>()[4], -1.0f);
}

TEST(Conv2d, ChannelMismatchThrows) {
  EXPECT_THROW(conv2d(Tensor::zeros(Shape{1, 3, 4, 4}),
                      Tensor::zeros(Shape{8, 4, 3, 3}), Tensor(), 1, 1),
               Error);
}

TEST(Pool, MaxPoolPicksMax) {
  Tensor x = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  const Tensor y = max_pool2d(x, 2, 2, 0);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_EQ(y.data<float>()[0], 9.0f);
}

TEST(Pool, AvgPoolAverages) {
  Tensor x = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 6});
  const Tensor y = avg_pool2d(x, 2, 2, 0);
  EXPECT_EQ(y.data<float>()[0], 3.0f);
}

TEST(Pool, GlobalAvgPool) {
  Tensor x = Tensor::from_vector(Shape{1, 2, 1, 2}, {2, 4, 10, 30});
  const Tensor y = global_avg_pool(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_EQ(y.data<float>()[0], 3.0f);
  EXPECT_EQ(y.data<float>()[1], 20.0f);
}

TEST(BatchNorm, ScaleShift) {
  Tensor x = Tensor::full(Shape{1, 2, 1, 1}, 2.0f);
  Tensor scale = Tensor::from_vector(Shape{2}, {3, 0.5});
  Tensor shift = Tensor::from_vector(Shape{2}, {1, -1});
  const Tensor y = batch_norm(x, scale, shift);
  EXPECT_EQ(y.data<float>()[0], 7.0f);
  EXPECT_EQ(y.data<float>()[1], 0.0f);
}

// --- reductions -----------------------------------------------------------------

TEST(Reduce, SoftmaxRowsSumToOne) {
  Rng rng(3);
  const Tensor x = Tensor::randn(Shape{4, 7}, rng);
  const Tensor y = softmax_lastdim(x);
  for (int r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 7; ++c) sum += y.data<float>()[r * 7 + c];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Reduce, SoftmaxInvariantToShift) {
  const Tensor a = Tensor::from_vector(Shape{1, 3}, {1, 2, 3});
  const Tensor b = Tensor::from_vector(Shape{1, 3}, {101, 102, 103});
  EXPECT_TRUE(Tensor::allclose(softmax_lastdim(a), softmax_lastdim(b)));
}

TEST(Reduce, LayerNormNormalizes) {
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape{3, 16}, rng, 5.0f);
  const Tensor gamma = Tensor::full(Shape{16}, 1.0f);
  const Tensor beta = Tensor::zeros(Shape{16});
  const Tensor y = layer_norm(x, gamma, beta);
  for (int r = 0; r < 3; ++r) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int c = 0; c < 16; ++c) mean += y.data<float>()[r * 16 + c];
    mean /= 16;
    for (int c = 0; c < 16; ++c) {
      const float d = y.data<float>()[r * 16 + c] - mean;
      var += d * d;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(Reduce, AxisReductions) {
  const Tensor x = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor s0 = reduce_sum(x, 0);
  EXPECT_EQ(s0.shape(), Shape({3}));
  EXPECT_EQ(s0.data<float>()[0], 5.0f);
  const Tensor m1 = reduce_mean(x, 1);
  EXPECT_EQ(m1.data<float>()[1], 5.0f);
  const Tensor mx = reduce_max(x, 1);
  EXPECT_EQ(mx.data<float>()[0], 3.0f);
}

TEST(Reduce, ArgmaxLastDim) {
  const Tensor x = Tensor::from_vector(Shape{2, 3}, {1, 9, 3, 7, 2, 1});
  const Tensor y = argmax_lastdim(x);
  EXPECT_EQ(y.dtype(), DType::kInt32);
  EXPECT_EQ(y.data<int32_t>()[0], 1);
  EXPECT_EQ(y.data<int32_t>()[1], 0);
}

// --- transforms -------------------------------------------------------------------

TEST(Transform, ConcatSplitRoundTrip) {
  Rng rng(5);
  const Tensor a = Tensor::randn(Shape{2, 3}, rng);
  const Tensor b = Tensor::randn(Shape{2, 5}, rng);
  const Tensor cat = concat({a, b}, 1);
  EXPECT_EQ(cat.shape(), Shape({2, 8}));
  // Check a value from each part landed in the right place.
  EXPECT_EQ(cat.data<float>()[0], a.data<float>()[0]);
  EXPECT_EQ(cat.data<float>()[3], b.data<float>()[0]);

  const Tensor even = concat({a, a}, 1);
  const auto halves = split(even, 1, 2);
  EXPECT_TRUE(Tensor::allclose(halves[0], a));
  EXPECT_TRUE(Tensor::allclose(halves[1], a));
}

TEST(Transform, ConcatAxis0) {
  const Tensor a = Tensor::full(Shape{1, 2}, 1.0f);
  const Tensor b = Tensor::full(Shape{3, 2}, 2.0f);
  const Tensor c = concat({a, b}, 0);
  EXPECT_EQ(c.shape(), Shape({4, 2}));
  EXPECT_EQ(c.data<float>()[0], 1.0f);
  EXPECT_EQ(c.data<float>()[7], 2.0f);
}

TEST(Transform, ConcatMismatchThrows) {
  EXPECT_THROW(concat({Tensor::zeros(Shape{2, 2}), Tensor::zeros(Shape{3, 3})}, 1),
               Error);
}

TEST(Transform, Transpose2dInvolution) {
  Rng rng(6);
  const Tensor x = Tensor::randn(Shape{7, 13}, rng);
  EXPECT_TRUE(Tensor::allclose(transpose2d(transpose2d(x)), x));
  EXPECT_EQ(transpose2d(x).shape(), Shape({13, 7}));
}

TEST(Transform, TransposeLast2) {
  Rng rng(7);
  const Tensor x = Tensor::randn(Shape{2, 3, 4}, rng);
  const Tensor y = transpose_last2(x);
  EXPECT_EQ(y.shape(), Shape({2, 4, 3}));
  EXPECT_EQ(y.data<float>()[1], x.data<float>()[4]);  // [0][0][1] == x[0][1][0]
}

TEST(Transform, FlattenAndSlice) {
  Rng rng(8);
  const Tensor x = Tensor::randn(Shape{2, 3, 4}, rng);
  EXPECT_EQ(flatten(x).shape(), Shape({2, 12}));
  const Tensor row = slice_rows(x, 1, 2);
  EXPECT_EQ(row.shape(), Shape({1, 3, 4}));
  EXPECT_EQ(row.data<float>()[0], x.data<float>()[12]);
  EXPECT_THROW(slice_rows(x, 1, 5), Error);
}

// --- rnn ---------------------------------------------------------------------------

TEST(Rnn, LstmCellZeroWeightsGivesZeroHidden) {
  const Tensor x = Tensor::full(Shape{1, 4}, 1.0f);
  kernels::LstmState s{Tensor::zeros(Shape{1, 3}), Tensor::zeros(Shape{1, 3})};
  const Tensor w_ih = Tensor::zeros(Shape{4, 12});
  const Tensor w_hh = Tensor::zeros(Shape{3, 12});
  const auto next = lstm_cell(x, s, w_ih, w_hh, Tensor::zeros(Shape{12}));
  // gates all sigmoid(0)=0.5, g=tanh(0)=0 -> c = 0.5*0 + 0.5*0 = 0, h = 0.
  EXPECT_NEAR(next.c.data<float>()[0], 0.0f, 1e-6);
  EXPECT_NEAR(next.h.data<float>()[0], 0.0f, 1e-6);
}

TEST(Rnn, LstmCellSaturatedGates) {
  // Huge positive bias on input & output gates, g-gate driven to tanh(large).
  const Tensor x = Tensor::full(Shape{1, 1}, 0.0f);
  kernels::LstmState s{Tensor::zeros(Shape{1, 1}), Tensor::zeros(Shape{1, 1})};
  const Tensor w_ih = Tensor::zeros(Shape{1, 4});
  const Tensor w_hh = Tensor::zeros(Shape{1, 4});
  Tensor bias = Tensor::from_vector(Shape{4}, {100, -100, 100, 100});
  const auto next = lstm_cell(x, s, w_ih, w_hh, bias);
  // i=1, f=0, g=tanh(100)=1, o=1 -> c=1, h=tanh(1).
  EXPECT_NEAR(next.c.data<float>()[0], 1.0f, 1e-5);
  EXPECT_NEAR(next.h.data<float>()[0], std::tanh(1.0f), 1e-5);
}

TEST(Rnn, LstmSequenceMatchesManualUnroll) {
  Rng rng(9);
  const int64_t batch = 2, seq = 4, input = 3, hidden = 5;
  const Tensor x = Tensor::randn(Shape{batch, seq, input}, rng);
  const Tensor w_ih = Tensor::randn(Shape{input, 4 * hidden}, rng, 0.3f);
  const Tensor w_hh = Tensor::randn(Shape{hidden, 4 * hidden}, rng, 0.3f);
  const Tensor bias = Tensor::randn(Shape{4 * hidden}, rng, 0.1f);

  kernels::LstmState final_state;
  const Tensor out = lstm(x, w_ih, w_hh, bias, &final_state);
  EXPECT_EQ(out.shape(), Shape({batch, seq, hidden}));

  // Manual unroll.
  kernels::LstmState s{Tensor::zeros(Shape{batch, hidden}),
                       Tensor::zeros(Shape{batch, hidden})};
  for (int64_t t = 0; t < seq; ++t) {
    Tensor xt(Shape{batch, input});
    for (int64_t b = 0; b < batch; ++b) {
      std::copy(x.data<float>() + (b * seq + t) * input,
                x.data<float>() + (b * seq + t + 1) * input,
                xt.data<float>() + b * input);
    }
    s = lstm_cell(xt, s, w_ih, w_hh, bias);
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t h = 0; h < hidden; ++h) {
        EXPECT_NEAR(out.data<float>()[(b * seq + t) * hidden + h],
                    s.h.data<float>()[b * hidden + h], 1e-5);
      }
    }
  }
  EXPECT_TRUE(Tensor::allclose(final_state.h, s.h));
}

TEST(Rnn, GruCellUpdateGateInterpolates) {
  // With z saturated to 1, h' = h regardless of candidate.
  const Tensor x = Tensor::full(Shape{1, 1}, 1.0f);
  const Tensor h = Tensor::full(Shape{1, 1}, 0.7f);
  const Tensor w_ih = Tensor::zeros(Shape{1, 3});
  const Tensor w_hh = Tensor::zeros(Shape{1, 3});
  Tensor bias = Tensor::from_vector(Shape{3}, {0, 100, 0});  // update gate -> 1
  const Tensor next = gru_cell(x, h, w_ih, w_hh, bias);
  EXPECT_NEAR(next.data<float>()[0], 0.7f, 1e-5);
}

TEST(Rnn, GruSequenceShape) {
  Rng rng(10);
  const Tensor x = Tensor::randn(Shape{2, 3, 4}, rng);
  const Tensor w_ih = Tensor::randn(Shape{4, 9}, rng, 0.2f);
  const Tensor w_hh = Tensor::randn(Shape{3, 9}, rng, 0.2f);
  const Tensor out = gru(x, w_ih, w_hh, Tensor::zeros(Shape{9}));
  EXPECT_EQ(out.shape(), Shape({2, 3, 3}));
}

TEST(Rnn, EmbeddingGathersRows) {
  Tensor idx(Shape{1, 3}, DType::kInt32);
  idx.data<int32_t>()[0] = 2;
  idx.data<int32_t>()[1] = 0;
  idx.data<int32_t>()[2] = 2;
  const Tensor table =
      Tensor::from_vector(Shape{3, 2}, {10, 11, 20, 21, 30, 31});
  const Tensor y = embedding(idx, table);
  EXPECT_EQ(y.shape(), Shape({1, 3, 2}));
  EXPECT_EQ(y.data<float>()[0], 30.0f);
  EXPECT_EQ(y.data<float>()[2], 10.0f);
  EXPECT_EQ(y.data<float>()[4], 30.0f);
}

TEST(Rnn, EmbeddingOutOfRangeThrows) {
  Tensor idx(Shape{1, 1}, DType::kInt32);
  idx.data<int32_t>()[0] = 5;
  const Tensor table = Tensor::zeros(Shape{3, 2});
  EXPECT_THROW(embedding(idx, table), Error);
}

// --- attention ----------------------------------------------------------------------

TEST(Attention, OutputShapeAndFiniteness) {
  Rng rng(11);
  const int64_t model = 8;
  const Tensor x = Tensor::randn(Shape{2, 5, model}, rng);
  const Tensor wqkv = Tensor::randn(Shape{model, 3 * model}, rng, 0.3f);
  const Tensor wo = Tensor::randn(Shape{model, model}, rng, 0.3f);
  const Tensor y = multi_head_attention(x, wqkv, wo, 2);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data<float>()[i]));
  }
}

TEST(Attention, SingleTokenIsProjectionOnly) {
  // With seq=1 attention weights are exactly 1, so out = (x Wv) Wo.
  Rng rng(12);
  const int64_t model = 6;
  const Tensor x = Tensor::randn(Shape{1, 1, model}, rng);
  const Tensor wqkv = Tensor::randn(Shape{model, 3 * model}, rng, 0.3f);
  const Tensor wo = Tensor::randn(Shape{model, model}, rng, 0.3f);
  const Tensor y = multi_head_attention(x, wqkv, wo, 3);

  // Manual: v = x * Wv (last third of wqkv), out = v * wo.
  Tensor wv(Shape{model, model});
  for (int64_t i = 0; i < model; ++i) {
    for (int64_t j = 0; j < model; ++j) {
      wv.data<float>()[i * model + j] =
          wqkv.data<float>()[i * 3 * model + 2 * model + j];
    }
  }
  const Tensor v = kernels::matmul(x.reshaped(Shape{1, model}), wv);
  const Tensor expect = kernels::matmul(v, wo);
  EXPECT_TRUE(Tensor::allclose(y.reshaped(Shape{1, model}), expect, 1e-3f, 1e-4f));
}

TEST(Attention, HeadsMustDivideModel) {
  const Tensor x = Tensor::zeros(Shape{1, 2, 6});
  const Tensor wqkv = Tensor::zeros(Shape{6, 18});
  const Tensor wo = Tensor::zeros(Shape{6, 6});
  EXPECT_THROW(multi_head_attention(x, wqkv, wo, 4), Error);
}

}  // namespace
}  // namespace duet
