// Unit tests for common utilities: stats, rng, strings, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/threadpool.hpp"

namespace duet {
namespace {

// --- stats -------------------------------------------------------------------

TEST(Stats, PercentileExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.5);
}

// n < 5 uses nearest-rank: tiny samples report an actual observation
// instead of extrapolating a fictitious tail (p99 of two points is the
// larger point, not 9.9 manufactured between them).
TEST(Stats, PercentileTinySampleNearestRank) {
  std::vector<double> v{0.0, 10.0};
  // rank = ceil(0.25 * 2) = 1 -> first observation.
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 0.0);
  // rank = ceil(0.99 * 2) = 2 -> second observation, not 9.9.
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.51), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
}

TEST(Stats, PercentileNearestRankFourSamples) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);    // ceil(2.0) = rank 2
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 3.0);   // ceil(3.0) = rank 3
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 4.0);   // ceil(3.96) = rank 4
  EXPECT_DOUBLE_EQ(percentile(v, 0.24), 1.0);   // ceil(0.96) = rank 1
}

// At n >= 5 the convention switches to linear interpolation.
TEST(Stats, PercentileInterpolatesAtFive) {
  std::vector<double> v{0.0, 10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.375), 15.0);  // between ranks, interpolated
}

TEST(Stats, PercentileSingleSample) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.999), 42.0);
}

TEST(Stats, PercentileEmptyThrows) {
  std::vector<double> empty;
  EXPECT_THROW(percentile_sorted(empty, 0.5), Error);
}

TEST(Stats, PercentileBadQuantileThrows) {
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile_sorted(v, 1.5), Error);
}

TEST(Stats, RecorderSummary) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i);
  const SummaryStats s = rec.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_GT(s.p99, 98.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Stats, EmptySummaryIsZero) {
  const SummaryStats s = LatencyRecorder().summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, MeanStd) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0}), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.uniform() != b.uniform();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, LognormalFactorMedianNearOne) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.lognormal_factor(0.2));
  EXPECT_NEAR(percentile(samples, 0.5), 1.0, 0.02);
  // Upper tail heavier than lower.
  EXPECT_GT(percentile(samples, 0.999) - 1.0, 1.0 - percentile(samples, 0.001));
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(mean_of(samples), 2.0, 0.1);
  EXPECT_NEAR(stddev_of(samples), 3.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// --- strings -----------------------------------------------------------------

TEST(StringUtil, SplitJoinRoundTrip) {
  const std::vector<std::string> parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, HumanTime) {
  EXPECT_EQ(human_time(0.002), "2.000 ms");
  EXPECT_EQ(human_time(3.5e-6), "3.50 us");
  EXPECT_EQ(human_time(2.0), "2.000 s");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(3u << 20), "3.0 MiB");
}

TEST(StringUtil, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%s", std::string(500, 'a').c_str()).size(), 500u);
}

// --- thread pool ---------------------------------------------------------------

TEST(ThreadPool, SubmitRuns) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSmallRunsInline) {
  ThreadPool pool(4);
  int sum = 0;  // intentionally unsynchronized: must run inline
  pool.parallel_for(10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, ParallelForZero) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

}  // namespace
}  // namespace duet
