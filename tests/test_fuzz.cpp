// Randomized property tests: generate random layered DAGs of tensor
// operators and assert the system-wide invariants hold on all of them —
// partition validity, optimization-pass semantics preservation, executor
// equivalence under random placements, and relay round-trips. Seeds are
// fixed, so failures reproduce.

#include <gtest/gtest.h>

#include "compiler/pass.hpp"
#include "device/calibration.hpp"
#include "models/model_zoo.hpp"
#include "relay/relay.hpp"
#include "runtime/executor.hpp"
#include "sched/scheduler.hpp"

namespace duet {
namespace {

// Generates a random DAG: a few "lanes" of feature vectors that are mapped
// through random unary/dense ops, occasionally merged (add/concat) or
// forked, then reduced to a handful of outputs. Shapes stay rank-2
// [batch, features] so every op combination is valid.
Graph random_graph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b("fuzz_" + std::to_string(seed), seed * 13 + 1);
  const int64_t batch = rng.uniform_int(1, 3);

  std::vector<NodeId> live;
  const int num_inputs = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < num_inputs; ++i) {
    const int64_t features = 4 << rng.uniform_int(0, 3);  // 4..32
    live.push_back(b.input(Shape{batch, features}));
  }

  const int steps = static_cast<int>(rng.uniform_int(6, 24));
  for (int s = 0; s < steps; ++s) {
    const int64_t choice = rng.uniform_int(0, 9);
    const size_t pick = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
    const NodeId x = live[pick];
    NodeId produced = kInvalidNode;
    switch (choice) {
      case 0:
        produced = b.relu(x);
        break;
      case 1:
        produced = b.sigmoid(x);
        break;
      case 2:
        produced = b.tanh(x);
        break;
      case 3:
      case 4:
        produced = b.dense(x, 4 << rng.uniform_int(0, 3));
        break;
      case 5: {  // merge two equal-shaped values with add (or skip)
        NodeId other = kInvalidNode;
        for (NodeId cand : live) {
          if (cand != x &&
              b.graph().node(cand).out_shape == b.graph().node(x).out_shape) {
            other = cand;
            break;
          }
        }
        produced = other != kInvalidNode ? b.add(x, other) : b.gelu(x);
        break;
      }
      case 6: {  // concat any two values along features
        const size_t pick2 = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
        const NodeId y = live[pick2];
        if (b.graph().node(y).out_shape.dim(0) == batch) {
          produced = b.concat({x, y}, 1);
        } else {
          produced = b.relu(x);
        }
        break;
      }
      case 7:
        produced = b.layer_norm(x);
        break;
      case 8:
        produced = b.softmax(x);
        break;
      default:
        produced = b.dense(x, 8, "relu");
        break;
    }
    // Fork: sometimes keep the input alive as well.
    if (!rng.coin(0.35)) live.erase(live.begin() + static_cast<long>(pick));
    live.push_back(produced);
  }

  // Outputs: up to 4 live *compute* values (raw inputs as outputs would be
  // pure pass-throughs, which the engine does not route).
  std::vector<NodeId> outputs;
  for (NodeId id : live) {
    if (!b.graph().node(id).is_input()) outputs.push_back(id);
    if (outputs.size() == 4) break;
  }
  return b.finish(std::move(outputs));
}

class Fuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fuzz, PartitionInvariantsHold) {
  Graph g = random_graph(GetParam());
  Partition p = partition_phased(g);
  p.validate(g);  // covering, non-overlapping, phase-ordered
  EXPECT_GE(p.subgraphs.size(), 1u);
}

TEST_P(Fuzz, PassesPreserveSemantics) {
  Graph g = random_graph(GetParam());
  Graph opt = PassManager::standard(CompileOptions::compiler_defaults()).run(g);
  Rng rng(GetParam() + 1);
  const auto feeds = models::make_random_feeds(g, rng);
  std::map<NodeId, Tensor> remapped;
  const auto src = g.input_ids();
  const auto dst = opt.input_ids();
  ASSERT_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) remapped[dst[i]] = feeds.at(src[i]);
  const auto before = evaluate_graph(g, feeds);
  const auto after = evaluate_graph(opt, remapped);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(before[i], after[i], 1e-3f, 1e-4f))
        << "seed " << GetParam() << " output " << i;
  }
}

TEST_P(Fuzz, RandomPlacementExecutesCorrectly) {
  Graph g = random_graph(GetParam());
  DevicePair devices = make_default_device_pair(GetParam());
  Partition partition = partition_phased(g);
  Rng prng(GetParam() + 2);
  Placement placement(partition.subgraphs.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    placement.set(static_cast<int>(i),
                  prng.coin() ? DeviceKind::kGpu : DeviceKind::kCpu);
  }
  ExecutionPlan plan = ExecutionPlan::build(g, partition, placement, devices,
                                            CompileOptions::compiler_defaults());
  SimExecutor executor(devices);
  Rng rng(GetParam() + 3);
  const auto feeds = models::make_random_feeds(g, rng);
  const auto expect = evaluate_graph(g, feeds);
  const auto result = executor.run(plan, feeds, false);
  ASSERT_EQ(result.outputs.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(result.outputs[i], expect[i], 1e-3f, 1e-4f))
        << "seed " << GetParam();
  }
}

TEST_P(Fuzz, RelayRoundTripPreservesSemantics) {
  Graph g = random_graph(GetParam());
  relay::Module m = relay::from_graph(g);
  std::map<std::string, Tensor> table;
  for (const relay::Binding& bind : m.bindings) {
    if (bind.kind == relay::Binding::Kind::kConstant) {
      table[bind.var] = bind.constant.value;
    }
  }
  Graph g2 = relay::to_graph(relay::parse_module(relay::print_module(m), &table));

  Rng rng(GetParam() + 4);
  const auto feeds = models::make_random_feeds(g, rng);
  std::map<NodeId, Tensor> feeds2;
  const auto in1 = g.input_ids();
  const auto in2 = g2.input_ids();
  ASSERT_EQ(in1.size(), in2.size());
  for (size_t i = 0; i < in1.size(); ++i) feeds2[in2[i]] = feeds.at(in1[i]);
  const auto out1 = evaluate_graph(g, feeds);
  const auto out2 = evaluate_graph(g2, feeds2);
  for (size_t i = 0; i < out1.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(out1[i], out2[i], 1e-4f, 1e-5f))
        << "seed " << GetParam();
  }
}

TEST_P(Fuzz, SchedulersProduceConsistentEstimates) {
  Graph g = random_graph(GetParam());
  DevicePair devices = make_default_device_pair(GetParam() + 5);
  Partition partition = partition_phased(g);
  Profiler profiler(devices);
  ProfileOptions opts;
  opts.runs = 1;
  opts.with_noise = false;
  const auto profiles = profiler.profile_partition(partition, g, opts);
  LatencyEvaluator evaluator(partition, g, profiles, devices.link->params());
  Rng rng(GetParam() + 6);
  SchedulingContext ctx{&partition, &profiles, &evaluator, &rng};

  const double greedy =
      make_scheduler("greedy-correction")->schedule(ctx).est_latency_s;
  const double cpu = make_scheduler("cpu-only")->schedule(ctx).est_latency_s;
  const double gpu = make_scheduler("gpu-only")->schedule(ctx).est_latency_s;
  // Greedy-correction should not end up meaningfully worse than the worse of
  // the two trivial placements (small slack: it is a local search).
  EXPECT_LE(greedy, std::max(cpu, gpu) * 1.05);
  // Every reported estimate re-evaluates to itself.
  const ScheduleResult r = make_scheduler("greedy-correction")->schedule(ctx);
  EXPECT_NEAR(r.est_latency_s, evaluator.evaluate(r.placement), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Range<uint64_t>(1000, 1012));

}  // namespace
}  // namespace duet
