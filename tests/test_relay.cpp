// Tests for the Relay-like IR (§V): printing, parsing, graph translation in
// both directions, and structural round-trip fidelity over the model zoo.

#include <gtest/gtest.h>

#include <cmath>

#include "models/model_zoo.hpp"
#include "partition/partitioner.hpp"
#include "relay/relay.hpp"

namespace duet {
namespace {

using relay::Module;
using relay::parse_module;
using relay::print_module;

TEST(RelayParse, MinimalFunction) {
  const std::string text = R"(
def @main(%x: Tensor[(1, 4), float32]) {
  %y = relu(%x);
  (%y)
}
)";
  Module m = parse_module(text);
  EXPECT_EQ(m.name, "main");
  ASSERT_EQ(m.params.size(), 1u);
  EXPECT_EQ(m.params[0].var, "x");
  EXPECT_EQ(m.params[0].type.shape, Shape({1, 4}));
  ASSERT_EQ(m.bindings.size(), 1u);
  EXPECT_EQ(m.bindings[0].call.op, OpType::kReLU);
  ASSERT_EQ(m.outputs.size(), 1u);
  EXPECT_EQ(m.outputs[0], "y");
}

TEST(RelayParse, AttrsAllKinds) {
  const std::string text = R"(
def @f(%x: Tensor[(2, 6), float32]) {
  %r = reshape(%x) {dims=[3 4]};
  %s = slice_rows(%r) {begin=0, end=2};
  %d = mul_scalar(%s) {value=1.5};
  (%d)
}
)";
  Module m = parse_module(text);
  EXPECT_EQ(m.bindings[0].call.attrs.get_ints("dims"), (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(m.bindings[1].call.attrs.get_int("end"), 2);
  EXPECT_DOUBLE_EQ(m.bindings[2].call.attrs.get_float("value"), 1.5);
}

TEST(RelayParse, ConstantDeclGetsZeros) {
  const std::string text = R"(
def @f(%x: Tensor[(1, 3), float32]) {
  %w = constant Tensor[(3, 2), float32];
  %y = matmul(%x, %w);
  (%y)
}
)";
  Module m = parse_module(text);
  EXPECT_EQ(m.bindings[0].kind, relay::Binding::Kind::kConstant);
  EXPECT_TRUE(m.bindings[0].constant.value.defined());
  EXPECT_EQ(m.bindings[0].constant.value.shape(), Shape({3, 2}));
}

TEST(RelayParse, ConstTableSuppliesValues) {
  const std::string text = R"(
def @f(%x: Tensor[(1, 2), float32]) {
  %w = constant Tensor[(2, 2), float32];
  %y = matmul(%x, %w);
  (%y)
}
)";
  std::map<std::string, Tensor> table{{"w", Tensor::full(Shape{2, 2}, 3.0f)}};
  Module m = parse_module(text, &table);
  EXPECT_EQ(m.bindings[0].constant.value.data<float>()[0], 3.0f);
}

TEST(RelayParse, SyntaxErrorsThrow) {
  EXPECT_THROW(parse_module("def main() {}"), Error);  // missing @
  EXPECT_THROW(parse_module("def @f(%x: Tensor[(1), float32]) { (%y) }"), Error);
  EXPECT_THROW(parse_module(R"(
def @f(%x: Tensor[(1, 4), float32]) {
  %y = bogus_op(%x);
  (%y)
})"),
               Error);
}

TEST(RelayToGraph, BuildsAndEvaluates) {
  const std::string text = R"(
def @f(%x: Tensor[(1, 4), float32]) {
  %a = relu(%x);
  %b = sigmoid(%x);
  %c = add(%a, %b);
  (%c)
}
)";
  Graph g = relay::to_graph(parse_module(text));
  EXPECT_EQ(g.num_nodes(), 4u);
  std::map<NodeId, Tensor> feeds{
      {g.input_ids()[0], Tensor::from_vector(Shape{1, 4}, {1, -1, 0, 2})}};
  const auto out = evaluate_graph(g, feeds);
  EXPECT_NEAR(out[0].data<float>()[0], 1.0f + 1.0f / (1.0f + std::exp(-1.0f)),
              1e-5);
}

TEST(RelayToGraph, UnboundVarThrows) {
  const std::string text = R"(
def @f(%x: Tensor[(1, 4), float32]) {
  %a = relu(%zzz);
  (%a)
}
)";
  EXPECT_THROW(relay::to_graph(parse_module(text)), Error);
}

TEST(RelayFromGraph, EmitsParamsBindingsOutputs) {
  Graph g = models::build_siamese(models::SiameseConfig::tiny());
  Module m = relay::from_graph(g);
  EXPECT_EQ(m.params.size(), g.input_ids().size());
  EXPECT_EQ(m.outputs.size(), g.outputs().size());
  size_t non_input = 0;
  for (const Node& n : g.nodes()) non_input += !n.is_input();
  EXPECT_EQ(m.bindings.size(), non_input);
}

// Structural + numerical round-trip over the zoo: graph -> text -> graph.
class RelayRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RelayRoundTrip, PrintParseTranslatePreservesSemantics) {
  const std::string name = GetParam();
  Graph g = [&] {
    if (name == "wide-deep")
      return models::build_wide_deep(models::WideDeepConfig::tiny());
    if (name == "siamese")
      return models::build_siamese(models::SiameseConfig::tiny());
    if (name == "mtdnn") return models::build_mtdnn(models::MtDnnConfig::tiny());
    return models::build_squeezenet(models::SqueezeNetConfig::tiny());
  }();

  Module m = relay::from_graph(g);
  const std::string text = print_module(m);

  // Rebuild with the original constant values via a table.
  std::map<std::string, Tensor> table;
  for (const relay::Binding& bind : m.bindings) {
    if (bind.kind == relay::Binding::Kind::kConstant) {
      table[bind.var] = bind.constant.value;
    }
  }
  Graph g2 = relay::to_graph(parse_module(text, &table));

  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.outputs().size(), g.outputs().size());
  // to_graph hoists all params to the front, so node ids can shift; compare
  // the op histogram instead of positions.
  const auto histogram = [](const Graph& graph) {
    std::map<std::string, int> h;
    for (const Node& n : graph.nodes()) h[op_name(n.op)] += 1;
    return h;
  };
  EXPECT_EQ(histogram(g), histogram(g2));

  Rng rng(21);
  const auto feeds = models::make_random_feeds(g, rng);
  std::map<NodeId, Tensor> feeds2;
  const auto in1 = g.input_ids();
  const auto in2 = g2.input_ids();
  for (size_t i = 0; i < in1.size(); ++i) feeds2[in2[i]] = feeds.at(in1[i]);

  const auto out1 = evaluate_graph(g, feeds);
  const auto out2 = evaluate_graph(g2, feeds2);
  for (size_t i = 0; i < out1.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(out1[i], out2[i], 1e-4f, 1e-5f));
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, RelayRoundTrip,
                         ::testing::Values("wide-deep", "siamese", "mtdnn",
                                           "squeezenet"));

TEST(RelaySubgraph, PartitionedSubgraphEmitsAsStatements) {
  // Paper §V: translate subgraphs back to a sequence of Relay statements.
  Graph g = models::build_wide_deep(models::WideDeepConfig::tiny());
  Partition p = partition_phased(g);
  for (const Subgraph& sub : p.subgraphs) {
    Module m = relay::from_graph(sub.graph);
    const std::string text = print_module(m);
    EXPECT_NE(text.find("def @"), std::string::npos);
    // Parses back cleanly.
    std::map<std::string, Tensor> table;
    for (const relay::Binding& bind : m.bindings) {
      if (bind.kind == relay::Binding::Kind::kConstant) {
        table[bind.var] = bind.constant.value;
      }
    }
    Graph back = relay::to_graph(parse_module(text, &table));
    EXPECT_EQ(back.num_nodes(), sub.graph.num_nodes());
  }
}

}  // namespace
}  // namespace duet
